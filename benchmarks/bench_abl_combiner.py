"""ABL-COMBINE — why the paper omitted the combiner (§3.1).

"We specifically omitted partial reduce/combine because it didn't
increase performance for our volume renderer."  The structural reason:
within one brick each pixel emits at most one fragment, so a per-chunk
combiner has nothing to merge.  The bench runs a real combiner through
the functional pipeline and shows zero merges.
"""

from repro.bench import format_table
from repro.bench.experiments import ablation_combiner


def test_combiner_merges_nothing(run_once):
    rows = run_once(ablation_combiner)
    print()
    print(format_table(rows, title="Combiner ablation (§3.1 omission)"))

    with_combiner = next(r for r in rows if r["combiner"])
    without = next(r for r in rows if not r["combiner"])
    # The combiner found nothing to merge…
    assert with_combiner["pairs_merged_by_combiner"] == 0
    # …so the shuffle volume is identical with and without it.
    assert with_combiner["pairs_shuffled"] == without["pairs_shuffled"]
