"""ABL-COMP — direct-send vs binary-swap compositing (§6).

"We chose direct-send compositing because it allows an overlap of
communication and computation, and also because it fits within the
MapReduce model."  Binary swap's strength is bounded per-node traffic at
large node counts; direct-send's is overlap.  The ablation quantifies
the trade on the AC-sized machine.
"""

from repro.bench import ablation_compositing, format_table


def test_compositing_ablation(run_once):
    rows = run_once(ablation_compositing)
    print()
    print(
        format_table(
            rows, title="Compositing ablation: direct-send vs binary swap (s)"
        )
    )

    # On the paper's machine sizes (≤8 nodes), direct-send should win or
    # tie in the majority of configurations — that is why they chose it.
    wins = sum(1 for r in rows if r["direct_wins"])
    assert wins >= len(rows) // 2, f"direct-send won only {wins}/{len(rows)}"

    # Binary swap's cost is nearly flat in GPU count (its selling point);
    # compare the largest vs smallest GPU count for one volume.
    v256 = [r for r in rows if r["volume"] == "256^3"]
    swap_small = next(r for r in v256 if r["n_gpus"] == 4)["binary_swap_s"]
    swap_big = next(r for r in v256 if r["n_gpus"] == 32)["binary_swap_s"]
    assert swap_big < swap_small * 3
