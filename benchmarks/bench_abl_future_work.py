"""ABL-FUTURE — pricing the paper's §7 future-work proposals.

1. "investigating the speed tradeoffs of using asynchronous memory
   transfers combined with manually filtering the volume samples in
   shared memory, as opposed to ... synchronous memory transfer
   functions and hardware filtering units";
2. "exploring the benefits of direct access for the GPU to system
   memory (0-copy memory) ... This remains a research topic though
   because 0-copy memory is orders of magnitude slower than GPU VRAM."
"""

from repro.bench import format_table
from repro.bench.experiments import ablation_future_work


def test_future_work_tradeoffs(run_once):
    rows = run_once(ablation_future_work)
    print()
    print(format_table(rows, title="§7 future-work modes (8 GPUs)"))

    def total(volume, mode_prefix):
        return next(
            r["total_s"]
            for r in rows
            if r["volume"] == volume and r["mode"].startswith(mode_prefix)
        )

    # Async upload wins when texture-setup stalls dominate (small volume,
    # tiny kernels)…
    assert total("64^3", "async") < total("64^3", "baseline")
    # …and loses when the kernel dominates (1024³): the 1.6x manual-
    # filtering penalty outweighs the hidden upload.
    assert total("1024^3", "async") > total("1024^3", "baseline")

    # 0-copy is never a clear win at these fragment volumes (the paper's
    # skepticism): it must not beat the baseline by more than noise, and
    # it does not help the compute-bound large volume either.
    assert total("64^3", "zero-copy") > 0.95 * total("64^3", "baseline")
    assert total("1024^3", "zero-copy") >= total("1024^3", "baseline") * 0.98
