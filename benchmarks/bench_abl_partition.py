"""ABL-PART — ablation of the partitioning strategy (§3.1.1, §6.1).

The paper asserts per-pixel round-robin is "empirically, the highest-
performing method" of distribution.  We compare it against striped
(contiguous key blocks) and tiled (checkerboard) partitioners on load
balance and end-to-end runtime.
"""

from repro.bench import ablation_partitioners, format_table


def test_partitioner_ablation(run_once):
    rows = run_once(ablation_partitioners)
    print()
    print(format_table(rows, title="Partitioning ablation (256^3, 8 GPUs)"))

    by_name = {r["partitioner"]: r for r in rows}
    rr = by_name["round-robin (paper)"]
    striped = by_name["striped/block"]

    # Round-robin balances reducer load nearly perfectly…
    assert rr["load_imbalance"] < 1.2, rr
    # …while contiguous stripes skew badly (the image footprint is uneven).
    assert striped["load_imbalance"] > rr["load_imbalance"] * 1.3, striped
    # And round-robin's runtime is at least as good as any alternative.
    best = min(r["total_s"] for r in rows)
    assert rr["total_s"] <= best * 1.05
