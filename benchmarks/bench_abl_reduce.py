"""ABL-REDUCE — CPU vs GPU compositing in the Reduce stage (§3.1.2).

"We found empirically that while the GPU would be very good at
compositing …, it is actually quicker to do the compositing on the CPU"
because of the per-pixel depth sort and the extra transfers.  The
ablation reproduces that empirical choice.
"""

from repro.bench import ablation_reduce_device, format_table


def test_reduce_device_ablation(run_once):
    rows = run_once(ablation_reduce_device)
    print()
    print(format_table(rows, title="Reduce-device ablation (512^3, 8 GPUs)"))

    by_dev = {r["reduce_on"]: r for r in rows}
    # The paper's empirical result: CPU reduce is at least competitive at
    # the evaluation's fragment counts (GPU pays sort upload + kernel
    # launches + result handling for little gain at this scale).
    assert by_dev["cpu"]["total_s"] <= by_dev["gpu"]["total_s"] * 1.10, by_dev
