"""ABL-SORT — CPU vs GPU counting sort (§3.1.2).

"We use a specialized counting sort on the CPU or GPU (depending on the
amount of data)."  The GPU flavour pays PCIe round trips; the CPU
flavour pays a slower per-key rate — the crossover sits at large
fragment counts.
"""

from repro.bench import ablation_sort_device, format_table


def test_sort_device_ablation(run_once):
    rows = run_once(ablation_sort_device)
    print()
    print(format_table(rows, title="Sort-device ablation (512^3, 8 GPUs)"))

    def sort_s(device, image):
        return next(
            r for r in rows if r["sort_on"] == device and r["image"] == image
        )["sort_s"]

    # At small fragment counts the CPU sort wins (no PCIe round trip).
    assert sort_s("cpu", "256^2") < sort_s("gpu", "256^2")
    # The GPU's advantage grows with load: its relative cost at 1024^2
    # versus 256^2 rises far slower than the CPU's.
    cpu_growth = sort_s("cpu", "1024^2") / sort_s("cpu", "256^2")
    gpu_growth = sort_s("gpu", "1024^2") / sort_s("gpu", "256^2")
    assert gpu_growth < cpu_growth
