"""DATASETS — the paper's three test volumes (Fig. 2 / §5).

Skull, Supernova, and Plume differ in occupancy structure, which drives
fragment traffic ("ray fragments with no contributions are discarded")
and hence communication.  The bench renders all three at the same size
and checks the occupancy-ordering shows up in the shuffle volume.
"""

from repro.bench import format_table, sim_render
from repro.render import default_tf
from repro.volume import BrickGrid, grid_occupancy
from repro.volume.datasets import DATASET_FIELDS


def run_datasets():
    rows = []
    tf = default_tf()
    for name in ("skull", "supernova", "plume"):
        shape = (512, 512, 2048) if name == "plume" else (256, 256, 256)
        res = sim_render(shape, 8, name)
        grid = BrickGrid(shape, tuple(max(s // 4, 8) for s in shape))
        occ = grid_occupancy(
            grid, tf.opacity_threshold_value(), field=DATASET_FIELDS[name]
        )
        rows.append(
            {
                "dataset": name,
                "resolution": "x".join(str(s) for s in shape),
                "mean_occupancy": float(occ.mean()),
                "fragments": int(res.outcome.pairs_per_reducer.sum()),
                "total_s": res.runtime,
            }
        )
    return rows


def test_three_datasets(run_once):
    rows = run_once(run_datasets)
    print()
    print(format_table(rows, title="The paper's three datasets, 8 GPUs"))
    by = {r["dataset"]: r for r in rows}
    # Every dataset renders; occupancy varies across them…
    occs = [r["mean_occupancy"] for r in rows]
    assert max(occs) > 1.5 * min(occs)
    # …and the denser dataset ships at least as many fragments as the
    # sparser one at the same resolution.
    dense, sparse = (
        ("supernova", "skull")
        if by["supernova"]["mean_occupancy"] >= by["skull"]["mean_occupancy"]
        else ("skull", "supernova")
    )
    assert by[dense]["fragments"] >= by[sparse]["fragments"]
    # Plume's tall 512x512x2048 volume (paper §5) runs through the same
    # pipeline despite the 4:1 aspect.
    assert by["plume"]["total_s"] > 0
