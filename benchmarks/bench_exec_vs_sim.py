"""VALIDATE — cross-check of the two execution paths.

The figure benches trust the analytic workload model; this bench runs a
small volume both functionally and analytically and checks the fragment
traffic (the quantity every communication cost scales with) agrees
within a modest factor.
"""

from repro.bench import exec_vs_sim_validation, format_table


def test_exec_vs_sim_agreement(run_once):
    result = run_once(exec_vs_sim_validation)
    print()
    print(format_table([result], title="Functional vs analytic traffic"))
    assert result["exec_fragments"] > 0
    assert 0.4 <= result["ratio"] <= 2.5, result
