"""FIG3 — Fig. 3 of the paper: stage-breakdown runtimes.

Regenerates the stacked-bar data (Map, Partition+I/O, Sort, Reduce) for
128³/256³/512³/1024³ volumes at 1–32 GPUs and checks the figure's
claims:

* ray-cast (Map) time scales down with GPU count;
* communication grows with GPU count and eventually dominates;
* small/medium volumes have a sweet spot around 8–16 GPUs — beyond it
  "there is too much communication";
* the 1024³ volume keeps improving through 32 GPUs.
"""

from collections import defaultdict

from repro.bench import fig3_breakdown, format_table
from repro.perfmodel import find_sweet_spot


def test_fig3_stage_breakdown(run_once):
    rows = run_once(fig3_breakdown)
    print()
    print(format_table(rows, title="Fig 3: runtime breakdown by stage (seconds)"))

    by_volume = defaultdict(dict)
    for r in rows:
        by_volume[r["volume"]][r["n_gpus"]] = r

    for volume, per_n in by_volume.items():
        ns = sorted(per_n)
        # Map stage strictly shrinks with more GPUs.
        maps = [per_n[n]["map_s"] for n in ns]
        assert all(a > b for a, b in zip(maps, maps[1:])), f"{volume}: map not shrinking"
        # Communication (partition+io) grows from the sweet spot to 32 GPUs.
        assert per_n[32]["partition_io_s"] > per_n[ns[0]]["partition_io_s"], volume

    # Sweet spots: small volumes peak at 8–16 GPUs, 1024³ at 32.
    for volume, expected in [("128^3", {8, 16}), ("256^3", {8, 16}), ("512^3", {8, 16, 32})]:
        totals = {n: r["total_s"] for n, r in by_volume[volume].items()}
        assert find_sweet_spot(totals) in expected, f"{volume}: {totals}"
    totals_1024 = {n: r["total_s"] for n, r in by_volume["1024^3"].items()}
    assert find_sweet_spot(totals_1024) == 32

    # Headline claim: 1024³ renders in under a second on 8 GPUs.
    assert by_volume["1024^3"][8]["total_s"] < 1.0

    # At 32 GPUs communication dominates compute for the small volume.
    r = by_volume["128^3"][32]
    assert r["partition_io_s"] > r["map_s"]
