"""FIG4a — Fig. 4 (left): framerate vs GPU count per volume size.

Checks the figure's shape: small volumes reach interactive-ish rates and
plateau (communication floor); larger volumes are slower at equal GPU
counts; FPS improves with GPUs until the sweet spot.
"""

from collections import defaultdict

from repro.bench import fig4_scaling, format_table


def test_fig4_fps(run_once):
    rows = run_once(fig4_scaling)
    print()
    cols = ["volume", "n_gpus", "fps", "speedup", "efficiency"]
    print(format_table(rows, cols, title="Fig 4 (left): framerate (frames/second)"))

    by_volume = defaultdict(dict)
    for r in rows:
        by_volume[r["volume"]][r["n_gpus"]] = r

    # Bigger volumes are slower at the same GPU count.
    for n in (2, 8, 32):
        fps_by_size = [by_volume[f"{s}^3"][n]["fps"] for s in (128, 256, 512, 1024)]
        assert all(a >= b for a, b in zip(fps_by_size, fps_by_size[1:])), n

    # FPS improves from 1 GPU to the sweet spot for every volume.
    for volume, per_n in by_volume.items():
        ns = sorted(per_n)
        assert max(per_n[n]["fps"] for n in ns) > per_n[ns[0]]["fps"] * 1.5, volume

    # Parallel efficiency decays with GPU count (never superlinear).
    for volume, per_n in by_volume.items():
        for n, r in per_n.items():
            assert r["efficiency"] <= 1.05, (volume, n)

    # The small volume reaches multiple frames per second at its best.
    assert max(r["fps"] for r in by_volume["128^3"].values()) > 2.0
