"""FIG4b — Fig. 4 (right): voxels per second (millions) vs GPU count.

Checks the figure's dominant feature: VPS grows with volume size (the
larger the volume, the better the GPUs amortise fixed costs), and the
1024³ volume reaches the highest rate at 32 GPUs — the paper shows
~1400 MVPS there; our simulated substrate should land within a small
factor and preserve the ordering.
"""

from collections import defaultdict

from repro.bench import fig4_scaling, format_table


def test_fig4_vps(run_once):
    rows = run_once(fig4_scaling)
    print()
    cols = ["volume", "n_gpus", "mvps"]
    print(format_table(rows, cols, title="Fig 4 (right): voxels/second (millions)"))

    by_volume = defaultdict(dict)
    for r in rows:
        by_volume[r["volume"]][r["n_gpus"]] = r["mvps"]

    # At every GPU count, larger volumes sustain higher VPS.
    for n in (2, 8, 32):
        series = [by_volume[f"{s}^3"][n] for s in (128, 256, 512, 1024)]
        assert all(a < b for a, b in zip(series, series[1:])), f"n={n}: {series}"

    # The best rate overall belongs to 1024³ at 32 GPUs…
    best = max((v, vol, n) for vol, per in by_volume.items() for n, v in per.items())
    assert best[1] == "1024^3" and best[2] == 32

    # …and lies within a small factor of the paper's ~1400 MVPS.
    assert 700 <= best[0] <= 5600, best

    # VPS of 1024³ grows monotonically with GPUs (Fig. 4's rising line).
    series_1024 = [by_volume["1024^3"][n] for n in sorted(by_volume["1024^3"])]
    assert all(a < b for a, b in zip(series_1024, series_1024[1:]))
