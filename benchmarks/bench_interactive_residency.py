"""IN-CORE — the paper's in-core vs out-of-core regimes (§6).

"If enough GPUs are available to fit the bricked volume entirely in
core, the speed benefits are obvious.  But if not, the speed of the
rendering is still quite good."  Measures an interactive orbit in both
regimes: resident frames skip uploads; streaming frames pay them every
time; disk-bound streaming pays far more again.
"""

from repro.bench import format_table
from repro.core import JobConfig
from repro.pipeline import MapReduceVolumeRenderer, orbit_path
from repro.render import RenderConfig, default_tf
from repro.volume.datasets import skull_field


def run_regimes():
    rows = []
    shape = (256, 256, 256)
    cams = orbit_path(shape, 4, width=512, height=512)
    for label, resident, include_disk in [
        ("in-core (resident bricks)", True, False),
        ("out-of-core (host RAM)", False, False),
        ("out-of-core (disk)", False, True),
    ]:
        r = MapReduceVolumeRenderer(
            volume=None,
            volume_shape=shape,
            field=skull_field,
            cluster=8,
            tf=default_tf(),
            render_config=RenderConfig(dt=1.0),
            job_config=JobConfig(include_disk=include_disk),
        )
        results = r.render_sequence(cams, resident=resident, out_of_core=include_disk)
        steady = [res.runtime for res in results[1:]]  # skip warm-up frame
        rows.append(
            {
                "regime": label,
                "first_frame_s": results[0].runtime,
                "steady_frame_s": sum(steady) / len(steady),
                "steady_fps": len(steady) / sum(steady),
            }
        )
    return rows


def test_in_core_vs_out_of_core(run_once):
    rows = run_once(run_regimes)
    print()
    print(format_table(rows, title="Interactive orbit, 256^3 on 8 GPUs"))
    by = {r["regime"].split(" ")[0]: r for r in rows}
    in_core = next(r for r in rows if "resident" in r["regime"])
    ram = next(r for r in rows if "host RAM" in r["regime"])
    disk = next(r for r in rows if "disk" in r["regime"])

    # Residency beats streaming once warm…
    assert in_core["steady_frame_s"] < ram["steady_frame_s"]
    # …while both regimes pay the same first frame (cold uploads).
    assert in_core["first_frame_s"] == pytest.approx(ram["first_frame_s"], rel=0.05)
    # Disk-bound streaming is far slower than RAM streaming (the paper's
    # out-of-core case is 'still quite good' only with data in memory).
    assert disk["steady_frame_s"] > 3 * ram["steady_frame_s"]
    # And the in-core regime is interactive-ish at this size.
    assert in_core["steady_fps"] > 2.0


import pytest  # noqa: E402  (used in assertions above)
