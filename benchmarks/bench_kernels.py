"""KERNELS — micro-benchmarks of the functional kernels.

These time the *Python implementations* (useful for tracking regressions
in this repo), not the simulated GPU — simulated stage times live in the
figure benches.
"""

import os

import numpy as np
import pytest

from repro.core import counting_sort_pairs
from repro.render import (
    RenderConfig,
    available_backends,
    composite_fragments,
    default_tf,
    make_fragments,
    orbit_camera,
    ray_box_intersect,
    raycast_brick,
    resolve_kernel,
    trilinear_sample,
)
from repro.render.accel import AccelCache
from repro.volume import make_dataset

VOL = make_dataset("supernova", (32, 32, 32))
CAM = orbit_camera(VOL.shape, width=128, height=128, distance_factor=2.2)
TF = default_tf()
RNG = np.random.default_rng(7)


def _sparse_volume(size: int, fill: float) -> np.ndarray:
    """A mostly-empty volume with a centred dense blob of ``fill`` volume
    fraction — the regime whole-span empty-space skipping targets."""
    rng = np.random.default_rng(11)
    data = np.zeros((size,) * 3, np.float32)
    edge = max(2, round(size * fill ** (1.0 / 3.0)))
    lo = (size - edge) // 2
    data[lo : lo + edge, lo : lo + edge, lo : lo + edge] = rng.uniform(
        0.2, 1.0, (edge,) * 3
    ).astype(np.float32)
    return data


_SPARSE = {"sparse": _sparse_volume(32, 0.05), "half": _sparse_volume(32, 0.5)}
#: Warm per-case caches: the bench measures the steady orbit regime
#: (structures resident, like the paper's per-GPU static data), not the
#: one-off build.
_ACCEL_CACHE = AccelCache()


def test_bench_raycast_kernel(benchmark):
    cfg = RenderConfig(dt=1.0)
    frags, stats = benchmark(
        raycast_brick,
        VOL.data,
        (0, 0, 0),
        (0, 0, 0),
        VOL.shape,
        VOL.shape,
        CAM,
        TF,
        cfg,
    )
    assert stats.n_samples > 0


def _bench_kernel_backends() -> tuple:
    """Backends for the per-backend raycast rows.

    ``REPRO_BENCH_KERNELS`` (comma-separated, exported by
    ``run_kernels.sh --kernel``) restricts the list; by default both
    rows are attempted and the numba one skips when the package is
    absent, so a numpy-only box still produces a tagged numpy row.
    """
    env = os.environ.get("REPRO_BENCH_KERNELS")
    if env:
        return tuple(s.strip() for s in env.split(",") if s.strip())
    return ("numpy", "numba")


@pytest.mark.parametrize("backend", _bench_kernel_backends())
def test_bench_raycast_kernel_backend(benchmark, backend):
    """Per-backend raycast rows (same scene as test_bench_raycast_kernel,
    which stays unparametrized as the seed-gate row).  ``repro report
    --check`` gates each backend row against its own baseline row, and
    the environment provenance stamps which backend "auto" resolves to
    on the measuring box.  JIT warmup runs before timing: the bench
    measures the steady marcher, not compilation."""
    if backend not in available_backends():
        pytest.skip(f"kernel backend {backend!r} unavailable on this box")
    resolve_kernel(backend).warmup()
    cfg = RenderConfig(dt=1.0, kernel=backend)
    frags, stats = benchmark(
        raycast_brick,
        VOL.data,
        (0, 0, 0),
        (0, 0, 0),
        VOL.shape,
        VOL.shape,
        CAM,
        TF,
        cfg,
    )
    assert stats.n_samples > 0


@pytest.mark.parametrize("block_size", [1, 8, 64])
def test_bench_raycast_block_size(benchmark, block_size):
    """ERT-vs-throughput tradeoff of the blocked marcher's block length."""
    cfg = RenderConfig(dt=1.0, block_size=block_size)
    frags, stats = benchmark(
        raycast_brick,
        VOL.data,
        (0, 0, 0),
        (0, 0, 0),
        VOL.shape,
        VOL.shape,
        CAM,
        TF,
        cfg,
    )
    assert stats.n_samples > 0


@pytest.mark.parametrize("sparsity", sorted(_SPARSE))
@pytest.mark.parametrize(
    "accel,cell",
    [("off", 8), ("table", 8), ("grid", 4), ("grid", 8), ("grid", 16)],
)
def test_bench_raycast_macro_grid(benchmark, sparsity, accel, cell):
    """Whole-span empty-space skipping vs the corner-max table vs no
    acceleration, across volume sparsity and macro-cell size.  The
    acceptance gate: on the sparse volume, the grid rows must beat the
    table row by ≥1.5× mean."""
    data = _SPARSE[sparsity]
    cfg = RenderConfig(dt=1.0, accel=accel, macro_cell_size=cell)
    frags, stats = benchmark(
        raycast_brick,
        data,
        (0, 0, 0),
        (0, 0, 0),
        data.shape,
        data.shape,
        CAM,
        TF,
        cfg,
        accel_key=("bench-macro", sparsity),
        accel_cache=_ACCEL_CACHE,
    )
    assert stats.n_samples > 0


def test_bench_trilinear_sample(benchmark):
    pos = RNG.uniform(1, 31, (100_000, 3))
    out = benchmark(trilinear_sample, VOL.data, pos)
    assert out.shape == (100_000,)


def test_bench_ray_box_intersect(benchmark):
    o = RNG.uniform(-100, -50, (100_000, 3))
    d = RNG.normal(size=(100_000, 3))
    tn, tf_, hit = benchmark(
        ray_box_intersect, o, d, np.zeros(3), np.full(3, 32.0)
    )
    assert len(tn) == 100_000


def test_bench_counting_sort(benchmark):
    n = 200_000
    keys = RNG.integers(0, 128 * 128, n).astype(np.int32)
    pairs = make_fragments(
        keys, RNG.uniform(0, 100, n).astype(np.float32), RNG.uniform(0, 1, (n, 4)).astype(np.float32)
    )
    sr = benchmark(counting_sort_pairs, pairs, "pixel", 0, 128 * 128 - 1)
    assert int(sr.counts.sum()) == n


def test_bench_composite_fragments(benchmark):
    n = 200_000
    keys = RNG.integers(0, 128 * 128, n).astype(np.int32)
    a = RNG.uniform(0, 1, n).astype(np.float32)
    rgba = np.concatenate(
        [RNG.uniform(0, 1, (n, 3)).astype(np.float32) * a[:, None], a[:, None]], axis=1
    )
    frags = make_fragments(keys, RNG.uniform(0, 100, n).astype(np.float32), rgba)
    img = benchmark(composite_fragments, frags, 128 * 128)
    assert img.shape == (128 * 128, 4)


def test_bench_transfer_lookup(benchmark):
    values = RNG.uniform(0, 1, 500_000)
    out = benchmark(TF.lookup, values)
    assert out.shape == (500_000, 4)


def test_bench_tracer_overhead_disabled(benchmark):
    """The disabled tracer's cost on the map hot loop: each span() is one
    module-global read + an is-None test returning a shared no-op.  This
    is the <1% overhead contract of --trace-out being absent."""
    from repro.observability.tracer import disable_tracing, span

    disable_tracing()

    def mapped_with_spans():
        frags = None
        for ci in range(4):
            with span(f"map:chunk={ci}", cat="map", chunk=ci):
                frags, _stats = raycast_brick(
                    VOL.data,
                    (0, 0, 0),
                    (0, 0, 0),
                    VOL.shape,
                    VOL.shape,
                    CAM,
                    TF,
                    RenderConfig(dt=1.0),
                    accel_cache=_ACCEL_CACHE,
                )
        return frags

    frags = benchmark(mapped_with_spans)
    assert frags is not None
