"""TAB-DISK — §3 micro-costs the whole argument is calibrated against.

"Loading a 64³ block from disk takes approximately 20 ms … Transferring
that brick to the GPU takes less than 0.2 ms (less than 1% overhead) …
Transmitting final ray fragments from the GPU to the CPU … less than
2 ms."
"""

from repro.bench import format_table, micro_transfer_costs


def test_micro_transfer_costs(run_once):
    rows = run_once(micro_transfer_costs)
    print()
    print(format_table(rows, title="§3 micro-costs: paper claim vs model (ms)"))

    by_op = {r["operation"]: r for r in rows}
    disk = by_op["disk read 64^3 brick"]
    assert 15.0 <= disk["model_ms"] <= 25.0  # ≈ 20 ms
    pcie = by_op["PCIe H2D 64^3 brick"]
    assert pcie["model_ms"] < 0.2  # < 0.2 ms
    d2h = by_op["D2H 512^2 fragments"]
    assert d2h["model_ms"] < 2.0  # < 2 ms
    # Disk is ~2 orders of magnitude above PCIe — the paper's "<1% overhead".
    assert disk["model_ms"] / pcie["model_ms"] > 100
