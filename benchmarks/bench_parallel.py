#!/usr/bin/env python
"""Worker-count scaling sweep of the shared-memory pool executor.

Renders a multi-brick orbit end to end (real ray casting, real
partition/sort/reduce, real images) through
:class:`~repro.parallel.SharedMemoryPoolExecutor` at several pool sizes
and records sustained frame throughput into a JSON report
(default: ``BENCH_parallel.json`` at the repo root).

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py \
        [--out BENCH_parallel.json] [--workers 1,2,4,8] [--size 48] \
        [--gpus 8] [--frames 6] [--image 160]

The report records the machine's usable core count alongside every
row: speedup over the 1-worker pool is bounded by the cores actually
available (a 1-core container time-slices all workers and shows ~1×
regardless of pool size), so read ``speedup_vs_1_worker`` against
``cpu_count``.  The in-process executor is measured too, as the
no-pool baseline, and every pool render is checked bitwise against it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import MapReduceVolumeRenderer, RenderConfig, make_dataset  # noqa: E402
from repro.parallel import usable_cores  # noqa: E402
from repro.pipeline import render_rotation  # noqa: E402


def orbit_fps(renderer, frames, image, keep_images=False):
    """Sustained wall-clock FPS over one orbit (after a warmup frame)."""
    # Warmup: publishes the arena, spawns workers, fills accel caches.
    warm = render_rotation(
        renderer, n_frames=1, mode="exec", width=image, height=image
    )
    t0 = time.perf_counter()
    rot = render_rotation(
        renderer,
        n_frames=frames,
        mode="exec",
        width=image,
        height=image,
        keep_images=keep_images,
    )
    elapsed = time.perf_counter() - t0
    del warm
    return frames / elapsed, elapsed, rot


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(Path(__file__).resolve().parent.parent / "BENCH_parallel.json"))
    ap.add_argument("--workers", default="1,2,4,8",
                    help="comma-separated pool sizes to sweep")
    ap.add_argument("--size", type=int, default=48, help="cubic volume edge")
    ap.add_argument("--gpus", type=int, default=8,
                    help="simulated GPU count (drives brick count/placement)")
    ap.add_argument("--frames", type=int, default=6, help="orbit frames per row")
    ap.add_argument("--image", type=int, default=160, help="image edge (pixels)")
    args = ap.parse_args(argv)
    sweep = [int(w) for w in args.workers.split(",") if w]

    vol = make_dataset("skull", (args.size,) * 3)
    cfg = RenderConfig(dt=0.75)

    def make_renderer(**kw):
        return MapReduceVolumeRenderer(
            volume=vol, cluster=args.gpus, render_config=cfg, **kw
        )

    # Baseline: serial in-process executor (also the correctness oracle).
    base = make_renderer()
    base_fps, base_s, base_rot = orbit_fps(
        base, args.frames, args.image, keep_images=True
    )
    print(f"inprocess baseline: {base_fps:6.2f} FPS  ({base_s:.2f}s "
          f"for {args.frames} frames, {base_rot.results[0].n_bricks} bricks)")

    rows = []
    fps_by_workers = {}
    for w in sweep:
        with make_renderer(executor="pool", workers=w) as r:
            fps, elapsed, rot = orbit_fps(
                r, args.frames, args.image, keep_images=True
            )
        for img_pool, img_base in zip(rot.images, base_rot.images):
            assert np.array_equal(img_pool, img_base), "pool image diverged"
        fps_by_workers[w] = fps
        rows.append(
            {
                "workers": w,
                "frames": args.frames,
                "elapsed_s": round(elapsed, 4),
                "fps": round(fps, 3),
                "speedup_vs_inprocess": round(fps / base_fps, 3),
                "speedup_vs_1_worker": None,  # filled below
            }
        )
        print(f"pool workers={w}: {fps:6.2f} FPS  ({elapsed:.2f}s, "
              f"{fps / base_fps:.2f}x vs inprocess)")
    ref = fps_by_workers.get(1, rows[0]["fps"] if rows else None)
    for row in rows:
        if ref:
            row["speedup_vs_1_worker"] = round(row["fps"] / ref, 3)

    report = {
        "benchmark": "shared-memory pool executor scaling sweep",
        "cpu_count": usable_cores(),
        "note": (
            "speedup is bounded by cpu_count: on a single-core machine all "
            "pool sizes time-slice one core and stay near 1x"
        ),
        "params": {
            "dataset": "skull",
            "volume": [args.size] * 3,
            "gpus_simulated": args.gpus,
            "bricks": base_rot.results[0].n_bricks,
            "frames": args.frames,
            "image": [args.image, args.image],
            "dt": cfg.dt,
        },
        "inprocess_fps": round(base_fps, 3),
        "results": rows,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
