#!/usr/bin/env python
"""Scaling sweep of the shared-memory pool executor.

Renders a multi-brick orbit end to end (real ray casting, real
partition/sort/reduce, real images) through
:class:`~repro.parallel.SharedMemoryPoolExecutor` across a
``workers × reduce_mode × shuffle_mode × pipeline_depth`` grid and
records sustained frame throughput into a JSON report (default:
``BENCH_parallel.json`` at the repo root).

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py \
        [--out BENCH_parallel.json] [--workers 1,2,4,8] \
        [--reduce-modes parent,worker] [--shuffle-modes parent,mesh,tcp] \
        [--depths 1,2] [--size 48] [--gpus 8] [--frames 6] [--image 160]

The report records the machine's usable core count alongside every
row: speedup over the 1-worker pool is bounded by the cores actually
available (a 1-core container time-slices all workers and shows ~1×
regardless of pool size), so read ``speedup_vs_1_worker`` against
``cpu_count``.  ``reduce_mode="worker"`` moves Sort+Reduce onto the
owning workers (the paper's symmetric layout); ``shuffle_mode="mesh"``
exchanges fragment runs worker↔worker over direct shared-memory edge
rings so the parent never touches run bytes (each mesh row asserts
``parent_run_bytes == 0`` and records the per-frame mesh backpressure
counters); ``shuffle_mode="tcp"`` carries the same exchange over
socket streams (the multi-host plane — strictly slower than shm on one
box, measured to quantify exactly that cost, and asserting the same
``parent_run_bytes == 0`` structurally); ``pipeline_depth=2``
double-buffers frames so workers map+reduce frame *k+1* while the
parent stitches frame *k* — all of which need >1 real core to pay off.
The direct planes only materialize under worker-side reduce (with a
parent reduce every run's destination *is* the parent), so mesh/tcp ×
parent-reduce combinations are skipped as duplicates.  The in-process
executor is measured too, as the no-pool baseline, and every pool
render is checked bitwise against it.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import MapReduceVolumeRenderer, RenderConfig, make_dataset  # noqa: E402
from repro.bench.results import collect_environment  # noqa: E402
from repro.parallel import usable_cores  # noqa: E402
from repro.pipeline import render_rotation  # noqa: E402


def orbit_fps(renderer, frames, image, keep_images=False):
    """Sustained wall-clock FPS over one orbit (after a warmup frame)."""
    # Warmup: publishes the arena, spawns workers, fills accel caches.
    warm = render_rotation(
        renderer, n_frames=1, mode="exec", width=image, height=image
    )
    t0 = time.perf_counter()
    rot = render_rotation(
        renderer,
        n_frames=frames,
        mode="exec",
        width=image,
        height=image,
        keep_images=keep_images,
    )
    elapsed = time.perf_counter() - t0
    del warm
    return frames / elapsed, elapsed, rot


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(Path(__file__).resolve().parent.parent / "BENCH_parallel.json"))
    ap.add_argument("--workers", default="1,2,4,8",
                    help="comma-separated pool sizes to sweep")
    ap.add_argument("--reduce-modes", default="parent,worker",
                    help="comma-separated reduce placements to sweep")
    ap.add_argument("--shuffle-modes", default="parent,mesh",
                    help="comma-separated shuffle planes to sweep — "
                         "parent, mesh, and/or tcp (direct-plane rows "
                         "only materialize under worker-side reduce; "
                         "add tcp to quantify the socket plane's cost "
                         "vs shm on one box)")
    ap.add_argument("--depths", default="1,2",
                    help="comma-separated pipeline depths to sweep")
    ap.add_argument("--size", type=int, default=48, help="cubic volume edge")
    ap.add_argument("--gpus", type=int, default=8,
                    help="simulated GPU count (drives brick count/placement)")
    ap.add_argument("--frames", type=int, default=6, help="orbit frames per row")
    ap.add_argument("--image", type=int, default=160, help="image edge (pixels)")
    ap.add_argument("--fault-plan", default="crash@map:worker=0,frame=2",
                    help="fault plan for the recovery smoke row (see "
                         "repro.parallel.faults); 'none' skips the row")
    args = ap.parse_args(argv)
    sweep_workers = [int(w) for w in args.workers.split(",") if w]
    sweep_modes = [m.strip() for m in args.reduce_modes.split(",") if m.strip()]
    sweep_shuffles = [
        s.strip() for s in args.shuffle_modes.split(",") if s.strip()
    ]
    sweep_depths = [int(d) for d in args.depths.split(",") if d]
    for m in sweep_modes:
        if m not in ("parent", "worker"):
            ap.error(f"unknown reduce mode {m!r}")
    for s in sweep_shuffles:
        if s not in ("parent", "mesh", "tcp"):
            ap.error(f"unknown shuffle mode {s!r}")

    vol = make_dataset("skull", (args.size,) * 3)
    cfg = RenderConfig(dt=0.75)

    def make_renderer(**kw):
        return MapReduceVolumeRenderer(
            volume=vol, cluster=args.gpus, render_config=cfg, **kw
        )

    # Baseline: serial in-process executor (also the correctness oracle).
    base = make_renderer()
    base_fps, base_s, base_rot = orbit_fps(
        base, args.frames, args.image, keep_images=True
    )
    print(f"inprocess baseline: {base_fps:6.2f} FPS  ({base_s:.2f}s "
          f"for {args.frames} frames, {base_rot.results[0].n_bricks} bricks)")

    rows = []
    # (reduce, shuffle, depth) -> 1-worker fps, the scaling anchor
    fps_one_worker = {}
    for mode, shuffle, depth, w in itertools.product(
        sweep_modes, sweep_shuffles, sweep_depths, sweep_workers
    ):
        if shuffle in ("mesh", "tcp") and mode == "parent":
            # With a parent-side reduce every run's destination is the
            # parent; the direct plane never materializes and the row
            # would duplicate the parent-plane measurement.
            continue
        with make_renderer(
            executor="pool", workers=w, reduce_mode=mode,
            shuffle_mode=shuffle, pipeline_depth=depth,
        ) as r:
            fps, elapsed, rot = orbit_fps(
                r, args.frames, args.image, keep_images=True
            )
        assert len(rot.images) == len(base_rot.images)
        for img_pool, img_base in zip(rot.images, base_rot.images):
            assert np.array_equal(img_pool, img_base), "pool image diverged"
        if w == 1:
            fps_one_worker[(mode, shuffle, depth)] = fps
        ring = rot.results[-1].stats.ring or {}
        if shuffle == "mesh" and mode == "worker":
            # The control-plane guarantee the mesh exists for: the
            # parent never touches a run byte — except records too big
            # for their edge, which take the *designed* queue-fallback
            # escape hatch (counted); only fallback-free frames must be
            # parent-clean.
            if ring.get("queue_fallbacks", 0) == 0:
                assert ring.get("parent_run_bytes") == 0, (
                    "mesh shuffle leaked run bytes through the parent "
                    "without a queue fallback: "
                    f"{ring.get('parent_run_bytes')}"
                )
        elif shuffle == "tcp" and mode == "worker":
            # Streams have no capacity cliff and therefore no fallback
            # escape hatch: the parent-clean guarantee is unconditional.
            assert ring.get("queue_fallbacks", 0) == 0, (
                "tcp shuffle reported a queue fallback, which the plane "
                "does not have"
            )
            assert ring.get("parent_run_bytes") == 0, (
                "tcp shuffle leaked run bytes through the parent: "
                f"{ring.get('parent_run_bytes')}"
            )
        rows.append(
            {
                "workers": w,
                "reduce_mode": mode,
                "shuffle_mode": ring.get("shuffle_mode", shuffle),
                "pipeline_depth": depth,
                "frames": args.frames,
                "elapsed_s": round(elapsed, 4),
                "fps": round(fps, 3),
                "speedup_vs_inprocess": round(fps / base_fps, 3),
                "speedup_vs_1_worker": None,  # filled below
                "ring_stall_s_last_frame": round(
                    ring.get("stall_seconds", 0.0), 6
                ),
                "ring_high_water_bytes": ring.get("high_water_bytes", 0),
                "queue_fallbacks_last_frame": ring.get("queue_fallbacks", 0),
                "parent_run_bytes_last_frame": ring.get("parent_run_bytes", 0),
                "mesh_bytes_total": ring.get("mesh_bytes_total", 0),
                "wire_bytes_total": ring.get("wire_bytes_total", 0),
            }
        )
        print(f"pool workers={w} reduce={mode} shuffle={shuffle} "
              f"depth={depth}: {fps:6.2f} FPS  ({elapsed:.2f}s, "
              f"{fps / base_fps:.2f}x vs inprocess)")
    for row in rows:
        ref = fps_one_worker.get(
            (row["reduce_mode"], row["shuffle_mode"], row["pipeline_depth"])
        )
        if ref:
            row["speedup_vs_1_worker"] = round(row["fps"] / ref, 3)

    # Recovery smoke row: one orbit with a deterministically injected
    # worker crash.  Not a scaling measurement — it records what a
    # failure *costs* (respawn latency, frames re-executed, FPS under
    # recovery) and re-asserts the recovered images stay bitwise equal
    # to the serial baseline.
    fault_smoke = None
    if args.fault_plan and args.fault_plan.lower() != "none":
        f_workers = min(2, max(sweep_workers)) if sweep_workers else 2
        f_mode = "worker" if "worker" in sweep_modes else sweep_modes[0]
        f_shuffle = (
            "mesh"
            if "mesh" in sweep_shuffles and f_mode == "worker"
            else "parent"
        )
        with make_renderer(
            executor="pool", workers=f_workers, reduce_mode=f_mode,
            shuffle_mode=f_shuffle, fault_plan=args.fault_plan,
        ) as r:
            fps, elapsed, rot = orbit_fps(
                r, args.frames, args.image, keep_images=True
            )
            snap = r._exec_instance._supervisor.snapshot()
        for img_pool, img_base in zip(rot.images, base_rot.images):
            assert np.array_equal(img_pool, img_base), (
                "recovered pool image diverged from the serial baseline"
            )
        assert snap["respawns"] >= 1, (
            f"fault plan {args.fault_plan!r} never fired during the orbit"
        )
        fault_smoke = {
            "fault_plan": args.fault_plan,
            "workers": f_workers,
            "reduce_mode": f_mode,
            "shuffle_mode": f_shuffle,
            "frames": args.frames,
            "fps_under_recovery": round(fps, 3),
            "failures": snap["failures"],
            "respawns": snap["respawns"],
            "respawn_latency_s": round(snap["respawn_seconds"], 4),
            "frames_reexecuted": snap["frames_reexecuted"],
            "retries_by_stage": snap["retries_by_stage"],
            "degraded_events": snap["degraded_events"],
            "serial_fallback": snap["serial_fallback"],
        }
        print(f"fault smoke [{args.fault_plan}] workers={f_workers} "
              f"reduce={f_mode} shuffle={f_shuffle}: {fps:6.2f} FPS, "
              f"{snap['respawns']} respawn(s) in "
              f"{snap['respawn_seconds'] * 1e3:.1f} ms, "
              f"{snap['frames_reexecuted']} frame(s) re-executed")

    report = {
        "benchmark": "shared-memory pool executor scaling sweep "
                     "(workers x reduce_mode x shuffle_mode x pipeline_depth)",
        "cpu_count": usable_cores(),
        "note": (
            "speedup is bounded by cpu_count: on a single-core machine all "
            "pool sizes time-slice one core and stay near 1x; worker-side "
            "reduce, the direct shuffle planes, and pipeline_depth>1 "
            "likewise need real cores to pay off.  mesh and tcp rows carry "
            "parent_run_bytes_last_frame=0 by construction (runs travel "
            "worker-to-worker edge rings or socket streams, never the "
            "parent); direct-plane x parent-reduce combos are skipped as "
            "duplicates of the parent plane.  tcp rows quantify the socket "
            "plane's cost vs shm on one box (wire_bytes_total counts "
            "headers + payload on the wire)"
        ),
        "params": {
            "dataset": "skull",
            "volume": [args.size] * 3,
            "gpus_simulated": args.gpus,
            "bricks": base_rot.results[0].n_bricks,
            "frames": args.frames,
            "image": [args.image, args.image],
            "dt": cfg.dt,
        },
        "inprocess_fps": round(base_fps, 3),
        "results": rows,
        "fault_smoke": fault_smoke,
        "environment": collect_environment(),
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
