#!/usr/bin/env python
"""Scaling sweep of the shared-memory pool executor.

Renders a multi-brick orbit end to end (real ray casting, real
partition/sort/reduce, real images) through
:class:`~repro.parallel.SharedMemoryPoolExecutor` across a
``workers × reduce_mode × pipeline_depth`` grid and records sustained
frame throughput into a JSON report (default: ``BENCH_parallel.json``
at the repo root).

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py \
        [--out BENCH_parallel.json] [--workers 1,2,4,8] \
        [--reduce-modes parent,worker] [--depths 1,2] [--size 48] \
        [--gpus 8] [--frames 6] [--image 160]

The report records the machine's usable core count alongside every
row: speedup over the 1-worker pool is bounded by the cores actually
available (a 1-core container time-slices all workers and shows ~1×
regardless of pool size), so read ``speedup_vs_1_worker`` against
``cpu_count``.  ``reduce_mode="worker"`` moves Sort+Reduce onto the
owning workers (the paper's symmetric layout); ``pipeline_depth=2``
double-buffers frames so workers map+reduce frame *k+1* while the
parent stitches frame *k* — both need >1 real core to pay off.  The
in-process executor is measured too, as the no-pool baseline, and
every pool render is checked bitwise against it.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import MapReduceVolumeRenderer, RenderConfig, make_dataset  # noqa: E402
from repro.parallel import usable_cores  # noqa: E402
from repro.pipeline import render_rotation  # noqa: E402


def orbit_fps(renderer, frames, image, keep_images=False):
    """Sustained wall-clock FPS over one orbit (after a warmup frame)."""
    # Warmup: publishes the arena, spawns workers, fills accel caches.
    warm = render_rotation(
        renderer, n_frames=1, mode="exec", width=image, height=image
    )
    t0 = time.perf_counter()
    rot = render_rotation(
        renderer,
        n_frames=frames,
        mode="exec",
        width=image,
        height=image,
        keep_images=keep_images,
    )
    elapsed = time.perf_counter() - t0
    del warm
    return frames / elapsed, elapsed, rot


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(Path(__file__).resolve().parent.parent / "BENCH_parallel.json"))
    ap.add_argument("--workers", default="1,2,4,8",
                    help="comma-separated pool sizes to sweep")
    ap.add_argument("--reduce-modes", default="parent,worker",
                    help="comma-separated reduce placements to sweep")
    ap.add_argument("--depths", default="1,2",
                    help="comma-separated pipeline depths to sweep")
    ap.add_argument("--size", type=int, default=48, help="cubic volume edge")
    ap.add_argument("--gpus", type=int, default=8,
                    help="simulated GPU count (drives brick count/placement)")
    ap.add_argument("--frames", type=int, default=6, help="orbit frames per row")
    ap.add_argument("--image", type=int, default=160, help="image edge (pixels)")
    args = ap.parse_args(argv)
    sweep_workers = [int(w) for w in args.workers.split(",") if w]
    sweep_modes = [m.strip() for m in args.reduce_modes.split(",") if m.strip()]
    sweep_depths = [int(d) for d in args.depths.split(",") if d]
    for m in sweep_modes:
        if m not in ("parent", "worker"):
            ap.error(f"unknown reduce mode {m!r}")

    vol = make_dataset("skull", (args.size,) * 3)
    cfg = RenderConfig(dt=0.75)

    def make_renderer(**kw):
        return MapReduceVolumeRenderer(
            volume=vol, cluster=args.gpus, render_config=cfg, **kw
        )

    # Baseline: serial in-process executor (also the correctness oracle).
    base = make_renderer()
    base_fps, base_s, base_rot = orbit_fps(
        base, args.frames, args.image, keep_images=True
    )
    print(f"inprocess baseline: {base_fps:6.2f} FPS  ({base_s:.2f}s "
          f"for {args.frames} frames, {base_rot.results[0].n_bricks} bricks)")

    rows = []
    fps_one_worker = {}  # (mode, depth) -> 1-worker fps, the scaling anchor
    for mode, depth, w in itertools.product(
        sweep_modes, sweep_depths, sweep_workers
    ):
        with make_renderer(
            executor="pool", workers=w, reduce_mode=mode, pipeline_depth=depth
        ) as r:
            fps, elapsed, rot = orbit_fps(
                r, args.frames, args.image, keep_images=True
            )
        assert len(rot.images) == len(base_rot.images)
        for img_pool, img_base in zip(rot.images, base_rot.images):
            assert np.array_equal(img_pool, img_base), "pool image diverged"
        if w == 1:
            fps_one_worker[(mode, depth)] = fps
        ring = rot.results[-1].stats.ring or {}
        rows.append(
            {
                "workers": w,
                "reduce_mode": mode,
                "pipeline_depth": depth,
                "frames": args.frames,
                "elapsed_s": round(elapsed, 4),
                "fps": round(fps, 3),
                "speedup_vs_inprocess": round(fps / base_fps, 3),
                "speedup_vs_1_worker": None,  # filled below
                "ring_stall_s_last_frame": round(
                    ring.get("stall_seconds", 0.0), 6
                ),
                "ring_high_water_bytes": ring.get("high_water_bytes", 0),
            }
        )
        print(f"pool workers={w} reduce={mode} depth={depth}: "
              f"{fps:6.2f} FPS  ({elapsed:.2f}s, "
              f"{fps / base_fps:.2f}x vs inprocess)")
    for row in rows:
        ref = fps_one_worker.get((row["reduce_mode"], row["pipeline_depth"]))
        if ref:
            row["speedup_vs_1_worker"] = round(row["fps"] / ref, 3)

    report = {
        "benchmark": "shared-memory pool executor scaling sweep "
                     "(workers x reduce_mode x pipeline_depth)",
        "cpu_count": usable_cores(),
        "note": (
            "speedup is bounded by cpu_count: on a single-core machine all "
            "pool sizes time-slice one core and stay near 1x; worker-side "
            "reduce and pipeline_depth>1 likewise need real cores to pay off"
        ),
        "params": {
            "dataset": "skull",
            "volume": [args.size] * 3,
            "gpus_simulated": args.gpus,
            "bricks": base_rot.results[0].n_bricks,
            "frames": args.frames,
            "image": [args.image, args.image],
            "dt": cfg.dt,
        },
        "inprocess_fps": round(base_fps, 3),
        "results": rows,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
