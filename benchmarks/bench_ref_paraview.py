"""REF — the paper's footnote-1 comparison against ParaView.

"Moreland et al. show that ParaView can render 346M VPS using 512
processes on 256 nodes.  Using 16 GPUs on 4 nodes, we achieve more than
double this rate."
"""

from repro.bench import format_table, paraview_reference


def test_paraview_footnote(run_once):
    rows = run_once(paraview_reference)
    print()
    print(format_table(rows, title="Footnote 1: VPS comparison (millions)"))

    ours = next(r for r in rows if "MapReduce" in r["system"])
    model = next(r for r in rows if "model" in r["system"])
    # The paper's claim: our 16 GPUs beat 512 CPU processes by >2x.
    assert ours["vs_paraview"] > 2.0, ours
    # The CPU-cluster model reproduces the published figure within 2x.
    assert 0.5 <= model["vs_paraview"] <= 2.0, model
