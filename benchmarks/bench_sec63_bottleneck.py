"""SEC63 — the paper's §6.3 bottleneck analysis.

Paper numbers for the 1024³ volume: at 8 GPUs ~515 ms communication vs
~503 ms computation (roughly balanced); at 16 GPUs communication rises
while computation falls to ~97 ms — "fitting parallel volume rendering
into a multi-GPU MapReduce model severely reduces computation as a
bottleneck."  We check the decomposition's shape: compute shrinks ~n,
communication does not, and the crossover falls in the 4–16 GPU band.
"""

from repro.bench import format_table, sec63_bottleneck
from repro.perfmodel import CommComputeSplit, find_crossover


def test_sec63_compute_vs_communication(run_once):
    rows = run_once(sec63_bottleneck)
    print()
    print(
        format_table(
            rows, title="§6.3: compute vs communication, 1024^3 volume (seconds)"
        )
    )

    by_n = {r["n_gpus"]: r for r in rows}
    # Computation scales down with GPU count (not perfectly — brick depth
    # imbalance costs some efficiency, as on the real machine)…
    assert by_n[8]["compute_s"] < by_n[2]["compute_s"] / 2.2
    assert by_n[32]["compute_s"] < by_n[8]["compute_s"] / 2.2
    # …communication does not (it is roughly flat or rising).
    assert by_n[32]["communication_s"] > 0.5 * by_n[8]["communication_s"]

    # The crossover (communication overtakes computation) falls at 4–16.
    splits = [
        CommComputeSplit(r["n_gpus"], r["compute_s"], r["communication_s"])
        for r in rows
    ]
    cross = find_crossover(splits)
    assert cross is not None and 4 <= cross <= 16, cross

    # At 8 GPUs the two are within a factor ~3 of balanced (paper:
    # 515 ms vs 503 ms — nearly equal).
    ratio8 = by_n[8]["comm_over_compute"]
    assert 1 / 3 <= ratio8 <= 3, ratio8

    # Compute at 16 GPUs is no longer the bottleneck (the paper's point).
    assert not by_n[16]["compute_bound"]
