"""Shared benchmark helpers.

Run with::

    pytest benchmarks/ --benchmark-only

Each bench regenerates one paper artifact (figure/table), prints it as a
table, and asserts the paper's *qualitative shape* (who wins, where the
crossover falls) — absolute milliseconds are simulated, not measured on
2010 hardware.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Benchmark a grid-level experiment with a single round.

    Figure grids run dozens of simulated frames; default calibration
    would repeat them hundreds of times for no statistical benefit.
    """

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
