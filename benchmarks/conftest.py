"""Shared benchmark helpers.

Run with::

    pytest benchmarks/ --benchmark-only

Each bench regenerates one paper artifact (figure/table), prints it as a
table, and asserts the paper's *qualitative shape* (who wins, where the
crossover falls) — absolute milliseconds are simulated, not measured on
2010 hardware.
"""

import pytest


@pytest.hookimpl(optionalhook=True)
def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Stamp environment provenance into every saved benchmark JSON.

    ``optionalhook``: tier-1 CI collects this conftest without
    pytest-benchmark installed, where the hook spec does not exist.
    """
    from repro.bench.results import collect_environment

    output_json["environment"] = collect_environment()


@pytest.fixture
def run_once(benchmark):
    """Benchmark a grid-level experiment with a single round.

    Figure grids run dozens of simulated frames; default calibration
    would repeat them hundreds of times for no statistical benefit.
    """

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
