#!/usr/bin/env bash
# Kernel micro-benchmark regression check + parallel-executor scaling sweep.
#
# Usage:
#   benchmarks/run_kernels.sh [--kernel numpy,numba] [output.json] [parallel_output.json]
#
# --kernel restricts the per-backend raycast rows
# (test_bench_raycast_kernel_backend[*]) to the listed march-kernel
# backends via REPRO_BENCH_KERNELS; without it both rows are attempted
# and the numba row skips when the package is absent.
#
# Runs the functional-kernel micro-benchmarks into a pytest-benchmark
# JSON (default: BENCH_kernels.json at the repo root) — including the
# macro-grid empty-space raycast bench (accel off/table/grid × macro
# -cell size × volume sparsity; the grid rows must beat the table row by
# >=1.5x mean on the sparse volume) — then the shared-memory pool
# executor's scaling sweep (1/2/4/8 workers × parent/worker reduce ×
# pipeline depth 1/2 over a multi-brick orbit) into BENCH_parallel.json.
# Compare kernels against the committed baseline with e.g.:
#   python - <<'EOF'
#   import json
#   base = {b["name"]: b["stats"]["mean"] for b in json.load(open("BENCH_kernels.json"))["benchmarks"]}
#   new = {b["name"]: b["stats"]["mean"] for b in json.load(open("/tmp/new.json"))["benchmarks"]}
#   for k in sorted(base):
#       if k in new:
#           print(f"{k}: {base[k]*1e3:8.2f} ms -> {new[k]*1e3:8.2f} ms  ({base[k]/new[k]:.2f}x)")
#   EOF
# set -e makes any bench-script crash abort the run; the ERR trap makes
# the nonzero exit loud so CI (and humans) never mistake a partial run
# for a completed one.
set -euo pipefail
trap 'echo "run_kernels.sh: FAILED at line $LINENO (exit $?)" >&2' ERR
cd "$(dirname "$0")/.."
KERNELS=""
ARGS=()
while [[ $# -gt 0 ]]; do
    case "$1" in
        --kernel) KERNELS="$2"; shift 2;;
        --kernel=*) KERNELS="${1#*=}"; shift;;
        *) ARGS+=("$1"); shift;;
    esac
done
if [[ -n "$KERNELS" ]]; then
    export REPRO_BENCH_KERNELS="$KERNELS"
fi
OUT="${ARGS[0]:-BENCH_kernels.json}"
PAR_OUT="${ARGS[1]:-BENCH_parallel.json}"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest \
    benchmarks/bench_kernels.py --benchmark-only \
    --benchmark-json="$OUT" -q
echo "wrote $OUT"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python \
    benchmarks/bench_parallel.py --out "$PAR_OUT" --workers 1,2,4,8 \
    --reduce-modes parent,worker --shuffle-modes parent,mesh --depths 1,2
echo "run_kernels.sh: OK"
