#!/usr/bin/env python
"""Speed-of-light and bottleneck analysis (§6.3).

Prints the per-stage lower bounds for a 1024³ render, the simulator's
achieved stage times, and how close the pipeline comes to its
speed-of-light — the paper's argument that "the computation from ray
casting is no longer a limiting factor in rendering".

Run:  python examples/bottleneck_analysis.py
"""

from repro.bench import figure_camera
from repro.core import JobConfig, RoundRobinPartitioner, SimClusterExecutor
from repro.perfmodel import compute_vs_communication, find_crossover, speed_of_light
from repro.pipeline import build_workload
from repro.render import default_tf
from repro.render.fragments import FRAGMENT_NBYTES
from repro.sim import accelerator_cluster
from repro.volume import bricks_for_gpu_count, grid_occupancy
from repro.volume.datasets import skull_field

SIZE = 1024
DT = 1.0


def workload_for(n_gpus: int):
    shape = (SIZE,) * 3
    cam = figure_camera(shape)
    grid = bricks_for_gpu_count(shape, n_gpus, 2)
    tf = default_tf()
    occ = grid_occupancy(grid, tf.opacity_threshold_value(), field=skull_field)
    return build_workload(grid, cam, DT, occ, RoundRobinPartitioner(n_gpus), n_gpus)


def main() -> None:
    print(f"=== {SIZE}^3 skull, 512^2 image, bricks = 2 x GPUs ===\n")

    splits = []
    for n in (2, 4, 8, 16, 32):
        spec = accelerator_cluster(n)
        works = workload_for(n)
        peaks = speed_of_light(spec, works, FRAGMENT_NBYTES)
        outcome, _ = SimClusterExecutor(spec, JobConfig()).execute(
            works, pair_nbytes=FRAGMENT_NBYTES
        )
        split = compute_vs_communication(spec, works, FRAGMENT_NBYTES)
        splits.append(split)
        achieved = outcome.breakdown
        print(f"{n:3d} GPUs:")
        print(f"    speed of light: map_compute={peaks.map_compute:.3f}s "
              f"upload={peaks.upload:.3f}s network={peaks.network:.3f}s "
              f"sort={peaks.sort:.4f}s reduce={peaks.reduce:.4f}s")
        print(f"    achieved:       map={achieved.map:.3f}s "
              f"partition+io={achieved.partition_io:.3f}s "
              f"sort={achieved.sort:.4f}s reduce={achieved.reduce:.4f}s "
              f"total={achieved.total:.3f}s")
        print(f"    map efficiency vs light: "
              f"{peaks.map_compute / max(achieved.map, 1e-12) * 100:.0f}%")
        print(f"    compute {split.compute_seconds:.3f}s vs "
              f"communication {split.communication_seconds:.3f}s -> "
              f"{'compute' if split.compute_bound else 'COMMUNICATION'}-bound")
        print()

    cross = find_crossover(splits)
    print(f"communication overtakes computation at {cross} GPUs "
          "(paper: between 8 and 16)")
    print("=> computation is no longer the bottleneck — the paper's §6.3 claim")


if __name__ == "__main__":
    main()
