#!/usr/bin/env python
"""Out-of-core rendering: volumes bigger than any single GPU.

The paper's key capability over Mars-style GPU MapReduce: streaming
bricks through the GPUs instead of requiring the dataset in core.  This
example

1. writes a volume to the bricked ``.bvol`` container,
2. shows the Mars-like single-GPU baseline *refusing* a 1024³ dataset,
3. streams the bricks from disk through the MapReduce pipeline (the
   image is identical to the in-core render),
4. prices the same out-of-core frame on the simulated cluster, with and
   without the disk in the stream.

Run:  python examples/out_of_core.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    BvolReader,
    MapReduceVolumeRenderer,
    RenderConfig,
    fire_tf,
    make_dataset,
    orbit_camera,
    write_bvol,
    write_ppm,
)
from repro.baselines import InCoreOnlyError, SingleGpuBaseline
from repro.core import Chunk, JobConfig
from repro.render import max_abs_diff
from repro.volume.datasets import supernova_field


def main(out_dir: str = "quickstart_output") -> None:
    out = Path(out_dir)
    out.mkdir(exist_ok=True)
    tf = fire_tf()
    config = RenderConfig(dt=0.6, ert_alpha=1.0)

    # --- 1. brick a volume onto disk ------------------------------------
    volume = make_dataset("supernova", (40, 40, 40))
    camera = orbit_camera(volume.shape, width=192, height=192)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "supernova.bvol"
        grid = write_bvol(path, volume, brick_size=20)
        reader = BvolReader(path)
        print(f"wrote {path.name}: {len(grid)} bricks, "
              f"{reader.file_size() / 1e6:.1f} MB on disk")

        # --- 2. the Mars-like baseline cannot touch big data -------------
        baseline = SingleGpuBaseline(tf=tf)
        try:
            baseline.check_fits(1024**3 * 4)  # a 1024^3 float volume
        except InCoreOnlyError as e:
            print(f"Mars-style system: {e}")

        # --- 3. stream bricks from disk through the pipeline --------------
        renderer = MapReduceVolumeRenderer(
            volume=None,
            volume_shape=reader.shape,
            cluster=4,
            tf=tf,
            render_config=config,
        )
        spec = renderer._spec(camera)
        chunks = [
            Chunk(
                id=b.id,
                nbytes=b.nbytes,
                loader=lambda i=b.id: reader.read_brick(i),
                on_disk=True,
                meta=b,
            )
            for b in reader.grid
        ]
        from repro.core import InProcessExecutor
        from repro.render import stitch_pixels

        result = InProcessExecutor().execute(
            spec, chunks, [c.id % 4 for c in chunks]
        )
        parts = [(k, v) for k, v in result.outputs if len(k)]
        streamed = stitch_pixels(parts, camera.width, camera.height)
        print(f"streamed {reader.bytes_read / 1e6:.1f} MB of bricks from disk")

        # Identical to the in-core render.
        in_core = MapReduceVolumeRenderer(
            volume=volume, cluster=4, tf=tf, render_config=config
        ).render(camera, grid=reader.grid)
        print(f"out-of-core vs in-core image diff: "
              f"{max_abs_diff(streamed, in_core.image):.2e} (expect 0)")
        write_ppm(out / "supernova_out_of_core.ppm", streamed)

    # --- 4. what does out-of-core cost at figure scale? -------------------
    for include_disk, label in [(False, "bricks in host RAM"), (True, "bricks on disk")]:
        sim = MapReduceVolumeRenderer(
            volume=None,
            volume_shape=(512, 512, 512),
            field=supernova_field,
            cluster=8,
            tf=tf,
            render_config=RenderConfig(dt=1.0),
            job_config=JobConfig(include_disk=include_disk),
        ).render(
            orbit_camera((512,) * 3, width=512, height=512, distance_factor=2.2),
            mode="sim",
            out_of_core=True,
        )
        print(f"simulated 512^3 frame on 8 GPUs, {label}: {sim.runtime:.3f}s")


if __name__ == "__main__":
    main(*sys.argv[1:2])
