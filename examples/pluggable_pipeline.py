#!/usr/bin/env python
"""Pluggability (§6.1): swap the volume-sampling and routing stages.

"It is straightforward to change either the volume-sampling technique or
the compositing technique, without changing both."  This example swaps:

* the **Mapper**: ray-cast compositing → maximum-intensity projection
  (MIP) — only the map phase and the reduce fold change, the partition,
  sort, and shuffle machinery are untouched;
* the **Partitioner**: per-pixel round-robin → image tiles — the image
  is bit-identical, only fragment routing changes.

Run:  python examples/pluggable_pipeline.py [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro import (
    MapReduceVolumeRenderer,
    RenderConfig,
    default_tf,
    make_dataset,
    orbit_camera,
    write_ppm,
)
from repro.core import (
    Chunk,
    InProcessExecutor,
    KVSpec,
    MapReduceSpec,
    RoundRobinPartitioner,
    TiledPartitioner,
)
from repro.pipeline import MIP_DTYPE, MaxIntensityMapper, MaxReducer
from repro.render import max_abs_diff
from repro.volume import BrickGrid


def mip_render(volume, camera, n_gpus=4):
    """A complete MIP pipeline: only mapper + reducer differ from the
    compositing renderer."""
    grid = BrickGrid(volume.shape, 16, ghost=1)
    spec = MapReduceSpec(
        mapper=MaxIntensityMapper(camera, volume.shape, dt=0.5),
        reducer=MaxReducer(),
        partitioner=RoundRobinPartitioner(n_gpus),
        kv=KVSpec(MIP_DTYPE, key_field="pixel"),
        max_key=camera.pixel_count - 1,
    )
    chunks = [
        Chunk(id=b.id, nbytes=b.nbytes, data=grid.extract(volume, b), meta=b)
        for b in grid
    ]
    result = InProcessExecutor().execute(spec, chunks)
    image = np.zeros(camera.pixel_count, dtype=np.float32)
    for keys, values in result.outputs:
        image[keys] = values
    return image.reshape(camera.height, camera.width)


def main(out_dir: str = "quickstart_output") -> None:
    out = Path(out_dir)
    out.mkdir(exist_ok=True)
    volume = make_dataset("supernova", (32, 32, 32))
    camera = orbit_camera(volume.shape, width=192, height=192)

    # --- swap the sampling technique: MIP through the same library -------
    mip = mip_render(volume, camera)
    print(f"MIP render: max value {mip.max():.3f}, "
          f"covered pixels {(mip > 0).mean() * 100:.1f}%")
    # MIP ground truth: per-pixel max is order-independent, so compare
    # against a single-brick run.
    single = mip_render(volume, camera, n_gpus=1)
    print(f"MIP distributed vs single-brick diff: "
          f"{np.abs(mip - single).max():.2e} (expect ~0)")
    rgba = np.stack([mip, mip, mip, (mip > 0).astype(np.float32)], axis=-1)
    write_ppm(out / "supernova_mip.ppm", rgba)

    # --- swap the routing: tiled partitioner, identical image -------------
    cfg = RenderConfig(dt=0.6, ert_alpha=1.0)
    base = MapReduceVolumeRenderer(
        volume=volume, cluster=4, tf=default_tf(), render_config=cfg
    ).render(camera)
    tiled = MapReduceVolumeRenderer(
        volume=volume,
        cluster=4,
        tf=default_tf(),
        render_config=cfg,
        partitioner_factory=lambda n: TiledPartitioner(
            n, camera.width, camera.height, tile=32
        ),
    ).render(camera)
    print(f"tiled vs round-robin image diff: "
          f"{max_abs_diff(tiled.image, base.image):.2e} (expect 0)")
    write_ppm(out / "supernova_composited.ppm", base.image)
    print(f"wrote images to {out}/")


if __name__ == "__main__":
    main(*sys.argv[1:2])
