#!/usr/bin/env python
"""Quickstart: render a volume with the MapReduce pipeline.

Renders the procedural Skull dataset on a simulated 4-GPU cluster,
verifies the distributed image against the single-pass reference
renderer, and writes both to PPM files.

Run:  python examples/quickstart.py [output_dir]
"""

import sys
import time
from pathlib import Path

from repro import (
    MapReduceVolumeRenderer,
    RenderConfig,
    bone_tf,
    make_dataset,
    orbit_camera,
    render_reference,
    write_ppm,
)
from repro.render import image_stats, psnr


def main(out_dir: str = "quickstart_output") -> None:
    out = Path(out_dir)
    out.mkdir(exist_ok=True)

    # 1. A volume and a view.  The same procedural field scales to 1024^3;
    #    48^3 keeps this demo instant.
    volume = make_dataset("skull", (48, 48, 48))
    camera = orbit_camera(
        volume.shape, azimuth_deg=30, elevation_deg=20, width=256, height=256
    )
    tf = bone_tf()
    config = RenderConfig(dt=0.5)

    # 2. The full MapReduce pipeline: bricks -> ray-cast mappers ->
    #    pixel-keyed fragments -> round-robin partition -> counting sort
    #    -> depth compositing reducers -> stitched image.
    renderer = MapReduceVolumeRenderer(
        volume=volume, cluster=4, tf=tf, render_config=config
    )
    t0 = time.time()
    result = renderer.render(camera, mode="both", bricks_per_gpu=2)
    wall = time.time() - t0

    # 3. Ground truth from the single-pass reference renderer.
    reference = render_reference(volume, camera, tf, config)

    print(f"rendered {volume.resolution_label()} skull on {result.n_gpus} GPUs "
          f"({result.n_bricks} bricks) in {wall:.2f}s wall")
    print(f"image stats: {image_stats(result.image)}")
    print(f"PSNR vs reference: {psnr(result.image, reference.image):.1f} dB")
    sb = result.outcome.breakdown
    print(
        "simulated cluster stages: "
        f"map={sb.map * 1e3:.1f}ms partition+io={sb.partition_io * 1e3:.1f}ms "
        f"sort={sb.sort * 1e3:.1f}ms reduce={sb.reduce * 1e3:.1f}ms "
        f"(total {sb.total * 1e3:.1f}ms)"
    )

    write_ppm(out / "skull_mapreduce.ppm", result.image, background=(0, 0, 0))
    write_ppm(out / "skull_reference.ppm", reference.image, background=(0, 0, 0))
    print(f"wrote {out / 'skull_mapreduce.ppm'} and {out / 'skull_reference.ppm'}")


if __name__ == "__main__":
    main(*sys.argv[1:2])
