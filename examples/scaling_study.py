#!/usr/bin/env python
"""Scaling study: regenerate the paper's evaluation at your terminal.

Sweeps volume size × GPU count on the simulated Accelerator Cluster and
prints the paper's three figures of merit (runtime breakdown, FPS, VPS),
the per-size sweet spots, and the §6.3 compute-vs-communication split.

Run:  python examples/scaling_study.py [--quick]
"""

import sys

from repro.bench import (
    fig3_breakdown,
    fig4_scaling,
    format_table,
    sec63_bottleneck,
)
from repro.perfmodel import find_sweet_spot


def main(quick: bool = False) -> None:
    sizes = (128, 256) if quick else (128, 256, 512, 1024)
    gpus = (1, 2, 8, 32) if quick else (1, 2, 4, 8, 16, 32)

    rows = fig3_breakdown(sizes=sizes, gpu_counts=gpus)
    print(format_table(rows, title="Runtime breakdown by stage (Fig. 3)"))
    print()

    # Sweet spot per volume (the paper's 'best configuration' discussion).
    for size in sizes:
        totals = {
            r["n_gpus"]: r["total_s"] for r in rows if r["volume"] == f"{size}^3"
        }
        best = find_sweet_spot(totals)
        print(f"{size}^3: best configuration = {best} GPUs "
              f"({totals[best]:.3f}s per frame)")
    print()

    scaling = fig4_scaling(sizes=sizes, gpu_counts=gpus)
    print(format_table(
        scaling,
        ["volume", "n_gpus", "fps", "mvps", "speedup", "efficiency"],
        title="Framerate and voxel throughput (Fig. 4)",
    ))
    print()

    if not quick:
        print(format_table(
            sec63_bottleneck(),
            title="Compute vs communication for 1024^3 (§6.3)",
        ))
        print()
        print("Note: computation stops being the bottleneck once "
              "communication crosses it — the paper's central claim.")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
