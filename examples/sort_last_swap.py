#!/usr/bin/env python
"""Sort-last (swap-compositing) rendering — the §6.1 alternative.

The paper chose direct-send (sort-first) compositing but argues the
library's modularity makes swap compositing a partitioner change:
"Every node would consume all generated ray fragments to create its
partial image.  The reduction phase would then be changed to perform
swap compositing."

This example renders the same frame three ways and verifies all agree:

1. single-pass reference renderer,
2. the direct-send MapReduce pipeline (sort-first),
3. sort-last: view-ordered slab assignment, local compositing per GPU,
   binary-swap merge of partial images,

then prices both distributed schemes on the simulated cluster.

Run:  python examples/sort_last_swap.py [output_dir]
"""

import sys
from pathlib import Path

from repro import (
    MapReduceVolumeRenderer,
    RenderConfig,
    fire_tf,
    make_dataset,
    orbit_camera,
    render_reference,
    write_ppm,
)
from repro.baselines import binary_swap_time
from repro.pipeline import render_swap
from repro.render import max_abs_diff
from repro.sim import NetworkSpec
from repro.volume import BrickGrid


def main(out_dir: str = "quickstart_output") -> None:
    out = Path(out_dir)
    out.mkdir(exist_ok=True)

    volume = make_dataset("supernova", (32, 32, 32))
    camera = orbit_camera(volume.shape, azimuth_deg=55, elevation_deg=15,
                          width=192, height=192)
    tf = fire_tf()
    config = RenderConfig(dt=0.6, ert_alpha=1.0)
    grid = BrickGrid(volume.shape, 8, ghost=1)
    n_gpus = 4

    # 1. ground truth
    reference = render_reference(volume, camera, tf, config)

    # 2. sort-first: the paper's direct-send pipeline
    direct = MapReduceVolumeRenderer(
        volume=volume, cluster=n_gpus, tf=tf, render_config=config
    ).render(camera, grid=grid)

    # 3. sort-last: local composite + swap merge
    swap = render_swap(volume, camera, tf, n_gpus=n_gpus, config=config, grid=grid)

    print(f"direct-send vs reference: {max_abs_diff(direct.image, reference.image):.2e}")
    print(f"sort-last  vs reference: {max_abs_diff(swap.image, reference.image):.2e}")
    print(f"slab axis used for visibility ordering: {'xyz'[swap.axis]}")
    print(f"fragments per GPU (sort-last): {swap.fragments_per_gpu}")
    write_ppm(out / "supernova_sort_last.ppm", swap.image)

    # price the compositing schemes at figure scale
    net = NetworkSpec()
    for n in (4, 8, 16, 32):
        swap_cost = binary_swap_time(n, 512 * 512, net)
        print(f"binary swap @ {n:2d} participants: rounds={swap_cost.rounds} "
              f"comm={swap_cost.comm_seconds * 1e3:.1f}ms "
              f"composite={swap_cost.composite_seconds * 1e3:.1f}ms "
              f"total={swap_cost.total * 1e3:.1f}ms")
    print("compare against direct-send Partition+Sort+Reduce in "
          "`pytest benchmarks/bench_abl_compositing.py --benchmark-only -s`")


if __name__ == "__main__":
    main(*sys.argv[1:2])
