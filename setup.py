"""Setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517/660
builds cannot produce editable wheels; this classic setup.py lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path.

Extras:

* ``numba`` — the optional compiled march-kernel backend
  (``repro.render.kernels.numba_backend``); install with
  ``pip install -e .[numba]``.  Without it the renderer falls back to
  the pure-NumPy kernel (``kernel="auto"`` warns once per process;
  ``kernel="numba"`` raises).
"""

from setuptools import find_packages, setup

setup(
    name="repro-hpdc-mapreduce-volren",
    version="0.1.0",
    description=(
        "Reproduction of a MapReduce-style multi-GPU volume renderer "
        "(HPDC'10) on a simulated cluster"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "numba": ["numba"],
        "scipy": ["scipy"],
    },
)
