"""Setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517/660
builds cannot produce editable wheels; this classic setup.py lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
