"""repro — Multi-GPU Volume Rendering using MapReduce (Stuart et al., 2010).

A full reproduction of the paper's system in pure Python/NumPy:

* :mod:`repro.core` — the multi-GPU MapReduce library (Map / Partition /
  Sort / Reduce with the paper's volume-rendering specialisations);
* :mod:`repro.render` — the CUDA-style ray-casting kernel, transfer
  functions, fragment compositing;
* :mod:`repro.volume` — volumes, procedural datasets, bricking, the
  ``.bvol`` out-of-core container;
* :mod:`repro.sim` — the discrete-event GPU-cluster simulator standing in
  for the NCSA Accelerator Cluster;
* :mod:`repro.pipeline` — the end-to-end renderer
  (:class:`~repro.pipeline.MapReduceVolumeRenderer`);
* :mod:`repro.perfmodel` — VPS/FPS/efficiency and the §6.3 bottleneck
  analysis;
* :mod:`repro.baselines` — ParaView-like, Mars-like, and binary-swap
  comparators.

Quickstart::

    from repro import MapReduceVolumeRenderer, make_dataset, orbit_camera

    vol = make_dataset("skull", (64, 64, 64))
    cam = orbit_camera(vol.shape, width=256, height=256)
    result = MapReduceVolumeRenderer(volume=vol, cluster=4).render(cam)
    # result.image is a (256, 256, 4) premultiplied RGBA array
"""

from .parallel import SharedMemoryPoolExecutor
from .pipeline import MapReduceVolumeRenderer, RenderResult
from .render import (
    Camera,
    RenderConfig,
    TransferFunction1D,
    bone_tf,
    default_tf,
    fire_tf,
    grayscale_tf,
    orbit_camera,
    render_reference,
    write_ppm,
)
from .sim import ClusterSpec, accelerator_cluster, cpu_cluster, laptop
from .volume import BrickGrid, BvolReader, Volume, make_dataset, write_bvol

__version__ = "1.0.0"

__all__ = [
    "BrickGrid",
    "BvolReader",
    "Camera",
    "ClusterSpec",
    "MapReduceVolumeRenderer",
    "RenderConfig",
    "RenderResult",
    "SharedMemoryPoolExecutor",
    "TransferFunction1D",
    "Volume",
    "accelerator_cluster",
    "bone_tf",
    "cpu_cluster",
    "default_tf",
    "fire_tf",
    "grayscale_tf",
    "laptop",
    "make_dataset",
    "orbit_camera",
    "render_reference",
    "write_bvol",
    "write_ppm",
    "__version__",
]
