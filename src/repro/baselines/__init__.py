"""Comparators: CPU cluster (ParaView-like), single GPU (Mars-like),
binary-swap compositing (Ma et al. '94)."""

from .binary_swap import SwapCost, binary_swap_time, swap_partial_images
from .cpu_cluster import (
    PARAVIEW_REPORTED_VPS,
    CpuClusterResult,
    run_cpu_cluster_baseline,
)
from .single_gpu import InCoreOnlyError, SingleGpuBaseline

__all__ = [
    "CpuClusterResult",
    "InCoreOnlyError",
    "PARAVIEW_REPORTED_VPS",
    "SingleGpuBaseline",
    "SwapCost",
    "binary_swap_time",
    "run_cpu_cluster_baseline",
    "swap_partial_images",
]
