"""Binary-swap compositing (Ma et al. 1994) — the road not taken.

The paper §6 weighs two compositing schemes and picks **direct-send**
"because it allows an overlap of communication and computation, and also
because it fits within the MapReduce model".  This module supplies the
alternative for the ablation:

* :func:`swap_partial_images` — functional binary-swap compositing of
  per-GPU partial images (requires a view-ordered slab assignment so
  visibility order between partials is per-pixel constant);
* :func:`binary_swap_time` — the communication/compute cost model of the
  log₂(n)-round exchange, comparable against the pipeline's measured
  Partition+Sort+Reduce time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..render.compositing import over
from ..sim.network import NetworkSpec

__all__ = ["swap_partial_images", "binary_swap_time", "SwapCost"]


def swap_partial_images(partials: list[np.ndarray]) -> np.ndarray:
    """Composite per-node partial images given in front-to-back order.

    ``partials`` are premultiplied RGBA images of the *full* viewport,
    listed front-to-back (the slab visibility order).  Binary swap's
    result is order-equivalent to the sequential over chain; we compute
    it with a balanced tree to mirror the pairwise rounds.
    """
    if not partials:
        raise ValueError("no partial images")
    shapes = {p.shape for p in partials}
    if len(shapes) != 1:
        raise ValueError("partial images must share a shape")
    layer = list(partials)
    while len(layer) > 1:
        merged = []
        for i in range(0, len(layer) - 1, 2):
            merged.append(over(layer[i], layer[i + 1]))
        if len(layer) % 2:
            merged.append(layer[-1])
        layer = merged
    return layer[0]


@dataclass(frozen=True)
class SwapCost:
    """Per-round and total costs of a binary-swap composite."""

    rounds: int
    comm_seconds: float
    composite_seconds: float
    final_gather_seconds: float

    @property
    def total(self) -> float:
        return self.comm_seconds + self.composite_seconds + self.final_gather_seconds


def binary_swap_time(
    n_participants: int,
    image_pixels: int,
    network: NetworkSpec,
    composite_rate: float = 2.5e6,
    pixel_nbytes: int = 16,
    gather: bool = True,
    message_handling: float = 1.8e-3,
) -> SwapCost:
    """Cost model of binary-swap over ``n_participants`` full partial images.

    Round r (0-based) exchanges half of each participant's current
    region — ``pixels / 2^(r+1)`` — with its partner, then composites it.
    After ``log2 n`` rounds every participant owns ``pixels/n`` finished
    pixels; the optional gather ships them to the display node.
    Non-power-of-two counts pay the ⌈log₂⌉ rounds of the 2-3 swap
    generalisation.

    ``composite_rate`` and ``message_handling`` default to the *same*
    host-software constants the direct-send pipeline is charged
    (:class:`~repro.sim.cpu.CPUSpec`), so the ablation compares the
    schemes, not the stacks.
    """
    if n_participants < 1:
        raise ValueError("need at least one participant")
    if image_pixels < 0 or pixel_nbytes < 1 or composite_rate <= 0:
        raise ValueError("bad cost parameters")
    if n_participants == 1:
        return SwapCost(0, 0.0, 0.0, 0.0)
    rounds = math.ceil(math.log2(n_participants))
    comm = 0.0
    comp = 0.0
    region = image_pixels
    for _ in range(rounds):
        half = region / 2.0
        comm += (
            network.latency
            + network.message_overhead
            + 2 * message_handling  # pack at sender, unpack at receiver
            + half * pixel_nbytes / network.bandwidth
        )
        comp += half / composite_rate
        region = half
    gather_s = 0.0
    if gather:
        per_node = image_pixels / n_participants
        gather_s = (n_participants - 1) * (
            network.message_overhead
            + message_handling
            + per_node * pixel_nbytes / network.bandwidth
        ) + network.latency
    return SwapCost(
        rounds=rounds,
        comm_seconds=comm,
        composite_seconds=comp,
        final_gather_seconds=gather_s,
    )
