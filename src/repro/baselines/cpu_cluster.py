"""CPU-cluster baseline (the paper's ParaView comparison point).

Footnote 1: "Moreland et al. show that ParaView can render 346M VPS
using 512 processes on 256 nodes.  Using 16 GPUs on 4 nodes, we achieve
more than double this rate."

ParaView's parallel volume renderer is a sort-last software pipeline:
every process rasterises *its share of the voxels* (software sampling
touches each voxel, unlike an image-order GPU ray caster), then partial
images are composited across processes.  The model here reflects that:

* render time = voxels / (per-process voxel rate × processes), with the
  per-process rate calibrated so 512 processes reproduce the published
  346 M voxels/s on a large volume;
* composite time = the direct-send image exchange over the fabric.

This gives an honest comparator whose *scaling* (more procs → faster,
with a compositing floor) can be swept, rather than a hard-coded
constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..sim.network import NetworkSpec

__all__ = ["PARAVIEW_REPORTED_VPS", "CpuClusterResult", "run_cpu_cluster_baseline"]

#: Moreland et al. (Cray XT3 / ParaView): 346 million voxels per second
#: with 512 processes.
PARAVIEW_REPORTED_VPS = 346e6

#: Per-process software-rendering voxel rate implied by the report,
#: with ~5% parallel overhead at 512 processes folded back out.
VOXELS_PER_SEC_PER_PROC = PARAVIEW_REPORTED_VPS / 512 * 1.05


@dataclass
class CpuClusterResult:
    """One CPU-cluster frame."""

    n_procs: int
    runtime: float
    render_seconds: float
    composite_seconds: float
    voxel_count: int

    @property
    def vps(self) -> float:
        return self.voxel_count / self.runtime

    @property
    def fps(self) -> float:
        return 1.0 / self.runtime


def run_cpu_cluster_baseline(
    volume_shape: tuple[int, int, int],
    image_pixels: int = 512 * 512,
    n_procs: int = 512,
    voxel_rate_per_proc: float = VOXELS_PER_SEC_PER_PROC,
    network: NetworkSpec | None = None,
    pixel_nbytes: int = 16,
) -> CpuClusterResult:
    """Model one frame of a sort-last CPU-cluster renderer.

    Rendering parallelises perfectly over voxels; compositing is a
    direct-send exchange where every process ships its partial image
    share to the owners (≈ one full image crossing each NIC-pair epoch),
    plus a per-peer message overhead that grows with the process count —
    the term that caps CPU-cluster VPS at high process counts.
    """
    if n_procs < 1:
        raise ValueError("need at least one process")
    if image_pixels < 0:
        raise ValueError("image_pixels must be non-negative")
    net = network or NetworkSpec()
    voxels = int(np.prod(volume_shape))
    render = voxels / (voxel_rate_per_proc * n_procs)
    if n_procs == 1:
        composite = 0.0
    else:
        image_bytes = image_pixels * pixel_nbytes
        # Each process sends its partial image, sliced across n-1 peers.
        per_proc_bytes = image_bytes  # its full partial image leaves the node
        composite = (
            per_proc_bytes / net.bandwidth
            + (n_procs - 1) * net.message_overhead
            + net.latency
        )
    runtime = render + composite
    return CpuClusterResult(
        n_procs=n_procs,
        runtime=runtime,
        render_seconds=render,
        composite_seconds=composite,
        voxel_count=voxels,
    )
