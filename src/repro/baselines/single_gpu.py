"""Mars-like single-GPU baseline.

Mars (He et al. 2008) was "the first large-scale GPU-based MapReduce
system.  It works with a single GPU on a single node, but only on
in-core datasets."  This baseline enforces exactly those limits: one
GPU, and the *whole* volume (not just one brick) must fit in VRAM at
once — demonstrating why the paper's streaming/out-of-core design
matters for 512³+ volumes on 4 GB devices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pipeline.renderer import MapReduceVolumeRenderer, RenderResult
from ..render.camera import Camera
from ..render.raycast import RenderConfig
from ..render.transfer import TransferFunction1D
from ..sim.presets import laptop
from ..volume.volume import Volume

__all__ = ["InCoreOnlyError", "SingleGpuBaseline"]


class InCoreOnlyError(MemoryError):
    """Raised when a dataset exceeds the single GPU's memory."""


@dataclass
class SingleGpuBaseline:
    """A renderer with Mars's restrictions."""

    tf: TransferFunction1D
    render_config: RenderConfig = RenderConfig()

    def check_fits(self, volume_nbytes: int) -> None:
        spec = laptop().gpu_specs()[0]
        if volume_nbytes > spec.vram_bytes:
            raise InCoreOnlyError(
                f"volume of {volume_nbytes} B exceeds single-GPU VRAM "
                f"({spec.vram_bytes} B); Mars-style systems cannot render it"
            )

    def would_fit(self, volume_shape: tuple[int, int, int]) -> bool:
        nbytes = int(np.prod(volume_shape)) * 4
        spec = laptop().gpu_specs()[0]
        return nbytes <= spec.vram_bytes

    def render(self, volume: Volume, camera: Camera, mode: str = "exec") -> RenderResult:
        """Render in-core on one GPU, or refuse (the Mars limitation)."""
        self.check_fits(volume.nbytes)
        renderer = MapReduceVolumeRenderer(
            volume=volume,
            cluster=laptop(),
            tf=self.tf,
            render_config=self.render_config,
        )
        return renderer.render(camera, mode=mode, bricks_per_gpu=1)
