"""Benchmark harness: experiment grids and table reporting."""

from .experiments import (
    GPU_COUNTS,
    PAPER_SIZES,
    ablation_compositing,
    ablation_partitioners,
    ablation_reduce_device,
    ablation_sort_device,
    exec_vs_sim_validation,
    fig3_breakdown,
    fig4_scaling,
    figure_camera,
    micro_transfer_costs,
    paraview_reference,
    sec63_bottleneck,
    sim_render,
)
from .reporting import format_series, format_table, print_table
from .results import ExperimentResults, collect_environment, load_kernel_means

__all__ = [
    "ExperimentResults",
    "GPU_COUNTS",
    "PAPER_SIZES",
    "ablation_compositing",
    "ablation_partitioners",
    "ablation_reduce_device",
    "ablation_sort_device",
    "collect_environment",
    "exec_vs_sim_validation",
    "fig3_breakdown",
    "fig4_scaling",
    "figure_camera",
    "format_series",
    "format_table",
    "load_kernel_means",
    "micro_transfer_costs",
    "paraview_reference",
    "print_table",
    "sec63_bottleneck",
    "sim_render",
]
