"""Experiment definitions — one function per paper figure/table.

Every experiment returns plain dict rows so the ``benchmarks/`` harness
can both time it (pytest-benchmark) and print the paper-shaped table.
See DESIGN.md's experiment index for the mapping to the paper.

All figure-scale experiments run in **sim mode** (analytic workload +
discrete-event cluster).  ``exec_vs_sim_validation`` cross-checks the
two paths on a small volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..baselines.binary_swap import binary_swap_time
from ..baselines.cpu_cluster import PARAVIEW_REPORTED_VPS, run_cpu_cluster_baseline
from ..core.job import JobConfig
from ..core.partition import (
    BlockPartitioner,
    RoundRobinPartitioner,
    TiledPartitioner,
)
from ..core.executors import SimClusterExecutor
from ..perfmodel.bottleneck import compute_vs_communication, find_sweet_spot
from ..perfmodel.efficiency import ScalingPoint, scaling_series
from ..pipeline.renderer import MapReduceVolumeRenderer
from ..pipeline.workload import build_workload
from ..render.camera import orbit_camera
from ..render.fragments import FRAGMENT_NBYTES
from ..render.raycast import RenderConfig
from ..render.transfer import TransferFunction1D, default_tf
from ..sim.disk import DiskSpec
from ..sim.pcie import PCIeSpec
from ..sim.presets import accelerator_cluster
from ..volume.bricking import bricks_for_gpu_count
from ..volume.datasets import DATASET_FIELDS
from ..volume.occupancy import grid_occupancy

__all__ = [
    "GPU_COUNTS",
    "PAPER_SIZES",
    "figure_camera",
    "sim_render",
    "fig3_breakdown",
    "fig4_scaling",
    "sec63_bottleneck",
    "paraview_reference",
    "micro_transfer_costs",
    "ablation_partitioners",
    "ablation_compositing",
    "ablation_sort_device",
    "ablation_reduce_device",
    "exec_vs_sim_validation",
]

GPU_COUNTS = (1, 2, 4, 8, 16, 32)
PAPER_SIZES = (128, 256, 512, 1024)
IMAGE = 512
DT = 1.0


def figure_camera(volume_shape: Sequence[int], image: int = IMAGE):
    """The evaluation view: the volume roughly fills a 512² image."""
    return orbit_camera(
        tuple(volume_shape),
        azimuth_deg=30,
        elevation_deg=20,
        distance_factor=2.2,
        width=image,
        height=image,
    )


def _renderer(
    size: Sequence[int] | int,
    n_gpus: int,
    dataset: str = "skull",
    tf: Optional[TransferFunction1D] = None,
    job_config: JobConfig = JobConfig(),
    partitioner_factory=None,
) -> MapReduceVolumeRenderer:
    shape = (size,) * 3 if isinstance(size, int) else tuple(size)
    return MapReduceVolumeRenderer(
        volume=None,
        volume_shape=shape,
        field=DATASET_FIELDS[dataset],
        cluster=n_gpus,
        tf=tf or default_tf(),
        render_config=RenderConfig(dt=DT),
        job_config=job_config,
        partitioner_factory=partitioner_factory,
    )


def sim_render(
    size,
    n_gpus: int,
    dataset: str = "skull",
    bricks_per_gpu: int = 2,
    image: int = IMAGE,
    job_config: JobConfig = JobConfig(),
    partitioner_factory=None,
):
    """One sim-mode frame; returns the RenderResult."""
    r = _renderer(
        size, n_gpus, dataset, job_config=job_config,
        partitioner_factory=partitioner_factory,
    )
    cam = figure_camera(r.volume_shape, image)
    return r.render(cam, mode="sim", bricks_per_gpu=bricks_per_gpu)


def _skip(size, n_gpus: int) -> bool:
    """1024³ cannot run on one 4 GB GPU (matches the paper's missing bar)."""
    edge = size if isinstance(size, int) else max(size)
    return edge >= 1024 and n_gpus == 1


# -- FIG3: stage breakdown ------------------------------------------------------
def fig3_breakdown(
    dataset: str = "skull",
    sizes: Sequence[int] = PAPER_SIZES,
    gpu_counts: Sequence[int] = GPU_COUNTS,
) -> list[dict]:
    """Fig. 3: per-stage runtimes for each volume size and GPU count."""
    rows = []
    for size in sizes:
        for n in gpu_counts:
            if _skip(size, n):
                continue
            res = sim_render(size, n, dataset)
            sb = res.outcome.breakdown
            rows.append(
                {
                    "volume": f"{size}^3",
                    "n_gpus": n,
                    "map_s": sb.map,
                    "partition_io_s": sb.partition_io,
                    "sort_s": sb.sort,
                    "reduce_s": sb.reduce,
                    "total_s": sb.total,
                }
            )
    return rows


# -- FIG4: FPS and VPS ----------------------------------------------------------
def fig4_scaling(
    dataset: str = "skull",
    sizes: Sequence[int] = PAPER_SIZES,
    gpu_counts: Sequence[int] = GPU_COUNTS,
) -> list[dict]:
    """Fig. 4: framerate and voxels/second per volume size and GPU count."""
    rows = []
    for size in sizes:
        points = []
        for n in gpu_counts:
            if _skip(size, n):
                continue
            res = sim_render(size, n, dataset)
            points.append(ScalingPoint(n, res.runtime, size**3))
        for s in scaling_series(points):
            rows.append(
                {
                    "volume": f"{size}^3",
                    "n_gpus": s["n_gpus"],
                    "fps": s["fps"],
                    "mvps": s["mvps"],
                    "speedup": s["speedup"],
                    "efficiency": s["efficiency"],
                }
            )
    return rows


# -- SEC63: bottleneck numbers -------------------------------------------------
def sec63_bottleneck(dataset: str = "skull", size: int = 1024) -> list[dict]:
    """§6.3: communication vs computation for 1024³ at 8 and 16 GPUs."""
    rows = []
    tf = default_tf()
    for n in (2, 4, 8, 16, 32):
        shape = (size,) * 3
        cam = figure_camera(shape)
        grid = bricks_for_gpu_count(shape, n, 2)
        occ = grid_occupancy(
            grid, tf.opacity_threshold_value(), field=DATASET_FIELDS[dataset]
        )
        works = build_workload(grid, cam, DT, occ, RoundRobinPartitioner(n), n)
        split = compute_vs_communication(accelerator_cluster(n), works, FRAGMENT_NBYTES)
        rows.append(
            {
                "n_gpus": n,
                "compute_s": split.compute_seconds,
                "communication_s": split.communication_seconds,
                "comm_over_compute": split.ratio,
                "compute_bound": split.compute_bound,
            }
        )
    return rows


# -- REF: ParaView footnote ----------------------------------------------------
def paraview_reference(dataset: str = "skull", size: int = 1024) -> list[dict]:
    """Footnote 1: our VPS at 16 GPUs vs ParaView's 346M at 512 procs."""
    res = sim_render(size, 16, dataset)
    ours = size**3 / res.runtime
    base = run_cpu_cluster_baseline((size,) * 3, n_procs=512)
    return [
        {
            "system": "MapReduce renderer (16 GPUs)",
            "mvps": ours / 1e6,
            "vs_paraview": ours / PARAVIEW_REPORTED_VPS,
        },
        {
            "system": "ParaView model (512 procs)",
            "mvps": base.vps / 1e6,
            "vs_paraview": base.vps / PARAVIEW_REPORTED_VPS,
        },
        {
            "system": "ParaView reported (512 procs)",
            "mvps": PARAVIEW_REPORTED_VPS / 1e6,
            "vs_paraview": 1.0,
        },
    ]


# -- TAB-DISK: §3 micro-costs -------------------------------------------------
def micro_transfer_costs() -> list[dict]:
    """The paper's stated micro-costs vs our calibrated models."""
    brick = 64**3 * 4
    frag_image = IMAGE * IMAGE * FRAGMENT_NBYTES
    disk, pcie = DiskSpec(), PCIeSpec()
    return [
        {
            "operation": "disk read 64^3 brick",
            "paper_claim_ms": 20.0,
            "model_ms": disk.read_time(brick) * 1e3,
        },
        {
            "operation": "PCIe H2D 64^3 brick",
            "paper_claim_ms": 0.2,
            "model_ms": pcie.h2d_time(brick) * 1e3,
        },
        {
            "operation": "D2H 512^2 fragments",
            "paper_claim_ms": 2.0,
            "model_ms": pcie.d2h_time(frag_image) * 1e3,
        },
    ]


# -- ABL-PART: partition strategies --------------------------------------------
def ablation_partitioners(
    dataset: str = "skull", size: int = 256, n_gpus: int = 8
) -> list[dict]:
    """§3.1.1: per-pixel round-robin vs striped vs tiled distribution."""
    cam = figure_camera((size,) * 3)
    factories = {
        "round-robin (paper)": RoundRobinPartitioner,
        "striped/block": lambda n: BlockPartitioner(n, cam.pixel_count),
        "tiled 32px": lambda n: TiledPartitioner(n, cam.width, cam.height, 32),
    }
    rows = []
    for name, factory in factories.items():
        res = sim_render(size, n_gpus, dataset, partitioner_factory=factory)
        per_reducer = res.outcome.pairs_per_reducer
        imb = float(per_reducer.max() / max(per_reducer.mean(), 1e-12))
        rows.append(
            {
                "partitioner": name,
                "total_s": res.runtime,
                "reduce_s": res.outcome.breakdown.reduce,
                "load_imbalance": imb,
            }
        )
    return rows


# -- ABL-COMP: direct-send vs binary swap ---------------------------------------
def ablation_compositing(
    dataset: str = "skull",
    sizes: Sequence[int] = (256, 512),
    gpu_counts: Sequence[int] = (4, 8, 16, 32),
) -> list[dict]:
    """§6: direct-send (pipeline) vs binary-swap compositing cost."""
    rows = []
    for size in sizes:
        for n in gpu_counts:
            res = sim_render(size, n, dataset)
            sb = res.outcome.breakdown
            direct = sb.partition_io + sb.sort + sb.reduce
            # Every GPU is a compositing participant; swap partners that
            # share a node still pay the host staging/compositing costs.
            swap = binary_swap_time(n, IMAGE * IMAGE, accelerator_cluster(n).network)
            rows.append(
                {
                    "volume": f"{size}^3",
                    "n_gpus": n,
                    "direct_send_s": direct,
                    "binary_swap_s": swap.total,
                    "direct_wins": direct < swap.total,
                }
            )
    return rows


# -- ABL-SORT / ABL-REDUCE: device choices -------------------------------------
def ablation_sort_device(
    dataset: str = "skull", size: int = 512, n_gpus: int = 8
) -> list[dict]:
    """§3.1.2: CPU vs GPU counting sort across fragment loads."""
    rows = []
    for device in ("cpu", "gpu"):
        for image in (256, 512, 1024):
            res = sim_render(
                size,
                n_gpus,
                dataset,
                image=image,
                job_config=JobConfig(sort_on=device),
            )
            rows.append(
                {
                    "sort_on": device,
                    "image": f"{image}^2",
                    "pairs": int(res.outcome.pairs_per_reducer.sum()),
                    "sort_s": res.outcome.breakdown.sort,
                    "total_s": res.runtime,
                }
            )
    return rows


def ablation_reduce_device(
    dataset: str = "skull", size: int = 512, n_gpus: int = 8
) -> list[dict]:
    """§3.1.2: the paper found CPU compositing faster — check both."""
    rows = []
    for device in ("cpu", "gpu"):
        res = sim_render(
            size, n_gpus, dataset, job_config=JobConfig(reduce_on=device)
        )
        rows.append(
            {
                "reduce_on": device,
                "reduce_s": res.outcome.breakdown.reduce,
                "total_s": res.runtime,
            }
        )
    return rows


# -- ABL-FUTURE: the paper's §7 proposals ---------------------------------------
def ablation_future_work(
    dataset: str = "skull", gpu_counts: Sequence[int] = (8,)
) -> list[dict]:
    """§7: async uploads + manual filtering, and 0-copy fragment memory.

    The paper leaves both as open questions; the simulator prices them.
    Async upload trades the synchronous texture-setup stall for a slower
    manually-filtered kernel — it should win when uploads dominate
    (small volumes, many chunks) and lose when kernels dominate (large
    volumes).  0-copy removes the D2H step but pays slow host-mapped
    writes per emitted pair.
    """
    rows = []
    modes = {
        "baseline (sync texture)": JobConfig(),
        "async upload + manual filter": JobConfig(async_upload=True),
        "zero-copy fragments": JobConfig(zero_copy_fragments=True),
    }
    for size in (64, 1024):
        for n in gpu_counts:
            for name, cfg in modes.items():
                res = sim_render(size, n, dataset, job_config=cfg)
                rows.append(
                    {
                        "volume": f"{size}^3",
                        "n_gpus": n,
                        "mode": name,
                        "map_s": res.outcome.breakdown.map,
                        "total_s": res.runtime,
                    }
                )
    return rows


# -- ABL-COMBINE: why the paper omitted the combiner -----------------------------
def ablation_combiner(size: int = 32, n_gpus: int = 4) -> list[dict]:
    """§3.1: "we specifically omitted partial reduce/combine because it
    didn't increase performance for our volume renderer."  Measure how
    many pairs a per-chunk combiner could actually merge: within one
    brick each pixel emits at most one fragment, so the answer is zero.
    """
    from ..pipeline.combiner import FragmentCombiner
    from ..volume.datasets import make_dataset

    vol = make_dataset("supernova", (size,) * 3)
    cam = figure_camera(vol.shape, image=128)
    cfg = RenderConfig(dt=DT, ert_alpha=1.0)
    rows = []
    for use_combiner in (False, True):
        renderer = MapReduceVolumeRenderer(
            volume=vol, cluster=n_gpus, tf=default_tf(), render_config=cfg
        )
        spec = renderer._spec(cam)
        if use_combiner:
            spec.combiner = FragmentCombiner()
        from ..core.executors import InProcessExecutor

        grid = renderer._grid(2)
        chunks = renderer._chunks(grid, out_of_core=False)
        res = InProcessExecutor().execute(spec, chunks, [c.id % n_gpus for c in chunks])
        merged = 0
        if use_combiner:
            merged = spec.combiner.pairs_in - spec.combiner.pairs_out
        rows.append(
            {
                "combiner": use_combiner,
                "pairs_shuffled": int(res.stats.n_pairs_kept),
                "pairs_merged_by_combiner": merged,
            }
        )
    return rows


# -- exec vs sim cross-validation -----------------------------------------------
def exec_vs_sim_validation(size: int = 32, n_gpus: int = 4) -> dict:
    """Functional and analytic paths agree on traffic within a factor.

    Runs a small volume both ways and compares total kept fragments —
    the quantity every communication cost depends on.
    """
    from ..volume.datasets import make_dataset

    vol = make_dataset("supernova", (size,) * 3)
    cam = figure_camera(vol.shape, image=128)
    cfg = RenderConfig(dt=DT, ert_alpha=1.0)
    renderer = MapReduceVolumeRenderer(
        volume=vol, cluster=n_gpus, tf=default_tf(), render_config=cfg
    )
    exec_res = renderer.render(cam, mode="both")
    sim_res = MapReduceVolumeRenderer(
        volume=vol,
        cluster=n_gpus,
        tf=default_tf(),
        render_config=cfg,
    ).render(cam, mode="sim")
    exec_frags = int(exec_res.stats.n_pairs_kept)
    sim_frags = int(sim_res.outcome.pairs_per_reducer.sum())
    return {
        "exec_fragments": exec_frags,
        "sim_fragments": sim_frags,
        "ratio": sim_frags / max(exec_frags, 1),
        "exec_runtime_s": exec_res.runtime,
        "sim_runtime_s": sim_res.runtime,
    }
