"""Plain-text reporting for the benchmark harness.

The paper's figures are line/bar charts; in a terminal we print the same
data as aligned tables so "who wins, by what factor, where crossovers
fall" can be read directly and diffed across runs.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table", "format_series", "print_table"]


def _fmt(value: Any, ndigits: int = 4) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{ndigits}g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str = "",
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.rjust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    label: str, xs: Sequence[Any], ys: Sequence[Any], y_name: str = "value"
) -> str:
    """One figure series as 'label: x=y, x=y, ...'."""
    pairs = ", ".join(f"{x}→{_fmt(y)}" for x, y in zip(xs, ys))
    return f"{label} [{y_name}]: {pairs}"


def print_table(rows, columns=None, title="") -> None:
    print(format_table(rows, columns, title))
