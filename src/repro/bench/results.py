"""Benchmark regression harness over committed ``BENCH_*.json`` files.

:class:`ExperimentResults` is the reporting model behind ``repro
report``: it loads the committed pytest-benchmark kernel documents
(current / seed / optionally a previous PR's) plus the pool scaling
sweep, and derives comparison tables, environment-provenance checks,
and a regression verdict.  Every derived view is a lazily-computed
:func:`functools.cached_property` over the raw JSON — the fuzzbench
report idiom: a report (or a CI gate) only pays for the views it
actually renders, and each view is computed at most once per instance.

The CI gate is :meth:`check`: it fails when any kernel's current mean
exceeds its baseline mean by more than ``threshold`` (default 15%).
Comparisons default to *committed* file vs *committed* file, so the
gate is deterministic — machine noise only enters when a caller points
``--kernels`` at a freshly measured document, and then the environment
provenance (cpu_count, python, platform, git sha) stamped into every
``BENCH_*.json`` lets the report annotate cross-machine mismatches
instead of silently comparing apples to oranges.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from datetime import datetime, timezone
from functools import cached_property
from pathlib import Path
from typing import Optional

from .reporting import format_table

__all__ = ["ExperimentResults", "collect_environment", "load_kernel_means"]


def collect_environment() -> dict:
    """Provenance block stamped into every benchmark JSON document.

    Enough to decide whether two documents are comparable (same
    machine shape, same interpreter, which commit produced them) —
    *not* a full hardware inventory.
    """
    env = {
        "cpu_count": os.cpu_count(),
        # The cores this process may actually run on: the pool sizes
        # itself from sched_getaffinity, so a cgroup/affinity-limited
        # container can report cpu_count=64 while time-slicing 2 cores —
        # two such documents are not comparable on cpu_count alone.
        "usable_cores": (
            len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else os.cpu_count()
        ),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    # March-kernel provenance: which backend "auto" resolves to on this
    # box, and the numba version when importable (None otherwise).  A
    # numpy-measured document must not be silently compared against a
    # numba-measured one — kernel_backend participates in
    # COMPARABLE_KEYS so the report annotates the mismatch.
    try:
        from ..render.kernels import resolve_kernel

        env["kernel_backend"] = resolve_kernel("auto", warn=False).name
    except Exception:
        env["kernel_backend"] = None
    try:
        import numba

        env["numba"] = numba.__version__
    except Exception:
        env["numba"] = None
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
        if proc.returncode == 0:
            env["git_sha"] = proc.stdout.strip()
    except Exception:  # git absent or not a checkout: provenance degrades
        pass
    return env


def load_kernel_means(path) -> dict:
    """``{benchmark name: stats.mean seconds}`` from one pytest-benchmark
    JSON document."""
    doc = json.loads(Path(path).read_text())
    return {
        b["name"]: float(b["stats"]["mean"]) for b in doc.get("benchmarks", [])
    }


def _environment_of(doc: dict) -> dict:
    """The comparable-environment summary of one loaded document.

    Prefers the explicit ``environment`` provenance block (stamped by
    the bench conftest / the parallel sweep); falls back to the fields
    pytest-benchmark records natively, so pre-provenance documents
    (the committed seed) still participate in mismatch checks.
    """
    env = doc.get("environment")
    if env:
        return dict(env)
    machine = doc.get("machine_info") or {}
    commit = doc.get("commit_info") or {}
    out = {}
    if machine:
        out["python"] = machine.get("python_version")
        out["platform"] = f"{machine.get('system')}-{machine.get('machine')}"
        cpu = machine.get("cpu") or {}
        if isinstance(cpu, dict) and cpu.get("count") is not None:
            out["cpu_count"] = cpu.get("count")
    if commit.get("id"):
        out["git_sha"] = commit["id"]
    return out


class ExperimentResults:
    """Comparison report over kernel (and pool) benchmark documents.

    Parameters are *paths*; nothing is read until a derived view is
    touched, and each view is computed once (``cached_property``).
    """

    #: Environment keys whose disagreement makes means incomparable.
    #: ``usable_cores`` participates because affinity-limited containers
    #: change effective parallelism without changing ``cpu_count``;
    #: documents predating the key (no ``usable_cores`` stamped) are
    #: simply not compared on it — the mismatch check skips keys absent
    #: on either side.
    #: ``kernel_backend`` joins for the same reason: a numba-measured
    #: raycast mean against a numpy-measured baseline is a backend
    #: comparison, not a regression signal.
    COMPARABLE_KEYS = (
        "cpu_count",
        "usable_cores",
        "python",
        "platform",
        "kernel_backend",
    )

    def __init__(
        self,
        kernels,
        baseline=None,
        previous=None,
        parallel=None,
        threshold: float = 0.15,
    ):
        self.kernels_path = Path(kernels)
        self.baseline_path = Path(baseline) if baseline else None
        self.previous_path = Path(previous) if previous else None
        self.parallel_path = Path(parallel) if parallel else None
        if threshold <= 0:
            raise ValueError("regression threshold must be positive")
        self.threshold = float(threshold)

    # -- raw documents -----------------------------------------------------
    @cached_property
    def current_doc(self) -> dict:
        return json.loads(self.kernels_path.read_text())

    @cached_property
    def baseline_doc(self) -> Optional[dict]:
        if self.baseline_path is None:
            return None
        return json.loads(self.baseline_path.read_text())

    @cached_property
    def previous_doc(self) -> Optional[dict]:
        if self.previous_path is None:
            return None
        return json.loads(self.previous_path.read_text())

    @cached_property
    def parallel_doc(self) -> Optional[dict]:
        if self.parallel_path is None or not self.parallel_path.exists():
            return None
        return json.loads(self.parallel_path.read_text())

    # -- kernel means ------------------------------------------------------
    @cached_property
    def current_means(self) -> dict:
        return {
            b["name"]: float(b["stats"]["mean"])
            for b in self.current_doc.get("benchmarks", [])
        }

    @cached_property
    def baseline_means(self) -> dict:
        if self.baseline_doc is None:
            return {}
        return {
            b["name"]: float(b["stats"]["mean"])
            for b in self.baseline_doc.get("benchmarks", [])
        }

    @cached_property
    def previous_means(self) -> dict:
        if self.previous_doc is None:
            return {}
        return {
            b["name"]: float(b["stats"]["mean"])
            for b in self.previous_doc.get("benchmarks", [])
        }

    # -- derived views -----------------------------------------------------
    @cached_property
    def kernel_table(self) -> list:
        """One row per kernel present in the current document: current
        mean, baseline/previous means where the same benchmark exists,
        and the current/baseline speed ratio (>1 means slower now)."""
        rows = []
        for name in sorted(self.current_means):
            cur = self.current_means[name]
            row = {"benchmark": name, "current_ms": cur * 1e3}
            base = self.baseline_means.get(name)
            if base is not None:
                row["baseline_ms"] = base * 1e3
                row["vs_baseline"] = cur / base if base > 0 else float("inf")
            prev = self.previous_means.get(name)
            if prev is not None:
                row["previous_ms"] = prev * 1e3
                row["vs_previous"] = cur / prev if prev > 0 else float("inf")
            rows.append(row)
        return rows

    def regressions(self, threshold: Optional[float] = None) -> list:
        """Kernels whose current mean exceeds the baseline mean by more
        than ``threshold`` (fraction, e.g. 0.15 = 15%)."""
        limit = self.threshold if threshold is None else float(threshold)
        out = []
        for row in self.kernel_table:
            ratio = row.get("vs_baseline")
            if ratio is not None and ratio > 1.0 + limit:
                out.append(
                    {
                        "benchmark": row["benchmark"],
                        "current_ms": row["current_ms"],
                        "baseline_ms": row["baseline_ms"],
                        "slowdown": ratio,
                    }
                )
        return out

    def check(self, threshold: Optional[float] = None) -> bool:
        """The CI gate: True when no kernel regressed past the threshold."""
        return not self.regressions(threshold)

    @cached_property
    def environments(self) -> dict:
        """Provenance summary per loaded document (for the report header)."""
        out = {"current": _environment_of(self.current_doc)}
        if self.baseline_doc is not None:
            out["baseline"] = _environment_of(self.baseline_doc)
        if self.previous_doc is not None:
            out["previous"] = _environment_of(self.previous_doc)
        if self.parallel_doc is not None:
            out["parallel"] = _environment_of(self.parallel_doc)
        return out

    @cached_property
    def environment_mismatches(self) -> list:
        """Keys on which a compared document's environment disagrees with
        the current one — means across a mismatch measure machines, not
        code, so the report prints these next to the verdict."""
        current = self.environments["current"]
        notes = []
        for label, env in self.environments.items():
            if label == "current":
                continue
            for key in self.COMPARABLE_KEYS:
                a, b = current.get(key), env.get(key)
                if a is not None and b is not None and a != b:
                    notes.append(f"{label}.{key}: {b!r} != current {a!r}")
        return notes

    @cached_property
    def parallel_summary(self) -> list:
        """Headline rows of the pool scaling sweep (one per pool shape)."""
        if self.parallel_doc is None:
            return []
        rows = []
        for r in self.parallel_doc.get("results", []):
            rows.append(
                {
                    "workers": r.get("workers"),
                    "reduce": r.get("reduce_mode"),
                    "shuffle": r.get("shuffle_mode"),
                    "depth": r.get("pipeline_depth"),
                    "fps": r.get("fps"),
                    "speedup": r.get("speedup_vs_inprocess"),
                }
            )
        return rows

    def render_report(self) -> str:
        """The human-readable ``repro report`` body."""
        lines = []
        baseline_name = (
            self.baseline_path.name if self.baseline_path else "(none)"
        )
        lines.append(
            f"kernel benchmarks: {self.kernels_path.name} "
            f"vs baseline {baseline_name}"
            + (
                f" vs previous {self.previous_path.name}"
                if self.previous_path
                else ""
            )
        )
        env = self.environments["current"]
        if env:
            lines.append(
                "environment: "
                + ", ".join(f"{k}={env[k]}" for k in sorted(env) if k != "timestamp")
            )
        for note in self.environment_mismatches:
            lines.append(f"environment mismatch: {note}")
        lines.append("")
        lines.append(format_table(self.kernel_table, title="kernel means"))
        regs = self.regressions()
        lines.append("")
        if regs:
            lines.append(
                f"REGRESSIONS (> {self.threshold:.0%} over baseline):"
            )
            for r in regs:
                lines.append(
                    f"  {r['benchmark']}: {r['baseline_ms']:.3f} ms -> "
                    f"{r['current_ms']:.3f} ms ({r['slowdown']:.2f}x)"
                )
        else:
            lines.append(
                f"no kernel regression beyond {self.threshold:.0%} of baseline"
            )
        if self.parallel_summary:
            lines.append("")
            lines.append(
                format_table(
                    self.parallel_summary, title="pool scaling sweep"
                )
            )
        return "\n".join(lines)
