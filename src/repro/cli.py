"""Command-line interface.

Usage::

    python -m repro render --dataset skull --size 48 --gpus 4 --out skull.ppm
    python -m repro sweep --figure fig3 --sizes 128,256 --gpus 1,8,32
    python -m repro analyze --size 1024
    python -m repro info

`render` runs the functional pipeline (small volumes); `sweep` and
`analyze` run the simulated figure experiments at paper scale.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def _int_list(text: str) -> list[int]:
    try:
        return [int(x) for x in text.split(",") if x]
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a comma-separated int list: {text!r}")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Multi-GPU volume rendering using MapReduce (Stuart et al. 2010)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    r = sub.add_parser("render", help="render a frame through the full pipeline")
    r.add_argument("--dataset", default="skull", choices=["skull", "supernova", "plume"])
    r.add_argument("--size", type=int, default=48, help="cubic volume edge (voxels)")
    r.add_argument("--gpus", type=int, default=4)
    r.add_argument("--image", type=int, default=256, help="image edge (pixels)")
    r.add_argument("--azimuth", type=float, default=30.0)
    r.add_argument("--elevation", type=float, default=20.0)
    r.add_argument("--dt", type=float, default=0.5)
    r.add_argument("--shading", action="store_true", help="gradient Phong shading")
    r.add_argument("--auto-tf", action="store_true", help="histogram-derived transfer function")
    r.add_argument("--executor", default="inprocess", choices=["inprocess", "pool"],
                   help="functional backend: serial in-process, or the "
                        "shared-memory multiprocess pool")
    r.add_argument("--workers", type=int, default=None,
                   help="pool worker processes (default: one per simulated "
                        "GPU, capped to the machine's cores)")
    r.add_argument("--reduce-mode", default="parent", choices=["parent", "worker"],
                   help="where the pool executor runs Sort+Reduce: in the "
                        "parent (default), or on the worker owning each "
                        "partition, which ships back composited pixel spans "
                        "(bitwise-identical output either way)")
    r.add_argument("--pipeline-depth", type=int, default=1,
                   help="frames the pool executor keeps in flight for orbit "
                        "rendering: 1 = synchronous, 2 = double-buffered "
                        "(workers map+reduce the next frame while the parent "
                        "stitches the current one)")
    r.add_argument("--shuffle-mode", default="auto",
                   choices=["auto", "parent", "mesh", "tcp"],
                   help="shuffle plane for the pool executor: 'parent' "
                        "routes fragment runs through the parent, 'mesh' "
                        "exchanges them worker-to-worker over direct "
                        "shared-memory edge rings (the parent becomes a "
                        "pure control plane), 'tcp' streams the same "
                        "records worker-to-worker over AF_UNIX/TCP "
                        "sockets (the multi-host plane; requires "
                        "--reduce-mode worker), 'auto' picks mesh "
                        "whenever the reduce runs on workers; the image "
                        "is bitwise-identical on every plane")
    r.add_argument("--host-spec", default=None,
                   help="socket-plane host placement (tcp shuffle only): "
                        "an int spreads workers round-robin over that "
                        "many simulated hosts; a comma-separated list "
                        "like '0,0,1,1' assigns each worker a host id. "
                        "Host 0 holds the shared-memory arena; workers "
                        "on other hosts get chunk payloads over the "
                        "wire instead of attaching the arena")
    r.add_argument("--pin-workers", action="store_true",
                   help="pin each pool worker to its own core "
                        "(os.sched_setaffinity) before it allocates its "
                        "inbound mesh rings; warns and no-ops when "
                        "affinity is unavailable or cores < workers")
    r.add_argument("--supervise", dest="supervise", action="store_true",
                   default=True,
                   help="recover pool infrastructure failures in place: "
                        "respawn dead/wedged workers, re-execute in-flight "
                        "frames bitwise-identically, and degrade (fewer "
                        "workers, then serial) when retries are exhausted "
                        "(default)")
    r.add_argument("--no-supervise", dest="supervise", action="store_false",
                   help="disable supervision: any pool failure tears the "
                        "pool down and propagates (the legacy fail-fast "
                        "behaviour)")
    r.add_argument("--max-frame-retries", type=int, default=None,
                   help="recovery attempts per frame at each pool width "
                        "before the supervisor degrades the pool "
                        "(default $REPRO_MAX_FRAME_RETRIES or 2)")
    r.add_argument("--fault-plan", default=None,
                   help="deterministic fault injection for pool workers, "
                        "e.g. 'crash@map:worker=1,frame=2' or "
                        "'stall(5)@reduce;exit(3)@shuffle-out:chunk=0' "
                        "(testing/bench hook; see repro.parallel.faults)")
    r.add_argument("--accel", default="grid", choices=["grid", "table", "off"],
                   help="empty-space skipping: 'grid' carves whole "
                        "transparent spans per ray via a macro-cell min/max "
                        "grid (default), 'table' is the per-sample "
                        "corner-max probe, 'off' disables both; the image "
                        "is bitwise-identical either way")
    r.add_argument("--macro-cell-size", type=int, default=8,
                   help="macro-cell edge length in voxels for --accel grid")
    r.add_argument("--kernel", default="auto",
                   choices=["auto", "numpy", "numba"],
                   help="march-kernel backend: 'numba' JIT-compiles the "
                        "per-ray march loop (needs the numba package), "
                        "'numpy' is the vectorized reference, 'auto' picks "
                        "numba when importable and falls back to numpy "
                        "with a warning (default)")
    r.add_argument("--trace-out", default=None, metavar="TRACE.json",
                   help="record a span timeline of the render (publish, "
                        "per-chunk map, shuffle, per-partition reduce, "
                        "stitch, respawns, ring stalls) and write it as "
                        "Chrome/Perfetto trace-event JSON: one track per "
                        "pool worker plus the parent; load it at "
                        "ui.perfetto.dev or chrome://tracing.  Tracing is "
                        "off (and costs nothing) without this flag")
    r.add_argument("--stats-json", default=None, metavar="STATS.json",
                   help="dump the frame's JobStats — including the "
                        "unified telemetry registry (ring backpressure, "
                        "recovery ledger, arena publish bytes, accel-cache "
                        "hit rates) — as JSON")
    r.add_argument("--out", default="render.ppm")

    s = sub.add_parser("sweep", help="regenerate a paper figure (simulated cluster)")
    s.add_argument("--figure", default="fig3", choices=["fig3", "fig4"])
    s.add_argument("--dataset", default="skull", choices=["skull", "supernova", "plume"])
    s.add_argument("--sizes", type=_int_list, default=[128, 256, 512, 1024])
    s.add_argument("--gpus", type=_int_list, default=[1, 2, 4, 8, 16, 32])

    a = sub.add_parser("analyze", help="§6.3 compute-vs-communication analysis")
    a.add_argument("--size", type=int, default=1024)
    a.add_argument("--dataset", default="skull", choices=["skull", "supernova", "plume"])

    o = sub.add_parser("rotate", help="simulate an interactive orbit (FPS report)")
    o.add_argument("--dataset", default="skull", choices=["skull", "supernova", "plume"])
    o.add_argument("--size", type=int, default=256)
    o.add_argument("--gpus", type=int, default=8)
    o.add_argument("--frames", type=int, default=8)
    o.add_argument("--image", type=int, default=512)
    o.add_argument("--no-resident", action="store_true",
                   help="stream bricks every frame instead of caching them")

    rep = sub.add_parser(
        "report",
        help="benchmark regression report over committed BENCH_*.json",
    )
    rep.add_argument("--kernels", default="BENCH_kernels.json",
                     help="current pytest-benchmark kernel document "
                          "(default: the committed BENCH_kernels.json)")
    rep.add_argument("--baseline", default="BENCH_kernels_seed.json",
                     help="baseline kernel document to compare against "
                          "(default: the committed seed)")
    rep.add_argument("--previous", default=None,
                     help="optional previous-PR kernel document for a "
                          "three-way comparison")
    rep.add_argument("--parallel", default="BENCH_parallel.json",
                     help="pool scaling sweep document summarised in the "
                          "report (skipped when missing)")
    rep.add_argument("--check", action="store_true",
                     help="exit non-zero if any kernel mean regressed "
                          "past --threshold vs the baseline (the CI gate)")
    rep.add_argument("--threshold", type=float, default=0.15,
                     help="allowed fractional slowdown before --check "
                          "fails (default 0.15 = 15%%)")

    sub.add_parser("info", help="package / model configuration summary")
    return p


def _cmd_render(args) -> int:
    from . import (
        MapReduceVolumeRenderer,
        RenderConfig,
        default_tf,
        make_dataset,
        orbit_camera,
        write_ppm,
    )
    from .volume.histogram import auto_transfer_function

    tracer = None
    if args.trace_out:
        # Installed before the renderer exists so worker processes fork
        # (or are told to trace) with tracing already decided, and the
        # publish of the very first arena is on the timeline too.
        from .observability import enable_tracing

        tracer = enable_tracing()

    volume = make_dataset(args.dataset, (args.size,) * 3)
    tf = auto_transfer_function(volume) if args.auto_tf else default_tf()
    camera = orbit_camera(
        volume.shape,
        azimuth_deg=args.azimuth,
        elevation_deg=args.elevation,
        width=args.image,
        height=args.image,
    )
    with MapReduceVolumeRenderer(
        volume=volume,
        cluster=args.gpus,
        tf=tf,
        render_config=RenderConfig(
            dt=args.dt,
            shading=args.shading,
            accel=args.accel,
            macro_cell_size=args.macro_cell_size,
            kernel=args.kernel,
        ),
        executor=args.executor,
        workers=args.workers,
        reduce_mode=args.reduce_mode,
        pipeline_depth=args.pipeline_depth,
        shuffle_mode=args.shuffle_mode,
        host_spec=args.host_spec,
        pin_workers=args.pin_workers,
        supervise=args.supervise,
        max_frame_retries=args.max_frame_retries,
        fault_plan=args.fault_plan,
    ) as renderer:
        result = renderer.render(camera, mode="both")
        backend = args.executor
        recovery_lines = []
        if backend == "pool":
            backend = (f"pool ({renderer.executor_workers} workers, "
                       f"{args.reduce_mode} reduce, "
                       f"{renderer.executor_shuffle_mode} shuffle)")
            recovery_lines = renderer.executor_recovery_summary
    write_ppm(args.out, result.image)
    sb = result.outcome.breakdown
    print(f"rendered {args.dataset} {volume.resolution_label()} on "
          f"{args.gpus} simulated GPUs ({result.n_bricks} bricks, "
          f"{backend} executor) -> {args.out}")
    print(f"simulated stages: map={sb.map:.4f}s partition+io={sb.partition_io:.4f}s "
          f"sort={sb.sort:.4f}s reduce={sb.reduce:.4f}s total={sb.total:.4f}s")
    for line in recovery_lines:
        print(f"recovery: {line}")
    if tracer is not None:
        from .observability import (
            disable_tracing,
            stage_summary_line,
            write_chrome_trace,
        )

        summary = stage_summary_line(tracer)
        if summary:
            print(f"measured stages: {summary}")
        n_events = write_chrome_trace(args.trace_out, tracer)
        disable_tracing()
        print(f"trace: {n_events} events -> {args.trace_out} "
              f"(open at ui.perfetto.dev)")
    if args.stats_json:
        import json

        from .observability.timeline import json_default

        with open(args.stats_json, "w") as fh:
            json.dump(
                result.stats.as_dict(include_telemetry=True),
                fh,
                indent=2,
                default=json_default,
            )
        print(f"stats: {args.stats_json}")
    return 0


def _cmd_sweep(args) -> int:
    from .bench import fig3_breakdown, fig4_scaling, format_table

    if args.figure == "fig3":
        rows = fig3_breakdown(args.dataset, args.sizes, args.gpus)
        print(format_table(rows, title="Fig 3: runtime breakdown (seconds)"))
    else:
        rows = fig4_scaling(args.dataset, args.sizes, args.gpus)
        print(format_table(rows, title="Fig 4: FPS / VPS scaling"))
    return 0


def _cmd_analyze(args) -> int:
    from .bench import format_table, sec63_bottleneck
    from .perfmodel import CommComputeSplit, find_crossover

    rows = sec63_bottleneck(args.dataset, args.size)
    print(format_table(rows, title=f"§6.3 analysis, {args.size}^3 volume"))
    splits = [
        CommComputeSplit(r["n_gpus"], r["compute_s"], r["communication_s"])
        for r in rows
    ]
    cross = find_crossover(splits)
    if cross is None:
        print("compute-bound at every measured GPU count")
    else:
        print(f"communication overtakes computation at {cross} GPUs")
    return 0


def _cmd_rotate(args) -> int:
    from . import MapReduceVolumeRenderer, RenderConfig, default_tf
    from .pipeline import orbit_path
    from .volume.datasets import DATASET_FIELDS

    r = MapReduceVolumeRenderer(
        volume=None,
        volume_shape=(args.size,) * 3,
        field=DATASET_FIELDS[args.dataset],
        cluster=args.gpus,
        tf=default_tf(),
        render_config=RenderConfig(dt=1.0),
    )
    cams = orbit_path((args.size,) * 3, args.frames, width=args.image, height=args.image)
    results = r.render_sequence(cams, resident=not args.no_resident)
    times = [res.runtime for res in results]
    steady = times[1:] or times
    print(f"{args.dataset} {args.size}^3 on {args.gpus} simulated GPUs, "
          f"{args.frames}-frame orbit "
          f"({'resident' if not args.no_resident else 'streaming'} bricks):")
    print(f"  first frame : {times[0] * 1e3:8.1f} ms")
    print(f"  steady frame: {sum(steady) / len(steady) * 1e3:8.1f} ms "
          f"({len(steady) / sum(steady):.2f} FPS)")
    return 0


def _cmd_report(args) -> int:
    from .bench.results import ExperimentResults

    results = ExperimentResults(
        kernels=args.kernels,
        baseline=args.baseline,
        previous=args.previous,
        parallel=args.parallel,
        threshold=args.threshold,
    )
    print(results.render_report())
    if args.check and not results.check():
        print(
            f"FAIL: {len(results.regressions())} kernel(s) regressed "
            f"beyond {args.threshold:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_info(args) -> int:
    import numpy

    from . import __version__
    from .sim import CPUSpec, DiskSpec, GPUSpec, NetworkSpec, PCIeSpec

    print(f"repro {__version__} (numpy {numpy.__version__})")
    print(f"GPU model:     {GPUSpec()}")
    print(f"CPU model:     {CPUSpec()}")
    print(f"PCIe model:    {PCIeSpec()}")
    print(f"Disk model:    {DiskSpec()}")
    print(f"Network model: {NetworkSpec()}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "render": _cmd_render,
        "sweep": _cmd_sweep,
        "analyze": _cmd_analyze,
        "rotate": _cmd_rotate,
        "report": _cmd_report,
        "info": _cmd_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
