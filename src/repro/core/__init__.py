"""The paper's contribution: a multi-GPU MapReduce library for rendering.

Stages (paper §3.1): **Map** (ray-cast a chunk), **Partition** (modulo
routing + placeholder discard), **Sort** (θ(n) counting sort), **Reduce**
(per-key fold).  The library streams intermediate pairs between stages —
no disk shuffle — and overlaps disk, PCIe, kernel, and network activity
in the simulated scheduler.
"""

from .api import Combiner, Mapper, MapOutput, Partitioner, Reducer
from .chunk import Chunk
from .executors import (
    InProcessExecutor,
    InProcessResult,
    ShuffleSpec,
    SimClusterExecutor,
)
from .job import JobConfig, MapReduceSpec
from .keyvalue import PLACEHOLDER, KVSpec, discard_placeholders, validate_pairs
from .partition import (
    BlockPartitioner,
    CallablePartitioner,
    RoundRobinPartitioner,
    TiledPartitioner,
)
from .scheduler import MapWork, SimOutcome, run_simulated_job
from .sort import (
    SortResult,
    counting_sort_pairs,
    run_length_groups,
    stable_counting_order,
)
from .stats import JobStats
from .stream import SendBuffer, split_message_sizes

__all__ = [
    "BlockPartitioner",
    "CallablePartitioner",
    "Chunk",
    "Combiner",
    "InProcessExecutor",
    "InProcessResult",
    "JobConfig",
    "JobStats",
    "KVSpec",
    "MapOutput",
    "MapReduceSpec",
    "MapWork",
    "Mapper",
    "PLACEHOLDER",
    "Partitioner",
    "Reducer",
    "RoundRobinPartitioner",
    "SendBuffer",
    "ShuffleSpec",
    "SimClusterExecutor",
    "SimOutcome",
    "SortResult",
    "TiledPartitioner",
    "counting_sort_pairs",
    "discard_placeholders",
    "run_length_groups",
    "stable_counting_order",
    "run_simulated_job",
    "split_message_sizes",
    "validate_pairs",
]
