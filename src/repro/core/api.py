"""User-facing MapReduce API.

The paper's library exposes "all user-required tasks ... via objects with
virtual functions used as callbacks".  The Python equivalents are the
abstract classes here: subclass :class:`Mapper` and :class:`Reducer`
(and optionally :class:`Partitioner`) and hand them to a
:class:`~repro.core.job.MapReduceSpec`.

Domain restrictions (paper §3.1.1) the library enforces:

1. a map task (Chunk) must fit in GPU memory — checked at scheduling;
2. keys are 4-byte integers, dense near the low end — enforced by
   :mod:`repro.core.keyvalue`;
3. emitted values are homogeneous in size — structured dtype;
4. every GPU thread emits (placeholders discarded at Partition);
5. partitioning is per-key round-robin by default — a modulo;
6. a single reduce task must fit in GPU memory — many reductions are
   scheduled per kernel.
"""

from __future__ import annotations

import abc
from typing import Any, Optional

import numpy as np

from .chunk import Chunk

__all__ = ["Mapper", "Reducer", "Partitioner", "Combiner", "MapOutput"]


class MapOutput:
    """What one map invocation produced.

    ``pairs`` is a structured array whose key field is a 4-byte integer
    (library restriction #2); ``work`` carries the kernel-work counters
    the cost models consume (rays launched, samples taken, …) as a plain
    dict so the library stays renderer-agnostic.
    """

    __slots__ = ("pairs", "work")

    def __init__(self, pairs: np.ndarray, work: Optional[dict[str, int]] = None):
        self.pairs = pairs
        self.work = dict(work or {})

    def __len__(self) -> int:
        return len(self.pairs)


class Mapper(abc.ABC):
    """Produces key-value pairs from one :class:`Chunk`.

    ``initialize`` runs once per device before any chunks are mapped —
    the paper uses it to "allocate static data on the GPU (e.g. view
    matrix)".  ``map`` is the kernel body.
    """

    def initialize(self, device: Any = None) -> None:  # noqa: B027 - optional hook
        """Per-device setup; safe place for allocations (called once)."""

    @abc.abstractmethod
    def map(self, chunk: Chunk) -> MapOutput:
        """Execute the map kernel over one chunk."""

    def static_device_bytes(self) -> int:
        """Bytes of per-device constant data (counted against VRAM)."""
        return 0


class Reducer(abc.ABC):
    """Reduces all values sharing a key into final values.

    ``reduce_all`` receives every pair routed to this reducer, already
    **sorted and compacted by key** (the library's Sort guarantee), and
    returns ``(keys, values)`` arrays of the final reductions.
    """

    def initialize(self, device: Any = None) -> None:  # noqa: B027 - optional hook
        """Per-device setup hook."""

    @abc.abstractmethod
    def reduce_all(self, pairs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Reduce sorted pairs → (unique keys, reduced values)."""


class Partitioner(abc.ABC):
    """Maps keys to reducer indices."""

    def __init__(self, n_reducers: int):
        if n_reducers < 1:
            raise ValueError("need at least one reducer")
        self.n_reducers = n_reducers

    @abc.abstractmethod
    def partition(self, keys: np.ndarray) -> np.ndarray:
        """Reducer index (int array) for each key."""

    def owned_key_count(self, reducer: int, n_keys: int) -> int:
        """How many of the dense keys ``0..n_keys-1`` this reducer owns."""
        keys = np.arange(n_keys, dtype=np.int64)
        return int(np.count_nonzero(self.partition(keys) == reducer))


class Combiner(abc.ABC):
    """Optional partial reduce applied to map output before the shuffle.

    The paper **deliberately omits** combining ("it didn't increase
    performance for our volume renderer") — partial-ray fragments of one
    brick rarely share pixels with another brick on the same GPU in a
    useful way.  The hook exists so the ablation benchmark can measure
    exactly that claim.
    """

    @abc.abstractmethod
    def combine(self, pairs: np.ndarray) -> np.ndarray:
        """Fold pairs with equal keys produced by one mapper."""
