"""Chunks — the unit of map work.

"A Chunk represents a collection of work to be mapped, in our case, it
is a brick of a volume."  A chunk carries either its payload (in-core)
or a recipe to load it (out-of-core: a disk read in the simulated
cluster, a field evaluation or ``.bvol`` seek in the functional path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

__all__ = ["Chunk"]


@dataclass
class Chunk:
    """One unit of map work.

    Attributes
    ----------
    id:
        Stable identifier (brick id for the renderer).
    nbytes:
        GPU-memory footprint of the payload; the library checks this
        against device VRAM (restriction #1) before scheduling.
    data:
        The payload when resident in host memory (in-core mode).
    loader:
        Zero-argument callable producing the payload (out-of-core mode);
        exactly one of ``data``/``loader`` should be set for functional
        runs, neither for timing-only runs.
    on_disk:
        True when the payload must be charged a disk read in the
        simulated pipeline.
    meta:
        Task-specific metadata (the renderer stores the Brick here).
    """

    id: int
    nbytes: int
    data: Optional[np.ndarray] = None
    loader: Optional[Callable[[], np.ndarray]] = None
    on_disk: bool = False
    meta: Any = None

    def __post_init__(self):
        if self.nbytes < 0:
            raise ValueError("chunk nbytes must be non-negative")
        if self.data is not None and self.loader is not None:
            raise ValueError("chunk cannot have both data and loader")

    @property
    def is_materialised(self) -> bool:
        return self.data is not None

    def payload(self) -> np.ndarray:
        """Return the payload, loading it if necessary."""
        if self.data is not None:
            return self.data
        if self.loader is None:
            raise ValueError(f"chunk {self.id} has no payload source")
        data = self.loader()
        if data.nbytes != self.nbytes:
            raise ValueError(
                f"chunk {self.id}: loader returned {data.nbytes} B, declared {self.nbytes} B"
            )
        return data

    def fits_on(self, vram_bytes: int, static_bytes: int = 0) -> bool:
        """Library restriction #1: the map task must fit in GPU memory."""
        return self.nbytes + static_bytes <= vram_bytes
