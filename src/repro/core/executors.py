"""Executors: where a job runs.

* :class:`InProcessExecutor` — pure functional execution (no clock).  The
  algorithmic content of the library: map → partition (placeholder
  discard + routing) → sort (θ(n) counting sort) → reduce.  Used by
  tests, examples, and the correctness half of every benchmark.
* :class:`SimClusterExecutor` — timing execution on the simulated
  cluster.  Consumes :class:`~repro.core.scheduler.MapWork` items whose
  counters come either from functional runs or from the analytic
  workload model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..observability.tracer import span
from ..sim.node import ClusterRuntime, ClusterSpec
from .chunk import Chunk
from .job import JobConfig, MapReduceSpec
from .keyvalue import discard_placeholders, validate_pairs
from .scheduler import MapWork, SimOutcome, run_simulated_job
from .sort import counting_sort_pairs
from .stats import JobStats

__all__ = [
    "InProcessResult",
    "InProcessExecutor",
    "PartitionReduceSpec",
    "ShuffleSpec",
    "SimClusterExecutor",
    "make_map_work",
    "map_chunk_to_runs",
    "merge_partition_runs",
]


@dataclass(frozen=True)
class ShuffleSpec:
    """The shuffle plane's partition-ownership and run-routing contract.

    Every execution path — the serial :class:`InProcessExecutor`, the
    pool parent, and the pool workers — shares this one object, so the
    three questions that decide where fragment bytes go always have the
    same answer everywhere:

    * **bucketing** (:meth:`bucket_runs`): how a chunk's partitioned
      pairs become one contiguous run per reducer partition (the
      Partition stage's output layout, streamed over rings and
      concatenated in chunk order by the Sort stage);
    * **ownership** (:meth:`owner_of` / :meth:`owned_partitions`):
      which worker reduces which partition (``partition % n_workers``
      — static, so results can never depend on scheduling);
    * the degenerate serial case: ``n_workers=1`` makes worker 0 own
      everything, which is exactly what :class:`InProcessExecutor`
      (and the pool's parent-side reduce) execute.

    Keys are disjoint per partition, so ownership placement cannot
    change reduced outputs — only who computes them.
    """

    n_reducers: int
    n_workers: int = 1

    def __post_init__(self):
        if self.n_reducers < 1:
            raise ValueError("need at least one reducer partition")
        if self.n_workers < 1:
            raise ValueError("need at least one worker")

    def owner_of(self, partition: int) -> int:
        """The worker that runs Sort+Reduce for ``partition``."""
        if not 0 <= partition < self.n_reducers:
            raise ValueError(f"partition {partition} out of range")
        return partition % self.n_workers

    def owned_partitions(self, worker: int) -> list[int]:
        """All partitions ``worker`` owns, in ascending order."""
        if not 0 <= worker < self.n_workers:
            raise ValueError(f"worker {worker} out of range")
        return list(range(worker, self.n_reducers, self.n_workers))

    def degrade(self, n_workers: int) -> "ShuffleSpec":
        """The same reducer partitions re-owned over a *shrunken* pool.

        This is the degradation step of the pool supervisor: after a
        worker slot is quarantined for repeated failures, every
        partition is deterministically re-assigned by the identical
        ``partition % n_workers`` rule over the surviving count.
        Because keys are disjoint per partition and reduced outputs are
        assembled in partition order, re-owning cannot change results —
        only who computes them (the property the recovery golden tests
        pin).
        """
        n_workers = int(n_workers)
        if not 1 <= n_workers <= self.n_workers:
            raise ValueError(
                f"can only degrade to 1..{self.n_workers} workers, "
                f"got {n_workers}"
            )
        return ShuffleSpec(self.n_reducers, n_workers)

    def bucket_runs(
        self, pairs: np.ndarray, dests: np.ndarray
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Split partitioned ``pairs`` into one run per reducer.

        Returns ``(runs, routed)`` where ``runs[r]`` holds the pairs
        destined for partition ``r`` (in emission order — the stable
        counting sort downstream relies on it) and ``routed[r]`` its
        length.  This is the literal Partition-stage bucketing every
        executor runs, so run layouts are identical by construction.
        """
        routed = np.zeros(self.n_reducers, dtype=np.int64)
        runs: list[np.ndarray] = []
        for r in range(self.n_reducers):
            sel = pairs[dests == r]
            routed[r] = len(sel)
            runs.append(sel)
        return runs, routed


@dataclass
class InProcessResult:
    """Functional job output."""

    outputs: list[tuple[np.ndarray, np.ndarray]]  # per reducer: (keys, values)
    stats: JobStats
    pairs_per_reducer: np.ndarray
    works: list[MapWork]  # per-chunk counters, reusable by the simulator


def map_chunk_to_runs(
    spec, chunk: Chunk
) -> tuple[list[np.ndarray], int, int, dict, np.ndarray]:
    """Map + Partition one chunk: the per-"GPU" half of the pipeline.

    Returns ``(per-reducer runs, emitted, kept, work counters, routed)``.
    ``spec`` only needs the ``mapper``/``partitioner``/``combiner``/
    ``kv``/``max_key``/``n_reducers`` attributes, so both a
    :class:`~repro.core.job.MapReduceSpec` and the pool workers' frame
    context qualify — the multiprocess executor's bitwise parity with
    :class:`InProcessExecutor` holds *by construction* because every
    execution path runs this exact function.  Run bucketing goes
    through :meth:`ShuffleSpec.bucket_runs`, the same routing contract
    the shuffle planes use for ownership, so the run layout a reducer
    receives is identical no matter which transport carried it.
    """
    out = spec.mapper.map(chunk)
    validate_pairs(out.pairs, spec.kv, spec.max_key)
    emitted = len(out.pairs)
    pairs = discard_placeholders(out.pairs, spec.kv)
    if spec.combiner is not None:
        pairs = spec.combiner.combine(pairs)
    kept = len(pairs)
    dests = spec.partitioner.partition(spec.kv.keys(pairs))
    runs, routed = ShuffleSpec(spec.n_reducers).bucket_runs(pairs, dests)
    return runs, emitted, kept, out.work, routed


def merge_partition_runs(
    spec, runs_per_chunk: Sequence[Sequence[Optional[np.ndarray]]]
) -> tuple[list[tuple[np.ndarray, np.ndarray]], np.ndarray]:
    """Sort + Reduce every partition from its chunk-ordered runs.

    ``runs_per_chunk[ci][r]`` is chunk ``ci``'s run for reducer ``r``
    (None or empty when nothing was routed there).  Concatenation is in
    chunk order — for distributed callers this, plus the stable counting
    sort, is what makes results independent of completion order.
    Returns per-reducer ``(keys, values)`` outputs and received-pair
    counts.
    """
    n_red = spec.n_reducers
    # Distributed callers renumber their owned partitions 0..n-1; the
    # optional labels map spans back to job-level partition ids so the
    # trace shows `reduce:partition=<global p>` wherever it ran.
    labels = getattr(spec, "partition_labels", None)
    frame_seq = getattr(spec, "frame_seq", None)
    outputs: list[tuple[np.ndarray, np.ndarray]] = []
    pairs_per_reducer = np.zeros(n_red, dtype=np.int64)
    for r in range(n_red):
        parts = [
            runs[r]
            for runs in runs_per_chunk
            if runs is not None and runs[r] is not None and len(runs[r])
        ]
        if parts:
            received = np.concatenate(parts)
        else:
            received = spec.kv.empty()
        pairs_per_reducer[r] = len(received)
        p = int(labels[r]) if labels is not None else r
        with span(
            f"reduce:partition={p}",
            cat="reduce",
            pairs=len(received),
            **({"frame": frame_seq} if frame_seq is not None else {}),
        ):
            sr = counting_sort_pairs(
                received, spec.kv.key_field, 0, spec.max_key
            )
            keys, values = spec.reducer.reduce_all(sr.pairs)
        outputs.append((keys, values))
    return outputs, pairs_per_reducer


@dataclass
class PartitionReduceSpec:
    """The minimal spec a distributed Sort+Reduce stage runs against.

    :func:`merge_partition_runs` only reads ``n_reducers`` / ``kv`` /
    ``max_key`` / ``reducer`` from its spec, so a worker that owns a
    *subset* of the partitions can renumber them ``0..n-1``, wrap the
    pieces in this view, and execute the **literal** parent-side
    function over its chunk-ordered runs — which is what makes
    worker-side reduce bitwise-identical to parent-side reduce by
    construction (reducer keys are disjoint per partition, so no
    cross-partition state exists to diverge on).
    """

    n_reducers: int
    kv: object
    max_key: int
    reducer: object
    # Job-level ids of the renumbered partitions (ascending, one per
    # local index) and the frame being reduced — only read by tracing,
    # so span names carry the global partition id (not the worker-local
    # renumbering) and pipelined frames stay distinguishable.
    partition_labels: Optional[Sequence[int]] = None
    frame_seq: Optional[int] = None


def make_map_work(
    chunk: Chunk, gpu: int, emitted: int, work: dict, routed: np.ndarray
) -> MapWork:
    """Assemble the per-chunk :class:`MapWork` record the simulator replays."""
    return MapWork(
        chunk_id=chunk.id,
        gpu=gpu,
        upload_bytes=chunk.nbytes,
        n_rays=int(work.get("n_rays", 0)),
        n_samples=int(work.get("n_samples", 0)),
        pairs_emitted=emitted,
        pairs_to_reducer=routed,
        read_from_disk=chunk.on_disk,
    )


class InProcessExecutor:
    """Run the full MapReduce pipeline functionally in this process."""

    def __init__(self, config: Optional[JobConfig] = None):
        # A `config=JobConfig()` default would be evaluated once at class
        # definition and shared by every instance; instantiate per-instance.
        self.config = config if config is not None else JobConfig()

    def execute(
        self,
        spec: MapReduceSpec,
        chunks: Sequence[Chunk],
        chunk_to_gpu: Optional[Sequence[int]] = None,
    ) -> InProcessResult:
        """Execute ``spec`` over ``chunks``.

        ``chunk_to_gpu`` (optional) records which simulated GPU each
        chunk *would* run on, so the returned :class:`MapWork` items can
        be replayed through :class:`SimClusterExecutor` for timing.
        """
        spec.mapper.initialize()
        spec.reducer.initialize()
        stats = JobStats()
        works: list[MapWork] = []
        runs_per_chunk: list[list[np.ndarray]] = []
        for ci, chunk in enumerate(chunks):
            with span(f"map:chunk={ci}", cat="map", chunk=ci):
                runs, emitted, kept, work, routed = map_chunk_to_runs(
                    spec, chunk
                )
            runs_per_chunk.append(runs)
            stats.add_map(work, emitted, kept)
            works.append(
                make_map_work(
                    chunk,
                    chunk_to_gpu[ci] if chunk_to_gpu is not None else 0,
                    emitted,
                    work,
                    routed,
                )
            )
        outputs, pairs_per_reducer = merge_partition_runs(spec, runs_per_chunk)
        return InProcessResult(
            outputs=outputs,
            stats=stats,
            pairs_per_reducer=pairs_per_reducer,
            works=works,
        )


class SimClusterExecutor:
    """Replay :class:`MapWork` items on a simulated cluster for timing."""

    def __init__(self, cluster_spec: ClusterSpec, config: Optional[JobConfig] = None):
        self.cluster_spec = cluster_spec
        self.config = config if config is not None else JobConfig()

    def execute(
        self,
        works: Sequence[MapWork],
        pair_nbytes: int,
        owned_keys_per_reducer: Optional[np.ndarray] = None,
    ) -> tuple[SimOutcome, ClusterRuntime]:
        """Run the timing simulation; returns the outcome and the runtime
        (whose trace callers can inspect for Gantt-level detail)."""
        cluster = ClusterRuntime(self.cluster_spec)
        outcome = run_simulated_job(
            cluster,
            list(works),
            pair_nbytes=pair_nbytes,
            config=self.config,
            owned_keys_per_reducer=owned_keys_per_reducer,
        )
        return outcome, cluster
