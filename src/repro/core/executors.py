"""Executors: where a job runs.

* :class:`InProcessExecutor` — pure functional execution (no clock).  The
  algorithmic content of the library: map → partition (placeholder
  discard + routing) → sort (θ(n) counting sort) → reduce.  Used by
  tests, examples, and the correctness half of every benchmark.
* :class:`SimClusterExecutor` — timing execution on the simulated
  cluster.  Consumes :class:`~repro.core.scheduler.MapWork` items whose
  counters come either from functional runs or from the analytic
  workload model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..sim.node import ClusterRuntime, ClusterSpec
from .chunk import Chunk
from .job import JobConfig, MapReduceSpec
from .keyvalue import discard_placeholders, validate_pairs
from .scheduler import MapWork, SimOutcome, run_simulated_job
from .sort import counting_sort_pairs
from .stats import JobStats

__all__ = ["InProcessResult", "InProcessExecutor", "SimClusterExecutor"]


@dataclass
class InProcessResult:
    """Functional job output."""

    outputs: list[tuple[np.ndarray, np.ndarray]]  # per reducer: (keys, values)
    stats: JobStats
    pairs_per_reducer: np.ndarray
    works: list[MapWork]  # per-chunk counters, reusable by the simulator


class InProcessExecutor:
    """Run the full MapReduce pipeline functionally in this process."""

    def __init__(self, config: JobConfig = JobConfig()):
        self.config = config

    def execute(
        self,
        spec: MapReduceSpec,
        chunks: Sequence[Chunk],
        chunk_to_gpu: Optional[Sequence[int]] = None,
    ) -> InProcessResult:
        """Execute ``spec`` over ``chunks``.

        ``chunk_to_gpu`` (optional) records which simulated GPU each
        chunk *would* run on, so the returned :class:`MapWork` items can
        be replayed through :class:`SimClusterExecutor` for timing.
        """
        n_red = spec.n_reducers
        spec.mapper.initialize()
        spec.reducer.initialize()
        stats = JobStats()
        per_reducer: list[list[np.ndarray]] = [[] for _ in range(n_red)]
        works: list[MapWork] = []

        for ci, chunk in enumerate(chunks):
            out = spec.mapper.map(chunk)
            validate_pairs(out.pairs, spec.kv, spec.max_key)
            emitted = len(out.pairs)
            pairs = discard_placeholders(out.pairs, spec.kv)
            if spec.combiner is not None:
                pairs = spec.combiner.combine(pairs)
            kept = len(pairs)
            stats.add_map(out.work, emitted, kept)
            dests = spec.partitioner.partition(spec.kv.keys(pairs))
            routed = np.zeros(n_red, dtype=np.int64)
            for r in range(n_red):
                sel = pairs[dests == r]
                routed[r] = len(sel)
                if len(sel):
                    per_reducer[r].append(sel)
            works.append(
                MapWork(
                    chunk_id=chunk.id,
                    gpu=chunk_to_gpu[ci] if chunk_to_gpu is not None else 0,
                    upload_bytes=chunk.nbytes,
                    n_rays=int(out.work.get("n_rays", 0)),
                    n_samples=int(out.work.get("n_samples", 0)),
                    pairs_emitted=emitted,
                    pairs_to_reducer=routed,
                    read_from_disk=chunk.on_disk,
                )
            )

        outputs: list[tuple[np.ndarray, np.ndarray]] = []
        pairs_per_reducer = np.zeros(n_red, dtype=np.int64)
        for r in range(n_red):
            if per_reducer[r]:
                received = np.concatenate(per_reducer[r])
            else:
                received = spec.kv.empty()
            pairs_per_reducer[r] = len(received)
            sr = counting_sort_pairs(received, spec.kv.key_field, 0, spec.max_key)
            keys, values = spec.reducer.reduce_all(sr.pairs)
            outputs.append((keys, values))

        return InProcessResult(
            outputs=outputs,
            stats=stats,
            pairs_per_reducer=pairs_per_reducer,
            works=works,
        )


class SimClusterExecutor:
    """Replay :class:`MapWork` items on a simulated cluster for timing."""

    def __init__(self, cluster_spec: ClusterSpec, config: JobConfig = JobConfig()):
        self.cluster_spec = cluster_spec
        self.config = config

    def execute(
        self,
        works: Sequence[MapWork],
        pair_nbytes: int,
        owned_keys_per_reducer: Optional[np.ndarray] = None,
    ) -> tuple[SimOutcome, ClusterRuntime]:
        """Run the timing simulation; returns the outcome and the runtime
        (whose trace callers can inspect for Gantt-level detail)."""
        cluster = ClusterRuntime(self.cluster_spec)
        outcome = run_simulated_job(
            cluster,
            list(works),
            pair_nbytes=pair_nbytes,
            config=self.config,
            owned_keys_per_reducer=owned_keys_per_reducer,
        )
        return outcome, cluster
