"""Job specification and configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .api import Combiner, Mapper, Partitioner, Reducer
from .keyvalue import KVSpec

__all__ = ["MapReduceSpec", "JobConfig"]


@dataclass
class MapReduceSpec:
    """Everything that defines *what* a job computes (not where/when).

    ``max_key`` bounds the dense key space (image pixel count for the
    renderer); the counting sort and the reducers' owned-range math rely
    on it.
    """

    mapper: Mapper
    reducer: Reducer
    partitioner: Partitioner
    kv: KVSpec
    max_key: int
    combiner: Optional[Combiner] = None

    def __post_init__(self):
        if self.max_key < 0:
            raise ValueError("max_key must be non-negative")
        if self.partitioner.n_reducers < 1:
            raise ValueError("partitioner must have reducers")

    @property
    def n_reducers(self) -> int:
        return self.partitioner.n_reducers


@dataclass(frozen=True)
class JobConfig:
    """Execution knobs shared by the functional and simulated executors.

    ``sort_on``/``reduce_on`` mirror the paper's device choices: sorting
    runs on CPU or GPU "depending on the amount of data" (``auto`` picks
    GPU above ``sort_gpu_cutoff`` pairs); compositing was "empirically
    ... quicker on the CPU", the default here.
    """

    send_threshold_pairs: int = 1 << 16
    sort_on: str = "auto"  # "cpu" | "gpu" | "auto"
    reduce_on: str = "cpu"  # "cpu" | "gpu"
    sort_gpu_cutoff: int = 1 << 17  # per-reducer pairs where GPU sort wins
    include_disk: bool = False  # charge disk reads in the map stream
    reduce_threads: int = 1  # CPU threads per reduce task
    # Future-work modes the paper proposes in §7:
    async_upload: bool = False  # linear-buffer uploads + manual filtering
    zero_copy_fragments: bool = False  # kernel writes pairs to host memory

    def __post_init__(self):
        if self.send_threshold_pairs < 1:
            raise ValueError("send_threshold_pairs must be positive")
        if self.sort_on not in ("cpu", "gpu", "auto"):
            raise ValueError(f"bad sort_on {self.sort_on!r}")
        if self.reduce_on not in ("cpu", "gpu"):
            raise ValueError(f"bad reduce_on {self.reduce_on!r}")
        if self.sort_gpu_cutoff < 0 or self.reduce_threads < 1:
            raise ValueError("bad cutoff/threads")

    def sort_device(self, n_pairs: int) -> str:
        """Resolve the sort device for a given data size."""
        if self.sort_on != "auto":
            return self.sort_on
        return "gpu" if n_pairs > self.sort_gpu_cutoff else "cpu"
