"""Key-value conventions and validation.

Paper restrictions encoded here:

* **Keys are always four-byte integers** and if key X exists, all keys
  ``0 ≤ k ≤ X`` have a high probability of existing (dense keys).  This
  is what makes a θ(n) counting sort and modulo partitioning possible.
* **Emitted values are homogeneous in size** — we require a structured
  dtype with a designated int32 key field; everything else is the value.
* **Every thread emits**; useless pairs carry the placeholder key −1 and
  are discarded during Partition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KVSpec", "PLACEHOLDER", "discard_placeholders", "validate_pairs"]

PLACEHOLDER = np.int32(-1)


@dataclass(frozen=True)
class KVSpec:
    """Shape contract for a job's key-value pairs."""

    dtype: np.dtype
    key_field: str = "key"

    def __post_init__(self):
        dt = np.dtype(self.dtype)
        if dt.names is None or self.key_field not in dt.names:
            raise ValueError(
                f"dtype must be structured with a {self.key_field!r} field"
            )
        kf = dt.fields[self.key_field][0]
        if kf != np.dtype(np.int32):
            raise ValueError(
                f"key field must be int32 (paper restriction), got {kf}"
            )
        object.__setattr__(self, "dtype", dt)

    @property
    def pair_nbytes(self) -> int:
        return self.dtype.itemsize

    @property
    def value_nbytes(self) -> int:
        return self.dtype.itemsize - 4

    def keys(self, pairs: np.ndarray) -> np.ndarray:
        return pairs[self.key_field]

    def empty(self) -> np.ndarray:
        return np.empty(0, dtype=self.dtype)


def discard_placeholders(pairs: np.ndarray, spec: KVSpec) -> np.ndarray:
    """Drop placeholder emissions (library does this during Partition)."""
    return pairs[pairs[spec.key_field] != PLACEHOLDER]


def validate_pairs(pairs: np.ndarray, spec: KVSpec, max_key: int) -> None:
    """Check the key contract: int32, within [0, max_key] or placeholder."""
    if pairs.dtype != spec.dtype:
        raise TypeError(f"pairs dtype {pairs.dtype} != spec {spec.dtype}")
    if len(pairs) == 0:
        return
    keys = spec.keys(pairs)
    bad = (keys != PLACEHOLDER) & ((keys < 0) | (keys > max_key))
    if np.any(bad):
        example = int(keys[np.nonzero(bad)[0][0]])
        raise ValueError(f"key {example} outside [0, {max_key}]")
