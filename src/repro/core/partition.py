"""Partitioners — key → reducer routing.

"Partitioning is done in a per-pixel round-robin fashion.  This is,
empirically, the highest-performing method.  A modulo is sufficient to
determine the reducer to which a key-value pair must be sent."

Alternatives (striped/block, tiled for images, custom) are provided for
the ablation benchmark the paper's §6 discussion motivates: round-robin
spreads dense pixel keys evenly, while contiguous schemes skew load when
the image footprint is uneven.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from .api import Partitioner

__all__ = [
    "RoundRobinPartitioner",
    "BlockPartitioner",
    "TiledPartitioner",
    "CallablePartitioner",
]


class RoundRobinPartitioner(Partitioner):
    """The paper's default: ``reducer = key mod n_reducers``."""

    def partition(self, keys: np.ndarray) -> np.ndarray:
        return (np.asarray(keys, dtype=np.int64) % self.n_reducers).astype(np.int32)

    def owned_key_count(self, reducer: int, n_keys: int) -> int:
        if not 0 <= reducer < self.n_reducers:
            raise ValueError(f"reducer {reducer} out of range")
        base, extra = divmod(n_keys, self.n_reducers)
        return base + (1 if reducer < extra else 0)

    def local_index(self, keys: np.ndarray) -> np.ndarray:
        """Dense per-reducer index of each key (key // n)."""
        return np.asarray(keys, dtype=np.int64) // self.n_reducers

    def global_key(self, reducer: int, local: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`local_index` for a given reducer."""
        return np.asarray(local, dtype=np.int64) * self.n_reducers + reducer


class BlockPartitioner(Partitioner):
    """Striped/contiguous ranges: reducer ``r`` owns keys ``[r·B, (r+1)·B)``."""

    def __init__(self, n_reducers: int, n_keys: int):
        super().__init__(n_reducers)
        if n_keys < 1:
            raise ValueError("n_keys must be positive")
        self.n_keys = n_keys
        self.block = math.ceil(n_keys / n_reducers)

    def partition(self, keys: np.ndarray) -> np.ndarray:
        r = np.asarray(keys, dtype=np.int64) // self.block
        return np.minimum(r, self.n_reducers - 1).astype(np.int32)

    def owned_key_count(self, reducer: int, n_keys: int) -> int:
        lo = reducer * self.block
        hi = min((reducer + 1) * self.block, n_keys)
        if reducer == self.n_reducers - 1:
            hi = n_keys
        return max(hi - lo, 0)


class TiledPartitioner(Partitioner):
    """Checkerboard tiles over an image: key = y·width + x, tile owner
    round-robins over reducers.  One of the direct-send distributions the
    paper weighed against per-pixel round-robin."""

    def __init__(self, n_reducers: int, width: int, height: int, tile: int = 32):
        super().__init__(n_reducers)
        if width < 1 or height < 1 or tile < 1:
            raise ValueError("bad image/tile dimensions")
        self.width = width
        self.height = height
        self.tile = tile
        self.tiles_x = math.ceil(width / tile)

    def partition(self, keys: np.ndarray) -> np.ndarray:
        k = np.asarray(keys, dtype=np.int64)
        x = k % self.width
        y = k // self.width
        t = (y // self.tile) * self.tiles_x + (x // self.tile)
        return (t % self.n_reducers).astype(np.int32)


class CallablePartitioner(Partitioner):
    """Wrap an arbitrary vectorised key→reducer function."""

    def __init__(self, n_reducers: int, fn: Callable[[np.ndarray], np.ndarray]):
        super().__init__(n_reducers)
        self.fn = fn

    def partition(self, keys: np.ndarray) -> np.ndarray:
        out = np.asarray(self.fn(np.asarray(keys)))
        if out.shape != np.asarray(keys).shape:
            raise ValueError("partition function changed shape")
        if len(out) and (out.min() < 0 or out.max() >= self.n_reducers):
            raise ValueError("partition function produced out-of-range reducer")
        return out.astype(np.int32)
