"""The streaming scheduler — where the paper's overlap happens.

This module turns a list of :class:`MapWork` items (one per chunk, with
all work counters known) into discrete-event processes on a
:class:`~repro.sim.node.ClusterRuntime`:

* each GPU runs a mapper process: (disk read) → synchronous texture
  upload → ray-cast kernel → asynchronous fragment download → host
  partition → asynchronous direct-sends to reducer nodes, immediately
  starting the next chunk while sends drain;
* the **map phase** ends when every mapper is done *and* every message
  has been delivered ("once all Mappers have finished and all data has
  been routed to the proper Reducer");
* each reducer then sorts its received pairs (CPU counting sort, or GPU
  upload+kernel+download above the auto cutoff) — the **sort phase**;
* each reducer composites (CPU by default, per the paper's empirical
  choice) — the **reduce phase**.

Reducer ``r`` lives on the node hosting GPU ``r``, so with four GPUs per
node four reduce tasks contend for the node's four cores, exactly the
contention structure of the AC testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..sim import trace as T
from ..sim.engine import AllOf, Environment, Event
from ..sim.node import ClusterRuntime
from ..sim.trace import StageBreakdown
from .job import JobConfig
from .stream import split_message_sizes

__all__ = ["MapWork", "SimOutcome", "run_simulated_job"]


@dataclass
class MapWork:
    """Everything the simulator needs to know about one chunk's map task.

    Built either from a *functional* kernel run (counts measured) or from
    the *analytic* workload model (counts predicted) — the scheduler does
    not care which.
    """

    chunk_id: int
    gpu: int  # global GPU index executing this chunk
    upload_bytes: int  # ghost-padded brick payload
    n_rays: int  # padded kernel thread count
    n_samples: int  # trilinear samples taken
    pairs_emitted: int  # kernel emissions incl. placeholders (D2H size)
    pairs_to_reducer: np.ndarray  # (n_reducers,) kept pairs routed to each reducer
    read_from_disk: bool = False

    def __post_init__(self):
        self.pairs_to_reducer = np.asarray(self.pairs_to_reducer, dtype=np.int64)
        if np.any(self.pairs_to_reducer < 0):
            raise ValueError("negative pair counts")
        if self.pairs_emitted < int(self.pairs_to_reducer.sum()):
            raise ValueError("emitted fewer pairs than routed")


@dataclass
class SimOutcome:
    """Timing results of one simulated job."""

    breakdown: StageBreakdown
    total_runtime: float
    pairs_per_reducer: np.ndarray
    bytes_internode: int
    bytes_intranode: int
    n_messages: int
    sort_device: str
    map_wall: float = 0.0
    sort_wall: float = 0.0
    reduce_wall: float = 0.0
    bytes_uploaded: int = 0  # H2D chunk payloads
    bytes_downloaded: int = 0  # D2H emitted pairs
    gpu_utilization: float = 0.0  # mean busy fraction of GPU engines


def _gpu_node(cluster: ClusterRuntime, gpu_index: int) -> int:
    return cluster.gpus[gpu_index].node.index


def run_simulated_job(
    cluster: ClusterRuntime,
    works: list[MapWork],
    pair_nbytes: int,
    config: Optional[JobConfig] = None,
    reduce_output_bytes_per_key: int = 16,
    owned_keys_per_reducer: Optional[np.ndarray] = None,
) -> SimOutcome:
    """Run the four-stage pipeline on the simulated cluster.

    ``owned_keys_per_reducer`` sizes the GPU-reduce result download; it
    defaults to zero (the paper leaves final pixels wherever the reducer
    ran and excludes stitching from timings).
    """
    if config is None:
        config = JobConfig()
    env = cluster.env
    trace = cluster.trace
    n_reducers = len(works[0].pairs_to_reducer) if works else cluster.gpu_count
    if any(len(w.pairs_to_reducer) != n_reducers for w in works):
        raise ValueError("inconsistent reducer counts across works")
    for w in works:
        if not 0 <= w.gpu < cluster.gpu_count:
            raise ValueError(f"work {w.chunk_id} targets missing GPU {w.gpu}")
        spec = cluster.gpus[w.gpu].spec
        if w.upload_bytes > spec.vram_bytes:
            raise MemoryError(
                f"chunk {w.chunk_id} ({w.upload_bytes} B) exceeds VRAM of gpu{w.gpu}"
            )
    if n_reducers > cluster.gpu_count:
        raise ValueError("more reducers than GPUs")

    # Traffic bookkeeping (filled by the processes).
    counters = {"internode": 0, "intranode": 0, "messages": 0}
    pairs_per_reducer = np.zeros(n_reducers, dtype=np.int64)
    for w in works:
        pairs_per_reducer += w.pairs_to_reducer

    trace.mark("start", env.now)
    send_events: list[Event] = []

    def send_proc(src_node: int, dst_node: int, nbytes: int):
        """One message: sender-side staging, the wire, receiver-side append."""
        sender = cluster.nodes[src_node]
        receiver = cluster.nodes[dst_node]
        yield env.process(
            sender.cpu_work(sender.spec.cpu.message_handling_overhead, T.CAT_HOST)
        )
        yield env.process(cluster.send(src_node, dst_node, nbytes))
        yield env.process(
            receiver.cpu_work(receiver.spec.cpu.message_handling_overhead, T.CAT_HOST)
        )

    def mapper_proc(gpu_index: int, my_works: list[MapWork]):
        gpu = cluster.gpus[gpu_index]
        node = gpu.node
        src_node = node.index
        for w in my_works:
            if w.read_from_disk and config.include_disk:
                yield env.process(node.read_disk(w.upload_bytes))
            kernel_time = gpu.spec.raycast_time(w.n_rays, w.n_samples)
            if w.upload_bytes == 0:
                # Brick already resident on the GPU (interactive frame
                # sequences re-render without re-uploading).
                pass
            elif config.async_upload:
                # §7 mode: linear-buffer copy overlaps the engine, but the
                # kernel filters manually in shared memory.
                yield env.process(gpu.upload_async(w.upload_bytes))
                kernel_time *= gpu.spec.manual_filter_slowdown
            else:
                yield env.process(
                    gpu.upload_texture(
                        w.upload_bytes, gpu.spec.texture_setup_overhead
                    )
                )
            if config.zero_copy_fragments:
                # §7 mode: pairs stream straight to host-mapped memory —
                # no D2H step, but emission pays the 0-copy write path.
                kernel_time += (
                    w.pairs_emitted * pair_nbytes / gpu.spec.zero_copy_bandwidth
                )
                yield env.process(gpu.run_kernel(kernel_time))
            else:
                yield env.process(gpu.run_kernel(kernel_time))
                yield env.process(gpu.download(w.pairs_emitted * pair_nbytes))
            # Host-side partition of the emitted pairs (modulo + binning +
            # placeholder compaction into pinned send buffers).
            yield env.process(
                node.cpu_work(
                    node.spec.cpu.task_overhead
                    + node.spec.cpu.partition_time(w.pairs_emitted),
                    T.CAT_PARTITION,
                )
            )
            # Direct-send: one message stream per *reducer process* (the
            # paper's Y−1 communication requests).  Pairs for reducers on
            # this node cost a memcpy; remote ones cross the NIC in
            # threshold-sized messages.  Sends are spawned, not awaited —
            # the mapper moves on to its next chunk (overlap).
            for r in range(n_reducers):
                n_pairs = int(w.pairs_to_reducer[r])
                if n_pairs == 0:
                    continue
                dst_node = _gpu_node(cluster, r)
                for msg_pairs in split_message_sizes(
                    n_pairs, config.send_threshold_pairs
                ):
                    nbytes = msg_pairs * pair_nbytes
                    counters["messages"] += 1
                    if dst_node == src_node:
                        counters["intranode"] += nbytes
                    else:
                        counters["internode"] += nbytes
                    send_events.append(
                        env.process(send_proc(src_node, dst_node, nbytes))
                    )

    by_gpu: dict[int, list[MapWork]] = {}
    for w in works:
        by_gpu.setdefault(w.gpu, []).append(w)
    mapper_events = [
        env.process(mapper_proc(g, ws), name=f"mapper-gpu{g}")
        for g, ws in sorted(by_gpu.items())
    ]

    outcome = SimOutcome(
        breakdown=StageBreakdown(),
        total_runtime=0.0,
        pairs_per_reducer=pairs_per_reducer,
        bytes_internode=0,
        bytes_intranode=0,
        n_messages=0,
        sort_device="cpu",
    )

    def coordinator():
        # --- map phase: mappers finished AND all sends delivered --------
        yield AllOf(env, mapper_events)
        # send_events keeps growing while mappers run; after mappers are
        # done the list is final.
        if send_events:
            yield AllOf(env, send_events)
        trace.mark("map_phase_end", env.now)

        # --- sort phase -----------------------------------------------------
        # Device choice per reducer, "depending on the amount of data"
        # (paper §3.1.2); the reported device is the busiest reducer's.
        busiest = int(pairs_per_reducer.max(initial=0))
        outcome.sort_device = config.sort_device(busiest)
        sort_procs = []
        for r in range(n_reducers):
            n = int(pairs_per_reducer[r])
            if n == 0:
                continue
            gpu = cluster.gpus[r]
            node = gpu.node
            if config.sort_device(n) == "gpu":
                sort_procs.append(
                    env.process(_gpu_sort_proc(cluster, r, n, pair_nbytes))
                )
            else:
                sort_procs.append(
                    env.process(
                        node.cpu_work(
                            node.spec.cpu.task_overhead
                            + node.spec.cpu.counting_sort_time(n),
                            T.CAT_SORT,
                        )
                    )
                )
        if sort_procs:
            yield AllOf(env, sort_procs)
        trace.mark("sort_phase_end", env.now)

        # --- reduce phase -----------------------------------------------------
        reduce_procs = []
        for r in range(n_reducers):
            n = int(pairs_per_reducer[r])
            if n == 0:
                continue
            gpu = cluster.gpus[r]
            node = gpu.node
            if config.reduce_on == "gpu":
                out_bytes = 0
                if owned_keys_per_reducer is not None:
                    out_bytes = (
                        int(owned_keys_per_reducer[r]) * reduce_output_bytes_per_key
                    )
                reduce_procs.append(
                    env.process(_gpu_reduce_proc(cluster, r, n, pair_nbytes, out_bytes))
                )
            else:
                reduce_procs.append(
                    env.process(
                        node.cpu_work(
                            node.spec.cpu.task_overhead
                            + node.spec.cpu.composite_time(
                                n, threads=config.reduce_threads
                            ),
                            T.CAT_REDUCE,
                            threads=config.reduce_threads,
                        )
                    )
                )
        if reduce_procs:
            yield AllOf(env, reduce_procs)
        trace.mark("reduce_phase_end", env.now)

    def _gpu_sort_proc(cluster, r, n_pairs, pair_nbytes):
        """GPU sort: host staging + buffer setup, pairs up, multi-kernel
        counting sort, pairs back."""
        gpu = cluster.gpus[r]
        node = gpu.node
        t0 = env.now
        yield env.process(node.cpu_work(node.spec.cpu.task_overhead, T.CAT_HOST))
        yield env.timeout(gpu.spec.task_setup_overhead)
        yield env.process(gpu.upload_texture(n_pairs * pair_nbytes))
        yield env.process(gpu.run_kernel(gpu.spec.sort_time(n_pairs), T.CAT_SORT))
        yield env.process(gpu.download(n_pairs * pair_nbytes))
        trace.record(T.CAT_SORT, f"gpu{r}:pipeline", t0, env.now)

    def _gpu_reduce_proc(cluster, r, n_pairs, pair_nbytes, out_bytes):
        """GPU reduce: host staging, per-pixel compositing kernels, result D2H."""
        gpu = cluster.gpus[r]
        node = gpu.node
        t0 = env.now
        yield env.process(node.cpu_work(node.spec.cpu.task_overhead, T.CAT_HOST))
        yield env.timeout(gpu.spec.task_setup_overhead)
        yield env.process(gpu.run_kernel(gpu.spec.composite_time(n_pairs), T.CAT_REDUCE))
        if out_bytes:
            yield env.process(gpu.download(out_bytes))
        trace.record(T.CAT_REDUCE, f"gpu{r}:pipeline", t0, env.now)

    env.process(coordinator(), name="coordinator")
    env.run()

    outcome.breakdown = StageBreakdown.from_trace(trace)
    outcome.total_runtime = trace.marks["reduce_phase_end"] - trace.marks["start"]
    outcome.bytes_internode = counters["internode"]
    outcome.bytes_intranode = counters["intranode"]
    outcome.n_messages = counters["messages"]
    outcome.map_wall = trace.marks["map_phase_end"] - trace.marks["start"]
    outcome.sort_wall = trace.marks["sort_phase_end"] - trace.marks["map_phase_end"]
    outcome.reduce_wall = trace.marks["reduce_phase_end"] - trace.marks["sort_phase_end"]
    outcome.bytes_uploaded = trace.bytes_moved(T.CAT_H2D) + trace.bytes_moved(
        T.CAT_H2D_ASYNC
    )
    outcome.bytes_downloaded = trace.bytes_moved(T.CAT_D2H)
    if outcome.total_runtime > 0 and cluster.gpu_count:
        busy = sum(
            g.engine.busy_time() for g in cluster.gpus
        )
        outcome.gpu_utilization = busy / (cluster.gpu_count * outcome.total_runtime)
    return outcome
