"""The Sort stage: a θ(n) counting sort over dense integer keys.

"We use a specialized counting sort on the CPU or GPU (depending on the
amount of data) that runs in θ(n) since the library knows the minimum
and maximum keys for each node, as well as the maximum number of keys."

The implementation builds the key histogram with ``np.bincount`` (one
linear pass) and converts it to slot offsets with a prefix sum.  Those
offsets make a comparison sort redundant: each pair's destination is its
key's slot start plus its arrival rank among equal keys, so one stable
linear scatter finishes the sort.  The scatter
(:func:`stable_counting_order`) runs at C speed through SciPy's COO→CSR
placement kernel (exactly the textbook counting-sort loop, preserving
arrival order within each key); when SciPy is absent we fall back to
NumPy's stable integer ``argsort``.  Stability means pairs with equal
keys keep arrival order, which makes distributed runs deterministic.
The same scatter is the building block of the Reduce side's
(pixel, depth) radix sort in :mod:`repro.render.compositing`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_UNRESOLVED = object()
_sp_tools = _UNRESOLVED  # lazily resolved on first use (SciPy import is slow)


def _load_counting_scatter():
    """Import SciPy's COO→CSR placement kernel and prove it still works.

    ``coo_tocsr`` is private SciPy API, so guard against signature or
    semantics drift (not just absence) with a tiny known-answer sort;
    any failure selects the pure-NumPy argsort fallback.
    """
    try:  # pragma: no cover - exercised via stable_counting_order
        from scipy.sparse import _sparsetools as tools

        keys = np.array([2, 0, 2, 1], dtype=np.int32)
        arrival = np.arange(4, dtype=np.int32)
        indptr = np.zeros(4, dtype=np.int32)
        cols = np.empty(4, dtype=np.int32)
        order = np.empty(4, dtype=np.int32)
        tools.coo_tocsr(3, 4, 4, keys, arrival, arrival, indptr, cols, order)
        if not np.array_equal(order, [1, 3, 0, 2]):
            return None
        return tools
    except Exception:  # pragma: no cover
        return None

__all__ = [
    "counting_scatter_available",
    "counting_sort_pairs",
    "run_length_groups",
    "stable_counting_order",
    "SortResult",
]


@dataclass
class SortResult:
    """Sorted pairs plus the compaction index the Reduce stage consumes."""

    pairs: np.ndarray  # sorted by key, stable
    unique_keys: np.ndarray  # ascending unique keys present
    starts: np.ndarray  # start offset of each key's run in `pairs`
    counts: np.ndarray  # run length per unique key

    def group(self, i: int) -> np.ndarray:
        """All pairs of the i-th unique key."""
        s = self.starts[i]
        return self.pairs[s : s + self.counts[i]]

    @property
    def n_groups(self) -> int:
        return len(self.unique_keys)


def counting_scatter_available() -> bool:
    """Whether the C counting-scatter fast path is usable (resolves lazily)."""
    global _sp_tools
    if _sp_tools is _UNRESOLVED:
        _sp_tools = _load_counting_scatter()
    return _sp_tools is not None


def stable_counting_order(keys: np.ndarray, n_slots: int) -> np.ndarray:
    """Stable bucket-major order of ``keys`` (dense ints in [0, n_slots)).

    The SciPy path is a single-pass counting scatter: COO→CSR placement
    walks the entries once in arrival order, dropping each into the next
    free slot of its key's run (the runs come from the histogram prefix
    sum).  Arrival indices ride along as the payload column and come back
    bucket-major — the stable sort permutation — with no comparisons.
    Falls back to NumPy's stable ``argsort`` without SciPy or for sizes
    past int32 indexing.
    """
    global _sp_tools
    if _sp_tools is _UNRESOLVED:
        _sp_tools = _load_counting_scatter()
    n = len(keys)
    if _sp_tools is not None and 0 < n < 2**31 and n_slots < 2**31:
        keys = np.asarray(keys)
        # The C placement loop does no bounds checking; a bad key would
        # corrupt memory rather than raise, so validate here — before the
        # int32 cast, which would let an oversized key wrap into range.
        if keys.min() < 0 or keys.max() >= n_slots:
            raise ValueError(
                f"keys outside [0, {n_slots}) in stable_counting_order"
            )
        keys32 = np.ascontiguousarray(keys, dtype=np.int32)
        arrival = np.arange(n, dtype=np.int32)
        indptr = np.zeros(n_slots + 1, dtype=np.int32)
        cols = np.empty(n, dtype=np.int32)
        order = np.empty(n, dtype=np.int32)
        _sp_tools.coo_tocsr(n_slots, n, n, keys32, arrival, arrival, indptr, cols, order)
        return order
    return np.argsort(keys, kind="stable")


def _permute_records(pairs: np.ndarray, order: np.ndarray) -> np.ndarray:
    """``pairs[order]`` but ~3× faster for plain fixed-width records.

    Fancy indexing on structured dtypes goes through a slow per-field
    path; reinterpreting the records as rows of a word-sized 2-D array
    lets ``np.take`` move each 24-byte record as a contiguous row.
    """
    n = len(pairs)
    itemsize = pairs.dtype.itemsize
    if pairs.flags.c_contiguous and itemsize % 4 == 0:
        rows = pairs.view(np.int32).reshape(n, itemsize // 4)
        return np.take(rows, order, axis=0).view(pairs.dtype).reshape(n)
    return pairs[order]


def counting_sort_pairs(
    pairs: np.ndarray,
    key_field: str,
    min_key: int,
    max_key: int,
) -> SortResult:
    """Stable counting sort of structured pairs on an int key field.

    ``min_key``/``max_key`` bound the keys this node can receive — the
    library knows them from the partitioner, which is what lets the sort
    avoid comparisons entirely.
    """
    if max_key < min_key:
        raise ValueError(f"empty key range [{min_key}, {max_key}]")
    n = len(pairs)
    if n == 0:
        return SortResult(
            pairs,
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0, np.int64),
        )
    keys = pairs[key_field].astype(np.int64)
    if keys.min() < min_key or keys.max() > max_key:
        raise ValueError(
            f"keys outside declared range [{min_key}, {max_key}]: "
            f"got [{keys.min()}, {keys.max()}]"
        )
    shifted = keys - min_key
    n_slots = max_key - min_key + 1
    hist = np.bincount(shifted, minlength=n_slots)
    order = stable_counting_order(shifted, n_slots)
    sorted_pairs = _permute_records(pairs, order)
    present = np.nonzero(hist)[0]
    counts = hist[present]
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    return SortResult(
        pairs=sorted_pairs,
        unique_keys=present + min_key,
        starts=starts.astype(np.int64),
        counts=counts.astype(np.int64),
    )


def run_length_groups(sorted_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(unique, starts, counts) of runs in an already-sorted key array."""
    n = len(sorted_keys)
    if n == 0:
        return (np.empty(0, np.int64),) * 3
    change = np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
    starts = np.nonzero(change)[0]
    counts = np.diff(np.r_[starts, n])
    return sorted_keys[starts].astype(np.int64), starts.astype(np.int64), counts.astype(np.int64)
