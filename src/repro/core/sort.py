"""The Sort stage: a θ(n) counting sort over dense integer keys.

"We use a specialized counting sort on the CPU or GPU (depending on the
amount of data) that runs in θ(n) since the library knows the minimum
and maximum keys for each node, as well as the maximum number of keys."

The implementation builds the key histogram with ``np.bincount`` (one
linear pass), converts it to starting offsets with a prefix sum, and
scatters elements to their slots.  NumPy's stable integer ``argsort`` is
a radix sort — also linear — and is used for the in-slot ordering so the
sort is **stable**: pairs with equal keys keep arrival order, which makes
distributed runs deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["counting_sort_pairs", "run_length_groups", "SortResult"]


@dataclass
class SortResult:
    """Sorted pairs plus the compaction index the Reduce stage consumes."""

    pairs: np.ndarray  # sorted by key, stable
    unique_keys: np.ndarray  # ascending unique keys present
    starts: np.ndarray  # start offset of each key's run in `pairs`
    counts: np.ndarray  # run length per unique key

    def group(self, i: int) -> np.ndarray:
        """All pairs of the i-th unique key."""
        s = self.starts[i]
        return self.pairs[s : s + self.counts[i]]

    @property
    def n_groups(self) -> int:
        return len(self.unique_keys)


def counting_sort_pairs(
    pairs: np.ndarray,
    key_field: str,
    min_key: int,
    max_key: int,
) -> SortResult:
    """Stable counting sort of structured pairs on an int key field.

    ``min_key``/``max_key`` bound the keys this node can receive — the
    library knows them from the partitioner, which is what lets the sort
    avoid comparisons entirely.
    """
    if max_key < min_key:
        raise ValueError(f"empty key range [{min_key}, {max_key}]")
    n = len(pairs)
    if n == 0:
        return SortResult(
            pairs,
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0, np.int64),
        )
    keys = pairs[key_field].astype(np.int64)
    if keys.min() < min_key or keys.max() > max_key:
        raise ValueError(
            f"keys outside declared range [{min_key}, {max_key}]: "
            f"got [{keys.min()}, {keys.max()}]"
        )
    shifted = keys - min_key
    hist = np.bincount(shifted, minlength=max_key - min_key + 1)
    # Stable linear scatter: NumPy's stable argsort on integers is radix.
    order = np.argsort(shifted, kind="stable")
    sorted_pairs = pairs[order]
    present = np.nonzero(hist)[0]
    counts = hist[present]
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    return SortResult(
        pairs=sorted_pairs,
        unique_keys=present + min_key,
        starts=starts.astype(np.int64),
        counts=counts.astype(np.int64),
    )


def run_length_groups(sorted_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(unique, starts, counts) of runs in an already-sorted key array."""
    n = len(sorted_keys)
    if n == 0:
        return (np.empty(0, np.int64),) * 3
    change = np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
    starts = np.nonzero(change)[0]
    counts = np.diff(np.r_[starts, n])
    return sorted_keys[starts].astype(np.int64), starts.astype(np.int64), counts.astype(np.int64)
