"""Aggregate job statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim.trace import StageBreakdown

__all__ = ["JobStats"]


@dataclass
class JobStats:
    """Work and traffic counters for one MapReduce job."""

    n_chunks: int = 0
    n_rays: int = 0
    n_samples: int = 0
    n_pairs_emitted: int = 0  # including placeholders
    n_pairs_kept: int = 0  # after placeholder discard
    bytes_uploaded: int = 0  # H2D chunk payloads
    bytes_downloaded: int = 0  # D2H emitted pairs
    bytes_internode: int = 0  # NIC traffic
    bytes_intranode: int = 0  # local memcpy traffic
    n_messages: int = 0
    breakdown: Optional[StageBreakdown] = None
    # Ring-buffer backpressure diagnostics, filled only by the pool
    # executor: aggregate + per-worker producer stall time/events, ring
    # high-water marks, and queue fallbacks for oversized chunks.  These
    # are *timing-dependent* (they vary run to run with scheduling), so
    # they are deliberately excluded from as_dict(), which reports only
    # the deterministic counters the executor-parity contract covers.
    ring: Optional[dict] = field(default=None, repr=False, compare=False)
    # Supervision/recovery ledger, filled by the pool executor only when
    # a failure was actually recovered (failure-free runs leave it None):
    # respawn waves and their latency, re-executed frames, per-stage
    # retry counts, degradation steps.  Timing-dependent like `ring`, so
    # excluded from as_dict() — recovered frames are bitwise-identical,
    # and the parity contract must not see how bumpy the road was.
    recovery: Optional[dict] = field(default=None, repr=False, compare=False)
    # Unified metrics export (repro.observability.metrics): the ring /
    # recovery / arena / accel-cache counters rolled into one schema.
    # Timing-dependent like the dicts it absorbs, so compare=False and
    # dumped only via as_dict(include_telemetry=True).
    telemetry: Optional[dict] = field(default=None, repr=False, compare=False)

    def add_map(self, work: dict[str, int], emitted: int, kept: int) -> None:
        self.n_chunks += 1
        self.n_rays += int(work.get("n_rays", 0))
        self.n_samples += int(work.get("n_samples", 0))
        self.n_pairs_emitted += emitted
        self.n_pairs_kept += kept

    @property
    def discard_fraction(self) -> float:
        if self.n_pairs_emitted == 0:
            return 0.0
        return 1.0 - self.n_pairs_kept / self.n_pairs_emitted

    def as_dict(self, include_telemetry: bool = False) -> dict:
        """Counter dump.

        By default only the deterministic counters covered by the
        executor-parity contract are included, so dicts are comparable
        across executors/planes/runs.  ``include_telemetry=True`` opts
        in to the timing-dependent ``ring`` / ``recovery`` / ``telemetry``
        blocks (the ``--stats-json`` dump) without weakening that
        default.
        """
        out = {
            "n_chunks": self.n_chunks,
            "n_rays": self.n_rays,
            "n_samples": self.n_samples,
            "n_pairs_emitted": self.n_pairs_emitted,
            "n_pairs_kept": self.n_pairs_kept,
            "bytes_uploaded": self.bytes_uploaded,
            "bytes_downloaded": self.bytes_downloaded,
            "bytes_internode": self.bytes_internode,
            "bytes_intranode": self.bytes_intranode,
            "n_messages": self.n_messages,
        }
        if self.breakdown is not None:
            out["stage_breakdown"] = self.breakdown.as_dict()
        if include_telemetry:
            if self.ring is not None:
                out["ring"] = self.ring
            if self.recovery is not None:
                out["recovery"] = self.recovery
            if self.telemetry is not None:
                out["telemetry"] = self.telemetry
        return out
