"""Telemetry plane: span tracing, timeline export, unified metrics.

Three pieces, one contract (see ARCHITECTURE.md "Observability"):

* :mod:`repro.observability.tracer` — the default-off, process-global
  span recorder every stage boundary reports through; provably inert
  when disabled.
* :mod:`repro.observability.timeline` — merges parent + worker span
  buffers into Chrome/Perfetto ``trace_event`` JSON (``repro render
  --trace-out``) and computes the CLI's per-stage breakdown line.
* :mod:`repro.observability.metrics` — the counters/gauges/histograms
  registry that absorbs the stack's ad-hoc stat dicts into the single
  ``JobStats.telemetry`` schema (``repro render --stats-json``).
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SCHEMA,
    build_job_telemetry,
)
from .timeline import (
    chrome_trace,
    stage_breakdown,
    stage_summary_line,
    write_chrome_trace,
)
from .tracer import (
    Tracer,
    current_tracer,
    disable_tracing,
    enable_tracing,
    instant,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SCHEMA",
    "Tracer",
    "build_job_telemetry",
    "chrome_trace",
    "current_tracer",
    "disable_tracing",
    "enable_tracing",
    "instant",
    "span",
    "stage_breakdown",
    "stage_summary_line",
    "write_chrome_trace",
]
