"""Unified metrics registry: one schema over the stack's ad-hoc counters.

Before this module each subsystem exported its own dict shape —
``JobStats.ring`` (shuffle-plane backpressure), ``JobStats.recovery``
(the supervision ledger), queue-fallback counts, arena publish bytes,
:class:`~repro.render.accel.AccelCache` hit counters.  The registry
absorbs them all into one ``{name: {kind, value, unit}}`` document
under ``JobStats.telemetry`` (dumped by ``repro render --stats-json``),
so downstream tooling reads a single schema instead of five.

Three metric kinds, deliberately minimal:

* :class:`Counter` — monotonic total (``inc``),
* :class:`Gauge` — last-observed value (``set``); non-numeric values
  are allowed and exported as-is (e.g. ``shuffle_mode="mesh"``),
* :class:`Histogram` — streaming count/sum/min/max over ``observe``
  (enough for per-frame latency shapes without bucket bookkeeping).

Everything here is parent-side, per-frame bookkeeping — a few dozen
dict operations per frame against multi-millisecond frames — so the
registry stays always-on (unlike the tracer, which is default-off
because it records per-chunk intervals in every process).
"""

from __future__ import annotations

from numbers import Number
from typing import Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SCHEMA",
    "build_job_telemetry",
]

#: Schema tag stamped into every export, so readers can dispatch.
SCHEMA = "repro.telemetry/v1"


class Counter:
    """Monotonic total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, n=1) -> None:
        if n < 0:
            raise ValueError("counters only increase")
        self.value += n

    def export(self):
        return self.value


class Gauge:
    """Last-observed value (numeric or descriptive)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = None

    def set(self, value) -> None:
        self.value = value

    def export(self):
        return self.value


class Histogram:
    """Streaming count/sum/min/max summary."""

    __slots__ = ("count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self):
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def export(self):
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Name → metric map with one export shape for all kinds."""

    def __init__(self):
        self._metrics: dict = {}

    def _get(self, name: str, cls, unit: Optional[str]):
        entry = self._metrics.get(name)
        if entry is None:
            entry = (cls(), unit)
            self._metrics[name] = entry
        elif not isinstance(entry[0], cls):
            raise TypeError(
                f"metric {name!r} already registered as {entry[0].kind}"
            )
        return entry[0]

    def counter(self, name: str, unit: Optional[str] = None) -> Counter:
        return self._get(name, Counter, unit)

    def gauge(self, name: str, unit: Optional[str] = None) -> Gauge:
        return self._get(name, Gauge, unit)

    def histogram(self, name: str, unit: Optional[str] = None) -> Histogram:
        return self._get(name, Histogram, unit)

    def absorb(self, prefix: str, mapping: Optional[dict]) -> None:
        """Flatten an ad-hoc nested dict into gauges under ``prefix``.

        Numeric leaves become numeric gauges, strings/bools descriptive
        ones; nested dicts recurse with dotted names and lists of dicts
        are indexed (``ring.per_worker.0.stall_seconds``).  This is the
        adapter that lets today's ``JobStats.ring`` / ``recovery``
        payloads join the unified schema without rewriting their
        producers.
        """
        if mapping is None:
            return
        for key, value in mapping.items():
            name = f"{prefix}.{key}"
            if isinstance(value, dict):
                self.absorb(name, value)
            elif isinstance(value, (list, tuple)) and value and all(
                isinstance(v, dict) for v in value
            ):
                for i, sub in enumerate(value):
                    self.absorb(f"{name}.{i}", sub)
            elif isinstance(value, (list, tuple)):
                self.gauge(name).set(list(value))
            elif isinstance(value, (Number, str, bool)) or value is None:
                self.gauge(name).set(value)

    def as_dict(self) -> dict:
        metrics = {}
        for name in sorted(self._metrics):
            metric, unit = self._metrics[name]
            entry = {"kind": metric.kind, "value": metric.export()}
            if unit is not None:
                entry["unit"] = unit
            metrics[name] = entry
        return {"schema": SCHEMA, "metrics": metrics}


def build_job_telemetry(
    ring: Optional[dict] = None,
    recovery: Optional[dict] = None,
    arena: Optional[dict] = None,
    cache: Optional[dict] = None,
    **gauges,
) -> dict:
    """Assemble one frame's ``JobStats.telemetry`` document.

    ``ring``/``recovery`` are the executor's existing per-frame dicts
    (absorbed verbatim under their old names so nothing is lost in the
    translation); ``arena`` carries the parent's publish counters,
    ``cache`` the parent-side :class:`AccelCache` hit statistics, and
    any extra keyword becomes a top-level gauge (pool shape knobs).
    """
    reg = MetricsRegistry()
    reg.absorb("ring", ring)
    reg.absorb("recovery", recovery)
    if arena:
        reg.counter("arena.publishes").inc(int(arena.get("publishes", 0)))
        reg.counter("arena.published_bytes", unit="bytes").inc(
            int(arena.get("published_bytes", 0))
        )
        reg.counter("arena.rebroadcasts").inc(int(arena.get("rebroadcasts", 0)))
    if cache:
        reg.absorb("accel_cache", cache)
    for name, value in gauges.items():
        reg.gauge(name).set(value)
    return reg.as_dict()
