"""Chrome/Perfetto ``trace_event`` export of a traced render.

The parent merges its own spans with the buffers workers shipped back
over the result queue into one per-job timeline: one track (``tid``)
per worker plus one for the parent, all under a single process
(``pid``), so ``chrome://tracing`` / https://ui.perfetto.dev show the
paper's overlap structure directly — maps on worker tracks overlapping
the parent's publish/stitch, reduces following their frame's maps,
respawned generations interleaved on the same worker track (tagged
``args.gen``).

Only the documented subset of the trace_event format is emitted:

* ``ph: "M"`` metadata (process/thread names),
* ``ph: "X"`` complete events (``ts``/``dur`` in microseconds),
* ``ph: "i"`` instants (supervisor markers), process scope.

Timestamps are monotonic-clock microseconds; Chrome only needs them
mutually consistent, not wall-anchored.
"""

from __future__ import annotations

import json
from typing import Optional

from .tracer import Tracer

__all__ = [
    "chrome_trace",
    "json_default",
    "stage_breakdown",
    "stage_summary_line",
    "write_chrome_trace",
]

_PID = 1  # single job == single trace process
_PARENT_TID = 0

#: span-name prefix → stage bucket for the per-stage time breakdown
_STAGE_OF = {
    "publish": "publish",
    "map": "map",
    "shuffle-out": "shuffle",
    "shuffle-in": "shuffle",
    "reduce": "reduce",
    "stitch": "stitch",
    "respawn": "respawn",
    "ring-stall": "stall",
}


def _event_dict(track: Optional[int], gen: int, ev: tuple) -> dict:
    name, cat, ts_ns, dur_ns, args = ev
    out = {
        "name": name,
        "cat": cat or "repro",
        "pid": _PID,
        "tid": _PARENT_TID if track is None else track + 1,
        "ts": ts_ns / 1000.0,
    }
    if dur_ns is None:
        out["ph"] = "i"
        out["s"] = "p"  # process-scoped instant
    else:
        out["ph"] = "X"
        out["dur"] = dur_ns / 1000.0
    if track is not None:
        args = dict(args) if args else {}
        args.setdefault("worker", track)
        args.setdefault("gen", gen)
    if args:
        out["args"] = args
    return out


def chrome_trace(tracer: Tracer) -> dict:
    """The full trace document (``traceEvents`` + display hints)."""
    events = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": _PARENT_TID,
            "name": "process_name",
            "args": {"name": "repro render"},
        },
        {
            "ph": "M",
            "pid": _PID,
            "tid": _PARENT_TID,
            "name": "thread_name",
            "args": {"name": "parent"},
        },
    ]
    named: set = set()
    for worker, _gen, _evs in tracer.remote():
        if worker not in named:
            named.add(worker)
            events.append(
                {
                    "ph": "M",
                    "pid": _PID,
                    "tid": worker + 1,
                    "name": "thread_name",
                    "args": {"name": f"worker {worker}"},
                }
            )
    for track, gen, ev in tracer.all_events():
        events.append(_event_dict(track, gen, ev))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, tracer: Tracer) -> int:
    """Serialize :func:`chrome_trace` to ``path``; returns the event count."""
    doc = chrome_trace(tracer)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, default=json_default)
        fh.write("\n")
    return len(doc["traceEvents"])


def json_default(value):
    """Args may carry numpy scalars; coerce rather than crash the dump."""
    try:
        return value.item()
    except AttributeError:
        return str(value)


def stage_breakdown(tracer: Tracer) -> dict:
    """Seconds of traced span time per stage bucket, summed across all
    tracks (so with N busy workers ``map`` can exceed wall time — it is
    aggregate stage *work*, the per-stage share the CLI line reports)."""
    totals: dict = {}
    for _track, _gen, (name, _cat, _ts, dur_ns, _args) in tracer.all_events():
        if dur_ns is None:
            continue
        stage = _STAGE_OF.get(name.split(":", 1)[0])
        if stage is not None:
            totals[stage] = totals.get(stage, 0.0) + dur_ns * 1e-9
    return totals


def stage_summary_line(tracer: Tracer) -> Optional[str]:
    """The CLI's compact per-stage breakdown, e.g.
    ``map=61.2% shuffle=4.1% reduce=22.4% stitch=12.3%`` — percentages
    of the traced pipeline-stage time (publish/map/shuffle/reduce/
    stitch; respawn and stall intervals are reported absolutely)."""
    totals = stage_breakdown(tracer)
    core = {
        k: totals.get(k, 0.0)
        for k in ("publish", "map", "shuffle", "reduce", "stitch")
    }
    denom = sum(core.values())
    if denom <= 0:
        return None
    parts = [
        f"{stage}={100.0 * seconds / denom:.1f}%"
        for stage, seconds in core.items()
        if seconds > 0
    ]
    for extra in ("stall", "respawn"):
        if totals.get(extra, 0.0) > 0:
            parts.append(f"{extra}={totals[extra]:.3f}s")
    return " ".join(parts)
