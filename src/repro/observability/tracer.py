"""Per-stage span tracing for the parallel render stack.

The tracer is a process-global, **default-off** recorder of monotonic
-clock span intervals.  Every instrumentation point in the library goes
through module-level :func:`span` / :func:`instant`, which read one
module global and return a shared no-op when tracing is disabled — the
"off" cost is a dict lookup plus an ``is None`` test per *stage* (per
chunk or per frame, never per sample), which is what makes the golden
-image and overhead contracts trivial to keep: the tracer never touches
job data, and its disabled cost is orders of magnitude below one chunk's
kernel work.

Span taxonomy (see ARCHITECTURE.md "Observability"):

``publish``
    Parent: (re)publishing the chunk/TF/grid shared-memory arena.
``map:chunk=i``
    Worker (or serial executor): Map + Partition of one chunk.
``shuffle-out``
    Worker: streaming one chunk's runs into the uplink ring or the
    mesh edges (includes queue fallbacks).
``shuffle-in``
    Mesh reducer: draining inbound edges to a frame's watermark.
``reduce:partition=p``
    Sort + Reduce of one partition, wherever it runs (worker, parent,
    serial) — ``p`` is the job-level partition id even when a worker
    renumbers its owned subset.
``stitch``
    Parent: assembling the final image from reduced pixel spans.
``respawn``
    Parent: supervised recovery respawning a worker wave (args carry
    the new spawn generation).
``ring-stall``
    Any producer blocked on a full SPSC ring (backpressure intervals —
    the ring counters aggregate them, the spans show *when*).

Clock: :func:`time.monotonic_ns` — on Linux ``CLOCK_MONOTONIC`` is
system-wide, so parent and worker timestamps land on one comparable
timeline without cross-process clock handshakes.

Worker transport: each worker process records spans into its own
in-process buffer (plain list appends — atomic under the GIL, no locks)
and flushes the buffer onto the existing result queue *immediately
before* each task-completion message (``("spans", worker, spawn_gen,
events)`` precedes the ``done``/``reduced`` it belongs to).  FIFO queue
order therefore guarantees the parent has absorbed a task's spans by
the time the task counts toward a frame seal, no matter how pipelined
frames or respawned generations interleave.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = [
    "Tracer",
    "current_tracer",
    "disable_tracing",
    "enable_tracing",
    "instant",
    "span",
]


class _NoopSpan:
    """Shared, stateless stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> None:
        pass


_NOOP = _NoopSpan()


class _LiveSpan:
    """Context manager recording one ``(name, cat, t0, dur, args)`` event."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: Optional[str], args):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args
        self._t0 = 0

    def set(self, **args) -> None:
        """Attach (or update) args discovered while the span is open."""
        if self._args is None:
            self._args = {}
        self._args.update(args)

    def __enter__(self) -> "_LiveSpan":
        self._t0 = time.monotonic_ns()
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer.add(
            self._name,
            self._t0,
            time.monotonic_ns(),
            cat=self._cat,
            args=self._args,
        )
        return False


class Tracer:
    """Span recorder for one process (plus, in the parent, the merged
    buffers shipped back by workers).

    Events are 5-tuples ``(name, cat, ts_ns, dur_ns, args)`` with
    ``dur_ns is None`` marking an instant (zero-duration marker) event.
    Buffers are plain lists: appends are atomic under the GIL, so
    producers never take a lock.
    """

    def __init__(self):
        self._events: list = []
        self._remote: list = []  # (worker, spawn_gen, events) triples

    # -- recording ---------------------------------------------------------
    def span(self, name: str, cat: Optional[str] = None, **args) -> _LiveSpan:
        return _LiveSpan(self, name, cat, args or None)

    def add(
        self,
        name: str,
        t0_ns: int,
        t1_ns: int,
        cat: Optional[str] = None,
        args: Optional[dict] = None,
    ) -> None:
        """Record a completed span from explicit timestamps."""
        self._events.append((name, cat, int(t0_ns), int(t1_ns - t0_ns), args))

    def instant(self, name: str, cat: Optional[str] = None, **args) -> None:
        """Record a zero-duration marker (exported as a Chrome instant)."""
        self._events.append(
            (name, cat, time.monotonic_ns(), None, args or None)
        )

    # -- transport ---------------------------------------------------------
    def drain(self) -> list:
        """Pop and return this process's buffered events (worker flush)."""
        events, self._events = self._events, []
        return events

    def add_remote(self, worker: int, spawn_gen: int, events: list) -> None:
        """Absorb a worker's flushed span buffer (parent side)."""
        if events:
            self._remote.append((int(worker), int(spawn_gen), events))

    # -- inspection --------------------------------------------------------
    @property
    def events(self) -> list:
        """This process's own events (the parent track)."""
        return self._events

    def remote(self) -> list:
        """``(worker, spawn_gen, events)`` triples shipped by workers."""
        return self._remote

    def all_events(self):
        """Iterate ``(track, gen, event)`` over parent (track None) and
        worker events alike — the flattened per-job timeline."""
        for ev in self._events:
            yield None, 0, ev
        for worker, gen, events in self._remote:
            for ev in events:
                yield worker, gen, ev

    def clear(self) -> None:
        self._events = []
        self._remote = []


_active: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The installed tracer, or None while tracing is disabled."""
    return _active


def enable_tracing() -> Tracer:
    """Install (and return) a fresh process-global tracer.

    Enable *before* the first frame: pool workers decide whether to
    trace when they are spawned.  Re-enabling replaces the previous
    tracer, so each job can start from an empty timeline.
    """
    global _active
    _active = Tracer()
    return _active


def disable_tracing() -> Optional[Tracer]:
    """Uninstall the tracer (returning it, so callers may still export).

    Also used by freshly forked workers to drop a tracer inherited from
    a tracing parent when their own ``cfg["trace"]`` is off.
    """
    global _active
    tracer, _active = _active, None
    return tracer


def span(name: str, cat: Optional[str] = None, **args):
    """A span context manager on the active tracer (no-op when disabled)."""
    tracer = _active
    if tracer is None:
        return _NOOP
    return tracer.span(name, cat, **args)


def instant(name: str, cat: Optional[str] = None, **args) -> None:
    """Record an instant marker on the active tracer (no-op when disabled)."""
    tracer = _active
    if tracer is not None:
        tracer.instant(name, cat, **args)
