"""Shared-memory multiprocess brick execution — real parallel map/reduce.

The paper (Stuart et al., HPDC 2010) renders by fanning volume bricks
out to many GPUs: each GPU **Maps** its bricks with a ray-cast kernel,
**Partitions** the emitted ``(pixel, fragment)`` pairs by reducer,
**Sorts** with a θ(n) counting sort, and **Reduces** by depth-ordered
compositing — with brick uploads, kernels, and fragment downloads all
overlapped.  The rest of this repository reproduces those stages
functionally but ran them serially in one process; this package turns
the recorded "simulated GPU" placement into real parallel hardware by
mapping **one worker process per simulated GPU**:

=====================  ====================================================
paper stage            multiprocess realisation
=====================  ====================================================
brick upload (PCIe)    :mod:`~repro.parallel.shm` — chunk payloads and the
                       transfer-function table published once into a
                       shared-memory arena; workers take zero-copy views
                       (resident bricks: an orbit uploads the volume once)
Map + Partition        :mod:`~repro.parallel.worker` — each worker runs the
(per GPU)              ray-cast kernel and buckets fragments by reducer
                       partition, exactly the serial executor's code
fragment download      :mod:`~repro.parallel.ring` — per-worker SPSC
(pinned buffers)       shared-memory ring buffers with a cursor header
                       protocol stream raw fragment runs to the parent,
                       exporting backpressure counters (producer stall
                       time/events, high-water mark) into ``JobStats``
shuffle + Sort +       ``reduce_mode="parent"``: :mod:`~repro.parallel.merge`
Reduce                 — the parent reassembles each partition's runs in
                       chunk order and applies the counting-scatter sort +
                       segmented-scan compositor.
                       ``reduce_mode="worker"``: the paper's symmetric
                       layout — each worker Sort+Reduces the partitions it
                       owns with the *same* merge function and ships back
                       composited pixel spans; the parent just stitches
GPU↔GPU fragment       :mod:`~repro.parallel.shuffle` — the pluggable
exchange (the          **shuffle plane**: ``shuffle_mode="mesh"`` moves
interconnect)          runs worker↔worker over an N×N mesh of SPSC edge
                       rings (records tagged frame/chunk/partition), so
                       the parent is a pure control plane and zero run
                       bytes cross it; ``"tcp"``
                       (:mod:`~repro.parallel.socketplane`) streams the
                       same records over AF_UNIX/TCP sockets for the
                       multi-host regime; ``"parent"`` is the routed
                       legacy plane; ``"auto"`` picks mesh when workers
                       reduce.
                       ``pin_workers=True`` pins workers to cores before
                       they allocate their inbound edges (NUMA locality)
async overlap (§7)     ``pipeline_depth>1``: ``submit``/``collect`` keep
                       frames in flight so workers map+reduce frame *k+1*
                       while the parent assembles/stitches frame *k* (and
                       next-frame arenas, incl. out-of-core loads, publish
                       off the critical path)
=====================  ====================================================

:class:`SharedMemoryPoolExecutor` (:mod:`~repro.parallel.pool`) wires
these together behind the exact ``execute(spec, chunks, chunk_to_gpu)``
surface of :class:`~repro.core.executors.InProcessExecutor`, returning
bitwise-identical images and counters — worker scheduling never leaks
into the output because runs are merged in chunk order and every kernel
is deterministic.  A ``serial=True`` mode runs the identical code path
without processes, for tests and platforms lacking POSIX shared memory.

Fault tolerance (:mod:`~repro.parallel.supervise`): the executor
supervises its workers — a process dying mid-frame or a wedged
transport recycles the transport epoch in place (the arena survives and
is re-attached by name), re-executes the in-flight frames
bitwise-identically, and degrades (shrink the pool, then fall back to
the serial executor) when retries are exhausted.
:mod:`~repro.parallel.faults` is the deterministic fault-injection
harness (``fault_plan=`` / ``$REPRO_FAULT_PLAN``) that drives crash,
exit, and stall faults at exact (stage, worker, frame, chunk) points.
"""

from .faults import ENV_FAULT_PLAN, FaultPlan, FaultRule
from .merge import merge_partition_runs, split_runs
from .pool import (
    PendingFrame,
    PoolConfig,
    SharedMemoryPoolExecutor,
    default_pool_workers,
    parse_host_spec,
    usable_cores,
)
from .ring import RingTimeout, ShmRing
from .shm import ArenaSpec, ArenaView, ShmArena, shm_segment_exists
from .shuffle import (
    DEFAULT_MAX_FRAME_RETRIES,
    DEFAULT_RETRY_BACKOFF,
    DEFAULT_RING_WRITE_TIMEOUT,
    ENV_MAX_FRAME_RETRIES,
    ENV_RETRY_BACKOFF,
    ENV_RING_WRITE_TIMEOUT,
    ENV_SHUFFLE_MODE,
    ENV_WATERMARK_TIMEOUT,
    MeshShuffle,
    ParentRoutedShuffle,
    SocketShuffle,
    WorkerMesh,
)
from .socketplane import (
    ENV_SOCKET_FAMILY,
    SocketClosed,
    SocketMesh,
    socket_path,
)
from .supervise import PoolFailure, PoolSupervisor
from .worker import FrameContext, map_chunk_to_runs

__all__ = [
    "ArenaSpec",
    "ArenaView",
    "DEFAULT_MAX_FRAME_RETRIES",
    "DEFAULT_RETRY_BACKOFF",
    "DEFAULT_RING_WRITE_TIMEOUT",
    "ENV_FAULT_PLAN",
    "ENV_MAX_FRAME_RETRIES",
    "ENV_RETRY_BACKOFF",
    "ENV_RING_WRITE_TIMEOUT",
    "ENV_SHUFFLE_MODE",
    "ENV_SOCKET_FAMILY",
    "ENV_WATERMARK_TIMEOUT",
    "FaultPlan",
    "FaultRule",
    "FrameContext",
    "MeshShuffle",
    "ParentRoutedShuffle",
    "PendingFrame",
    "PoolConfig",
    "PoolFailure",
    "PoolSupervisor",
    "default_pool_workers",
    "parse_host_spec",
    "RingTimeout",
    "SharedMemoryPoolExecutor",
    "ShmArena",
    "ShmRing",
    "SocketClosed",
    "SocketMesh",
    "SocketShuffle",
    "WorkerMesh",
    "map_chunk_to_runs",
    "merge_partition_runs",
    "shm_segment_exists",
    "socket_path",
    "split_runs",
    "usable_cores",
]
