"""Deterministic fault injection for the pool executor.

Recovery code that can only be exercised by real hardware failures is
recovery code that is never exercised.  This module gives the crash /
soak / golden suites a *deterministic* way to kill, wedge, or stall a
pool worker at an exact point of the Map → shuffle-out → shuffle-in →
Reduce state machine, replacing the ad-hoc ``os._exit`` mapper
subclasses the earlier crash tests monkeypatched in.  A plan is a plain
string (so it travels through ``PoolConfig.fault_plan``, the
``$REPRO_FAULT_PLAN`` environment variable, and a worker's spawn
``cfg`` dict unchanged) with the grammar::

    plan   := rule ( ';' rule )*
    rule   := action '@' stage ( ':' cond ( ',' cond )* )?
    action := 'crash' | 'exit' [ '(' code ')' ] | 'stall' '(' seconds ')'
    stage  := 'map' | 'shuffle-out' | 'shuffle-in' | 'reduce'
    cond   := ('worker'|'frame'|'chunk') '=' int | 'gen' '=' ( int | 'any' )

Condition values are validated at parse time: ``frame`` is the
pipeline frame sequence number in **1-based submission order** (the
first submitted frame is ``frame=1``), so ``frame=0`` — a rule that
could never fire — is rejected, as are negative ``worker``/``chunk``
ids and non-integer ``exit()`` codes.

Examples::

    crash@map:worker=1,frame=2          # hard-kill worker 1 mapping frame 2
    exit(3)@shuffle-out:worker=0        # graceful exit before shuffling out
    stall(5)@shuffle-in:worker=1        # sleep 5 s before draining edges
    crash@reduce:worker=0,gen=any       # re-crash every respawned replacement

Semantics:

* ``crash`` calls ``os._exit`` — no cleanup, the way a segfault or OOM
  kill looks to the parent.  ``exit(code)`` raises ``SystemExit`` so
  the worker's ``finally`` teardown (arena detach, ring/edge unlink)
  still runs — the way an external SIGTERM looks.  ``stall(seconds)``
  sleeps in place, long enough (by construction of the test) to trip a
  ring-write or watermark timeout.
* Every condition must match for a rule to fire; omitted conditions
  match anything.  ``frame`` is the pipeline frame sequence number
  (1-based submission order), ``chunk`` the chunk *index* within its
  frame, ``worker`` the worker id.
* ``gen`` is the worker's **spawn generation**: 0 for the pool's first
  wave of processes, incremented on every supervised respawn wave.  It
  defaults to 0, so an injected fault fires on the first attempt and
  the respawned replacement (generation 1) sails through — exactly the
  recover-and-converge scenario.  ``gen=any`` makes the fault
  persistent, which is how the degradation-ladder tests force retries
  to exhaust.
* A rule fires at most once per worker process, so a ``stall`` cannot
  re-trigger on every chunk and turn a bounded plan into an unbounded
  slowdown.

The plan is parsed (and therefore validated) in the parent at
configuration time — a typo raises ``ValueError`` before any process
is spawned — and re-parsed cheaply inside each worker.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "ENV_FAULT_PLAN",
    "FAULT_ACTIONS",
    "FAULT_STAGES",
    "FaultPlan",
    "FaultRule",
]

#: Environment override for :attr:`PoolConfig.fault_plan` — lets the CI
#: fault-injection matrix select a plan without touching test code.
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

#: The injectable points of the worker state machine, in execution order.
FAULT_STAGES = ("map", "shuffle-out", "shuffle-in", "reduce")

#: Supported actions (see the module docstring for their semantics).
FAULT_ACTIONS = ("crash", "exit", "stall")

#: Exit status of a ``crash`` action — distinct from Python's generic
#: error exits so a supervised parent can tell an injected crash from an
#: interpreter failure when it logs the death.
CRASH_EXIT_CODE = 70

_RULE_RE = re.compile(
    r"^(?P<action>[a-z]+)"
    r"(?:\((?P<arg>[^)]*)\))?"
    r"@(?P<stage>[a-z-]+)"
    r"(?::(?P<conds>.+))?$"
)


@dataclass(frozen=True)
class FaultRule:
    """One parsed rule of a fault plan (see the module grammar)."""

    action: str
    stage: str
    arg: Optional[float] = None  # exit code / stall seconds
    worker: Optional[int] = None
    frame: Optional[int] = None
    chunk: Optional[int] = None
    gen: Optional[int] = 0  # None means "any generation"

    def matches(
        self,
        stage: str,
        worker: int,
        frame: int,
        chunk: Optional[int],
        gen: int,
    ) -> bool:
        if stage != self.stage:
            return False
        if self.worker is not None and worker != self.worker:
            return False
        if self.frame is not None and frame != self.frame:
            return False
        if self.chunk is not None and chunk != self.chunk:
            return False
        if self.gen is not None and gen != self.gen:
            return False
        return True


def _parse_rule(text: str) -> FaultRule:
    m = _RULE_RE.match(text.strip())
    if m is None:
        raise ValueError(
            f"fault rule {text!r} does not match "
            "'action[(arg)]@stage[:key=value,...]'"
        )
    action = m.group("action")
    if action not in FAULT_ACTIONS:
        raise ValueError(
            f"fault rule {text!r}: unknown action {action!r} "
            f"(expected one of {FAULT_ACTIONS})"
        )
    stage = m.group("stage")
    if stage not in FAULT_STAGES:
        raise ValueError(
            f"fault rule {text!r}: unknown stage {stage!r} "
            f"(expected one of {FAULT_STAGES})"
        )
    arg: Optional[float] = None
    raw_arg = m.group("arg")
    if raw_arg is not None:
        try:
            arg = float(raw_arg)
        except ValueError:
            raise ValueError(
                f"fault rule {text!r}: argument {raw_arg!r} is not a number"
            ) from None
    if action == "stall":
        if arg is None or arg <= 0:
            raise ValueError(
                f"fault rule {text!r}: stall needs a positive duration, "
                "e.g. stall(5)@shuffle-in"
            )
    elif action == "crash" and raw_arg is not None:
        raise ValueError(
            f"fault rule {text!r}: crash takes no argument (use exit(code) "
            "for a chosen status)"
        )
    elif action == "exit" and arg is not None and arg != int(arg):
        # Exit statuses are integers; silently truncating exit(3.5) to 3
        # would make the observed exitcode disagree with the plan.
        raise ValueError(
            f"fault rule {text!r}: exit code {raw_arg!r} is not an integer"
        )
    fields = {"worker": None, "frame": None, "chunk": None, "gen": 0}
    conds = m.group("conds")
    if conds:
        for cond in conds.split(","):
            if "=" not in cond:
                raise ValueError(
                    f"fault rule {text!r}: condition {cond!r} is not key=value"
                )
            key, _, value = cond.partition("=")
            key = key.strip()
            value = value.strip()
            if key not in fields:
                raise ValueError(
                    f"fault rule {text!r}: unknown condition key {key!r} "
                    "(expected worker/frame/chunk/gen)"
                )
            if key == "gen" and value == "any":
                fields[key] = None
                continue
            try:
                fields[key] = int(value)
            except ValueError:
                raise ValueError(
                    f"fault rule {text!r}: condition {key}={value!r} "
                    "is not an integer"
                ) from None
            # Frames are 1-based submission order: frame=0 (or below)
            # can never match, so a rule carrying it is a typo that
            # would otherwise silently never fire.  worker/chunk/gen
            # ids are 0-based and cannot be negative.
            if key == "frame" and fields[key] < 1:
                raise ValueError(
                    f"fault rule {text!r}: frame={value} can never fire — "
                    "frames are numbered from 1 in submission order"
                )
            if key in ("worker", "chunk", "gen") and fields[key] < 0:
                raise ValueError(
                    f"fault rule {text!r}: condition {key}={value} "
                    "must be >= 0"
                )
    return FaultRule(action=action, stage=stage, arg=arg, **fields)


class FaultPlan:
    """A parsed, per-process fault plan bound to one spawn generation.

    The parent validates the plan string once at configuration time;
    each worker re-parses it and binds its own generation, so
    :meth:`fire` calls on the hot path reduce to a few integer
    comparisons (or nothing at all when the plan is ``None``).
    """

    def __init__(self, rules: Tuple[FaultRule, ...], generation: int = 0):
        self.rules = tuple(rules)
        self.generation = int(generation)
        self._fired: set = set()

    @classmethod
    def parse(
        cls, text: Optional[str], generation: int = 0
    ) -> Optional["FaultPlan"]:
        """Parse a plan string; ``None``/empty/whitespace parses to None
        (no injection).  Raises :class:`ValueError` on bad grammar."""
        if text is None:
            return None
        text = text.strip()
        if not text:
            return None
        rules = tuple(
            _parse_rule(rule) for rule in text.split(";") if rule.strip()
        )
        if not rules:
            return None
        return cls(rules, generation=generation)

    def for_generation(self, generation: int) -> "FaultPlan":
        """A fresh plan (no fired state) bound to ``generation``."""
        return FaultPlan(self.rules, generation=generation)

    def fire(
        self,
        stage: str,
        worker: int,
        frame: int,
        chunk: Optional[int] = None,
    ) -> None:
        """Trigger the first not-yet-fired rule matching this point.

        Called by the worker at each stage boundary; a match executes
        the rule's action *in place* (crash/exit never return).
        """
        for idx, rule in enumerate(self.rules):
            if idx in self._fired:
                continue
            if rule.matches(stage, worker, frame, chunk, self.generation):
                self._fired.add(idx)
                self._trigger(rule)
                return

    @staticmethod
    def _trigger(rule: FaultRule) -> None:
        if rule.action == "crash":
            os._exit(CRASH_EXIT_CODE)  # no cleanup: a segfault's signature
        elif rule.action == "exit":
            code = CRASH_EXIT_CODE if rule.arg is None else int(rule.arg)
            raise SystemExit(code)  # graceful: finally-teardown runs
        elif rule.action == "stall":
            time.sleep(float(rule.arg))


def resolve_fault_plan(explicit: Optional[str]) -> Optional[str]:
    """The configured plan string: explicit > ``$REPRO_FAULT_PLAN`` > None.

    The winning string is parse-validated here so a malformed plan fails
    at configuration time, in the parent, with the offending rule named —
    not as a cryptic worker error after spawn.
    """
    text = explicit
    if text is None:
        text = os.environ.get(ENV_FAULT_PLAN, "")
    text = text.strip()
    if not text:
        return None
    FaultPlan.parse(text)  # validate; raises ValueError with the bad rule
    return text
