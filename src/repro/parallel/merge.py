"""Shuffle-side merge: reassemble per-partition runs, sort, reduce.

Workers return, for every chunk, one fragment run per reducer partition
(the Partition stage's bucketing).  The Sort + Reduce half —
:func:`~repro.core.executors.merge_partition_runs` — is the *same
function* :class:`~repro.core.executors.InProcessExecutor` runs: it
concatenates each partition's runs **in chunk order** (not completion
order) and applies the θ(n) counting sort + the segmented-scan reducer,
which is what makes the whole pool bitwise deterministic regardless of
worker scheduling.  Under ``reduce_mode="parent"`` the parent executes
it over every partition; under ``reduce_mode="worker"`` each worker
executes the identical function over the partitions it owns (via
:class:`~repro.core.executors.PartitionReduceSpec`), so the two
placements cannot diverge.  This module adds the pool-specific piece:
recovering per-reducer runs from the concatenated byte stream a worker
pushed through its ring.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.executors import merge_partition_runs

__all__ = ["split_runs", "merge_partition_runs"]


def split_runs(
    pairs: np.ndarray, routed: Sequence[int]
) -> list[np.ndarray]:
    """Split a chunk's concatenated partition stream back into runs.

    ``pairs`` holds the per-reducer runs back to back in reducer order;
    ``routed`` gives each run's length (the worker's routing counters).
    """
    if int(sum(routed)) != len(pairs):
        raise ValueError(
            f"routing counters sum to {int(sum(routed))} but stream has "
            f"{len(pairs)} pairs"
        )
    bounds = np.cumsum(np.asarray(routed, dtype=np.int64))[:-1]
    return np.split(pairs, bounds)
