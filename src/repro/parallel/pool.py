"""The shared-memory multiprocess brick executor.

:class:`SharedMemoryPoolExecutor` runs a MapReduce job on a persistent
pool of worker processes — one worker per simulated GPU — exactly
mirroring the paper's per-GPU pipeline on real parallel hardware.  It
is a drop-in replacement for
:class:`~repro.core.executors.InProcessExecutor`: same
``execute(spec, chunks, chunk_to_gpu)`` signature, same
:class:`~repro.core.executors.InProcessResult` out, bitwise-identical
outputs and counters (see :mod:`repro.parallel.merge` for why).

Stage placement (``reduce_mode``):

* ``"parent"`` — workers run Map + Partition, the parent runs Sort +
  Reduce (the PR-2 layout).
* ``"worker"`` — the paper's full symmetry: each worker also runs Sort
  + Reduce for the reducer partitions it *owns* (``partition %
  workers``), executing the literal
  :func:`~repro.core.executors.merge_partition_runs` over chunk-ordered
  runs and shipping back composited per-partition ``(keys, values)``
  spans instead of raw fragments.  The parent becomes a pure stitcher.
  Keys are disjoint per partition, so placement cannot change results.

Frame pipelining (``pipeline_depth``):

* :meth:`submit` / :meth:`collect` split ``execute`` into an async
  half-pair; up to ``pipeline_depth`` frames may be in flight at once.
  Submitting frame *k+1* first **seals** frame *k* (drains its map
  results and dispatches its reduce tasks), so per-worker task queues
  always order ``reduce(k)`` before ``map(k+1)`` — the workers
  map+reduce frame *k+1* while the parent assembles/stitches frame *k*,
  the multiprocess analogue of the paper's §7 async-upload overlap.
  Because the next frame's arena is published at submit time, an
  out-of-core orbit's chunk loads (disk → shared memory) are also
  prefetched off the previous frame's critical path.
  ``pipeline_depth=1`` (default) degenerates to fully synchronous
  per-frame execution.  Results are bitwise-independent of the depth:
  runs are merged in chunk order and reduced outputs are assembled in
  partition order, never in completion order.

Data movement:

* **Downlink** (chunks to workers): every chunk payload and the
  transfer-function table are published once into a shared-memory
  arena (:mod:`repro.parallel.shm`); workers map them zero-copy.  The
  arena is fingerprinted on ``(volume token, tf version, chunk
  ids/sizes)`` and republished only when that changes, so an orbit's
  frames upload the volume exactly once — the paper's resident-brick
  regime.
* **Uplink** (fragments to parent): each worker streams its bucketed
  fragment runs through a private shared-memory ring buffer
  (:mod:`repro.parallel.ring`); in parent-reduce mode only counters
  cross the pickling queues.  Chunks whose output exceeds the ring
  capacity fall back to the queue instead of deadlocking.  Each ring
  exports backpressure counters (producer stall time/events,
  high-water mark) that the executor aggregates into ``JobStats.ring``.
* **Shuffle** (worker-reduce mode): the parent routes each partition's
  chunk-ordered runs to its owning worker over the task queues
  (pickled), and reduced spans come back the same way — the reduce
  *compute* parallelizes, but fragment bytes cross processes twice
  more than in parent mode.  Spans are small post-reduce, yet
  fragment-heavy frames pay the pickle on the way out; cutting the
  parent out with direct worker↔worker rings is the ROADMAP follow-on.

``serial=True`` executes the identical worker code path in-process with
no processes or shared memory — the deterministic fallback used by the
equivalence tests and by platforms without POSIX shared memory.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import weakref
from typing import Optional, Sequence

import numpy as np

from ..core.chunk import Chunk
from ..core.executors import (
    InProcessExecutor,
    InProcessResult,
    make_map_work,
    merge_partition_runs,
)
from ..core.job import JobConfig, MapReduceSpec
from ..core.scheduler import MapWork
from ..core.stats import JobStats
from .merge import split_runs
from .ring import ShmRing
from .shm import ShmArena
from .worker import GRID_ARENA_KEY, TF_ARENA_KEY, FrameContext, worker_main

__all__ = [
    "PendingFrame",
    "SharedMemoryPoolExecutor",
    "default_pool_workers",
    "usable_cores",
]

_DEFAULT_RING_CAPACITY = 8 << 20  # 8 MiB of fragments per worker


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_pool_workers(n_gpus: int) -> int:
    """The renderer's pool-size policy: one worker per simulated GPU,
    capped to the cores actually available."""
    return max(1, min(n_gpus, usable_cores()))


def _cleanup(state: dict) -> None:
    """Finalizer shared by close() and GC: tear down processes and shm."""
    procs = state.pop("procs", [])
    task_queues = state.pop("task_queues", [])
    for q in task_queues:
        try:
            q.put(("stop",))
        except Exception:
            pass
    for p in procs:
        p.join(timeout=5.0)
        if p.is_alive():  # pragma: no cover - stuck worker
            p.terminate()
            p.join(timeout=1.0)
    for ring in state.pop("rings", []):
        ring.close()
    arena = state.pop("arena", None)
    if arena is not None:
        arena.close()


class PendingFrame:
    """Handle for one in-flight frame of the pool pipeline.

    Opaque to callers: pass it back to
    :meth:`SharedMemoryPoolExecutor.collect` to obtain the frame's
    :class:`~repro.core.executors.InProcessResult`.  The executor keeps
    the frame's partial state (per-chunk runs and counters, per
    -partition reduced outputs) here while later frames are submitted.
    """

    __slots__ = (
        "seq",
        "spec",
        "chunks",
        "chunk_to_gpu",
        "n",
        "runs_per_chunk",
        "emitted_per_chunk",
        "kept_per_chunk",
        "work_per_chunk",
        "routed_per_chunk",
        "map_received",
        "queue_fallbacks",
        "sealed",
        "outputs",
        "pairs_per_reducer",
        "reduced_received",
        "result",
    )

    def __init__(
        self,
        seq: int,
        spec: MapReduceSpec,
        chunks: Sequence[Chunk],
        chunk_to_gpu: Optional[Sequence[int]],
        result: Optional[InProcessResult] = None,
    ):
        self.seq = seq
        self.spec = spec
        self.chunks = list(chunks)
        self.chunk_to_gpu = chunk_to_gpu
        n = len(self.chunks)
        self.n = n
        self.runs_per_chunk: list = [None] * n
        self.emitted_per_chunk = [0] * n
        self.kept_per_chunk = [0] * n
        self.work_per_chunk: list = [None] * n
        self.routed_per_chunk: list = [None] * n
        self.map_received = 0
        self.queue_fallbacks = 0
        self.sealed = False
        self.outputs: list = [None] * spec.n_reducers
        self.pairs_per_reducer = np.zeros(spec.n_reducers, dtype=np.int64)
        self.reduced_received = 0
        self.result = result

    @property
    def done(self) -> bool:
        return self.result is not None


class SharedMemoryPoolExecutor:
    """Fan brick map (and reduce) work out across a pool of workers.

    Parameters
    ----------
    workers:
        Pool size (defaults to the number of usable cores).  The
        renderer passes its simulated-GPU count so placement maps one
        worker per GPU.
    config:
        :class:`~repro.core.job.JobConfig` execution knobs (kept for
        surface parity with the other executors).
    ring_capacity:
        Per-worker fragment ring size in bytes.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``.
    serial:
        Run the identical code path in-process (no processes, no shared
        memory).  Deterministic fallback for tests and constrained
        platforms.
    reduce_mode:
        ``"parent"`` (Sort+Reduce in the parent, the default) or
        ``"worker"`` (per-partition Sort+Reduce on the owning worker —
        the paper's symmetric layout).  Outputs are bitwise-identical
        either way.
    pipeline_depth:
        Max frames in flight for :meth:`submit`/:meth:`collect`; 1
        means fully synchronous.  ``execute`` is unaffected by values
        > 1 unless frames are also submitted asynchronously.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        config: Optional[JobConfig] = None,
        ring_capacity: int = _DEFAULT_RING_CAPACITY,
        start_method: Optional[str] = None,
        serial: bool = False,
        reduce_mode: str = "parent",
        pipeline_depth: int = 1,
    ):
        if workers is None:
            workers = usable_cores()
        if workers < 1:
            raise ValueError("need at least one worker")
        if ring_capacity < 1:
            raise ValueError("ring capacity must be positive")
        if reduce_mode not in ("parent", "worker"):
            raise ValueError(f"unknown reduce_mode {reduce_mode!r}")
        if pipeline_depth < 1:
            raise ValueError("pipeline depth must be at least 1")
        self.workers = int(workers)
        self.config = config if config is not None else JobConfig()
        self.ring_capacity = int(ring_capacity)
        self.serial = bool(serial)
        self.reduce_mode = reduce_mode
        self.pipeline_depth = int(pipeline_depth)
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self._state: dict = {}
        self._arena_fingerprint = None
        self._result_queue = None
        self._seq = 0
        self._pending: dict[int, PendingFrame] = {}  # insertion-ordered
        self._ring_base: list[dict] = []
        self._finalizer = weakref.finalize(self, _cleanup, self._state)

    # -- lifecycle ---------------------------------------------------------
    @property
    def running(self) -> bool:
        return bool(self._state.get("procs"))

    def _ensure_started(self) -> None:
        if self.running:
            return
        rings = [
            ShmRing.create(self.ring_capacity) for _ in range(self.workers)
        ]
        task_queues = [self._ctx.Queue() for _ in range(self.workers)]
        self._result_queue = self._ctx.Queue()
        procs = []
        for wi in range(self.workers):
            p = self._ctx.Process(
                target=worker_main,
                args=(wi, task_queues[wi], self._result_queue, rings[wi].name),
                daemon=True,
                name=f"repro-pool-{wi}",
            )
            p.start()
            procs.append(p)
        self._state.update(
            procs=procs, task_queues=task_queues, rings=rings
        )
        self._ring_base = [ring.counters() for ring in rings]

    def close(self) -> None:
        """Shut the pool down and release every shared-memory segment.

        Frames still in flight are aborted: collecting their handles
        afterwards raises.
        """
        _cleanup(self._state)
        self._arena_fingerprint = None
        self._result_queue = None
        self._pending.clear()
        self._ring_base = []

    def __enter__(self) -> "SharedMemoryPoolExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- data publication --------------------------------------------------
    def _publish(self, spec: MapReduceSpec, chunks: Sequence[Chunk]) -> None:
        """(Re)publish the chunk payload + transfer-function arena.

        When the mapper renders with ``accel="grid"``, each chunk's
        macro-cell occupancy grid (or its ``NO_GRID`` sentinel) rides
        along in the same arena under ``(GRID_ARENA_KEY, cache key)``:
        workers seed their process-local acceleration caches from the
        zero-copy views on attach, so across an orbit's frames the grids
        are built exactly once, in the parent — the fingerprint already
        pins everything they depend on (volume token, tf version, brick
        regions, and the accel knobs added here).
        """
        token = getattr(spec.mapper, "accel_token", None)
        tf = getattr(spec.mapper, "tf", None)
        tf_version = getattr(tf, "version", None)
        config = getattr(spec.mapper, "config", None)
        accel_mode = getattr(config, "accel", None)
        cell_size = getattr(config, "macro_cell_size", None)
        sig = (
            (
                token,
                tf_version,
                accel_mode,
                cell_size,
                tuple(
                    (
                        c.id,
                        c.nbytes,
                        # Pin the brick's region: the same volume can be
                        # bricked into different grids reusing chunk ids.
                        getattr(c.meta, "data_lo", None),
                        getattr(c.meta, "data_hi", None),
                    )
                    for c in chunks
                ),
            )
            if token is not None
            else None  # unknown provenance: always republish
        )
        if sig is not None and sig == self._arena_fingerprint:
            return
        arrays = {c.id: c.payload() for c in chunks}
        if tf_version is not None:
            arrays[TF_ARENA_KEY] = tf.table
        if accel_mode == "grid" and tf_version is not None:
            key_for = getattr(spec.mapper, "accel_key_for", None)
            if key_for is not None:
                from ..render.accel import build_macro_grid, grid_key, shared_cache

                cache = shared_cache()
                for c in chunks:
                    base = key_for(c)
                    if base is None:
                        continue
                    gkey = grid_key(base, cell_size)
                    grid = cache.get(gkey)
                    if grid is None:
                        grid = build_macro_grid(arrays[c.id], tf, cell_size)
                        cache.put(gkey, grid)
                    arrays[(GRID_ARENA_KEY, gkey)] = grid
        arena = ShmArena(arrays)
        for q in self._state["task_queues"]:
            q.put(("arena", arena.spec))
        old = self._state.get("arena")
        if old is not None:
            old.close()  # attached workers keep the memory alive until
        self._state["arena"] = arena  # they process the new-arena message
        self._arena_fingerprint = sig

    def _frame_payload(self, spec: MapReduceSpec) -> bytes:
        """Pickle the frame context, with the TF table left in the arena."""
        ctx = FrameContext.from_spec(
            spec, include_reducer=self.reduce_mode == "worker"
        )
        tf = getattr(spec.mapper, "tf", None)
        if tf is not None and getattr(tf, "version", None) is not None:
            ctx.tf_ref = (tf.vmin, tf.vmax)
            try:
                spec.mapper.tf = None  # table travels via shared memory
                return pickle.dumps(ctx, protocol=pickle.HIGHEST_PROTOCOL)
            finally:
                spec.mapper.tf = tf
        return pickle.dumps(ctx, protocol=pickle.HIGHEST_PROTOCOL)

    # -- async frame pipeline ----------------------------------------------
    def submit(
        self,
        spec: MapReduceSpec,
        chunks: Sequence[Chunk],
        chunk_to_gpu: Optional[Sequence[int]] = None,
    ) -> PendingFrame:
        """Start one frame; pair with :meth:`collect`.

        Seals every frame already in flight first (drains its map
        results, dispatches its reduce tasks), so the task queues order
        earlier frames' reduce work ahead of this frame's maps, then
        enforces the ``pipeline_depth`` cap by force-collecting the
        oldest frames (their handles return the cached result).

        Any failure to keep the pipeline consistent — a worker-reported
        error, a ring timeout, a dead worker, Ctrl-C — tears the whole
        pool down on the way out: leftover ring bytes or queue messages
        from a partially-drained frame must never be paired with a later
        frame's chunks.  The next call starts from fresh processes.
        """
        if self.serial or len(chunks) == 0:
            # Zero chunks means nothing to fan out (and nothing to put in
            # an arena); the serial path returns the same empty-job result
            # InProcessExecutor produces.
            result = self._execute_serial(spec, chunks, chunk_to_gpu)
            self._seq += 1
            return PendingFrame(
                self._seq, spec, chunks, chunk_to_gpu, result=result
            )
        ids = [c.id for c in chunks]
        if len(set(ids)) != len(ids):
            raise ValueError("chunk ids must be unique for the pool executor")
        self._ensure_started()
        try:
            for frame in list(self._pending.values()):
                self._seal(frame)
            while len(self._pending) >= self.pipeline_depth:
                self._collect_oldest()
            self._publish(spec, chunks)
            payload = self._frame_payload(spec)
            for q in self._state["task_queues"]:
                q.put(("frame", payload))
            self._seq += 1
            frame = PendingFrame(self._seq, spec, chunks, chunk_to_gpu)
            self._pending[frame.seq] = frame
            for ci, chunk in enumerate(chunks):
                wi = (
                    int(chunk_to_gpu[ci]) if chunk_to_gpu is not None else ci
                ) % self.workers
                self._state["task_queues"][wi].put(
                    (
                        "map",
                        frame.seq,
                        ci,
                        chunk.id,
                        chunk.nbytes,
                        chunk.on_disk,
                        chunk.meta,
                    )
                )
            return frame
        except BaseException:
            self.close()
            raise

    def collect(self, frame: PendingFrame) -> InProcessResult:
        """Finish ``frame`` and return its result.

        Frames complete in submission order; collecting a newer frame
        first silently completes the older ones (their handles keep the
        cached results).
        """
        while frame.result is None:
            if frame.seq not in self._pending:
                # A stale handle (aborted by an earlier shutdown) is a
                # caller error, not a pipeline failure: report it without
                # tearing down whatever healthy pool is running now.
                raise RuntimeError(
                    "frame was aborted by a pool shutdown before it "
                    "could be collected"
                )
            try:
                self._collect_oldest()
            except BaseException:
                self.close()
                raise
        return frame.result

    # -- execution ---------------------------------------------------------
    def execute(
        self,
        spec: MapReduceSpec,
        chunks: Sequence[Chunk],
        chunk_to_gpu: Optional[Sequence[int]] = None,
    ) -> InProcessResult:
        """Execute ``spec`` over ``chunks`` — same surface as the serial
        executor; ``chunk_to_gpu`` doubles as worker placement (one
        worker per simulated GPU, modulo pool size)."""
        return self.collect(self.submit(spec, chunks, chunk_to_gpu))

    # -- pipeline internals ------------------------------------------------
    def _oldest(self) -> PendingFrame:
        return next(iter(self._pending.values()))

    def _seal(self, frame: PendingFrame) -> None:
        """Bring ``frame`` to the point where later frames may be enqueued:
        all map results drained and (in worker mode) reduce dispatched."""
        if frame.sealed:
            return
        while frame.map_received < frame.n:
            self._pump()
        if self.reduce_mode == "worker":
            self._dispatch_reduce(frame)
        frame.sealed = True

    def _dispatch_reduce(self, frame: PendingFrame) -> None:
        """Ship each worker the chunk-ordered runs of its owned partitions.

        Ownership is ``partition % workers`` — static, so results never
        depend on scheduling.  The payload is parent-owned memory (ring
        copies / inline arrays), never arena views, so a later arena
        republish cannot invalidate it.
        """
        n_red = frame.spec.n_reducers
        for wi in range(self.workers):
            owned = list(range(wi, n_red, self.workers))
            if not owned:
                continue
            runs_per_chunk = [
                [frame.runs_per_chunk[ci][r] for r in owned]
                for ci in range(frame.n)
            ]
            self._state["task_queues"][wi].put(
                ("reduce", frame.seq, owned, runs_per_chunk)
            )
        # The parent no longer needs the raw runs: free them eagerly so a
        # deep pipeline holds at most one frame's fragments at a time.
        frame.runs_per_chunk = [None] * frame.n

    def _pump(self, timeout: float = 1.0) -> None:
        """Receive and route one worker message (or poll for dead workers)."""
        try:
            msg = self._result_queue.get(timeout=timeout)
        except queue_mod.Empty:
            procs = self._state.get("procs", [])
            dead = [p.name for p in procs if not p.is_alive()]
            if dead:
                raise RuntimeError(
                    f"pool worker(s) died during execute: {dead}"
                )
            return
        kind = msg[0]
        if kind == "error":
            _, wi, what, tb = msg
            raise RuntimeError(
                f"task failure in the worker pool "
                f"[{what} on worker {wi}]:\n{tb}"
            )
        if kind == "done":
            (_, wi, seq, ci, emitted, kept, work, routed, ring_nbytes,
             inline, fallback) = msg
            frame = self._pending[seq]
            if inline is not None:
                pairs = inline
            else:
                # Ring bytes are consumed immediately, in per-worker
                # completion-message order (the ring is FIFO), even when
                # the message belongs to a newer frame than the one being
                # collected — frames only reorder at the *result* level.
                pairs = self._state["rings"][wi].read_records(
                    ring_nbytes, frame.spec.kv.dtype
                )
            frame.runs_per_chunk[ci] = split_runs(pairs, routed)
            frame.emitted_per_chunk[ci] = emitted
            frame.kept_per_chunk[ci] = kept
            frame.work_per_chunk[ci] = work
            frame.routed_per_chunk[ci] = np.asarray(routed, dtype=np.int64)
            frame.map_received += 1
            frame.queue_fallbacks += bool(fallback)
        elif kind == "reduced":
            _, wi, seq, owned, outputs, pairs_per_reducer = msg
            frame = self._pending[seq]
            for j, r in enumerate(owned):
                frame.outputs[r] = outputs[j]
                frame.pairs_per_reducer[r] = int(pairs_per_reducer[j])
            frame.reduced_received += len(owned)
        else:  # pragma: no cover - protocol violation
            raise RuntimeError(f"unexpected pool message {kind!r}")

    def _ring_stats(self, frame: PendingFrame) -> dict:
        """Per-frame backpressure export: producer stall deltas since the
        previous collect, absolute high-water marks, queue fallbacks."""
        per_worker = []
        for wi, ring in enumerate(self._state.get("rings", [])):
            now = ring.counters()
            base = self._ring_base[wi]
            per_worker.append(
                {
                    "worker": wi,
                    "stall_seconds": now["stall_seconds"]
                    - base["stall_seconds"],
                    "stall_events": now["stall_events"]
                    - base["stall_events"],
                    "high_water_bytes": now["high_water_bytes"],
                }
            )
            self._ring_base[wi] = now
        return {
            "stall_seconds": sum(w["stall_seconds"] for w in per_worker),
            "stall_events": sum(w["stall_events"] for w in per_worker),
            "high_water_bytes": max(
                (w["high_water_bytes"] for w in per_worker), default=0
            ),
            "queue_fallbacks": frame.queue_fallbacks,
            "ring_capacity": self.ring_capacity,
            "per_worker": per_worker,
        }

    def _collect_oldest(self) -> None:
        """Complete the oldest in-flight frame and cache its result."""
        frame = self._oldest()
        self._seal(frame)
        spec = frame.spec
        if self.reduce_mode == "worker":
            while frame.reduced_received < spec.n_reducers:
                self._pump()
            outputs = frame.outputs
            pairs_per_reducer = frame.pairs_per_reducer
        else:
            spec.reducer.initialize()
            outputs, pairs_per_reducer = merge_partition_runs(
                spec, frame.runs_per_chunk
            )
        stats = JobStats()
        works: list[MapWork] = []
        for ci, chunk in enumerate(frame.chunks):
            stats.add_map(
                frame.work_per_chunk[ci],
                frame.emitted_per_chunk[ci],
                frame.kept_per_chunk[ci],
            )
            works.append(
                make_map_work(
                    chunk,
                    frame.chunk_to_gpu[ci]
                    if frame.chunk_to_gpu is not None
                    else 0,
                    frame.emitted_per_chunk[ci],
                    frame.work_per_chunk[ci],
                    frame.routed_per_chunk[ci],
                )
            )
        stats.ring = self._ring_stats(frame)
        frame.result = InProcessResult(
            outputs=outputs,
            stats=stats,
            pairs_per_reducer=pairs_per_reducer,
            works=works,
        )
        frame.runs_per_chunk = None  # free the fragment memory
        del self._pending[frame.seq]

    def _execute_serial(
        self,
        spec: MapReduceSpec,
        chunks: Sequence[Chunk],
        chunk_to_gpu: Optional[Sequence[int]],
    ) -> InProcessResult:
        """Deterministic fallback: the serial executor *is* the same code.

        ``InProcessExecutor.execute`` is built from the identical
        ``map_chunk_to_runs`` / ``merge_partition_runs`` functions the
        workers and the parent merge run, so delegating to it is the
        fallback path — equivalence by construction, not by mirroring.
        """
        return InProcessExecutor(self.config).execute(spec, chunks, chunk_to_gpu)
