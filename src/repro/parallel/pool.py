"""The shared-memory multiprocess brick executor.

:class:`SharedMemoryPoolExecutor` runs a MapReduce job on a persistent
pool of worker processes — one worker per simulated GPU — exactly
mirroring the paper's per-GPU pipeline on real parallel hardware.  It
is a drop-in replacement for
:class:`~repro.core.executors.InProcessExecutor`: same
``execute(spec, chunks, chunk_to_gpu)`` signature, same
:class:`~repro.core.executors.InProcessResult` out, bitwise-identical
outputs and counters (see :mod:`repro.parallel.merge` for why).

Stage placement (``reduce_mode``):

* ``"parent"`` — workers run Map + Partition, the parent runs Sort +
  Reduce (the PR-2 layout).
* ``"worker"`` — the paper's full symmetry: each worker also runs Sort
  + Reduce for the reducer partitions it *owns* (the static
  :class:`~repro.core.executors.ShuffleSpec` ownership contract,
  ``partition % workers``), executing the literal
  :func:`~repro.core.executors.merge_partition_runs` over chunk-ordered
  runs and shipping back composited per-partition ``(keys, values)``
  spans instead of raw fragments.  The parent becomes a pure stitcher.
  Keys are disjoint per partition, so placement cannot change results.

Shuffle plane (``shuffle_mode``, see :mod:`repro.parallel.shuffle`):

* ``"parent"`` — :class:`~repro.parallel.shuffle.ParentRoutedShuffle`:
  run bytes go worker → uplink ring → parent (→ task queue → owning
  worker under worker-side reduce).  The parent is on the data path.
* ``"mesh"`` — :class:`~repro.parallel.shuffle.MeshShuffle`: an N×N
  mesh of SPSC shared-memory edge rings; each mapper writes a
  partition's runs *directly* into the owning reducer worker's inbound
  edge, tagged ``(frame, chunk, partition)``, the way the paper's GPUs
  exchange fragments over the interconnect.  The parent degrades to a
  pure **control plane** — publish, seal, stitch, teardown — and never
  touches a run byte (``JobStats.ring["parent_run_bytes"] == 0``).
  Materializes only under ``reduce_mode="worker"``; with a parent-side
  reduce every run's destination *is* the parent, so the uplink rings
  already are the direct path.
* ``"tcp"`` — :class:`~repro.parallel.shuffle.SocketShuffle`: the same
  direct worker↔worker exchange over byte streams (AF_UNIX on one
  host, loopback TCP otherwise; see
  :mod:`repro.parallel.socketplane`) — the off-box plane.  The parent
  holds **zero** data sockets; like the mesh it is a pure control
  plane with ``parent_run_bytes == 0``, and with a ``host_spec`` the
  workers can be placed on separate "hosts" where chunk payloads ride
  the task queues instead of the shm arena.  Materializes under
  ``reduce_mode="worker"`` only, like the mesh.
* ``"auto"`` (default) — ``$REPRO_SHUFFLE_MODE`` if set, else mesh
  exactly when the reduce runs on workers (never tcp: on one box the
  shm mesh strictly dominates; the socket plane is an explicit
  opt-in for the off-box regime).

Host placement (``host_spec``, tcp plane only): ``None`` (default)
puts every worker on host 0, where the shared-memory arena lives.  An
int ``n`` round-robins workers over ``n`` hosts; an explicit list
(``"0,0,1,1"`` on the CLI) pins each worker.  Workers on host 0 map
chunks zero-copy from the arena exactly as before; workers on other
hosts receive their chunk payloads *inline in the map message* and
their frame context with the transfer-function table inline — no
shared segment is assumed to exist between hosts, which is the whole
point.  Outputs are bitwise-identical regardless of placement.

Outputs are bitwise-identical across shuffle modes × reduce modes ×
pipeline depths *by construction*: both planes deliver the same
chunk-ordered, tag-restored runs into the same literal merge function.

Frame pipelining (``pipeline_depth``):

* :meth:`submit` / :meth:`collect` split ``execute`` into an async
  half-pair; up to ``pipeline_depth`` frames may be in flight at once.
  Submitting frame *k+1* first **seals** frame *k* (drains its map
  results and dispatches its reduce tasks), so per-worker task queues
  always order ``reduce(k)`` before ``map(k+1)`` — the workers
  map+reduce frame *k+1* while the parent assembles/stitches frame *k*,
  the multiprocess analogue of the paper's §7 async-upload overlap.
  Because the next frame's arena is published at submit time, an
  out-of-core orbit's chunk loads (disk → shared memory) are also
  prefetched off the previous frame's critical path.
  ``pipeline_depth=1`` (default) degenerates to fully synchronous
  per-frame execution.  Results are bitwise-independent of the depth:
  runs are merged in chunk order and reduced outputs are assembled in
  partition order, never in completion order.  Mesh records carry
  their frame seq, so pipelined frames can interleave on the wire
  without ever interleaving in a reduce (per-frame watermarks).

Data movement:

* **Downlink** (chunks to workers): every chunk payload and the
  transfer-function table are published once into a shared-memory
  arena (:mod:`repro.parallel.shm`); workers map them zero-copy.  The
  arena is fingerprinted on ``(volume token, tf version, chunk
  ids/sizes)`` and republished only when that changes, so an orbit's
  frames upload the volume exactly once — the paper's resident-brick
  regime.
* **Uplink** (fragments to parent, parent plane only): each worker
  streams its bucketed fragment runs through a private shared-memory
  ring buffer (:mod:`repro.parallel.ring`); only counters cross the
  pickling queues.  Chunks whose output exceeds the ring capacity fall
  back to the queue instead of deadlocking.
* **Shuffle** (worker-reduce mode): owned by the shuffle plane — see
  above.  Every plane exports backpressure counters (producer stall
  time/events, high-water marks, queue fallbacks, parent-touched run
  bytes) into ``JobStats.ring``.

NUMA/core pinning (``pin_workers=True``): each worker is pinned to a
distinct usable core before it allocates its inbound mesh edges, so
one-worker-per-GPU placement maps onto real topology and edge pages
are first-touched locally.  No-op with a warning when affinity is
unavailable or there are fewer cores than workers.

``serial=True`` executes the identical worker code path in-process with
no processes or shared memory — the deterministic fallback used by the
equivalence tests and by platforms without POSIX shared memory.

Supervision (``supervise=True``, the default; see
:mod:`repro.parallel.supervise`): infrastructure failures — a worker
process dying mid-frame, a wedged ring/edge, an expired frame
watermark — are detected by the parent's watchdog, the transport epoch
is recycled *in place* (the shared-memory arena survives and is
re-attached by name), and the in-flight frames are re-executed
bitwise-identically.  Repeated failures walk a degradation ladder:
``max_frame_retries`` attempts per frame per pool width, then the pool
shrinks by one worker (ownership re-derives from the same static
``partition % workers`` rule), and at the floor the remaining frames
run on the serial in-process executor — an infrastructure failure
degrades throughput, never correctness and never an exception.
User-code errors stay fatal.  :mod:`repro.parallel.faults` provides
the deterministic fault-injection harness that drives all of this in
tests and benchmarks.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import threading
import time
import uuid
import warnings
import weakref
from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from ..core.chunk import Chunk
from ..core.executors import (
    InProcessExecutor,
    InProcessResult,
    make_map_work,
    merge_partition_runs,
)
from ..core.job import JobConfig, MapReduceSpec
from ..core.scheduler import MapWork
from ..core.stats import JobStats
from ..observability.metrics import build_job_telemetry
from ..observability.tracer import current_tracer, span
from .ring import ShmRing
from .shm import ShmArena
from .shuffle import (
    MeshShuffle,
    ParentRoutedShuffle,
    PoolConfig,
    SocketShuffle,
    mesh_edge_name,
    mesh_fd_headroom,
)
from .socketplane import socket_path
from .supervise import (
    PoolFailure,
    PoolSupervisor,
    classify_failure,
    dead_workers,
    worker_error_to_exception,
)
from .worker import GRID_ARENA_KEY, TF_ARENA_KEY, FrameContext, worker_main

__all__ = [
    "PendingFrame",
    "PoolConfig",
    "SharedMemoryPoolExecutor",
    "default_pool_workers",
    "parse_host_spec",
    "usable_cores",
]


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_pool_workers(n_gpus: int) -> int:
    """The renderer's pool-size policy: one worker per simulated GPU,
    capped to the cores actually available."""
    return max(1, min(n_gpus, usable_cores()))


def parse_host_spec(host_spec, workers: int) -> list:
    """Per-worker host ids from a ``host_spec`` (see the module docstring).

    ``None`` → all on host 0.  An int (or numeric string) ``n`` → worker
    ``wi`` on host ``wi % n``.  A comma-separated list (``"0,0,1,1"``)
    or sequence pins each worker explicitly; its length must match the
    pool size.  Host 0 must be populated — it is where the shared arena
    lives and where chunk payloads are mapped zero-copy.
    """
    workers = int(workers)
    if host_spec is None:
        return [0] * workers
    if isinstance(host_spec, str):
        host_spec = host_spec.strip()
        if "," in host_spec:
            host_spec = [part.strip() for part in host_spec.split(",")]
        else:
            try:
                host_spec = int(host_spec)
            except ValueError:
                raise ValueError(
                    f"host_spec {host_spec!r} is neither a host count nor "
                    "a comma-separated per-worker host list"
                ) from None
    if isinstance(host_spec, int):
        if host_spec < 1:
            raise ValueError("host_spec host count must be at least 1")
        return [wi % host_spec for wi in range(workers)]
    try:
        ids = [int(h) for h in host_spec]
    except (TypeError, ValueError):
        raise ValueError(
            f"host_spec {host_spec!r} must be an int, a comma-separated "
            "list, or a sequence of host ids"
        ) from None
    if len(ids) != workers:
        raise ValueError(
            f"host_spec lists {len(ids)} host id(s) for {workers} worker(s)"
        )
    if any(h < 0 for h in ids):
        raise ValueError("host_spec host ids must be >= 0")
    if 0 not in ids:
        raise ValueError(
            "host_spec must place at least one worker on host 0 "
            "(the host holding the shared-memory arena)"
        )
    return ids


def _cleanup(state: dict) -> None:
    """Finalizer shared by close() and GC: tear down processes and shm.

    Mesh edge rings were *created* by workers but are *owned* (unlink
    duty) here: closing them after the processes are gone guarantees no
    segment outlives the pool even when a worker died mid-shuffle.

    Serialized per-pool: an explicit ``close()`` can race the GC
    finalizer (or a second ``close()`` from another thread), and both
    must not interleave the pop-then-teardown of the same resources.
    The lock lives *in the state dict* so the weakref finalizer and
    every explicit caller share it without holding the executor alive.
    ``state["join_timeout"]`` (default 5 s) bounds the graceful drain —
    the supervisor's recovery path shortens it because a worker stalled
    by an injected fault will never drain voluntarily.
    """
    lock = state.setdefault("_lock", threading.Lock())
    with lock:
        procs = state.pop("procs", [])
        task_queues = state.pop("task_queues", [])
        join_timeout = float(state.get("join_timeout", 5.0))
        for q in task_queues:
            try:
                q.put(("stop",))
            except Exception:
                pass
        for p in procs:
            p.join(timeout=join_timeout)
            if p.is_alive():  # stuck worker (e.g. blocked on a wedged edge)
                p.terminate()  # SIGTERM → worker's graceful-exit handler
                p.join(timeout=2.0)
            if p.is_alive():  # ignoring SIGTERM (masked or wedged in C)
                p.kill()
                p.join(timeout=1.0)
        for ring in state.pop("rings", []):
            ring.close()
        for ring in state.pop("mesh_edges", {}).values():
            ring.close()  # attached with owner=True: close() unlinks
        # Defensive sweep: edge names are deterministic (pool token +
        # edge coordinates) and recorded *before* forking, so even a
        # worker that died mid-handshake — before reporting anything —
        # cannot leak the segments it had already created.
        from multiprocessing import shared_memory

        for name in state.pop("mesh_edge_names", []):
            try:
                seg = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue  # never created, or already unlinked
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - unlink race
                pass
        # Same crash-safe sweep for the tcp plane's AF_UNIX listener
        # paths: deterministic (pool token + worker id), recorded
        # before forking, so a worker killed mid-handshake cannot leak
        # its socket file.
        for path in state.pop("socket_paths", []):
            try:
                os.unlink(path)
            except (FileNotFoundError, OSError):
                pass
        arena = state.pop("arena", None)
        if arena is not None:
            arena.close()


class PendingFrame:
    """Handle for one in-flight frame of the pool pipeline.

    Opaque to callers: pass it back to
    :meth:`SharedMemoryPoolExecutor.collect` to obtain the frame's
    :class:`~repro.core.executors.InProcessResult`.  The executor keeps
    the frame's partial state (per-chunk runs and counters, per
    -partition reduced outputs) here while later frames are submitted.
    """

    __slots__ = (
        "seq",
        "spec",
        "chunks",
        "chunk_to_gpu",
        "n",
        "runs_per_chunk",
        "emitted_per_chunk",
        "kept_per_chunk",
        "work_per_chunk",
        "routed_per_chunk",
        "map_received",
        "queue_fallbacks",
        "parent_run_bytes",
        "wire_bytes",
        "sealed",
        "outputs",
        "pairs_per_reducer",
        "reduced_received",
        "result",
        "retries",
    )

    def __init__(
        self,
        seq: int,
        spec: MapReduceSpec,
        chunks: Sequence[Chunk],
        chunk_to_gpu: Optional[Sequence[int]],
        result: Optional[InProcessResult] = None,
    ):
        self.seq = seq
        self.spec = spec
        self.chunks = list(chunks)
        self.chunk_to_gpu = chunk_to_gpu
        n = len(self.chunks)
        self.n = n
        self.runs_per_chunk: list = [None] * n
        self.emitted_per_chunk = [0] * n
        self.kept_per_chunk = [0] * n
        self.work_per_chunk: list = [None] * n
        self.routed_per_chunk: list = [None] * n
        self.map_received = 0
        self.queue_fallbacks = 0
        self.parent_run_bytes = 0  # run bytes that crossed the parent
        self.wire_bytes = 0  # bytes on the wire (tcp plane, headers incl.)
        self.sealed = False
        self.outputs: list = [None] * spec.n_reducers
        self.pairs_per_reducer = np.zeros(spec.n_reducers, dtype=np.int64)
        self.reduced_received = 0
        self.result = result
        self.retries = 0  # recovery re-executions of this frame so far

    @property
    def done(self) -> bool:
        return self.result is not None

    def reset_for_retry(self) -> None:
        """Rewind every partial counter so the frame can be re-executed.

        The supervisor calls this before replaying the frame on a fresh
        transport epoch: all map results, buffered runs, and reduced
        spans drain from the *new* processes, so nothing from the failed
        attempt may be left behind to double-count.  Chunks and spec are
        retained (the handle stays valid), only progress is discarded.
        """
        n = self.n
        self.runs_per_chunk = [None] * n
        self.emitted_per_chunk = [0] * n
        self.kept_per_chunk = [0] * n
        self.work_per_chunk = [None] * n
        self.routed_per_chunk = [None] * n
        self.map_received = 0
        self.queue_fallbacks = 0
        self.parent_run_bytes = 0
        self.wire_bytes = 0
        self.sealed = False
        self.outputs = [None] * self.spec.n_reducers
        self.pairs_per_reducer = np.zeros(self.spec.n_reducers, dtype=np.int64)
        self.reduced_received = 0
        self.retries += 1


class SharedMemoryPoolExecutor:
    """Fan brick map (and reduce) work out across a pool of workers.

    Parameters
    ----------
    workers:
        Pool size (defaults to the number of usable cores).  The
        renderer passes its simulated-GPU count so placement maps one
        worker per GPU.
    config:
        :class:`~repro.core.job.JobConfig` execution knobs (kept for
        surface parity with the other executors).
    ring_capacity:
        Per-worker uplink fragment ring size in bytes (overrides
        ``pool_config.ring_capacity``).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``.
    serial:
        Run the identical code path in-process (no processes, no shared
        memory).  Deterministic fallback for tests and constrained
        platforms.
    reduce_mode:
        ``"parent"`` (Sort+Reduce in the parent, the default) or
        ``"worker"`` (per-partition Sort+Reduce on the owning worker —
        the paper's symmetric layout).  Outputs are bitwise-identical
        either way.
    pipeline_depth:
        Max frames in flight for :meth:`submit`/:meth:`collect`; 1
        means fully synchronous.  ``execute`` is unaffected by values
        > 1 unless frames are also submitted asynchronously.
    shuffle_mode:
        ``"parent"``, ``"mesh"``, ``"tcp"``, or ``"auto"`` (default) —
        which shuffle plane moves fragment runs between processes; see
        the module docstring.  Bitwise-identical output either way.
    socket_family:
        Address family of the tcp plane's edge streams: ``"unix"``
        (default where available) or ``"inet"`` (loopback TCP);
        ``None`` reads ``$REPRO_SOCKET_FAMILY``.  Ignored by the
        other planes.
    host_spec:
        Worker→host placement for the tcp plane (``None``: everything
        on host 0).  An int round-robins workers across that many
        hosts; a comma-separated string or sequence pins each worker.
        Hosts other than 0 get chunk payloads over the wire instead of
        the shm arena (see the module docstring); any multi-host spec
        requires the socket plane (``shuffle_mode="tcp"`` with
        ``reduce_mode="worker"``), because every other transport
        assumes one shared-memory box.
    pin_workers:
        Opt-in NUMA/core pinning (see module docstring).
    ring_write_timeout:
        Seconds a blocked ring/edge write may wait before the pool is
        declared wedged; ``None`` reads ``$REPRO_RING_WRITE_TIMEOUT``
        (default 300).
    mesh_edge_capacity:
        Per-edge mesh ring bytes (default ``ring_capacity // workers``,
        floor 64 KiB).
    watermark_timeout:
        Seconds a mesh reducer may wait for a frame's completion
        watermark before declaring the frame wedged; ``None`` reads
        ``$REPRO_WATERMARK_TIMEOUT`` and falls back to the ring write
        timeout.
    supervise:
        When True (the default), infrastructure failures — a dead
        worker process, a wedged transport timeout — are *recovered*:
        the transport epoch is recycled in place, in-flight frames are
        re-executed (bitwise-identically), and repeated failures walk a
        degradation ladder (shrink the pool, then fall back to the
        serial executor) instead of erroring.  ``supervise=False``
        restores the legacy semantics: any failure tears the pool down
        and propagates.  User-code exceptions (a mapper/reducer raise)
        are *never* retried under either setting — retrying a
        deterministic bug burns the retry budget to reproduce it.
    max_frame_retries:
        Recovery attempts per frame at a given pool width before the
        degradation ladder steps down; ``None`` reads
        ``$REPRO_MAX_FRAME_RETRIES`` (default 2).
    retry_backoff:
        Base seconds of exponential backoff between recovery attempts;
        ``None`` reads ``$REPRO_RETRY_BACKOFF`` (default 0.05).
    fault_plan:
        Deterministic fault-injection plan for the workers (see
        :mod:`repro.parallel.faults` for the grammar); ``None`` reads
        ``$REPRO_FAULT_PLAN``.  Testing/benchmark hook — production
        pools leave it unset.
    kernel:
        March-kernel backend every worker must resolve and JIT-warm at
        spawn (``"auto"``/``"numpy"``/``"numba"``; None skips warmup —
        the pool then runs whatever the mapper's own config selects).
        The renderer passes the *concrete* backend it resolved, so a
        worker that cannot provide it (e.g. numba missing in the
        worker's interpreter) reports an error before the first frame
        instead of rendering with a divergent marcher.  Warmup runs
        once per spawned worker, off the frame critical path, inside a
        ``kernel-warmup`` tracer span; the pool counts warmups in
        ``JobStats.telemetry``.
    pool_config:
        A :class:`~repro.parallel.shuffle.PoolConfig` supplying the
        transport defaults; the explicit keyword arguments above
        override its fields.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        config: Optional[JobConfig] = None,
        ring_capacity: Optional[int] = None,
        start_method: Optional[str] = None,
        serial: bool = False,
        reduce_mode: str = "parent",
        pipeline_depth: int = 1,
        shuffle_mode: Optional[str] = None,
        socket_family: Optional[str] = None,
        host_spec=None,
        pin_workers: Optional[bool] = None,
        ring_write_timeout: Optional[float] = None,
        mesh_edge_capacity: Optional[int] = None,
        watermark_timeout: Optional[float] = None,
        supervise: Optional[bool] = None,
        max_frame_retries: Optional[int] = None,
        retry_backoff: Optional[float] = None,
        fault_plan: Optional[str] = None,
        kernel: Optional[str] = None,
        pool_config: Optional[PoolConfig] = None,
    ):
        if workers is None:
            workers = usable_cores()
        if workers < 1:
            raise ValueError("need at least one worker")
        if reduce_mode not in ("parent", "worker"):
            raise ValueError(f"unknown reduce_mode {reduce_mode!r}")
        if pipeline_depth < 1:
            raise ValueError("pipeline depth must be at least 1")
        base = pool_config if pool_config is not None else PoolConfig()
        overrides = {
            k: v
            for k, v in {
                "ring_capacity": ring_capacity,
                "shuffle_mode": shuffle_mode,
                "socket_family": socket_family,
                "pin_workers": pin_workers,
                "ring_write_timeout": ring_write_timeout,
                "mesh_edge_capacity": mesh_edge_capacity,
                "watermark_timeout": watermark_timeout,
                "supervise": supervise,
                "max_frame_retries": max_frame_retries,
                "retry_backoff": retry_backoff,
                "fault_plan": fault_plan,
            }.items()
            if v is not None
        }
        self.pool_config = replace(base, **overrides)  # revalidates knobs
        self.workers = int(workers)
        self.config = config if config is not None else JobConfig()
        self.serial = bool(serial)
        self.reduce_mode = reduce_mode
        self.pipeline_depth = int(pipeline_depth)
        # Resolve the transport once, at construction, so a later env
        # change cannot flip a live pool's plane mid-orbit.
        self.ring_capacity = self.pool_config.ring_capacity
        self.shuffle_mode = self.pool_config.resolved_shuffle_mode(reduce_mode)
        if self.mesh_active:  # serial pools open zero edge fds
            # The parent attaches all N(N-1) edges; on many-core hosts
            # that can blow through the fd soft limit mid-handshake.
            # An implicit (auto) mesh quietly degrades to the parent
            # plane — bitwise-identical, just slower — while an
            # explicit request fails fast with a fix instead of a
            # confusing EMFILE from deep inside the handshake.
            fits, needed, soft = mesh_fd_headroom(self.workers)
            if not fits:
                if self.pool_config.shuffle_mode_is_explicit():
                    raise ValueError(
                        f"shuffle_mode='mesh' with {self.workers} workers "
                        f"needs ~{needed} file descriptors in the parent "
                        f"but the soft RLIMIT_NOFILE is {soft}; raise the "
                        "limit (ulimit -n) or reduce workers"
                    )
                warnings.warn(
                    f"auto shuffle: using the parent-routed plane — a "
                    f"{self.workers}-worker mesh needs ~{needed} file "
                    f"descriptors but the soft RLIMIT_NOFILE is {soft}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self.shuffle_mode = "parent"
        # Socket-plane placement: resolved (and validated) here so a
        # bad host spec or family fails at construction, like every
        # other transport knob.
        self.host_ids = parse_host_spec(host_spec, self.workers)
        self.multi_host = len(set(self.host_ids)) > 1
        self.socket_family = (
            self.pool_config.resolved_socket_family()
            if self.tcp_active
            else None
        )
        if self.multi_host and not self.tcp_active:
            raise ValueError(
                "a multi-host host_spec requires the socket shuffle plane "
                "(shuffle_mode='tcp' with reduce_mode='worker'): every "
                "other transport assumes one shared-memory box"
            )
        self.ring_write_timeout = self.pool_config.resolved_ring_write_timeout()
        self.mesh_edge_capacity = self.pool_config.resolved_edge_capacity(
            self.workers
        )
        self.pin_workers = bool(self.pool_config.pin_workers)
        # Supervision knobs: resolved once here so a live pool's retry
        # policy cannot flip mid-orbit via an env change.  A serial pool
        # has no processes to supervise (and the serial path is itself
        # the last rung of the degradation ladder).
        self.watermark_timeout = self.pool_config.resolved_watermark_timeout()
        self.supervise = bool(self.pool_config.supervise) and not self.serial
        self.max_frame_retries = self.pool_config.resolved_max_frame_retries()
        self.retry_backoff = self.pool_config.resolved_retry_backoff()
        self.fault_plan = self.pool_config.resolved_fault_plan()
        if kernel is not None and kernel not in ("auto", "numpy", "numba"):
            raise ValueError(
                f"kernel must be one of 'auto', 'numpy', 'numba', got {kernel!r}"
            )
        self.kernel = kernel
        # Worker kernel warmups performed so far (one per spawned worker
        # when a kernel is pinned; respawned waves re-warm) — exported
        # via JobStats.telemetry.
        self._kernel_warmups = 0
        self._supervisor = PoolSupervisor()
        self._spawn_gen = 0  # spawn waves so far; fault rules key on it
        self._degraded_serial = False  # ladder hit the floor: serial only
        self._arena_rebroadcast = False  # fresh wave must re-attach arena
        # Cumulative arena traffic, exported via JobStats.telemetry: how
        # many times the downlink actually re-uploaded vs. re-attached.
        self._arena_publishes = 0
        self._arena_bytes_published = 0
        self._arena_rebroadcasts = 0
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self._state: dict = {}
        self._arena_fingerprint = None
        self._result_queue = None
        self._seq = 0
        self._pending: dict[int, PendingFrame] = {}  # insertion-ordered
        self._plane = None
        self._finalizer = weakref.finalize(self, _cleanup, self._state)

    # -- lifecycle ---------------------------------------------------------
    @property
    def running(self) -> bool:
        return bool(self._state.get("procs"))

    @property
    def mesh_active(self) -> bool:
        """Whether the worker↔worker mesh data plane materializes.

        The mesh only exists when workers reduce: with a parent-side
        reduce every run's destination is the parent, so the uplink
        rings already are the direct path and ``shuffle_mode="mesh"``
        degenerates to the parent-routed plane (bitwise-identically).
        A ``serial=True`` pool runs everything in-process — no
        processes, no transport of any kind — so no plane materializes
        there either.
        """
        return (
            self.shuffle_mode == "mesh"
            and self.reduce_mode == "worker"
            and not self.serial
        )

    @property
    def tcp_active(self) -> bool:
        """Whether the socket (tcp) data plane materializes — same rule
        as :attr:`mesh_active`: only when workers reduce (a parent-side
        reduce makes the uplink rings the direct path already) and the
        pool is not serial."""
        return (
            self.shuffle_mode == "tcp"
            and self.reduce_mode == "worker"
            and not self.serial
        )

    @property
    def effective_shuffle_mode(self) -> str:
        """The plane that actually carries run bytes: ``"mesh"``/``"tcp"``
        only when that direct plane materializes (see
        :attr:`mesh_active` / :attr:`tcp_active`), else ``"parent"`` —
        always agrees with what ``JobStats.ring["shuffle_mode"]``
        reports."""
        if self.tcp_active:
            return "tcp"
        return "mesh" if self.mesh_active else "parent"

    def _worker_pins(self) -> list:
        """Per-worker core assignment for ``pin_workers`` (None = unpinned).

        Distinct cores, taken from this process's own affinity mask so
        a pool nested under an external pinning regime stays inside it.
        """
        if not self.pin_workers:
            return [None] * self.workers
        if not hasattr(os, "sched_setaffinity"):  # pragma: no cover
            warnings.warn(
                "pin_workers=True ignored: CPU affinity is unavailable "
                "on this platform",
                RuntimeWarning,
                stacklevel=3,
            )
            return [None] * self.workers
        cores = sorted(os.sched_getaffinity(0))
        if len(cores) < self.workers:
            warnings.warn(
                f"pin_workers=True ignored: {len(cores)} usable core(s) "
                f"for {self.workers} workers",
                RuntimeWarning,
                stacklevel=3,
            )
            return [None] * self.workers
        return cores[: self.workers]

    def _ensure_started(self) -> None:
        if self.running:
            return
        # The whole fork tree must share ONE resource tracker: segment
        # bookkeeping pairs a register in one process with an unregister
        # in another (worker-created mesh edges are unlinked by whoever
        # gets there first — see shm.py's tracker note).  Children only
        # inherit a tracker that is already running, and on the mesh
        # plane the parent may fork before creating any segment of its
        # own, so start it explicitly or every process lazily spawns its
        # own tracker and each warns about phantom "leaks" at exit.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker is an optimization
            pass
        pins = self._worker_pins()
        mesh_active = self.mesh_active
        tcp_active = self.tcp_active
        direct_plane = mesh_active or tcp_active
        # Uplink rings exist only on the parent-routed plane; on the
        # direct planes (mesh, tcp) every run byte travels
        # worker<->worker edges, so the uplinks would be N dead
        # full-capacity segments.
        rings = (
            []
            if direct_plane
            else [
                ShmRing.create(self.ring_capacity)
                for _ in range(self.workers)
            ]
        )
        task_queues = [self._ctx.Queue() for _ in range(self.workers)]
        self._result_queue = self._ctx.Queue()
        mesh_token = None
        if mesh_active:
            # Deterministic edge names, recorded before any worker
            # exists: teardown can unlink every edge a worker may have
            # created even if it dies before the handshake completes.
            mesh_token = uuid.uuid4().hex[:12]
            self._state["mesh_edge_names"] = [
                mesh_edge_name(mesh_token, i, j)
                for i in range(self.workers)
                for j in range(self.workers)
                if i != j
            ]
        socket_token = None
        if tcp_active:
            # Same crash-safe trick for the socket plane: AF_UNIX
            # listener paths are deterministic and recorded pre-fork,
            # so teardown can sweep them no matter when a worker died.
            socket_token = uuid.uuid4().hex[:12]
            if self.socket_family == "unix":
                self._state["socket_paths"] = [
                    socket_path(socket_token, wi)
                    for wi in range(self.workers)
                ]
        spawn_gen = self._spawn_gen
        self._spawn_gen += 1
        procs = []
        for wi in range(self.workers):
            cfg = {
                "pin_cpu": pins[wi],
                "write_timeout": self.ring_write_timeout,
                "watermark_timeout": self.watermark_timeout,
                "mesh_active": mesh_active,
                "n_workers": self.workers,
                "edge_capacity": self.mesh_edge_capacity,
                "mesh_token": mesh_token,
                "socket_active": tcp_active,
                "socket_token": socket_token,
                "socket_family": self.socket_family,
                # Off-host workers (host != 0) never receive arena
                # messages; their chunk payloads and TF table ride the
                # task queues instead.
                "host_id": self.host_ids[wi],
                "fault_plan": self.fault_plan,
                # Fault rules default to generation 0, so a respawned
                # wave does not re-trip the fault that killed its
                # predecessor (gen=any opts into exactly that, to
                # drive the degradation ladder in tests).
                "spawn_gen": spawn_gen,
                # Workers inherit the parent's tracer object over fork;
                # this flag tells worker_main to install its *own* fresh
                # tracer (or drop the inherited one) so span buffers are
                # per-process and ship back over the result queue.
                "trace": current_tracer() is not None,
                # March-kernel backend to resolve + JIT-warm at spawn
                # (concrete when a renderer pinned it; None skips).
                "kernel": self.kernel,
            }
            p = self._ctx.Process(
                target=worker_main,
                args=(
                    wi,
                    task_queues[wi],
                    self._result_queue,
                    rings[wi].name if not direct_plane else None,
                    cfg,
                ),
                daemon=True,
                name=f"repro-pool-{wi}",
            )
            p.start()
            procs.append(p)
        if self.kernel is not None:
            # Every spawned worker warms its kernel before serving
            # frames (worker_main, post-handshake); account for the
            # wave here — a warmup *failure* surfaces as a worker
            # "error" message and fails the next pump fast.
            self._kernel_warmups += self.workers
        self._state.update(
            procs=procs, task_queues=task_queues, rings=rings
        )
        # The plane owns the data path; it finishes its own transport
        # bring-up (the mesh edge / socket address handshake) before
        # any frame flows.
        if tcp_active:
            self._plane = SocketShuffle(self)
        elif mesh_active:
            self._plane = MeshShuffle(self)
        else:
            self._plane = ParentRoutedShuffle(self)
        self._plane.start()

    def close(self) -> None:
        """Shut the pool down and release every shared-memory segment.

        Frames still in flight are aborted: collecting their handles
        afterwards raises.  Idempotent and safe to race from multiple
        threads (or against the GC finalizer): teardown is serialized
        by a lock inside the shared state dict and every resource is
        claimed by ``pop``, so each segment/process is torn down by
        exactly one caller and the rest see already-empty state.
        """
        _cleanup(self._state)
        self._arena_fingerprint = None
        self._result_queue = None
        self._pending.clear()
        self._plane = None

    def _teardown_transport(self, join_timeout: float = 1.0) -> None:
        """Recycle the transport epoch, *keeping* the published arena.

        Recovery's fault domain is the whole transport — processes,
        queues, uplink rings, mesh edges — because SPSC cursor state
        cannot be rewound for a single lost peer.  The arena is popped
        around the sweep so the expensive brick/TF segments survive;
        the fingerprint stays valid, so replay re-publishes nothing
        and the fresh wave re-attaches by name.  ``join_timeout`` is
        short: a worker wedged or stalled by a fault will never drain
        voluntarily, so escalate to SIGTERM/SIGKILL quickly.
        """
        arena = self._state.pop("arena", None)
        self._state["join_timeout"] = join_timeout
        try:
            _cleanup(self._state)
        finally:
            self._state.pop("join_timeout", None)
            if arena is not None:
                self._state["arena"] = arena
                # The next publish against a fresh wave must re-send the
                # kept arena's spec even when the fingerprint matches.
                self._arena_rebroadcast = True
        self._result_queue = None
        self._plane = None

    # -- supervision & recovery --------------------------------------------
    def _run_pipeline_op(self, op, serial_fallback):
        """Run one pipeline operation under the supervisor.

        ``op`` is a re-runnable closure (a submit enqueue or a collect
        drain).  On an *infrastructure* failure — dead worker, wedged
        transport — the supervisor recycles the transport epoch and
        replays the in-flight frames, then ``op`` is retried against
        the fresh pool.  On any other exception (user code, interrupt,
        protocol violation) or with ``supervise=False``, the historical
        semantics hold: full teardown, propagate.  When the degradation
        ladder bottoms out in serial execution, ``serial_fallback``
        produces the operation's result without any pool at all.
        """
        while True:
            try:
                return op()
            except BaseException as exc:
                failure = classify_failure(exc) if self.supervise else None
                if failure is None:
                    # Leftover ring bytes or queue messages from a
                    # partially-drained frame must never pair with a
                    # later frame's chunks: tear everything down.
                    self.close()
                    raise
                self._recover(failure)
                if self._degraded_serial:
                    return serial_fallback()

    def _recover(self, failure: PoolFailure) -> None:
        """Quarantine the failed transport epoch and re-execute frames.

        The bounded-retry ladder: each in-flight frame gets
        ``max_frame_retries`` recovery attempts at the current pool
        width; exhausting them steps the width down by one (the static
        ``partition % n_workers`` ownership contract re-owns every
        partition deterministically, so results cannot change); at
        width zero the pool stops pretending and runs the remaining
        frames through the serial in-process executor — the pipeline
        *degrades*, it never errors, for infrastructure failures.
        Exponential backoff between attempts gives a transiently sick
        host (OOM-killer sweeps, cgroup pressure) room to breathe.
        """
        attempt = 0
        while True:
            self._supervisor.record_failure(failure)
            frames = [f for f in self._pending.values() if not f.done]
            # Recycle the whole transport epoch: processes, queues,
            # rings, edges.  The arena survives (see _teardown_transport).
            self._teardown_transport()
            spent = max((f.retries for f in frames), default=attempt)
            if spent >= self.max_frame_retries:
                if self.workers > 1:
                    old = self.workers
                    self.workers = old - 1
                    self.mesh_edge_capacity = (
                        self.pool_config.resolved_edge_capacity(self.workers)
                    )
                    # Shedding the last worker of a host may collapse a
                    # multi-host placement back to single-host — then
                    # everyone attaches the arena again.
                    self.host_ids = self.host_ids[: self.workers]
                    self.multi_host = len(set(self.host_ids)) > 1
                    self._supervisor.record_degraded(old, self.workers)
                    for f in frames:
                        f.retries = 0  # fresh budget at the new width
                else:
                    # The ladder's floor: no healthy width left.  The
                    # serial executor is the identical algorithm with no
                    # transport to fail, so finish the frames there.
                    self._supervisor.record_serial_fallback()
                    self._degraded_serial = True
                    for f in sorted(frames, key=lambda f: f.seq):
                        f.result = self._execute_serial(
                            f.spec, f.chunks, f.chunk_to_gpu
                        )
                        f.result.stats.recovery = self._supervisor.snapshot(
                            frame_retries=f.retries, workers=0
                        )
                        self._pending.pop(f.seq, None)
                    self._supervisor.record_reexecuted(len(frames))
                    return
            if self.retry_backoff > 0:
                time.sleep(
                    min(self.retry_backoff * (2 ** min(attempt, 6)), 5.0)
                )
            attempt += 1
            for f in frames:
                f.reset_for_retry()
            try:
                t0 = time.monotonic()
                with span("respawn", cat="respawn", workers=self.workers) as sp:
                    self._ensure_started()
                    sp.set(gen=self._spawn_gen - 1)
                self._supervisor.record_respawn(
                    self.workers, time.monotonic() - t0, self._spawn_gen - 1
                )
                self._replay(frames)
                return
            except BaseException as exc:
                inner = classify_failure(exc)
                if inner is None:  # a bug (or interrupt) inside recovery
                    self.close()
                    raise
                failure = inner  # the fresh wave failed too: loop

    def _replay(self, frames: Sequence[PendingFrame]) -> None:
        """Re-enqueue ``frames`` (oldest first) on the fresh transport.

        The common case re-publishes nothing: the arena survived the
        teardown and the fingerprint still matches, so workers re-attach
        the same segments by name.  A frame submitted against an *older*
        arena generation (possible mid-orbit with pipeline_depth > 1)
        repacks from its retained chunks instead — correct either way,
        because each worker processes its queue strictly in order:
        arena switch, then that frame's maps.

        Each frame is *sealed* (its map results drained) before the next
        frame's messages are enqueued, mirroring :meth:`submit`'s
        drain-before-republish ordering: ``_publish`` unlinks the
        previous arena the moment a new spec is enqueued, which is only
        safe once every worker has provably attached it — and a drained
        frame is exactly that proof.
        """
        if not frames:
            return
        for f in sorted(frames, key=lambda f: f.seq):
            self._publish(f.spec, f.chunks)
            arena_payload, wire_payload = self._frame_payloads(f.spec, f.n)
            self._put_frame(arena_payload, wire_payload)
            for ci, chunk in enumerate(f.chunks):
                wi = (
                    int(f.chunk_to_gpu[ci])
                    if f.chunk_to_gpu is not None
                    else ci
                ) % self.workers
                self._state["task_queues"][wi].put(
                    self._map_message(f.seq, ci, chunk, wi)
                )
            self._seal(f)
        self._supervisor.record_reexecuted(len(frames))

    def __enter__(self) -> "SharedMemoryPoolExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- data publication --------------------------------------------------
    def _arena_queues(self) -> list:
        """Task queues of the workers that attach the shm arena — host-0
        workers only.  Off-host workers must never see an arena spec
        (there is, by definition, no shared segment on their host);
        their data rides the queues instead."""
        return [
            q
            for wi, q in enumerate(self._state["task_queues"])
            if self.host_ids[wi] == 0
        ]

    def _publish(self, spec: MapReduceSpec, chunks: Sequence[Chunk]) -> None:
        """(Re)publish the chunk payload + transfer-function arena.

        When the mapper renders with ``accel="grid"``, each chunk's
        macro-cell occupancy grid (or its ``NO_GRID`` sentinel) rides
        along in the same arena under ``(GRID_ARENA_KEY, cache key)``:
        workers seed their process-local acceleration caches from the
        zero-copy views on attach, so across an orbit's frames the grids
        are built exactly once, in the parent — the fingerprint already
        pins everything they depend on (volume token, tf version, brick
        regions, and the accel knobs added here).
        """
        token = getattr(spec.mapper, "accel_token", None)
        tf = getattr(spec.mapper, "tf", None)
        tf_version = getattr(tf, "version", None)
        config = getattr(spec.mapper, "config", None)
        accel_mode = getattr(config, "accel", None)
        cell_size = getattr(config, "macro_cell_size", None)
        sig = (
            (
                token,
                tf_version,
                accel_mode,
                cell_size,
                tuple(
                    (
                        c.id,
                        c.nbytes,
                        # Pin the brick's region: the same volume can be
                        # bricked into different grids reusing chunk ids.
                        getattr(c.meta, "data_lo", None),
                        getattr(c.meta, "data_hi", None),
                    )
                    for c in chunks
                ),
            )
            if token is not None
            else None  # unknown provenance: always republish
        )
        if sig is not None and sig == self._arena_fingerprint:
            if self._arena_rebroadcast:
                # Recovery fast path: the arena survived the transport
                # teardown (workers only ever *attach* it, so it was
                # never at risk from a dead process) but the respawned
                # wave has not seen its spec yet.  Re-send the kept spec
                # — the workers re-attach gigabytes of bricks by name in
                # microseconds instead of a full repack.  Sent here, not
                # at spawn time, so it keeps the publish-path ordering
                # guarantee: an arena spec always precedes (in the same
                # task queue) the frame that needs it, and any *newer*
                # arena that replaces it is only published after this
                # frame's maps have drained.
                with span("publish", cat="publish", rebroadcast=True):
                    arena = self._state["arena"]
                    for q in self._arena_queues():
                        q.put(("arena", arena.spec))
                self._arena_rebroadcast = False
                self._arena_rebroadcasts += 1
            return
        with span("publish", cat="publish", chunks=len(chunks)) as sp:
            arrays = {c.id: c.payload() for c in chunks}
            if tf_version is not None:
                arrays[TF_ARENA_KEY] = tf.table
            if accel_mode == "grid" and tf_version is not None:
                key_for = getattr(spec.mapper, "accel_key_for", None)
                if key_for is not None:
                    from ..render.accel import (
                        build_macro_grid,
                        grid_key,
                        shared_cache,
                    )

                    cache = shared_cache()
                    for c in chunks:
                        base = key_for(c)
                        if base is None:
                            continue
                        gkey = grid_key(base, cell_size)
                        grid = cache.get(gkey)
                        if grid is None:
                            grid = build_macro_grid(arrays[c.id], tf, cell_size)
                            cache.put(gkey, grid)
                        arrays[(GRID_ARENA_KEY, gkey)] = grid
            nbytes = sum(int(a.nbytes) for a in arrays.values())
            sp.set(bytes=nbytes)
            arena = ShmArena(arrays)
            for q in self._arena_queues():
                q.put(("arena", arena.spec))
            old = self._state.get("arena")
            if old is not None:
                old.close()  # attached workers keep the memory alive until
            self._state["arena"] = arena  # they process the new-arena message
        self._arena_fingerprint = sig
        self._arena_rebroadcast = False  # fresh spec reached every queue
        self._arena_publishes += 1
        self._arena_bytes_published += nbytes

    def _frame_payloads(self, spec: MapReduceSpec, n_chunks: int) -> tuple:
        """Pickle the frame context: ``(arena_payload, wire_payload)``.

        The arena payload strips the TF table (it travels via shared
        memory; ``tf_ref`` tells the worker to rebind the arena view).
        The wire payload — built only for multi-host pools — keeps the
        table inline and leaves ``tf_ref`` unset, because an off-host
        worker has no arena to rebind from; it is ``None`` otherwise.
        ``n_chunks`` rides along so direct-plane reducers know each
        frame's completion watermark without another control message.
        """
        ctx = FrameContext.from_spec(
            spec,
            include_reducer=self.reduce_mode == "worker",
            n_chunks=n_chunks,
        )
        wire = (
            pickle.dumps(ctx, protocol=pickle.HIGHEST_PROTOCOL)
            if self.multi_host
            else None
        )
        tf = getattr(spec.mapper, "tf", None)
        if tf is not None and getattr(tf, "version", None) is not None:
            ctx.tf_ref = (tf.vmin, tf.vmax)
            try:
                spec.mapper.tf = None  # table travels via shared memory
                return (
                    pickle.dumps(ctx, protocol=pickle.HIGHEST_PROTOCOL),
                    wire,
                )
            finally:
                spec.mapper.tf = tf
        return pickle.dumps(ctx, protocol=pickle.HIGHEST_PROTOCOL), wire

    def _put_frame(self, arena_payload: bytes, wire_payload) -> None:
        """Enqueue the frame context on every task queue, picking the
        wire flavor for off-host workers."""
        for wi, q in enumerate(self._state["task_queues"]):
            q.put(
                (
                    "frame",
                    wire_payload
                    if self.host_ids[wi] != 0 and wire_payload is not None
                    else arena_payload,
                )
            )

    def _map_message(self, frame_seq: int, ci: int, chunk: Chunk, wi: int):
        """One map task message.  Off-host targets get the chunk payload
        inline (there is no shared arena on their host); host-0 targets
        get ``None`` and map the arena view zero-copy as always."""
        payload = chunk.payload() if self.host_ids[wi] != 0 else None
        return (
            "map",
            frame_seq,
            ci,
            chunk.id,
            chunk.nbytes,
            chunk.on_disk,
            chunk.meta,
            payload,
        )

    # -- async frame pipeline ----------------------------------------------
    def submit(
        self,
        spec: MapReduceSpec,
        chunks: Sequence[Chunk],
        chunk_to_gpu: Optional[Sequence[int]] = None,
    ) -> PendingFrame:
        """Start one frame; pair with :meth:`collect`.

        Seals every frame already in flight first (drains its map
        results, dispatches its reduce tasks), so the task queues order
        earlier frames' reduce work ahead of this frame's maps, then
        enforces the ``pipeline_depth`` cap by force-collecting the
        oldest frames (their handles return the cached result).

        Failure semantics: under supervision (the default), an
        infrastructure failure — a dead worker, a wedged transport —
        recycles the transport epoch in place, replays the in-flight
        frames, and retries; user-code errors (and
        ``supervise=False``) keep the legacy behaviour of tearing the
        whole pool down on the way out, because leftover ring bytes or
        queue messages from a partially-drained frame must never be
        paired with a later frame's chunks.
        """
        if self.serial or self._degraded_serial or len(chunks) == 0:
            # Zero chunks means nothing to fan out (and nothing to put in
            # an arena); the serial path returns the same empty-job result
            # InProcessExecutor produces.  A pool degraded to the serial
            # floor routes every subsequent frame here too.
            result = self._execute_serial(spec, chunks, chunk_to_gpu)
            if self._degraded_serial and self._supervisor.active:
                result.stats.recovery = self._supervisor.snapshot(workers=0)
            self._seq += 1
            return PendingFrame(
                self._seq, spec, chunks, chunk_to_gpu, result=result
            )
        ids = [c.id for c in chunks]
        if len(set(ids)) != len(ids):
            raise ValueError("chunk ids must be unique for the pool executor")

        def op() -> PendingFrame:
            self._ensure_started()
            for f in list(self._pending.values()):
                self._seal(f)
            while len(self._pending) >= self.pipeline_depth:
                self._collect_oldest()
            self._publish(spec, chunks)
            arena_payload, wire_payload = self._frame_payloads(
                spec, len(chunks)
            )
            self._put_frame(arena_payload, wire_payload)
            frame = PendingFrame(self._seq + 1, spec, chunks, chunk_to_gpu)
            for ci, chunk in enumerate(chunks):
                wi = (
                    int(chunk_to_gpu[ci]) if chunk_to_gpu is not None else ci
                ) % self.workers
                self._state["task_queues"][wi].put(
                    self._map_message(frame.seq, ci, chunk, wi)
                )
            # Register (and burn the seq) only once every message is
            # enqueued: if anything above failed, the partial messages
            # died with the recycled transport and op re-runs cleanly
            # from scratch without replaying a half-submitted frame.
            self._seq += 1
            self._pending[frame.seq] = frame
            return frame

        def fallback() -> PendingFrame:
            result = self._execute_serial(spec, chunks, chunk_to_gpu)
            result.stats.recovery = self._supervisor.snapshot(workers=0)
            self._seq += 1
            return PendingFrame(
                self._seq, spec, chunks, chunk_to_gpu, result=result
            )

        return self._run_pipeline_op(op, fallback)

    def collect(self, frame: PendingFrame) -> InProcessResult:
        """Finish ``frame`` and return its result.

        Frames complete in submission order; collecting a newer frame
        first silently completes the older ones (their handles keep the
        cached results).
        """
        while frame.result is None:
            if frame.seq not in self._pending:
                # A stale handle (aborted by an earlier shutdown) is a
                # caller error, not a pipeline failure: report it without
                # tearing down whatever healthy pool is running now.
                raise RuntimeError(
                    "frame was aborted by a pool shutdown before it "
                    "could be collected"
                )
            # If recovery bottoms out in serial execution, _recover has
            # already finished every pending frame (including this one),
            # so the fallback has nothing left to do.
            self._run_pipeline_op(self._collect_oldest, lambda: None)
        return frame.result

    # -- execution ---------------------------------------------------------
    def execute(
        self,
        spec: MapReduceSpec,
        chunks: Sequence[Chunk],
        chunk_to_gpu: Optional[Sequence[int]] = None,
    ) -> InProcessResult:
        """Execute ``spec`` over ``chunks`` — same surface as the serial
        executor; ``chunk_to_gpu`` doubles as worker placement (one
        worker per simulated GPU, modulo pool size)."""
        return self.collect(self.submit(spec, chunks, chunk_to_gpu))

    # -- pipeline internals ------------------------------------------------
    def _oldest(self) -> PendingFrame:
        return next(iter(self._pending.values()))

    def _seal(self, frame: PendingFrame) -> None:
        """Bring ``frame`` to the point where later frames may be enqueued:
        all map results drained and (in worker mode) reduce dispatched."""
        if frame.sealed:
            return
        while frame.map_received < frame.n:
            self._pump()
        if self.reduce_mode == "worker":
            # Control-plane handoff to the shuffle plane: parent-routed
            # ships the runs it buffered; mesh only announces ownership
            # (the runs are already in the owners' inbound edges).
            self._plane.dispatch_reduce(frame)
        frame.sealed = True

    def _recv(self, timeout: float = 1.0):
        """One result-queue message, or None after a liveness check."""
        try:
            return self._result_queue.get(timeout=timeout)
        except queue_mod.Empty:
            dead = dead_workers(self._state.get("procs", []))
            if dead:
                names = [name for name, _ in dead]
                raise PoolFailure(
                    f"pool worker(s) died during execute: {names}",
                    kind="worker-death",
                    workers=names,
                )
            return None

    def _pump(self, timeout: float = 1.0) -> None:
        """Receive and route one worker message (or poll for dead workers)."""
        msg = self._recv(timeout=timeout)
        if msg is None:
            return
        kind = msg[0]
        if kind == "spans":
            # A worker's span buffer, flushed just before a completion
            # message (FIFO: the spans of everything a frame counts are
            # absorbed by the time the frame seals).  Silently dropped
            # when tracing was turned off between spawn and delivery.
            tracer = current_tracer()
            if tracer is not None:
                tracer.add_remote(msg[1], msg[2], msg[3])
            return
        if kind == "error":
            # Workers tag errors with the exception type name so the
            # parent can tell infrastructure failures (RingTimeout — a
            # wedge, recoverable) from user-code bugs (fatal).
            _, wi, what, tb, etype = msg
            raise worker_error_to_exception(wi, what, tb, etype)
        if kind == "done":
            (_, wi, seq, ci, emitted, kept, work, routed, ring_nbytes,
             inline, fallbacks) = msg
            frame = self._pending[seq]
            self._plane.on_map_done(frame, wi, ci, routed, ring_nbytes, inline)
            frame.emitted_per_chunk[ci] = emitted
            frame.kept_per_chunk[ci] = kept
            frame.work_per_chunk[ci] = work
            frame.routed_per_chunk[ci] = np.asarray(routed, dtype=np.int64)
            frame.map_received += 1
            frame.queue_fallbacks += int(fallbacks)
        elif kind == "mesh_fallback":
            # An oversized mesh record taking the control-plane escape
            # hatch; the plane relays it to its owner (and counts it).
            self._plane.on_fallback(self._pending[msg[2]], msg)
        elif kind == "shuffle_stats":
            # Cumulative socket-plane counters, shipped FIFO just ahead
            # of the sender's reduce result; only the tcp plane emits
            # (and consumes) them.
            on_stats = getattr(self._plane, "on_worker_stats", None)
            if on_stats is not None:
                on_stats(msg[1], msg[2])
        elif kind == "reduced":
            _, wi, seq, owned, outputs, pairs_per_reducer = msg
            frame = self._pending[seq]
            for j, r in enumerate(owned):
                frame.outputs[r] = outputs[j]
                frame.pairs_per_reducer[r] = int(pairs_per_reducer[j])
            frame.reduced_received += len(owned)
        else:  # pragma: no cover - protocol violation
            raise RuntimeError(f"unexpected pool message {kind!r}")

    def _collect_oldest(self) -> None:
        """Complete the oldest in-flight frame and cache its result."""
        frame = self._oldest()
        self._seal(frame)
        spec = frame.spec
        if self.reduce_mode == "worker":
            while frame.reduced_received < spec.n_reducers:
                self._pump()
            outputs = frame.outputs
            pairs_per_reducer = frame.pairs_per_reducer
        else:
            spec.reducer.initialize()
            outputs, pairs_per_reducer = merge_partition_runs(
                spec, frame.runs_per_chunk
            )
        stats = JobStats()
        works: list[MapWork] = []
        for ci, chunk in enumerate(frame.chunks):
            stats.add_map(
                frame.work_per_chunk[ci],
                frame.emitted_per_chunk[ci],
                frame.kept_per_chunk[ci],
            )
            works.append(
                make_map_work(
                    chunk,
                    frame.chunk_to_gpu[ci]
                    if frame.chunk_to_gpu is not None
                    else 0,
                    frame.emitted_per_chunk[ci],
                    frame.work_per_chunk[ci],
                    frame.routed_per_chunk[ci],
                )
            )
        stats.ring = self._plane.frame_stats(frame)
        if self._supervisor.active:
            stats.recovery = self._supervisor.snapshot(
                frame_retries=frame.retries, workers=self.workers
            )
        stats.telemetry = self._frame_telemetry(stats, frame)
        frame.result = InProcessResult(
            outputs=outputs,
            stats=stats,
            pairs_per_reducer=pairs_per_reducer,
            works=works,
        )
        frame.runs_per_chunk = None  # free the fragment memory
        del self._pending[frame.seq]

    def _frame_telemetry(self, stats: JobStats, frame: PendingFrame) -> dict:
        """The ``JobStats.telemetry`` registry snapshot for one frame.

        Absorbs the ad-hoc dicts that already exist (ring backpressure,
        recovery ledger) plus the pool-lifetime arena counters and the
        parent's acceleration-cache hit rates into one flat, uniformly
        named metrics payload (see :mod:`repro.observability.metrics`).
        """
        from ..render.accel import shared_cache

        return build_job_telemetry(
            ring=stats.ring,
            recovery=stats.recovery,
            arena={
                "publishes": self._arena_publishes,
                "published_bytes": self._arena_bytes_published,
                "rebroadcasts": self._arena_rebroadcasts,
            },
            cache=shared_cache().stats(),
            workers=self.workers,
            reduce_mode=self.reduce_mode,
            shuffle_mode=self.effective_shuffle_mode,
            pipeline_depth=self.pipeline_depth,
            frame_seq=frame.seq,
            kernel_backend=self.kernel or "unpinned",
            kernel_warmups=self._kernel_warmups,
        )

    def _execute_serial(
        self,
        spec: MapReduceSpec,
        chunks: Sequence[Chunk],
        chunk_to_gpu: Optional[Sequence[int]],
    ) -> InProcessResult:
        """Deterministic fallback: the serial executor *is* the same code.

        ``InProcessExecutor.execute`` is built from the identical
        ``map_chunk_to_runs`` / ``merge_partition_runs`` functions the
        workers and the parent merge run, so delegating to it is the
        fallback path — equivalence by construction, not by mirroring.
        """
        return InProcessExecutor(self.config).execute(spec, chunks, chunk_to_gpu)
