"""The shared-memory multiprocess brick executor.

:class:`SharedMemoryPoolExecutor` runs a MapReduce job on a persistent
pool of worker processes — one worker per simulated GPU — exactly
mirroring the paper's per-GPU pipeline on real parallel hardware.  It
is a drop-in replacement for
:class:`~repro.core.executors.InProcessExecutor`: same
``execute(spec, chunks, chunk_to_gpu)`` signature, same
:class:`~repro.core.executors.InProcessResult` out, bitwise-identical
outputs and counters (see :mod:`repro.parallel.merge` for why).

Stage placement (``reduce_mode``):

* ``"parent"`` — workers run Map + Partition, the parent runs Sort +
  Reduce (the PR-2 layout).
* ``"worker"`` — the paper's full symmetry: each worker also runs Sort
  + Reduce for the reducer partitions it *owns* (the static
  :class:`~repro.core.executors.ShuffleSpec` ownership contract,
  ``partition % workers``), executing the literal
  :func:`~repro.core.executors.merge_partition_runs` over chunk-ordered
  runs and shipping back composited per-partition ``(keys, values)``
  spans instead of raw fragments.  The parent becomes a pure stitcher.
  Keys are disjoint per partition, so placement cannot change results.

Shuffle plane (``shuffle_mode``, see :mod:`repro.parallel.shuffle`):

* ``"parent"`` — :class:`~repro.parallel.shuffle.ParentRoutedShuffle`:
  run bytes go worker → uplink ring → parent (→ task queue → owning
  worker under worker-side reduce).  The parent is on the data path.
* ``"mesh"`` — :class:`~repro.parallel.shuffle.MeshShuffle`: an N×N
  mesh of SPSC shared-memory edge rings; each mapper writes a
  partition's runs *directly* into the owning reducer worker's inbound
  edge, tagged ``(frame, chunk, partition)``, the way the paper's GPUs
  exchange fragments over the interconnect.  The parent degrades to a
  pure **control plane** — publish, seal, stitch, teardown — and never
  touches a run byte (``JobStats.ring["parent_run_bytes"] == 0``).
  Materializes only under ``reduce_mode="worker"``; with a parent-side
  reduce every run's destination *is* the parent, so the uplink rings
  already are the direct path.
* ``"auto"`` (default) — ``$REPRO_SHUFFLE_MODE`` if set, else mesh
  exactly when the reduce runs on workers.

Outputs are bitwise-identical across shuffle modes × reduce modes ×
pipeline depths *by construction*: both planes deliver the same
chunk-ordered, tag-restored runs into the same literal merge function.

Frame pipelining (``pipeline_depth``):

* :meth:`submit` / :meth:`collect` split ``execute`` into an async
  half-pair; up to ``pipeline_depth`` frames may be in flight at once.
  Submitting frame *k+1* first **seals** frame *k* (drains its map
  results and dispatches its reduce tasks), so per-worker task queues
  always order ``reduce(k)`` before ``map(k+1)`` — the workers
  map+reduce frame *k+1* while the parent assembles/stitches frame *k*,
  the multiprocess analogue of the paper's §7 async-upload overlap.
  Because the next frame's arena is published at submit time, an
  out-of-core orbit's chunk loads (disk → shared memory) are also
  prefetched off the previous frame's critical path.
  ``pipeline_depth=1`` (default) degenerates to fully synchronous
  per-frame execution.  Results are bitwise-independent of the depth:
  runs are merged in chunk order and reduced outputs are assembled in
  partition order, never in completion order.  Mesh records carry
  their frame seq, so pipelined frames can interleave on the wire
  without ever interleaving in a reduce (per-frame watermarks).

Data movement:

* **Downlink** (chunks to workers): every chunk payload and the
  transfer-function table are published once into a shared-memory
  arena (:mod:`repro.parallel.shm`); workers map them zero-copy.  The
  arena is fingerprinted on ``(volume token, tf version, chunk
  ids/sizes)`` and republished only when that changes, so an orbit's
  frames upload the volume exactly once — the paper's resident-brick
  regime.
* **Uplink** (fragments to parent, parent plane only): each worker
  streams its bucketed fragment runs through a private shared-memory
  ring buffer (:mod:`repro.parallel.ring`); only counters cross the
  pickling queues.  Chunks whose output exceeds the ring capacity fall
  back to the queue instead of deadlocking.
* **Shuffle** (worker-reduce mode): owned by the shuffle plane — see
  above.  Every plane exports backpressure counters (producer stall
  time/events, high-water marks, queue fallbacks, parent-touched run
  bytes) into ``JobStats.ring``.

NUMA/core pinning (``pin_workers=True``): each worker is pinned to a
distinct usable core before it allocates its inbound mesh edges, so
one-worker-per-GPU placement maps onto real topology and edge pages
are first-touched locally.  No-op with a warning when affinity is
unavailable or there are fewer cores than workers.

``serial=True`` executes the identical worker code path in-process with
no processes or shared memory — the deterministic fallback used by the
equivalence tests and by platforms without POSIX shared memory.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import uuid
import warnings
import weakref
from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from ..core.chunk import Chunk
from ..core.executors import (
    InProcessExecutor,
    InProcessResult,
    make_map_work,
    merge_partition_runs,
)
from ..core.job import JobConfig, MapReduceSpec
from ..core.scheduler import MapWork
from ..core.stats import JobStats
from .ring import ShmRing
from .shm import ShmArena
from .shuffle import (
    MeshShuffle,
    ParentRoutedShuffle,
    PoolConfig,
    mesh_edge_name,
    mesh_fd_headroom,
)
from .worker import GRID_ARENA_KEY, TF_ARENA_KEY, FrameContext, worker_main

__all__ = [
    "PendingFrame",
    "PoolConfig",
    "SharedMemoryPoolExecutor",
    "default_pool_workers",
    "usable_cores",
]


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_pool_workers(n_gpus: int) -> int:
    """The renderer's pool-size policy: one worker per simulated GPU,
    capped to the cores actually available."""
    return max(1, min(n_gpus, usable_cores()))


def _cleanup(state: dict) -> None:
    """Finalizer shared by close() and GC: tear down processes and shm.

    Mesh edge rings were *created* by workers but are *owned* (unlink
    duty) here: closing them after the processes are gone guarantees no
    segment outlives the pool even when a worker died mid-shuffle.
    """
    procs = state.pop("procs", [])
    task_queues = state.pop("task_queues", [])
    for q in task_queues:
        try:
            q.put(("stop",))
        except Exception:
            pass
    for p in procs:
        p.join(timeout=5.0)
        if p.is_alive():  # stuck worker (e.g. blocked on a wedged edge)
            p.terminate()
            p.join(timeout=1.0)
    for ring in state.pop("rings", []):
        ring.close()
    for ring in state.pop("mesh_edges", {}).values():
        ring.close()  # attached with owner=True: close() unlinks
    # Defensive sweep: edge names are deterministic (pool token + edge
    # coordinates) and recorded *before* forking, so even a worker that
    # died mid-handshake — before reporting anything — cannot leak the
    # segments it had already created.
    from multiprocessing import shared_memory

    for name in state.pop("mesh_edge_names", []):
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue  # never created, or already unlinked
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - unlink race
            pass
    arena = state.pop("arena", None)
    if arena is not None:
        arena.close()


class PendingFrame:
    """Handle for one in-flight frame of the pool pipeline.

    Opaque to callers: pass it back to
    :meth:`SharedMemoryPoolExecutor.collect` to obtain the frame's
    :class:`~repro.core.executors.InProcessResult`.  The executor keeps
    the frame's partial state (per-chunk runs and counters, per
    -partition reduced outputs) here while later frames are submitted.
    """

    __slots__ = (
        "seq",
        "spec",
        "chunks",
        "chunk_to_gpu",
        "n",
        "runs_per_chunk",
        "emitted_per_chunk",
        "kept_per_chunk",
        "work_per_chunk",
        "routed_per_chunk",
        "map_received",
        "queue_fallbacks",
        "parent_run_bytes",
        "sealed",
        "outputs",
        "pairs_per_reducer",
        "reduced_received",
        "result",
    )

    def __init__(
        self,
        seq: int,
        spec: MapReduceSpec,
        chunks: Sequence[Chunk],
        chunk_to_gpu: Optional[Sequence[int]],
        result: Optional[InProcessResult] = None,
    ):
        self.seq = seq
        self.spec = spec
        self.chunks = list(chunks)
        self.chunk_to_gpu = chunk_to_gpu
        n = len(self.chunks)
        self.n = n
        self.runs_per_chunk: list = [None] * n
        self.emitted_per_chunk = [0] * n
        self.kept_per_chunk = [0] * n
        self.work_per_chunk: list = [None] * n
        self.routed_per_chunk: list = [None] * n
        self.map_received = 0
        self.queue_fallbacks = 0
        self.parent_run_bytes = 0  # run bytes that crossed the parent
        self.sealed = False
        self.outputs: list = [None] * spec.n_reducers
        self.pairs_per_reducer = np.zeros(spec.n_reducers, dtype=np.int64)
        self.reduced_received = 0
        self.result = result

    @property
    def done(self) -> bool:
        return self.result is not None


class SharedMemoryPoolExecutor:
    """Fan brick map (and reduce) work out across a pool of workers.

    Parameters
    ----------
    workers:
        Pool size (defaults to the number of usable cores).  The
        renderer passes its simulated-GPU count so placement maps one
        worker per GPU.
    config:
        :class:`~repro.core.job.JobConfig` execution knobs (kept for
        surface parity with the other executors).
    ring_capacity:
        Per-worker uplink fragment ring size in bytes (overrides
        ``pool_config.ring_capacity``).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``.
    serial:
        Run the identical code path in-process (no processes, no shared
        memory).  Deterministic fallback for tests and constrained
        platforms.
    reduce_mode:
        ``"parent"`` (Sort+Reduce in the parent, the default) or
        ``"worker"`` (per-partition Sort+Reduce on the owning worker —
        the paper's symmetric layout).  Outputs are bitwise-identical
        either way.
    pipeline_depth:
        Max frames in flight for :meth:`submit`/:meth:`collect`; 1
        means fully synchronous.  ``execute`` is unaffected by values
        > 1 unless frames are also submitted asynchronously.
    shuffle_mode:
        ``"parent"``, ``"mesh"``, or ``"auto"`` (default) — which
        shuffle plane moves fragment runs between processes; see the
        module docstring.  Bitwise-identical output either way.
    pin_workers:
        Opt-in NUMA/core pinning (see module docstring).
    ring_write_timeout:
        Seconds a blocked ring/edge write may wait before the pool is
        declared wedged and torn down; ``None`` reads
        ``$REPRO_RING_WRITE_TIMEOUT`` (default 300).
    mesh_edge_capacity:
        Per-edge mesh ring bytes (default ``ring_capacity // workers``,
        floor 64 KiB).
    pool_config:
        A :class:`~repro.parallel.shuffle.PoolConfig` supplying the
        transport defaults; the explicit keyword arguments above
        override its fields.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        config: Optional[JobConfig] = None,
        ring_capacity: Optional[int] = None,
        start_method: Optional[str] = None,
        serial: bool = False,
        reduce_mode: str = "parent",
        pipeline_depth: int = 1,
        shuffle_mode: Optional[str] = None,
        pin_workers: Optional[bool] = None,
        ring_write_timeout: Optional[float] = None,
        mesh_edge_capacity: Optional[int] = None,
        pool_config: Optional[PoolConfig] = None,
    ):
        if workers is None:
            workers = usable_cores()
        if workers < 1:
            raise ValueError("need at least one worker")
        if reduce_mode not in ("parent", "worker"):
            raise ValueError(f"unknown reduce_mode {reduce_mode!r}")
        if pipeline_depth < 1:
            raise ValueError("pipeline depth must be at least 1")
        base = pool_config if pool_config is not None else PoolConfig()
        overrides = {
            k: v
            for k, v in {
                "ring_capacity": ring_capacity,
                "shuffle_mode": shuffle_mode,
                "pin_workers": pin_workers,
                "ring_write_timeout": ring_write_timeout,
                "mesh_edge_capacity": mesh_edge_capacity,
            }.items()
            if v is not None
        }
        self.pool_config = replace(base, **overrides)  # revalidates knobs
        self.workers = int(workers)
        self.config = config if config is not None else JobConfig()
        self.serial = bool(serial)
        self.reduce_mode = reduce_mode
        self.pipeline_depth = int(pipeline_depth)
        # Resolve the transport once, at construction, so a later env
        # change cannot flip a live pool's plane mid-orbit.
        self.ring_capacity = self.pool_config.ring_capacity
        self.shuffle_mode = self.pool_config.resolved_shuffle_mode(reduce_mode)
        if self.mesh_active:  # serial pools open zero edge fds
            # The parent attaches all N(N-1) edges; on many-core hosts
            # that can blow through the fd soft limit mid-handshake.
            # An implicit (auto) mesh quietly degrades to the parent
            # plane — bitwise-identical, just slower — while an
            # explicit request fails fast with a fix instead of a
            # confusing EMFILE from deep inside the handshake.
            fits, needed, soft = mesh_fd_headroom(self.workers)
            if not fits:
                if self.pool_config.shuffle_mode_is_explicit():
                    raise ValueError(
                        f"shuffle_mode='mesh' with {self.workers} workers "
                        f"needs ~{needed} file descriptors in the parent "
                        f"but the soft RLIMIT_NOFILE is {soft}; raise the "
                        "limit (ulimit -n) or reduce workers"
                    )
                warnings.warn(
                    f"auto shuffle: using the parent-routed plane — a "
                    f"{self.workers}-worker mesh needs ~{needed} file "
                    f"descriptors but the soft RLIMIT_NOFILE is {soft}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self.shuffle_mode = "parent"
        self.ring_write_timeout = self.pool_config.resolved_ring_write_timeout()
        self.mesh_edge_capacity = self.pool_config.resolved_edge_capacity(
            self.workers
        )
        self.pin_workers = bool(self.pool_config.pin_workers)
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self._state: dict = {}
        self._arena_fingerprint = None
        self._result_queue = None
        self._seq = 0
        self._pending: dict[int, PendingFrame] = {}  # insertion-ordered
        self._plane = None
        self._finalizer = weakref.finalize(self, _cleanup, self._state)

    # -- lifecycle ---------------------------------------------------------
    @property
    def running(self) -> bool:
        return bool(self._state.get("procs"))

    @property
    def mesh_active(self) -> bool:
        """Whether the worker↔worker mesh data plane materializes.

        The mesh only exists when workers reduce: with a parent-side
        reduce every run's destination is the parent, so the uplink
        rings already are the direct path and ``shuffle_mode="mesh"``
        degenerates to the parent-routed plane (bitwise-identically).
        A ``serial=True`` pool runs everything in-process — no
        processes, no transport of any kind — so no plane materializes
        there either.
        """
        return (
            self.shuffle_mode == "mesh"
            and self.reduce_mode == "worker"
            and not self.serial
        )

    @property
    def effective_shuffle_mode(self) -> str:
        """The plane that actually carries run bytes: ``"mesh"`` only
        when the mesh materializes (see :attr:`mesh_active`), else
        ``"parent"`` — always agrees with what
        ``JobStats.ring["shuffle_mode"]`` reports."""
        return "mesh" if self.mesh_active else "parent"

    def _worker_pins(self) -> list:
        """Per-worker core assignment for ``pin_workers`` (None = unpinned).

        Distinct cores, taken from this process's own affinity mask so
        a pool nested under an external pinning regime stays inside it.
        """
        if not self.pin_workers:
            return [None] * self.workers
        if not hasattr(os, "sched_setaffinity"):  # pragma: no cover
            warnings.warn(
                "pin_workers=True ignored: CPU affinity is unavailable "
                "on this platform",
                RuntimeWarning,
                stacklevel=3,
            )
            return [None] * self.workers
        cores = sorted(os.sched_getaffinity(0))
        if len(cores) < self.workers:
            warnings.warn(
                f"pin_workers=True ignored: {len(cores)} usable core(s) "
                f"for {self.workers} workers",
                RuntimeWarning,
                stacklevel=3,
            )
            return [None] * self.workers
        return cores[: self.workers]

    def _ensure_started(self) -> None:
        if self.running:
            return
        # The whole fork tree must share ONE resource tracker: segment
        # bookkeeping pairs a register in one process with an unregister
        # in another (worker-created mesh edges are unlinked by whoever
        # gets there first — see shm.py's tracker note).  Children only
        # inherit a tracker that is already running, and on the mesh
        # plane the parent may fork before creating any segment of its
        # own, so start it explicitly or every process lazily spawns its
        # own tracker and each warns about phantom "leaks" at exit.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker is an optimization
            pass
        pins = self._worker_pins()
        mesh_active = self.mesh_active
        # Uplink rings exist only on the parent-routed plane; on the
        # mesh every run byte travels worker<->worker edges, so the
        # uplinks would be N dead full-capacity segments.
        rings = (
            []
            if mesh_active
            else [
                ShmRing.create(self.ring_capacity)
                for _ in range(self.workers)
            ]
        )
        task_queues = [self._ctx.Queue() for _ in range(self.workers)]
        self._result_queue = self._ctx.Queue()
        mesh_token = None
        if mesh_active:
            # Deterministic edge names, recorded before any worker
            # exists: teardown can unlink every edge a worker may have
            # created even if it dies before the handshake completes.
            mesh_token = uuid.uuid4().hex[:12]
            self._state["mesh_edge_names"] = [
                mesh_edge_name(mesh_token, i, j)
                for i in range(self.workers)
                for j in range(self.workers)
                if i != j
            ]
        procs = []
        for wi in range(self.workers):
            cfg = {
                "pin_cpu": pins[wi],
                "write_timeout": self.ring_write_timeout,
                "mesh_active": mesh_active,
                "n_workers": self.workers,
                "edge_capacity": self.mesh_edge_capacity,
                "mesh_token": mesh_token,
            }
            p = self._ctx.Process(
                target=worker_main,
                args=(
                    wi,
                    task_queues[wi],
                    self._result_queue,
                    rings[wi].name if not mesh_active else None,
                    cfg,
                ),
                daemon=True,
                name=f"repro-pool-{wi}",
            )
            p.start()
            procs.append(p)
        self._state.update(
            procs=procs, task_queues=task_queues, rings=rings
        )
        # The plane owns the data path; it finishes its own transport
        # bring-up (the mesh edge handshake) before any frame flows.
        self._plane = (
            MeshShuffle(self) if mesh_active else ParentRoutedShuffle(self)
        )
        self._plane.start()

    def close(self) -> None:
        """Shut the pool down and release every shared-memory segment.

        Frames still in flight are aborted: collecting their handles
        afterwards raises.
        """
        _cleanup(self._state)
        self._arena_fingerprint = None
        self._result_queue = None
        self._pending.clear()
        self._plane = None

    def __enter__(self) -> "SharedMemoryPoolExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- data publication --------------------------------------------------
    def _publish(self, spec: MapReduceSpec, chunks: Sequence[Chunk]) -> None:
        """(Re)publish the chunk payload + transfer-function arena.

        When the mapper renders with ``accel="grid"``, each chunk's
        macro-cell occupancy grid (or its ``NO_GRID`` sentinel) rides
        along in the same arena under ``(GRID_ARENA_KEY, cache key)``:
        workers seed their process-local acceleration caches from the
        zero-copy views on attach, so across an orbit's frames the grids
        are built exactly once, in the parent — the fingerprint already
        pins everything they depend on (volume token, tf version, brick
        regions, and the accel knobs added here).
        """
        token = getattr(spec.mapper, "accel_token", None)
        tf = getattr(spec.mapper, "tf", None)
        tf_version = getattr(tf, "version", None)
        config = getattr(spec.mapper, "config", None)
        accel_mode = getattr(config, "accel", None)
        cell_size = getattr(config, "macro_cell_size", None)
        sig = (
            (
                token,
                tf_version,
                accel_mode,
                cell_size,
                tuple(
                    (
                        c.id,
                        c.nbytes,
                        # Pin the brick's region: the same volume can be
                        # bricked into different grids reusing chunk ids.
                        getattr(c.meta, "data_lo", None),
                        getattr(c.meta, "data_hi", None),
                    )
                    for c in chunks
                ),
            )
            if token is not None
            else None  # unknown provenance: always republish
        )
        if sig is not None and sig == self._arena_fingerprint:
            return
        arrays = {c.id: c.payload() for c in chunks}
        if tf_version is not None:
            arrays[TF_ARENA_KEY] = tf.table
        if accel_mode == "grid" and tf_version is not None:
            key_for = getattr(spec.mapper, "accel_key_for", None)
            if key_for is not None:
                from ..render.accel import build_macro_grid, grid_key, shared_cache

                cache = shared_cache()
                for c in chunks:
                    base = key_for(c)
                    if base is None:
                        continue
                    gkey = grid_key(base, cell_size)
                    grid = cache.get(gkey)
                    if grid is None:
                        grid = build_macro_grid(arrays[c.id], tf, cell_size)
                        cache.put(gkey, grid)
                    arrays[(GRID_ARENA_KEY, gkey)] = grid
        arena = ShmArena(arrays)
        for q in self._state["task_queues"]:
            q.put(("arena", arena.spec))
        old = self._state.get("arena")
        if old is not None:
            old.close()  # attached workers keep the memory alive until
        self._state["arena"] = arena  # they process the new-arena message
        self._arena_fingerprint = sig

    def _frame_payload(self, spec: MapReduceSpec, n_chunks: int) -> bytes:
        """Pickle the frame context, with the TF table left in the arena.

        ``n_chunks`` rides along so mesh reducers know each frame's
        completion watermark without another control message.
        """
        ctx = FrameContext.from_spec(
            spec,
            include_reducer=self.reduce_mode == "worker",
            n_chunks=n_chunks,
        )
        tf = getattr(spec.mapper, "tf", None)
        if tf is not None and getattr(tf, "version", None) is not None:
            ctx.tf_ref = (tf.vmin, tf.vmax)
            try:
                spec.mapper.tf = None  # table travels via shared memory
                return pickle.dumps(ctx, protocol=pickle.HIGHEST_PROTOCOL)
            finally:
                spec.mapper.tf = tf
        return pickle.dumps(ctx, protocol=pickle.HIGHEST_PROTOCOL)

    # -- async frame pipeline ----------------------------------------------
    def submit(
        self,
        spec: MapReduceSpec,
        chunks: Sequence[Chunk],
        chunk_to_gpu: Optional[Sequence[int]] = None,
    ) -> PendingFrame:
        """Start one frame; pair with :meth:`collect`.

        Seals every frame already in flight first (drains its map
        results, dispatches its reduce tasks), so the task queues order
        earlier frames' reduce work ahead of this frame's maps, then
        enforces the ``pipeline_depth`` cap by force-collecting the
        oldest frames (their handles return the cached result).

        Any failure to keep the pipeline consistent — a worker-reported
        error, a ring timeout, a dead worker, Ctrl-C — tears the whole
        pool down on the way out: leftover ring bytes or queue messages
        from a partially-drained frame must never be paired with a later
        frame's chunks.  The next call starts from fresh processes.
        """
        if self.serial or len(chunks) == 0:
            # Zero chunks means nothing to fan out (and nothing to put in
            # an arena); the serial path returns the same empty-job result
            # InProcessExecutor produces.
            result = self._execute_serial(spec, chunks, chunk_to_gpu)
            self._seq += 1
            return PendingFrame(
                self._seq, spec, chunks, chunk_to_gpu, result=result
            )
        ids = [c.id for c in chunks]
        if len(set(ids)) != len(ids):
            raise ValueError("chunk ids must be unique for the pool executor")
        try:
            self._ensure_started()
            for frame in list(self._pending.values()):
                self._seal(frame)
            while len(self._pending) >= self.pipeline_depth:
                self._collect_oldest()
            self._publish(spec, chunks)
            payload = self._frame_payload(spec, len(chunks))
            for q in self._state["task_queues"]:
                q.put(("frame", payload))
            self._seq += 1
            frame = PendingFrame(self._seq, spec, chunks, chunk_to_gpu)
            self._pending[frame.seq] = frame
            for ci, chunk in enumerate(chunks):
                wi = (
                    int(chunk_to_gpu[ci]) if chunk_to_gpu is not None else ci
                ) % self.workers
                self._state["task_queues"][wi].put(
                    (
                        "map",
                        frame.seq,
                        ci,
                        chunk.id,
                        chunk.nbytes,
                        chunk.on_disk,
                        chunk.meta,
                    )
                )
            return frame
        except BaseException:
            self.close()
            raise

    def collect(self, frame: PendingFrame) -> InProcessResult:
        """Finish ``frame`` and return its result.

        Frames complete in submission order; collecting a newer frame
        first silently completes the older ones (their handles keep the
        cached results).
        """
        while frame.result is None:
            if frame.seq not in self._pending:
                # A stale handle (aborted by an earlier shutdown) is a
                # caller error, not a pipeline failure: report it without
                # tearing down whatever healthy pool is running now.
                raise RuntimeError(
                    "frame was aborted by a pool shutdown before it "
                    "could be collected"
                )
            try:
                self._collect_oldest()
            except BaseException:
                self.close()
                raise
        return frame.result

    # -- execution ---------------------------------------------------------
    def execute(
        self,
        spec: MapReduceSpec,
        chunks: Sequence[Chunk],
        chunk_to_gpu: Optional[Sequence[int]] = None,
    ) -> InProcessResult:
        """Execute ``spec`` over ``chunks`` — same surface as the serial
        executor; ``chunk_to_gpu`` doubles as worker placement (one
        worker per simulated GPU, modulo pool size)."""
        return self.collect(self.submit(spec, chunks, chunk_to_gpu))

    # -- pipeline internals ------------------------------------------------
    def _oldest(self) -> PendingFrame:
        return next(iter(self._pending.values()))

    def _seal(self, frame: PendingFrame) -> None:
        """Bring ``frame`` to the point where later frames may be enqueued:
        all map results drained and (in worker mode) reduce dispatched."""
        if frame.sealed:
            return
        while frame.map_received < frame.n:
            self._pump()
        if self.reduce_mode == "worker":
            # Control-plane handoff to the shuffle plane: parent-routed
            # ships the runs it buffered; mesh only announces ownership
            # (the runs are already in the owners' inbound edges).
            self._plane.dispatch_reduce(frame)
        frame.sealed = True

    def _recv(self, timeout: float = 1.0):
        """One result-queue message, or None after a liveness check."""
        try:
            return self._result_queue.get(timeout=timeout)
        except queue_mod.Empty:
            procs = self._state.get("procs", [])
            dead = [p.name for p in procs if not p.is_alive()]
            if dead:
                raise RuntimeError(
                    f"pool worker(s) died during execute: {dead}"
                )
            return None

    def _pump(self, timeout: float = 1.0) -> None:
        """Receive and route one worker message (or poll for dead workers)."""
        msg = self._recv(timeout=timeout)
        if msg is None:
            return
        kind = msg[0]
        if kind == "error":
            _, wi, what, tb = msg
            raise RuntimeError(
                f"task failure in the worker pool "
                f"[{what} on worker {wi}]:\n{tb}"
            )
        if kind == "done":
            (_, wi, seq, ci, emitted, kept, work, routed, ring_nbytes,
             inline, fallbacks) = msg
            frame = self._pending[seq]
            self._plane.on_map_done(frame, wi, ci, routed, ring_nbytes, inline)
            frame.emitted_per_chunk[ci] = emitted
            frame.kept_per_chunk[ci] = kept
            frame.work_per_chunk[ci] = work
            frame.routed_per_chunk[ci] = np.asarray(routed, dtype=np.int64)
            frame.map_received += 1
            frame.queue_fallbacks += int(fallbacks)
        elif kind == "mesh_fallback":
            # An oversized mesh record taking the control-plane escape
            # hatch; the plane relays it to its owner (and counts it).
            self._plane.on_fallback(self._pending[msg[2]], msg)
        elif kind == "reduced":
            _, wi, seq, owned, outputs, pairs_per_reducer = msg
            frame = self._pending[seq]
            for j, r in enumerate(owned):
                frame.outputs[r] = outputs[j]
                frame.pairs_per_reducer[r] = int(pairs_per_reducer[j])
            frame.reduced_received += len(owned)
        else:  # pragma: no cover - protocol violation
            raise RuntimeError(f"unexpected pool message {kind!r}")

    def _collect_oldest(self) -> None:
        """Complete the oldest in-flight frame and cache its result."""
        frame = self._oldest()
        self._seal(frame)
        spec = frame.spec
        if self.reduce_mode == "worker":
            while frame.reduced_received < spec.n_reducers:
                self._pump()
            outputs = frame.outputs
            pairs_per_reducer = frame.pairs_per_reducer
        else:
            spec.reducer.initialize()
            outputs, pairs_per_reducer = merge_partition_runs(
                spec, frame.runs_per_chunk
            )
        stats = JobStats()
        works: list[MapWork] = []
        for ci, chunk in enumerate(frame.chunks):
            stats.add_map(
                frame.work_per_chunk[ci],
                frame.emitted_per_chunk[ci],
                frame.kept_per_chunk[ci],
            )
            works.append(
                make_map_work(
                    chunk,
                    frame.chunk_to_gpu[ci]
                    if frame.chunk_to_gpu is not None
                    else 0,
                    frame.emitted_per_chunk[ci],
                    frame.work_per_chunk[ci],
                    frame.routed_per_chunk[ci],
                )
            )
        stats.ring = self._plane.frame_stats(frame)
        frame.result = InProcessResult(
            outputs=outputs,
            stats=stats,
            pairs_per_reducer=pairs_per_reducer,
            works=works,
        )
        frame.runs_per_chunk = None  # free the fragment memory
        del self._pending[frame.seq]

    def _execute_serial(
        self,
        spec: MapReduceSpec,
        chunks: Sequence[Chunk],
        chunk_to_gpu: Optional[Sequence[int]],
    ) -> InProcessResult:
        """Deterministic fallback: the serial executor *is* the same code.

        ``InProcessExecutor.execute`` is built from the identical
        ``map_chunk_to_runs`` / ``merge_partition_runs`` functions the
        workers and the parent merge run, so delegating to it is the
        fallback path — equivalence by construction, not by mirroring.
        """
        return InProcessExecutor(self.config).execute(spec, chunks, chunk_to_gpu)
