"""The shared-memory multiprocess brick executor.

:class:`SharedMemoryPoolExecutor` runs the Map + Partition stages of a
MapReduce job on a persistent pool of worker processes — one worker per
simulated GPU — and the Sort + Reduce stages in the parent, exactly
mirroring the paper's per-GPU pipeline on real parallel hardware.  It
is a drop-in replacement for
:class:`~repro.core.executors.InProcessExecutor`: same
``execute(spec, chunks, chunk_to_gpu)`` signature, same
:class:`~repro.core.executors.InProcessResult` out, bitwise-identical
outputs and counters (see :mod:`repro.parallel.merge` for why).

Data movement:

* **Downlink** (chunks to workers): every chunk payload and the
  transfer-function table are published once into a shared-memory
  arena (:mod:`repro.parallel.shm`); workers map them zero-copy.  The
  arena is fingerprinted on ``(volume token, tf version, chunk
  ids/sizes)`` and republished only when that changes, so an orbit's
  frames upload the volume exactly once — the paper's resident-brick
  regime.
* **Uplink** (fragments to parent): each worker streams its bucketed
  fragment runs through a private shared-memory ring buffer
  (:mod:`repro.parallel.ring`); only counters cross the pickling
  queues.  Chunks whose output exceeds the ring capacity fall back to
  the queue instead of deadlocking.

``serial=True`` executes the identical worker code path in-process with
no processes or shared memory — the deterministic fallback used by the
equivalence tests and by platforms without POSIX shared memory.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import weakref
from typing import Optional, Sequence

import numpy as np

from ..core.chunk import Chunk
from ..core.executors import (
    InProcessExecutor,
    InProcessResult,
    make_map_work,
    merge_partition_runs,
)
from ..core.job import JobConfig, MapReduceSpec
from ..core.scheduler import MapWork
from ..core.stats import JobStats
from .merge import split_runs
from .ring import ShmRing
from .shm import ShmArena
from .worker import TF_ARENA_KEY, FrameContext, worker_main

__all__ = ["SharedMemoryPoolExecutor", "default_pool_workers", "usable_cores"]

_DEFAULT_RING_CAPACITY = 8 << 20  # 8 MiB of fragments per worker


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_pool_workers(n_gpus: int) -> int:
    """The renderer's pool-size policy: one worker per simulated GPU,
    capped to the cores actually available."""
    return max(1, min(n_gpus, usable_cores()))


def _cleanup(state: dict) -> None:
    """Finalizer shared by close() and GC: tear down processes and shm."""
    procs = state.pop("procs", [])
    task_queues = state.pop("task_queues", [])
    for q in task_queues:
        try:
            q.put(("stop",))
        except Exception:
            pass
    for p in procs:
        p.join(timeout=5.0)
        if p.is_alive():  # pragma: no cover - stuck worker
            p.terminate()
            p.join(timeout=1.0)
    for ring in state.pop("rings", []):
        ring.close()
    arena = state.pop("arena", None)
    if arena is not None:
        arena.close()


class SharedMemoryPoolExecutor:
    """Fan brick map work out across a pool of worker processes.

    Parameters
    ----------
    workers:
        Pool size (defaults to the number of usable cores).  The
        renderer passes its simulated-GPU count so placement maps one
        worker per GPU.
    config:
        :class:`~repro.core.job.JobConfig` execution knobs (kept for
        surface parity with the other executors).
    ring_capacity:
        Per-worker fragment ring size in bytes.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``.
    serial:
        Run the identical code path in-process (no processes, no shared
        memory).  Deterministic fallback for tests and constrained
        platforms.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        config: Optional[JobConfig] = None,
        ring_capacity: int = _DEFAULT_RING_CAPACITY,
        start_method: Optional[str] = None,
        serial: bool = False,
    ):
        if workers is None:
            workers = usable_cores()
        if workers < 1:
            raise ValueError("need at least one worker")
        if ring_capacity < 1:
            raise ValueError("ring capacity must be positive")
        self.workers = int(workers)
        self.config = config if config is not None else JobConfig()
        self.ring_capacity = int(ring_capacity)
        self.serial = bool(serial)
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self._state: dict = {}
        self._arena_fingerprint = None
        self._result_queue = None
        self._finalizer = weakref.finalize(self, _cleanup, self._state)

    # -- lifecycle ---------------------------------------------------------
    @property
    def running(self) -> bool:
        return bool(self._state.get("procs"))

    def _ensure_started(self) -> None:
        if self.running:
            return
        rings = [
            ShmRing.create(self.ring_capacity) for _ in range(self.workers)
        ]
        task_queues = [self._ctx.Queue() for _ in range(self.workers)]
        self._result_queue = self._ctx.Queue()
        procs = []
        for wi in range(self.workers):
            p = self._ctx.Process(
                target=worker_main,
                args=(wi, task_queues[wi], self._result_queue, rings[wi].name),
                daemon=True,
                name=f"repro-pool-{wi}",
            )
            p.start()
            procs.append(p)
        self._state.update(
            procs=procs, task_queues=task_queues, rings=rings
        )

    def close(self) -> None:
        """Shut the pool down and release every shared-memory segment."""
        _cleanup(self._state)
        self._arena_fingerprint = None
        self._result_queue = None

    def __enter__(self) -> "SharedMemoryPoolExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- data publication --------------------------------------------------
    def _publish(self, spec: MapReduceSpec, chunks: Sequence[Chunk]) -> None:
        """(Re)publish the chunk payload + transfer-function arena."""
        token = getattr(spec.mapper, "accel_token", None)
        tf = getattr(spec.mapper, "tf", None)
        tf_version = getattr(tf, "version", None)
        sig = (
            (
                token,
                tf_version,
                tuple(
                    (
                        c.id,
                        c.nbytes,
                        # Pin the brick's region: the same volume can be
                        # bricked into different grids reusing chunk ids.
                        getattr(c.meta, "data_lo", None),
                        getattr(c.meta, "data_hi", None),
                    )
                    for c in chunks
                ),
            )
            if token is not None
            else None  # unknown provenance: always republish
        )
        if sig is not None and sig == self._arena_fingerprint:
            return
        arrays = {c.id: c.payload() for c in chunks}
        if tf_version is not None:
            arrays[TF_ARENA_KEY] = tf.table
        arena = ShmArena(arrays)
        for q in self._state["task_queues"]:
            q.put(("arena", arena.spec))
        old = self._state.get("arena")
        if old is not None:
            old.close()  # attached workers keep the memory alive until
        self._state["arena"] = arena  # they process the new-arena message
        self._arena_fingerprint = sig

    def _frame_payload(self, spec: MapReduceSpec) -> bytes:
        """Pickle the frame context, with the TF table left in the arena."""
        ctx = FrameContext.from_spec(spec)
        tf = getattr(spec.mapper, "tf", None)
        if tf is not None and getattr(tf, "version", None) is not None:
            ctx.tf_ref = (tf.vmin, tf.vmax)
            try:
                spec.mapper.tf = None  # table travels via shared memory
                return pickle.dumps(ctx, protocol=pickle.HIGHEST_PROTOCOL)
            finally:
                spec.mapper.tf = tf
        return pickle.dumps(ctx, protocol=pickle.HIGHEST_PROTOCOL)

    # -- execution ---------------------------------------------------------
    def execute(
        self,
        spec: MapReduceSpec,
        chunks: Sequence[Chunk],
        chunk_to_gpu: Optional[Sequence[int]] = None,
    ) -> InProcessResult:
        """Execute ``spec`` over ``chunks`` — same surface as the serial
        executor; ``chunk_to_gpu`` doubles as worker placement (one
        worker per simulated GPU, modulo pool size)."""
        if self.serial or len(chunks) == 0:
            # Zero chunks means nothing to fan out (and nothing to put in
            # an arena); the serial path returns the same empty-job result
            # InProcessExecutor produces.
            return self._execute_serial(spec, chunks, chunk_to_gpu)
        ids = [c.id for c in chunks]
        if len(set(ids)) != len(ids):
            raise ValueError("chunk ids must be unique for the pool executor")
        self._ensure_started()
        self._publish(spec, chunks)
        payload = self._frame_payload(spec)
        for q in self._state["task_queues"]:
            q.put(("frame", payload))
        owner = []
        for ci, chunk in enumerate(chunks):
            wi = (
                int(chunk_to_gpu[ci]) if chunk_to_gpu is not None else ci
            ) % self.workers
            owner.append(wi)
            self._state["task_queues"][wi].put(
                ("map", ci, chunk.id, chunk.nbytes, chunk.on_disk, chunk.meta)
            )

        n_red = spec.n_reducers
        n = len(chunks)
        runs_per_chunk: list = [None] * n
        emitted_per_chunk = [0] * n
        kept_per_chunk = [0] * n
        work_per_chunk: list = [None] * n
        routed_per_chunk: list = [None] * n
        received = 0
        rings = self._state["rings"]
        procs = self._state["procs"]
        # Any failure to drain this frame cleanly — a worker-reported map
        # error, a ring timeout, a dead worker, Ctrl-C — leaves rings
        # and/or the result queue holding this frame's partial state, and
        # a later execute() would pair those leftovers with the wrong
        # chunks.  Tear the whole pool down on the way out instead; the
        # next call starts from fresh processes and segments.
        try:
            while received < n:
                try:
                    msg = self._result_queue.get(timeout=1.0)
                except queue_mod.Empty:
                    dead = [p.name for p in procs if not p.is_alive()]
                    if dead:
                        raise RuntimeError(
                            f"pool worker(s) died during execute: {dead}"
                        )
                    continue
                if msg[0] == "error":
                    _, wi, ci, tb = msg
                    raise RuntimeError(
                        f"map task failure in the worker pool "
                        f"[chunk {ci} on worker {wi}]:\n{tb}"
                    )
                _, wi, ci, emitted, kept, work, routed, ring_nbytes, inline = msg
                if inline is not None:
                    pairs = inline
                else:
                    pairs = rings[wi].read_records(ring_nbytes, spec.kv.dtype)
                runs_per_chunk[ci] = split_runs(pairs, routed)
                emitted_per_chunk[ci] = emitted
                kept_per_chunk[ci] = kept
                work_per_chunk[ci] = work
                routed_per_chunk[ci] = np.asarray(routed, dtype=np.int64)
                received += 1
        except BaseException:
            self.close()
            raise

        spec.reducer.initialize()
        stats = JobStats()
        works: list[MapWork] = []
        for ci, chunk in enumerate(chunks):
            stats.add_map(
                work_per_chunk[ci], emitted_per_chunk[ci], kept_per_chunk[ci]
            )
            works.append(
                make_map_work(
                    chunk,
                    chunk_to_gpu[ci] if chunk_to_gpu is not None else 0,
                    emitted_per_chunk[ci],
                    work_per_chunk[ci],
                    routed_per_chunk[ci],
                )
            )
        outputs, pairs_per_reducer = merge_partition_runs(spec, runs_per_chunk)
        return InProcessResult(
            outputs=outputs,
            stats=stats,
            pairs_per_reducer=pairs_per_reducer,
            works=works,
        )

    def _execute_serial(
        self,
        spec: MapReduceSpec,
        chunks: Sequence[Chunk],
        chunk_to_gpu: Optional[Sequence[int]],
    ) -> InProcessResult:
        """Deterministic fallback: the serial executor *is* the same code.

        ``InProcessExecutor.execute`` is built from the identical
        ``map_chunk_to_runs`` / ``merge_partition_runs`` functions the
        workers and the parent merge run, so delegating to it is the
        fallback path — equivalence by construction, not by mirroring.
        """
        return InProcessExecutor(self.config).execute(spec, chunks, chunk_to_gpu)
