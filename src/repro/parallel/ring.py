"""Single-producer single-consumer shared-memory ring buffers.

Each pool worker owns one ring: the worker (producer) appends the raw
bytes of its per-chunk fragment runs; the parent (consumer) drains them
after the matching completion message arrives on the result queue.  The
ring models the paper's pinned-host fragment buffers that the GPUs
stream emitted pairs into while the CPU concurrently consumes them.

Layout of the shared segment::

    [ 64-byte header | capacity bytes of data ]

    header[0] = magic        (layout/version check on attach)
    header[1] = capacity     (data bytes)
    header[2] = write cursor (monotonic byte count ever written)
    header[3] = read cursor  (monotonic byte count ever consumed)
    header[4] = record size  (itemsize of the record dtype, advisory)
    header[5] = stall time   (ns the producer spent blocked on a full ring)
    header[6] = stall events (writes that found insufficient free space)
    header[7] = high water   (max occupied bytes ever observed at publish)

Words 5-7 are **backpressure counters**: the producer updates them (it
is the only writer of each), the consumer may read them at any time to
export per-worker stall/occupancy diagnostics.  They are advisory —
monotonic totals since creation, never reset by reads — so a consumer
wanting per-interval numbers snapshots and diffs them.

Cursors are *monotonic* uint64 byte counts; the physical offset is
``cursor % capacity`` and the occupied size is ``write − read``, which
makes full/empty unambiguous without wasting a slot.  The protocol is
strictly SPSC: only the producer advances ``write``, only the consumer
advances ``read``, and each side publishes its cursor only *after* the
corresponding memcpy — so a stale cursor read is always conservative
(the peer just waits a poll interval longer).  Waits are bounded
poll-sleeps; both sides raise :class:`TimeoutError` on expiry rather
than deadlocking silently.
"""

from __future__ import annotations

import time
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from ..observability.tracer import current_tracer

__all__ = ["ShmRing", "RingTimeout"]

_MAGIC = 0x52494E47_00000001  # "RING" + layout version
_HEADER_BYTES = 64
_HEADER_WORDS = _HEADER_BYTES // 8
(
    _IDX_MAGIC,
    _IDX_CAPACITY,
    _IDX_WRITE,
    _IDX_READ,
    _IDX_RECORD,
    _IDX_STALL_NS,
    _IDX_STALL_EVENTS,
    _IDX_HIGH_WATER,
) = range(8)
_POLL_SECONDS = 200e-6


class RingTimeout(TimeoutError):
    """A blocking ring operation expired before space/data appeared."""


class ShmRing:
    """SPSC byte ring over a :mod:`multiprocessing.shared_memory` segment."""

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool):
        self._shm = shm
        self._owner = owner
        self._closed = False
        self._open = True  # claimed (popped) by exactly one close()
        self._header = np.frombuffer(
            shm.buf, dtype=np.uint64, count=_HEADER_WORDS
        )
        if int(self._header[_IDX_MAGIC]) != _MAGIC:
            raise ValueError(f"segment {shm.name!r} is not a ring buffer")
        self.capacity = int(self._header[_IDX_CAPACITY])
        self._data = np.frombuffer(
            shm.buf, dtype=np.uint8, offset=_HEADER_BYTES, count=self.capacity
        )

    # -- construction ------------------------------------------------------
    @classmethod
    def create(
        cls, capacity: int, record_size: int = 1, name: Optional[str] = None
    ) -> "ShmRing":
        """Allocate a fresh ring (creator side; owns the segment name).

        ``name`` pins the segment name instead of letting the OS pick
        one — the mesh shuffle plane uses deterministic per-edge names
        so the parent can unlink every edge even when the creating
        worker died before reporting anything.
        """
        if capacity < 1:
            raise ValueError("ring capacity must be positive")
        if record_size < 1:
            raise ValueError("record size must be positive")
        shm = shared_memory.SharedMemory(
            create=True, size=_HEADER_BYTES + capacity, name=name
        )
        header = np.frombuffer(shm.buf, dtype=np.uint64, count=_HEADER_WORDS)
        header[:] = 0
        header[_IDX_CAPACITY] = capacity
        header[_IDX_RECORD] = record_size
        header[_IDX_MAGIC] = _MAGIC  # published last: attach sees a full header
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str, owner: bool = False) -> "ShmRing":
        """Attach to an existing ring.

        ``owner=False`` (the default, worker side) never unlinks.
        ``owner=True`` adopts unlink responsibility on :meth:`close` —
        the mesh shuffle plane uses this: each *worker* creates its
        inbound edge rings (after CPU pinning, so first-touch lands on
        the right node) but the *parent* owns teardown, which keeps the
        no-leaked-segments guarantee even when a worker dies without
        cleaning up.  Double unlink is harmless (guarded in close).
        """
        return cls(shared_memory.SharedMemory(name=name), owner=owner)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def record_size(self) -> int:
        return int(self._header[_IDX_RECORD])

    # -- state -------------------------------------------------------------
    @property
    def used(self) -> int:
        return int(self._header[_IDX_WRITE]) - int(self._header[_IDX_READ])

    @property
    def written(self) -> int:
        """Total bytes ever published (the monotonic write cursor) —
        how much traffic this ring has carried since creation."""
        return int(self._header[_IDX_WRITE])

    @property
    def free(self) -> int:
        return self.capacity - self.used

    # -- backpressure counters ---------------------------------------------
    @property
    def stall_seconds(self) -> float:
        """Total time the producer has spent blocked on a full ring."""
        return int(self._header[_IDX_STALL_NS]) * 1e-9

    @property
    def stall_events(self) -> int:
        """Writes that found insufficient free space and had to wait."""
        return int(self._header[_IDX_STALL_EVENTS])

    @property
    def high_water(self) -> int:
        """Maximum occupied bytes ever observed when publishing a write."""
        return int(self._header[_IDX_HIGH_WATER])

    def counters(self) -> dict:
        """Snapshot of the producer's backpressure + traffic counters.

        All values are monotonic totals since creation; consumers
        wanting per-interval numbers snapshot and diff them (which is
        exactly what the shuffle planes' per-frame stats do).
        """
        return {
            "stall_seconds": self.stall_seconds,
            "stall_events": self.stall_events,
            "high_water_bytes": self.high_water,
            "written_bytes": self.written,
        }

    # -- producer ----------------------------------------------------------
    def write_bytes(
        self, payload, timeout: Optional[float] = 30.0, on_wait=None
    ) -> None:
        """Append ``payload`` (bytes-like), blocking while the ring is full.

        ``payload`` must fit in the ring at all (``len <= capacity``);
        callers stream larger transfers in capacity-bounded pieces or
        fall back to another channel.  ``on_wait`` (optional callable)
        runs on every poll iteration while blocked — the mesh shuffle
        plane uses it to drain its *own* inbound edges while waiting
        for outbound space, which is what makes cycles of mutually
        backpressured workers deadlock-free.
        """
        self.write_vec((payload,), timeout=timeout, on_wait=on_wait)

    def write_vec(
        self, parts, timeout: Optional[float] = 30.0, on_wait=None
    ) -> None:
        """Append several bytes-like ``parts`` as ONE atomic publish.

        Each part is copied straight into the ring and the write cursor
        is published once, after the last copy — so a consumer either
        sees the whole concatenation or nothing, with no intermediate
        gather buffer.  The mesh shuffle plane writes each record as
        ``(header, run payload)`` through this, which keeps fragment
        bytes at a single memcpy just like the uplink-ring path.
        """
        bufs = [memoryview(p).cast("B") for p in parts]
        n = sum(len(b) for b in bufs)
        if n > self.capacity:
            raise ValueError(
                f"payload of {n} B exceeds ring capacity {self.capacity} B"
            )
        if n == 0:
            return
        if self.free < n:  # backpressure: the consumer is behind
            t0_ns = time.monotonic_ns()
            self._wait(lambda: self.free >= n, timeout, "space", on_wait)
            t1_ns = time.monotonic_ns()
            self._header[_IDX_STALL_NS] = np.uint64(
                int(self._header[_IDX_STALL_NS]) + (t1_ns - t0_ns)
            )
            self._header[_IDX_STALL_EVENTS] = np.uint64(
                int(self._header[_IDX_STALL_EVENTS]) + 1
            )
            # The header words aggregate stall time; the tracer (when
            # enabled) additionally records the *interval*, so a trace
            # shows when backpressure bit, not just that it did.
            tracer = current_tracer()
            if tracer is not None:
                tracer.add(
                    "ring-stall",
                    t0_ns,
                    t1_ns,
                    cat="stall",
                    args={"ring": self.name, "waited_for_bytes": n},
                )
        w = int(self._header[_IDX_WRITE])
        off = w
        for buf in bufs:
            m = len(buf)
            if m == 0:
                continue
            start = off % self.capacity
            first = min(m, self.capacity - start)
            self._data[start : start + first] = np.frombuffer(
                buf[:first], np.uint8
            )
            if first < m:  # wrap
                self._data[: m - first] = np.frombuffer(buf[first:], np.uint8)
            off += m
        # Publish after the copies: the consumer can never observe bytes
        # that are not fully written.
        self._header[_IDX_WRITE] = np.uint64(w + n)
        occupied = w + n - int(self._header[_IDX_READ])
        if occupied > int(self._header[_IDX_HIGH_WATER]):
            self._header[_IDX_HIGH_WATER] = np.uint64(occupied)

    # -- consumer ----------------------------------------------------------
    def read_bytes(self, n: int, timeout: Optional[float] = 30.0) -> bytearray:
        """Consume exactly ``n`` bytes, blocking until they are available."""
        if n < 0:
            raise ValueError("cannot read a negative byte count")
        out = bytearray(n)
        if n == 0:
            return out
        if n > self.capacity:
            raise ValueError(
                f"read of {n} B exceeds ring capacity {self.capacity} B"
            )
        self._wait(lambda: self.used >= n, timeout, "data")
        r = int(self._header[_IDX_READ])
        start = r % self.capacity
        first = min(n, self.capacity - start)
        out[:first] = self._data[start : start + first].tobytes()
        if first < n:  # wrap
            out[first:] = self._data[: n - first].tobytes()
        self._header[_IDX_READ] = np.uint64(r + n)
        return out

    def read_records(
        self, nbytes: int, dtype: np.dtype, timeout: Optional[float] = 30.0
    ) -> np.ndarray:
        """Consume ``nbytes`` and view them as records of ``dtype``."""
        dtype = np.dtype(dtype)
        if nbytes % dtype.itemsize:
            raise ValueError(
                f"{nbytes} B is not a whole number of {dtype.itemsize}-byte records"
            )
        return np.frombuffer(self.read_bytes(nbytes, timeout), dtype=dtype)

    # -- plumbing ----------------------------------------------------------
    def _wait(
        self, ready, timeout: Optional[float], what: str, on_wait=None
    ) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        while not ready():
            if deadline is not None and time.monotonic() > deadline:
                raise RingTimeout(
                    f"ring {self.name}: no {what} after {timeout}s "
                    f"(used {self.used}/{self.capacity} B)"
                )
            if on_wait is not None:
                on_wait()
            time.sleep(_POLL_SECONDS)

    def close(self) -> None:
        """Detach (and unlink, if this side created the segment).

        Safe against concurrent double-close: an explicit executor
        ``close()`` can race the GC finalizer's teardown sweep, so the
        closed flag is claimed atomically (under the GIL) before any
        state is torn down — the loser of the race returns immediately
        instead of unmapping a half-dismantled ring.
        """
        try:
            # dict.pop is atomic under the GIL: exactly one caller wins
            # the claim, everyone else sees KeyError and returns.
            self.__dict__.pop("_open")
        except KeyError:
            return
        self._closed = True
        # Views pin shm.buf; drop them before closing the mapping.
        self._header = None
        self._data = None
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already gone (double close is fine)
                pass

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
