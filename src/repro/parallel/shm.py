"""Shared-memory arenas: publish-once read-only data for pool workers.

The paper uploads each brick to a GPU once and keeps it resident across
frames; the multiprocess analogue is publishing every chunk payload and
the transfer-function table into **one** POSIX shared-memory segment.
Workers attach and take zero-copy NumPy views — no per-frame pickling of
volume data ever crosses a pipe.

An arena is immutable once published: the parent packs all arrays,
hands workers a picklable :class:`ArenaSpec` (segment name + per-key
offset/shape/dtype), and republishes a *new* segment when the data
actually changes (new volume, edited transfer function).  Unlinking the
old segment is safe while workers are still attached — POSIX keeps the
memory alive until the last ``close()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Hashable, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "ArenaSpec",
    "ArenaView",
    "ShmArena",
    "shm_segment_exists",
]

_ALIGN = 64  # cache-line align every array

# Resource-tracker note: on this Python (3.11) *attaching* to a segment
# registers it with the resource tracker just like creating one, and the
# tracker process is shared by the whole fork/spawn tree with a
# set-valued cache — so creator + attachers collapse to one entry, the
# creator's unlink() unregisters it exactly once, and any explicit
# unregister on the attach side would double-remove and spam KeyErrors.
# Hence: attachers only ever close(); owners close() + unlink().


def shm_segment_exists(name: str) -> bool:
    """Whether a shared-memory segment ``name`` still exists (leak checks)."""
    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    probe.close()
    return True


@dataclass(frozen=True)
class ArenaSpec:
    """Picklable description of a published arena (sent to workers once)."""

    name: str  # shared-memory segment name
    entries: Tuple[Tuple[Hashable, int, Tuple[int, ...], str], ...]
    # each entry: (key, byte offset, shape, dtype string)
    nbytes: int

    def keys(self):
        return tuple(e[0] for e in self.entries)


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class ShmArena:
    """Parent-side arena: packs arrays into one segment it owns."""

    def __init__(self, arrays: Mapping[Hashable, np.ndarray]):
        if not arrays:
            raise ValueError("cannot publish an empty arena")
        layout = []
        offset = 0
        for key, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            offset = _aligned(offset)
            layout.append((key, offset, arr))
            offset += arr.nbytes
        total = max(offset, 1)
        self._shm = shared_memory.SharedMemory(create=True, size=total)
        entries = []
        for key, off, arr in layout:
            dst = np.frombuffer(
                self._shm.buf, dtype=arr.dtype, count=arr.size, offset=off
            ).reshape(arr.shape)
            dst[...] = arr
            entries.append((key, off, tuple(arr.shape), arr.dtype.str))
        self.spec = ArenaSpec(
            name=self._shm.name, entries=tuple(entries), nbytes=total
        )
        self._closed = False

    @property
    def name(self) -> str:
        return self.spec.name

    def close(self) -> None:
        """Detach and unlink; attached workers keep the memory alive."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ArenaView:
    """Worker-side attachment exposing zero-copy read-only array views."""

    def __init__(self, spec: ArenaSpec):
        self.spec = spec
        self._shm = shared_memory.SharedMemory(name=spec.name)
        self._arrays: Dict[Hashable, np.ndarray] = {}
        for key, off, shape, dtype_str in spec.entries:
            dt = np.dtype(dtype_str)
            view = np.frombuffer(
                self._shm.buf, dtype=dt, count=int(np.prod(shape, dtype=np.int64)),
                offset=off,
            ).reshape(shape)
            view.flags.writeable = False  # published data is immutable
            self._arrays[key] = view
        self._closed = False

    def array(self, key: Hashable) -> np.ndarray:
        return self._arrays[key]

    def __contains__(self, key: Hashable) -> bool:
        return key in self._arrays

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._arrays.clear()
        try:
            self._shm.close()
        except BufferError:  # a stray view still pins the buffer; process
            pass  # exit will release the mapping anyway

    def __enter__(self) -> "ArenaView":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
