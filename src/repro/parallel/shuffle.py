"""The pluggable shuffle plane: who moves fragment runs between processes.

The paper's GPUs exchange emitted fragments *directly* over the
interconnect during the shuffle into Sort/Reduce; the parent CPU only
orchestrates.  This module makes that separation explicit for the pool
executor: all inter-process movement of run bytes is owned by a
**shuffle plane** with three interchangeable implementations, selected
by ``shuffle_mode``:

``ParentRoutedShuffle`` (``"parent"``)
    The PR-2/PR-3 layout, refactored behind the plane interface: every
    worker streams its bucketed runs up its private SPSC ring to the
    parent, which (for worker-side reduce) re-ships each partition's
    chunk-ordered runs down to the owning worker over the pickling task
    queues.  Simple, but the parent is a serial bandwidth bottleneck —
    every fragment byte crosses it at least once.

``MeshShuffle`` (``"mesh"``)
    An N×N mesh of SPSC shared-memory rings (one *edge* per ordered
    worker pair, generalizing :mod:`repro.parallel.ring`): each mapper
    writes a partition's run **directly** into the owning reducer
    worker's inbound edge, tagged ``(frame, chunk index, partition)``
    so the owner can restore chunk order and execute the literal
    :func:`~repro.core.executors.merge_partition_runs` — the parent
    never touches run bytes (asserted by the ``parent_run_bytes``
    counter it exports).  Runs a mapper owns itself short-circuit
    through a local stash, no copy.  Edges are created by the *reader*
    worker after CPU pinning (first touch lands on its node) but
    unlinked by the parent, preserving the zero-leak teardown
    guarantee even when a worker dies mid-shuffle.

``SocketShuffle`` (``"tcp"``)
    The same direct worker↔worker exchange over **byte streams**
    (AF_UNIX on one host, loopback TCP otherwise — see
    :mod:`repro.parallel.socketplane`) instead of shared-memory rings:
    the off-box plane.  Identical record protocol, watermarks, and
    cooperative drain; no shared segment is required, so with a
    ``host_spec`` the executor can place workers on separate "hosts"
    and ship chunk payloads over the wire instead of the shm arena.
    Streams have no record-size cliff, so the tcp plane has *no*
    queue-fallback path and ``parent_run_bytes`` is structurally zero.
    A dropped connection surfaces as a recoverable
    :class:`~repro.parallel.socketplane.SocketClosed`.

All planes feed byte-identical, chunk-ordered runs into the identical
reducer code, so outputs are bitwise-equal across planes by
construction — the plane only decides *which processes the bytes
traverse*.

Mesh record protocol
--------------------
One record per ``(chunk, partition)`` — **including empty runs** — is
written to the owner's inbound edge as a single atomic ring write::

    [ 32-byte header: u64 seq | u64 chunk | u64 partition | u64 nbytes ]
    [ nbytes of raw KV pairs (the run, in emission order) ]

Because :class:`~repro.parallel.ring.ShmRing` publishes its write
cursor only after the whole copy, a reader that observes ``used >= 32``
always has a complete record available — the inbound poll never blocks.
Writing every ``(chunk, partition)`` record (empty ones are header
-only) gives the owner a deterministic **per-frame completion
watermark**: frame ``seq`` is complete exactly when ``n_chunks ×
len(owned partitions)`` records have arrived, so pipelined frames can
interleave on the wire without ever interleaving in a reduce.

Backpressure and deadlock freedom: a writer blocked on a full outbound
edge cooperatively drains its *own* inbound edges while waiting
(:meth:`WorkerMesh.poll` via the ring's ``on_wait`` hook), so a cycle
of mutually backpressured workers always makes progress.  A record too
large for its edge falls back to the parent queue (relayed to the
owner, counted in ``queue_fallbacks``) instead of deadlocking.  A
truly wedged edge (dead peer) surfaces as a
:class:`~repro.parallel.ring.RingTimeout` after the configurable
``ring_write_timeout`` (and an incomplete frame watermark after
``watermark_timeout``), which hands the failure to the executor's
supervision layer (:mod:`repro.parallel.supervise`): the transport
epoch is recycled and the affected frames re-execute bitwise-identically
— or, with ``supervise=False``, the whole pool tears down as before.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.executors import ShuffleSpec
from ..observability.tracer import span
from .faults import ENV_FAULT_PLAN, resolve_fault_plan
from .merge import split_runs
from .ring import _POLL_SECONDS, RingTimeout, ShmRing
from .supervise import worker_error_to_exception

__all__ = [
    "DEFAULT_MAX_FRAME_RETRIES",
    "DEFAULT_RETRY_BACKOFF",
    "DEFAULT_RING_WRITE_TIMEOUT",
    "ENV_FAULT_PLAN",
    "ENV_MAX_FRAME_RETRIES",
    "ENV_RETRY_BACKOFF",
    "ENV_RING_WRITE_TIMEOUT",
    "ENV_SHUFFLE_MODE",
    "ENV_WATERMARK_TIMEOUT",
    "MESH_HEADER_NBYTES",
    "MeshShuffle",
    "ParentRoutedShuffle",
    "PoolConfig",
    "SocketShuffle",
    "WorkerMesh",
]

#: Environment override for :attr:`PoolConfig.ring_write_timeout` —
#: lets soak tests (and impatient operators) shorten the wedged-edge
#: detection bound without monkeypatching worker code.
ENV_RING_WRITE_TIMEOUT = "REPRO_RING_WRITE_TIMEOUT"

#: Environment override for ``shuffle_mode="auto"`` resolution — the CI
#: slow matrix forces each plane in turn through this.
ENV_SHUFFLE_MODE = "REPRO_SHUFFLE_MODE"

#: Environment override for :attr:`PoolConfig.watermark_timeout` — how
#: long a mesh reducer waits for a frame's completion watermark before
#: declaring the frame's shuffle wedged.
ENV_WATERMARK_TIMEOUT = "REPRO_WATERMARK_TIMEOUT"

#: Environment override for :attr:`PoolConfig.max_frame_retries`.
ENV_MAX_FRAME_RETRIES = "REPRO_MAX_FRAME_RETRIES"

#: Environment override for :attr:`PoolConfig.retry_backoff`.
ENV_RETRY_BACKOFF = "REPRO_RETRY_BACKOFF"

#: How long a blocked ring/edge write may sit in backpressure before it
#: is declared wedged.  With ``pipeline_depth > 1`` a blocked write is
#: the *normal* flow-control state (the consumer is legitimately busy
#: with the previous frame), so the bound is generous; it exists only
#: so a dead peer surfaces as a RingTimeout instead of a silent hang.
DEFAULT_RING_WRITE_TIMEOUT = 300.0

#: How many times one in-flight frame may be re-executed after an
#: infrastructure failure before the pool sheds a worker (the
#: degradation ladder's per-width retry budget).
DEFAULT_MAX_FRAME_RETRIES = 2

#: Base of the exponential backoff between recovery attempts, seconds.
#: Small by default: respawning forked workers is cheap, and the arena
#: (the expensive state) survives recovery anyway.
DEFAULT_RETRY_BACKOFF = 0.05

#: Mesh record header: (frame seq, chunk index, partition, payload bytes).
MESH_HEADER_DTYPE = np.dtype(
    [("seq", "<u8"), ("chunk", "<u8"), ("part", "<u8"), ("nbytes", "<u8")]
)
MESH_HEADER_NBYTES = MESH_HEADER_DTYPE.itemsize  # 32


def mesh_fd_headroom(workers: int) -> tuple:
    """Whether the parent can afford the mesh's O(N²) attachments.

    The parent holds every edge ring open (N(N-1) ``shm_open`` fds for
    counters and crash-safe unlink) on top of per-worker queues/pipes;
    on a many-core host with the default soft ``RLIMIT_NOFILE`` of 1024
    that cliff arrives around ~30 workers.  Returns
    ``(fits, needed_estimate, soft_limit)`` — ``fits`` leaves half the
    soft limit free for the application; ``soft_limit`` is -1 when the
    limit is unknown or unlimited (always fits).
    """
    workers = int(workers)
    needed = workers * (workers - 1) + 4 * workers + 64
    try:
        import resource

        soft, _ = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft == resource.RLIM_INFINITY:
            return True, needed, -1
    except Exception:  # pragma: no cover - non-POSIX
        return True, needed, -1
    return needed <= soft // 2, needed, int(soft)


def mesh_edge_name(token: str, src: int, dst: int) -> str:
    """Deterministic segment name for the ``src → dst`` edge of one mesh.

    Edges are *created* by their reader worker (after pinning), but the
    parent must be able to unlink every edge even when a worker dies
    before reporting anything — including during the handshake itself.
    A per-pool token plus the edge coordinates makes every name known
    to the parent in advance, so teardown never depends on a message
    that a dead worker failed to send.
    """
    return f"repro_mesh_{token}_{src}_{dst}"


@dataclass(frozen=True)
class PoolConfig:
    """Transport knobs of the pool executor's data plane.

    Everything here is *mechanism*, not meaning: no setting may change
    rendered output (the parity suites enforce it); they trade memory,
    latency, and failure-detection bounds.

    ring_capacity:
        Per-worker uplink fragment ring size in bytes (worker → parent).
    mesh_edge_capacity:
        Per-edge mesh ring size in bytes; default
        ``max(64 KiB, ring_capacity // workers)`` so a full mesh uses
        about the same memory as the uplink rings.
    ring_write_timeout:
        Seconds a blocked ring **or mesh-edge** write may wait before
        raising :class:`~repro.parallel.ring.RingTimeout` (recovered by
        the supervision layer, or fatal with ``supervise=False``).
        ``None`` reads ``$REPRO_RING_WRITE_TIMEOUT``, falling back to
        :data:`DEFAULT_RING_WRITE_TIMEOUT`.
    shuffle_mode:
        ``"parent"``, ``"mesh"``, ``"tcp"``, or ``"auto"`` (default).
        Auto reads ``$REPRO_SHUFFLE_MODE`` if set, else picks
        ``"mesh"`` when the reduce runs on workers (where direct
        exchange pays) and ``"parent"`` otherwise — auto never picks
        ``"tcp"``, because on one shared-memory box the shm mesh
        strictly dominates it; the socket plane is an explicit opt-in
        for the off-box regime.  Note the direct data planes (mesh,
        tcp) only materialize under ``reduce_mode="worker"`` — with a
        parent-side reduce every run's destination *is* the parent, so
        the uplink rings already are the direct path.
    socket_family:
        Address family of the tcp plane's edge streams: ``"unix"``
        (AF_UNIX, default where available) or ``"inet"`` (loopback
        TCP).  ``None`` reads ``$REPRO_SOCKET_FAMILY``.  Ignored by
        the other planes.
    pin_workers:
        Opt-in NUMA/core pinning: give each worker its own core via
        ``os.sched_setaffinity`` before it allocates its inbound mesh
        edges (first-touch locality).  No-op with a warning when
        affinity is unavailable or there are fewer cores than workers.
    watermark_timeout:
        Seconds a mesh reducer waits for a frame's completion watermark
        (``n_chunks × owned`` records) before declaring the frame's
        shuffle wedged.  ``None`` reads ``$REPRO_WATERMARK_TIMEOUT``,
        falling back to the resolved ring write timeout (the watermark
        wait is the shuffle-in mirror of a blocked shuffle-out write,
        so by default they share one detection bound).
    supervise:
        Whether the executor recovers from *infrastructure* failures
        (dead workers, wedged edges, expired watermarks) by respawning
        in place and re-executing the affected frames, instead of
        tearing the whole pool down (the pre-supervision behavior,
        available as ``supervise=False``).  Recovery never changes
        rendered output — re-executed frames are bitwise-identical by
        the chunk-order-merge invariant.
    max_frame_retries:
        How many times one in-flight frame may be re-executed at a
        given pool width before the pool degrades (sheds a worker;
        at width 0 it falls back to the serial executor).  ``None``
        reads ``$REPRO_MAX_FRAME_RETRIES`` (default 2); negative
        values raise.
    retry_backoff:
        Base of the exponential backoff slept between recovery
        attempts, in seconds.  ``None`` reads ``$REPRO_RETRY_BACKOFF``
        (default 0.05); negative values raise, zero disables backoff
        (the fault-injection suites use that to keep recovery tests
        fast).
    fault_plan:
        Deterministic fault-injection plan string for the workers (see
        :mod:`repro.parallel.faults` for the grammar), or ``None``
        (read ``$REPRO_FAULT_PLAN``; empty means no injection).  For
        testing the recovery machinery only — injected faults crash,
        exit, or stall workers at exact stage boundaries.
    """

    ring_capacity: int = 8 << 20
    mesh_edge_capacity: Optional[int] = None
    ring_write_timeout: Optional[float] = None
    shuffle_mode: str = "auto"
    socket_family: Optional[str] = None
    pin_workers: bool = False
    watermark_timeout: Optional[float] = None
    supervise: bool = True
    max_frame_retries: Optional[int] = None
    retry_backoff: Optional[float] = None
    fault_plan: Optional[str] = None

    def __post_init__(self):
        if self.ring_capacity < 1:
            raise ValueError("ring capacity must be positive")
        if self.mesh_edge_capacity is not None and self.mesh_edge_capacity < (
            MESH_HEADER_NBYTES + 1
        ):
            raise ValueError(
                f"mesh edge capacity must exceed the {MESH_HEADER_NBYTES}-byte "
                "record header"
            )
        if self.shuffle_mode not in ("auto", "parent", "mesh", "tcp"):
            raise ValueError(f"unknown shuffle_mode {self.shuffle_mode!r}")
        if self.socket_family is not None and self.socket_family not in (
            "unix",
            "inet",
        ):
            raise ValueError(
                f"socket family {self.socket_family!r} must be 'unix' or 'inet'"
            )
        if self.ring_write_timeout is not None and self.ring_write_timeout <= 0:
            raise ValueError("ring write timeout must be positive")
        if self.watermark_timeout is not None and self.watermark_timeout <= 0:
            raise ValueError("watermark timeout must be positive")
        if self.max_frame_retries is not None and self.max_frame_retries < 0:
            raise ValueError("max frame retries cannot be negative")
        if self.retry_backoff is not None and self.retry_backoff < 0:
            raise ValueError("retry backoff cannot be negative")
        if self.fault_plan is not None:
            # Validate the grammar at configuration time, in the parent —
            # a typo must not surface as a cryptic worker error after
            # spawn (resolution happens again in resolved_fault_plan()).
            from .faults import FaultPlan

            FaultPlan.parse(self.fault_plan)

    def resolved_ring_write_timeout(self) -> float:
        if self.ring_write_timeout is not None:
            return float(self.ring_write_timeout)
        env = os.environ.get(ENV_RING_WRITE_TIMEOUT, "").strip()
        if env:
            try:
                value = float(env)
            except ValueError:
                raise ValueError(
                    f"${ENV_RING_WRITE_TIMEOUT}={env!r} is not a number"
                ) from None
            if value <= 0:
                raise ValueError(
                    f"${ENV_RING_WRITE_TIMEOUT}={env!r} must be positive"
                )
            return value
        return DEFAULT_RING_WRITE_TIMEOUT

    def resolved_watermark_timeout(self) -> float:
        """Explicit > ``$REPRO_WATERMARK_TIMEOUT`` > the resolved ring
        write timeout (validated like the ring timeout: nonpositive or
        non-numeric values raise rather than silently falling back)."""
        if self.watermark_timeout is not None:
            return float(self.watermark_timeout)
        env = os.environ.get(ENV_WATERMARK_TIMEOUT, "").strip()
        if env:
            try:
                value = float(env)
            except ValueError:
                raise ValueError(
                    f"${ENV_WATERMARK_TIMEOUT}={env!r} is not a number"
                ) from None
            if value <= 0:
                raise ValueError(
                    f"${ENV_WATERMARK_TIMEOUT}={env!r} must be positive"
                )
            return value
        return self.resolved_ring_write_timeout()

    def resolved_max_frame_retries(self) -> int:
        """Explicit > ``$REPRO_MAX_FRAME_RETRIES`` > default (2);
        negative or non-integer values raise."""
        if self.max_frame_retries is not None:
            return int(self.max_frame_retries)
        env = os.environ.get(ENV_MAX_FRAME_RETRIES, "").strip()
        if env:
            try:
                value = int(env)
            except ValueError:
                raise ValueError(
                    f"${ENV_MAX_FRAME_RETRIES}={env!r} is not an integer"
                ) from None
            if value < 0:
                raise ValueError(
                    f"${ENV_MAX_FRAME_RETRIES}={env!r} cannot be negative"
                )
            return value
        return DEFAULT_MAX_FRAME_RETRIES

    def resolved_retry_backoff(self) -> float:
        """Explicit > ``$REPRO_RETRY_BACKOFF`` > default (0.05 s);
        negative or non-numeric values raise, zero disables backoff."""
        if self.retry_backoff is not None:
            return float(self.retry_backoff)
        env = os.environ.get(ENV_RETRY_BACKOFF, "").strip()
        if env:
            try:
                value = float(env)
            except ValueError:
                raise ValueError(
                    f"${ENV_RETRY_BACKOFF}={env!r} is not a number"
                ) from None
            if value < 0:
                raise ValueError(
                    f"${ENV_RETRY_BACKOFF}={env!r} cannot be negative"
                )
            return value
        return DEFAULT_RETRY_BACKOFF

    def resolved_fault_plan(self) -> Optional[str]:
        """Explicit > ``$REPRO_FAULT_PLAN`` > None, grammar-validated
        (see :func:`repro.parallel.faults.resolve_fault_plan`)."""
        return resolve_fault_plan(self.fault_plan)

    def resolved_shuffle_mode(self, reduce_mode: str) -> str:
        mode = self.shuffle_mode
        if mode == "auto":
            env = os.environ.get(ENV_SHUFFLE_MODE, "").strip()
            if env:
                if env not in ("parent", "mesh", "tcp"):
                    raise ValueError(
                        f"${ENV_SHUFFLE_MODE}={env!r} must be 'parent', "
                        "'mesh', or 'tcp'"
                    )
                return env
            # Auto never picks tcp: on one box the shm mesh dominates.
            return "mesh" if reduce_mode == "worker" else "parent"
        return mode

    def resolved_socket_family(self) -> str:
        """Explicit > ``$REPRO_SOCKET_FAMILY`` > ``"unix"`` where
        AF_UNIX exists, else ``"inet"`` (validated either way)."""
        from .socketplane import resolve_socket_family

        return resolve_socket_family(self.socket_family)

    def shuffle_mode_is_explicit(self) -> bool:
        """Whether a plane was deliberately pinned — by the config/kwarg
        or by ``$REPRO_SHUFFLE_MODE`` — rather than left to the auto
        heuristic.  Callers that would silently override the resolved
        plane (e.g. the fd-headroom guard) must fail loudly instead
        when this is True; keeping the env sniffing here, next to
        :meth:`resolved_shuffle_mode`, keeps one source of truth for
        what counts as an explicit request."""
        return self.shuffle_mode != "auto" or bool(
            os.environ.get(ENV_SHUFFLE_MODE, "").strip()
        )

    def resolved_edge_capacity(self, workers: int) -> int:
        if self.mesh_edge_capacity is not None:
            return int(self.mesh_edge_capacity)
        return max(1 << 16, int(self.ring_capacity) // max(1, int(workers)))


# ---------------------------------------------------------------------------
# Worker half of the mesh: inbound edge ownership + outbound routing.
# ---------------------------------------------------------------------------
class WorkerMesh:
    """One worker's view of the N×N edge mesh.

    Owns this worker's **inbound** edges (created here, after pinning,
    so the pages are first-touched on the worker's node; the parent
    adopts unlink duty) and attaches to the **outbound** edges other
    workers created, once the parent broadcasts the name matrix.

    Incoming records are drained opportunistically (:meth:`poll` never
    blocks — complete records only, see the module docstring) into a
    per-frame stash, and :meth:`take_frame` turns a completed frame's
    stash back into the chunk-ordered ``runs_per_chunk`` layout the
    literal merge function consumes.  Frames never interleave: every
    record carries its frame seq, and a frame is only consumed once its
    completion watermark (``n_chunks × owned partitions`` records) is
    reached.
    """

    def __init__(
        self,
        worker_id: int,
        n_workers: int,
        edge_capacity: int,
        write_timeout: float,
        token: Optional[str] = None,
        watermark_timeout: Optional[float] = None,
    ):
        self.worker_id = int(worker_id)
        self.n_workers = int(n_workers)
        self.edge_capacity = int(edge_capacity)
        self.write_timeout = float(write_timeout)
        # The frame-completion wait has its own configurable bound
        # (PoolConfig.watermark_timeout / $REPRO_WATERMARK_TIMEOUT);
        # it defaults to the write timeout, the pre-knob behavior.
        self.watermark_timeout = (
            float(watermark_timeout)
            if watermark_timeout is not None
            else float(write_timeout)
        )
        # Inbound edge from every *other* worker; runs routed to self
        # short-circuit through the stash without touching a ring.
        # With a pool token the names are deterministic (see
        # :func:`mesh_edge_name`), so the parent can always unlink them.
        self.inbound: Dict[int, ShmRing] = {
            i: ShmRing.create(
                self.edge_capacity,
                record_size=1,
                name=(
                    mesh_edge_name(token, i, self.worker_id)
                    if token is not None
                    else None
                ),
            )
            for i in range(self.n_workers)
            if i != self.worker_id
        }
        self.outbound: Dict[int, ShmRing] = {}
        # seq -> {(chunk index, partition): raw bytes | ndarray}
        self._stash: Dict[int, dict] = {}

    @property
    def inbound_names(self) -> Dict[int, str]:
        """Writer id → segment name, reported to the parent once."""
        return {i: ring.name for i, ring in self.inbound.items()}

    def attach_row(self, names: Dict[int, str]) -> None:
        """Attach to the inbound edges of every peer (this row's writes)."""
        for j, name in names.items():
            if j not in self.outbound:
                self.outbound[j] = ShmRing.attach(name)

    # -- receiving ---------------------------------------------------------
    def _put(self, seq: int, ci: int, part: int, payload) -> None:
        self._stash.setdefault(seq, {})[(ci, part)] = payload

    def stash_relay(self, seq: int, ci: int, part: int, run) -> None:
        """Accept a parent-relayed oversized record (queue fallback)."""
        self._put(seq, ci, part, run)

    def poll(self) -> bool:
        """Drain every complete record currently visible on any inbound
        edge into the stash.  Never blocks; returns whether anything
        arrived.  Safe to call from inside a blocked outbound write
        (the ``on_wait`` hook) — that is what makes writer cycles
        deadlock-free."""
        got = False
        for ring in self.inbound.values():
            while ring.used >= MESH_HEADER_NBYTES:
                hdr = np.frombuffer(
                    ring.read_bytes(MESH_HEADER_NBYTES, timeout=self.write_timeout),
                    MESH_HEADER_DTYPE,
                )[0]
                payload = ring.read_bytes(
                    int(hdr["nbytes"]), timeout=self.write_timeout
                )
                self._put(
                    int(hdr["seq"]), int(hdr["chunk"]), int(hdr["part"]), payload
                )
                got = True
        return got

    # -- sending -----------------------------------------------------------
    def send(self, seq: int, ci: int, part: int, run: np.ndarray, owner: int) -> bool:
        """Ship one ``(chunk, partition)`` run to its owning worker.

        Returns False when the record cannot fit the edge at all — the
        caller must fall back to the parent-queue relay (the record
        still counts toward the owner's watermark, it just travels the
        control plane).  ``run`` must be C-contiguous.
        """
        if owner == self.worker_id:
            self._put(seq, ci, part, run)
            return True
        ring = self.outbound[owner]
        n = int(run.nbytes)
        if MESH_HEADER_NBYTES + n > ring.capacity:
            return False
        header = np.array(
            [(seq, ci, part, n)], dtype=MESH_HEADER_DTYPE
        ).view(np.uint8)
        # One atomic publish per record (header + payload, single write
        # cursor update): a visible header implies a visible payload, so
        # readers never block mid-record — and the run bytes are copied
        # exactly once, straight into the ring.
        ring.write_vec(
            (header, run.view(np.uint8).reshape(-1)),
            timeout=self.write_timeout,
            on_wait=self.poll,
        )
        return True

    # -- reducing ----------------------------------------------------------
    def take_frame(
        self,
        seq: int,
        owned: list,
        n_chunks: int,
        kv_dtype: np.dtype,
    ) -> list:
        """Wait for frame ``seq``'s completion watermark, then return its
        chunk-ordered runs for this worker's ``owned`` partitions —
        exactly the ``runs_per_chunk`` layout the parent-routed plane
        ships, so the downstream merge cannot tell the planes apart.

        By the control-plane contract this is called only after the
        parent observed every map completion for ``seq`` (sealing), so
        all records are already published (in edges, the stash, or
        relayed ahead of the reduce message on the task queue) and the
        wait below terminates immediately in practice; the timeout
        guards against protocol violations, not flow control.
        """
        kv_dtype = np.dtype(kv_dtype)
        expected = int(n_chunks) * len(owned)
        deadline = time.monotonic() + self.watermark_timeout
        frame = self._stash.setdefault(seq, {})
        with span("shuffle-in", cat="shuffle", frame=seq, records=expected):
            while len(frame) < expected:
                if not self.poll() and len(frame) < expected:
                    if time.monotonic() > deadline:
                        raise RingTimeout(
                            f"mesh watermark for frame {seq} not reached: "
                            f"{len(frame)}/{expected} records after "
                            f"{self.watermark_timeout}s"
                        )
                    time.sleep(_POLL_SECONDS)
        records = self._stash.pop(seq)
        runs_per_chunk = []
        for ci in range(int(n_chunks)):
            row = []
            for part in owned:
                raw = records[(ci, part)]
                if not isinstance(raw, np.ndarray):
                    raw = np.frombuffer(raw, dtype=kv_dtype)
                row.append(raw)
            runs_per_chunk.append(row)
        return runs_per_chunk

    def close(self) -> None:
        """Detach everything.  Inbound edges were created here, but the
        *parent* owns unlink (crash-safe teardown); a clean close still
        unlinks defensively — double unlink is guarded in the ring."""
        for ring in self.outbound.values():
            ring.close()
        self.outbound = {}
        for ring in self.inbound.values():
            ring.close()
        self.inbound = {}
        self._stash.clear()


# ---------------------------------------------------------------------------
# Parent-side planes: the control-plane view of the two transports.
# ---------------------------------------------------------------------------
class ParentRoutedShuffle:
    """Today's transport behind the plane interface: runs go worker →
    (uplink ring) → parent → (task queue) → owning worker.  The parent
    is on the data path; ``parent_run_bytes`` counts every byte it
    touched."""

    mode = "parent"

    def __init__(self, pool):
        self.pool = pool
        self._ring_base = [
            ring.counters() for ring in pool._state.get("rings", [])
        ]

    def start(self) -> None:  # no extra transport to negotiate
        pass

    # -- data-plane events -------------------------------------------------
    def on_map_done(self, frame, wi, ci, routed, ring_nbytes, inline) -> None:
        """Consume one map completion's run payload (ring or inline)."""
        if inline is not None:
            pairs = inline
        else:
            # Ring bytes are consumed immediately, in per-worker
            # completion-message order (the ring is FIFO), even when
            # the message belongs to a newer frame than the one being
            # collected — frames only reorder at the *result* level.
            pairs = self.pool._state["rings"][wi].read_records(
                ring_nbytes, frame.spec.kv.dtype
            )
        frame.parent_run_bytes += int(pairs.nbytes)
        frame.runs_per_chunk[ci] = split_runs(pairs, routed)

    def on_fallback(self, frame, msg) -> None:  # pragma: no cover
        raise RuntimeError(
            "mesh_fallback message received on the parent-routed plane"
        )

    def dispatch_reduce(self, frame) -> None:
        """Ship each worker the chunk-ordered runs of its owned partitions.

        Ownership comes from the shared :class:`ShuffleSpec` contract —
        static, so results never depend on scheduling.  The payload is
        parent-owned memory (ring copies / inline arrays), never arena
        views, so a later arena republish cannot invalidate it.
        """
        pool = self.pool
        shuf = ShuffleSpec(frame.spec.n_reducers, pool.workers)
        for wi in range(pool.workers):
            owned = shuf.owned_partitions(wi)
            if not owned:
                continue
            runs_per_chunk = [
                [frame.runs_per_chunk[ci][r] for r in owned]
                for ci in range(frame.n)
            ]
            pool._state["task_queues"][wi].put(
                ("reduce", frame.seq, owned, runs_per_chunk)
            )
        # The parent no longer needs the raw runs: free them eagerly so a
        # deep pipeline holds at most one frame's fragments at a time.
        frame.runs_per_chunk = [None] * frame.n

    def frame_stats(self, frame) -> dict:
        """Per-frame backpressure export: producer stall deltas since the
        previous collect, absolute high-water marks, queue fallbacks."""
        per_worker = []
        for wi, ring in enumerate(self.pool._state.get("rings", [])):
            now = ring.counters()
            base = self._ring_base[wi]
            per_worker.append(
                {
                    "worker": wi,
                    "stall_seconds": now["stall_seconds"]
                    - base["stall_seconds"],
                    "stall_events": now["stall_events"]
                    - base["stall_events"],
                    "high_water_bytes": now["high_water_bytes"],
                }
            )
            self._ring_base[wi] = now
        return {
            "shuffle_mode": self.mode,
            "stall_seconds": sum(w["stall_seconds"] for w in per_worker),
            "stall_events": sum(w["stall_events"] for w in per_worker),
            "high_water_bytes": max(
                (w["high_water_bytes"] for w in per_worker), default=0
            ),
            "queue_fallbacks": frame.queue_fallbacks,
            "parent_run_bytes": frame.parent_run_bytes,
            "ring_capacity": self.pool.ring_capacity,
            "per_worker": per_worker,
        }


class MeshShuffle:
    """Direct worker↔worker transport: the parent degrades to a pure
    control plane (publish, seal, stitch, teardown) and never sees a
    run byte — except the explicit oversized-record queue fallback,
    which it counts."""

    mode = "mesh"

    def __init__(self, pool):
        self.pool = pool
        self._edge_base: Dict[tuple, dict] = {}

    def start(self) -> None:
        """Run the edge handshake: collect every worker's inbound-edge
        names (created worker-side, after pinning), attach to all N×N
        edges with unlink ownership, and broadcast each worker its
        outbound row.  Raises — tearing the pool down — if a worker
        dies or misbehaves before the mesh is up."""
        pool = self.pool
        n = pool.workers
        inbound: Dict[int, Dict[int, str]] = {}
        while len(inbound) < n:
            msg = pool._recv(timeout=1.0)
            if msg is None:
                continue
            kind = msg[0]
            if kind == "error":
                _, wi, what, tb, etype = msg
                raise worker_error_to_exception(wi, what, tb, etype)
            if kind != "mesh_ready":  # pragma: no cover - protocol violation
                raise RuntimeError(
                    f"unexpected {kind!r} message during the mesh handshake"
                )
            _, wi, names = msg
            inbound[wi] = names
        edges: Dict[tuple, ShmRing] = {}
        for j, names in inbound.items():
            for i, name in names.items():
                # owner=True: the parent adopts unlink duty so a worker
                # crash cannot leak the segment.
                edges[(i, j)] = ShmRing.attach(name, owner=True)
        pool._state["mesh_edges"] = edges
        for i in range(n):
            row = {j: inbound[j][i] for j in range(n) if j != i}
            pool._state["task_queues"][i].put(("mesh_attach", row))
        self._edge_base = {key: r.counters() for key, r in edges.items()}

    # -- data-plane events -------------------------------------------------
    def on_map_done(self, frame, wi, ci, routed, ring_nbytes, inline) -> None:
        # Run bytes traveled the mesh; nothing for the parent to consume.
        return None

    def on_fallback(self, frame, msg) -> None:
        """Relay one oversized record to its owner over the task queue.

        Relays are enqueued strictly before the frame's reduce message
        (the sender's map completion follows its fallbacks on the FIFO
        result queue, and sealing waits for every completion), so the
        owner always sees relay → reduce in order and the watermark
        cannot hang on a record stuck behind it.
        """
        _, wi, seq, ci, part, run = msg
        shuf = ShuffleSpec(frame.spec.n_reducers, self.pool.workers)
        frame.parent_run_bytes += int(run.nbytes)
        self.pool._state["task_queues"][shuf.owner_of(part)].put(
            ("mesh_relay", seq, ci, part, run)
        )

    def dispatch_reduce(self, frame) -> None:
        """Pure control plane: announce which partitions each worker
        reduces; the runs are already in (or on their way through) the
        owner's inbound edges."""
        pool = self.pool
        shuf = ShuffleSpec(frame.spec.n_reducers, pool.workers)
        for wi in range(pool.workers):
            owned = shuf.owned_partitions(wi)
            if not owned:
                continue
            pool._state["task_queues"][wi].put(
                ("reduce", frame.seq, owned, None)
            )

    def frame_stats(self, frame) -> dict:
        """Aggregate per-edge backpressure into the JobStats.ring schema:
        stall deltas since the previous collect, high-water marks, total
        bytes moved over the mesh, and the control-plane escape hatches
        (queue fallbacks / parent-touched run bytes)."""
        per_edge = []
        total_bytes = 0
        for (i, j), ring in sorted(self.pool._state.get("mesh_edges", {}).items()):
            now = ring.counters()
            base = self._edge_base.get((i, j), now)
            # Delta like the stall counters, so the whole dict shares
            # one windowing semantic: "since the previous collect".
            total_bytes += now["written_bytes"] - base["written_bytes"]
            per_edge.append(
                {
                    "src": i,
                    "dst": j,
                    "stall_seconds": now["stall_seconds"]
                    - base["stall_seconds"],
                    "stall_events": now["stall_events"] - base["stall_events"],
                    "high_water_bytes": now["high_water_bytes"],
                }
            )
            self._edge_base[(i, j)] = now
        return {
            "shuffle_mode": self.mode,
            "stall_seconds": sum(e["stall_seconds"] for e in per_edge),
            "stall_events": sum(e["stall_events"] for e in per_edge),
            "high_water_bytes": max(
                (e["high_water_bytes"] for e in per_edge), default=0
            ),
            "queue_fallbacks": frame.queue_fallbacks,
            "parent_run_bytes": frame.parent_run_bytes,
            "mesh_bytes_total": total_bytes,
            "ring_capacity": self.pool.mesh_edge_capacity,
            "per_edge": per_edge,
        }


class SocketShuffle:
    """Direct worker↔worker transport over byte streams (the ``tcp``
    plane): the parent is a pure control plane holding **zero** data
    sockets — it collects each worker's listener address, broadcasts
    the address map, and from then on only sees completion messages
    and per-worker traffic counters.  There is no oversized-record
    fallback (streams have no capacity cliff), so ``parent_run_bytes``
    is structurally zero — the acceptance counter the soak suite
    asserts on.
    """

    mode = "tcp"

    def __init__(self, pool):
        self.pool = pool
        # Cumulative per-worker counters shipped with each reduce
        # ("shuffle_stats" messages) and the previous-collect baseline,
        # so frame_stats exports deltas with the same "since previous
        # collect" windowing as the ring/edge planes.
        self._latest: Dict[int, dict] = {}
        self._base: Dict[int, dict] = {}

    def start(self) -> None:
        """Run the address handshake: collect every worker's listener
        address (the listener is created worker-side, before anything
        is reported, so no connect can race it), then broadcast the
        full map — each worker dials every peer exactly once.  Raises,
        tearing the pool down, if a worker dies or misbehaves first."""
        pool = self.pool
        n = pool.workers
        addresses: Dict[int, object] = {}
        while len(addresses) < n:
            msg = pool._recv(timeout=1.0)
            if msg is None:
                continue
            kind = msg[0]
            if kind == "error":
                _, wi, what, tb, etype = msg
                raise worker_error_to_exception(wi, what, tb, etype)
            if kind != "socket_ready":  # pragma: no cover - protocol violation
                raise RuntimeError(
                    f"unexpected {kind!r} message during the socket handshake"
                )
            _, wi, addr = msg
            addresses[int(wi)] = addr
        for q in pool._state["task_queues"]:
            q.put(("socket_attach", dict(addresses)))

    # -- data-plane events -------------------------------------------------
    def on_map_done(self, frame, wi, ci, routed, ring_nbytes, inline) -> None:
        # Run bytes traveled the sockets; the completion message's
        # ring_nbytes field carries the sender's bytes-on-wire for this
        # map (headers included, self-owned runs excluded).
        frame.wire_bytes += int(ring_nbytes)

    def on_fallback(self, frame, msg) -> None:  # pragma: no cover
        raise RuntimeError(
            "mesh_fallback message received on the tcp plane "
            "(streams have no record-size limit)"
        )

    def dispatch_reduce(self, frame) -> None:
        """Pure control plane: announce which partitions each worker
        reduces; the runs are already in (or on the wire toward) the
        owner's inbound streams."""
        pool = self.pool
        shuf = ShuffleSpec(frame.spec.n_reducers, pool.workers)
        for wi in range(pool.workers):
            owned = shuf.owned_partitions(wi)
            if not owned:
                continue
            pool._state["task_queues"][wi].put(
                ("reduce", frame.seq, owned, None)
            )

    def on_worker_stats(self, wi: int, counters: dict) -> None:
        """Absorb one worker's cumulative socket counters (shipped just
        ahead of its reduce result on the FIFO result queue)."""
        self._latest[int(wi)] = dict(counters)

    def frame_stats(self, frame) -> dict:
        """JobStats.ring schema for the tcp plane: per-worker stall and
        traffic deltas since the previous collect, total bytes-on-wire
        for this frame, and the structural zeroes (queue fallbacks,
        parent-touched run bytes) the parity suite asserts on.
        ``ring_capacity`` is None — streams have no fixed capacity."""
        per_worker = []
        for wi in sorted(self._latest):
            now = self._latest[wi]
            base = self._base.get(wi, {k: 0 for k in now})
            per_worker.append(
                {
                    "worker": wi,
                    "stall_seconds": now["stall_seconds"]
                    - base["stall_seconds"],
                    "stall_events": now["stall_events"]
                    - base["stall_events"],
                    "high_water_bytes": now["high_water_bytes"],
                    "bytes_sent": now["bytes_sent"] - base["bytes_sent"],
                    "bytes_received": now["bytes_received"]
                    - base["bytes_received"],
                }
            )
            self._base[wi] = now
        return {
            "shuffle_mode": self.mode,
            "stall_seconds": sum(w["stall_seconds"] for w in per_worker),
            "stall_events": sum(w["stall_events"] for w in per_worker),
            "high_water_bytes": max(
                (w["high_water_bytes"] for w in per_worker), default=0
            ),
            "queue_fallbacks": frame.queue_fallbacks,
            "parent_run_bytes": frame.parent_run_bytes,
            "wire_bytes_total": frame.wire_bytes,
            "socket_family": self.pool.socket_family,
            "ring_capacity": None,
            "per_worker": per_worker,
        }
