"""Socket transport for the ``tcp`` shuffle plane.

The shm mesh (:class:`~repro.parallel.shuffle.WorkerMesh`) assumes every
worker can map the same ``/dev/shm`` segments — one box.  This module
carries the *identical* record protocol over byte streams instead, so
the same worker↔worker fragment exchange works when workers live on
separate "hosts" (separate processes with no shared segment): each
worker owns one listening socket, every peer holds one outbound
connection to it, and a ``(chunk, partition)`` run travels as::

    [ 32-byte header: u64 seq | u64 chunk | u64 partition | u64 nbytes ]
    [ nbytes of raw KV pairs (the run, in emission order) ]

— the exact :data:`~repro.parallel.shuffle.MESH_HEADER_DTYPE` layout of
a mesh edge record, so per-frame completion watermarks (``n_chunks ×
owned`` records, empty runs included), chunk-order restoration from the
tags, and frame interleaving semantics are shared with the shm plane
byte for byte.  Streams have no capacity cliff, so there is **no
oversized-record fallback**: a record of any size eventually drains,
and the plane's ``parent_run_bytes`` is structurally zero.

Address family: ``AF_UNIX`` by default on one host (deterministic
``$TMPDIR/repro_sock_<token>_<wi>.sock`` paths, so the parent can sweep
a crashed worker's leftover socket file exactly like a mesh edge
segment), or ``AF_INET`` loopback TCP (``$REPRO_SOCKET_FAMILY=inet`` /
``PoolConfig.socket_family``) — the wire format is identical and the
mode is called ``"tcp"`` either way.

Failure semantics mirror the mesh, with one addition:

* A **blocked send** (peer alive but not draining) cooperatively drains
  this worker's own inbound connections while waiting (same
  deadlock-freedom argument as the mesh ``on_wait`` hook) and raises
  :class:`~repro.parallel.ring.RingTimeout` after ``write_timeout`` —
  classified *wedged* and recovered by the supervision layer.
* A **dropped connection** (peer process died: ``ECONNRESET`` /
  ``EPIPE`` on send, or EOF while a frame watermark is still
  incomplete) raises :class:`SocketClosed` — classified as a
  recoverable connection-drop :class:`~repro.parallel.supervise
  .PoolFailure`, so the executor recycles the transport epoch and
  replays the in-flight frames exactly as for a wedge or a detected
  death.  An EOF *between* records while no watermark is pending is a
  graceful peer shutdown (pool teardown order) and is ignored.
"""

from __future__ import annotations

import os
import socket
import struct
import tempfile
import time
from typing import Dict, Optional

import numpy as np

from ..observability.tracer import span
from .ring import _POLL_SECONDS, RingTimeout
from .shuffle import MESH_HEADER_DTYPE, MESH_HEADER_NBYTES

__all__ = [
    "ENV_SOCKET_FAMILY",
    "SocketClosed",
    "SocketMesh",
    "socket_path",
]

#: Environment override for :attr:`PoolConfig.socket_family` — which
#: address family the ``tcp`` plane's edge streams use: ``"unix"``
#: (AF_UNIX, one host, the default where available) or ``"inet"``
#: (loopback TCP).
ENV_SOCKET_FAMILY = "REPRO_SOCKET_FAMILY"

#: Per-connection hello: the connecting worker announces its id so the
#: accepting side can label the inbound stream (accept order is
#: arbitrary; the record protocol itself never carries a source id).
_HELLO = struct.Struct("<Q")


class SocketClosed(ConnectionError):
    """A shuffle peer's connection dropped mid-frame.

    Raised on a send into a reset/closed connection, or when a frame
    watermark cannot complete because an inbound stream hit EOF.  The
    supervision layer classifies it as a recoverable infrastructure
    failure (``kind="conn-drop"``): the inputs are intact, so the
    transport epoch is recycled and the frame replays bitwise.
    """


def socket_path(token: str, worker_id: int) -> str:
    """Deterministic AF_UNIX listener path for one worker of one pool.

    Like :func:`~repro.parallel.shuffle.mesh_edge_name`, the name is
    derived from a per-pool token recorded *before* forking, so the
    parent can unlink a crashed worker's socket file even when the
    worker never reported anything.
    """
    return os.path.join(
        tempfile.gettempdir(), f"repro_sock_{token}_{worker_id}.sock"
    )


def resolve_socket_family(explicit: Optional[str] = None) -> str:
    """Explicit > ``$REPRO_SOCKET_FAMILY`` > ``"unix"`` where AF_UNIX
    exists, else ``"inet"``.  Unknown values raise."""
    family = explicit
    if family is None:
        env = os.environ.get(ENV_SOCKET_FAMILY, "").strip()
        if env:
            family = env
    if family is None:
        return "unix" if hasattr(socket, "AF_UNIX") else "inet"
    if family not in ("unix", "inet"):
        raise ValueError(
            f"socket family {family!r} must be 'unix' or 'inet'"
            + (
                f" (from ${ENV_SOCKET_FAMILY})"
                if explicit is None
                else ""
            )
        )
    if family == "unix" and not hasattr(socket, "AF_UNIX"):
        raise ValueError("socket family 'unix' is unavailable on this platform")
    return family


class SocketMesh:
    """One worker's half of the socket shuffle plane.

    Duck-types as :class:`~repro.parallel.shuffle.WorkerMesh` for the
    worker loop — same ``poll`` / ``send`` / ``take_frame`` /
    ``attach_row`` / ``stash_relay`` / ``close`` surface, same per-frame
    stash semantics — but moves records over one listening socket (this
    worker's inbound side) plus one outbound connection per peer.

    The listener is created in the constructor (before the handshake),
    so by the time the parent broadcasts the address map every peer's
    listener provably exists and :meth:`attach_row`'s connects cannot
    race it; inbound connections are then accepted lazily inside
    :meth:`poll`, identified by an 8-byte worker-id hello.
    """

    def __init__(
        self,
        worker_id: int,
        n_workers: int,
        write_timeout: float,
        token: Optional[str] = None,
        watermark_timeout: Optional[float] = None,
        family: str = "unix",
    ):
        self.worker_id = int(worker_id)
        self.n_workers = int(n_workers)
        self.write_timeout = float(write_timeout)
        self.watermark_timeout = (
            float(watermark_timeout)
            if watermark_timeout is not None
            else float(write_timeout)
        )
        self.family = family
        self._path: Optional[str] = None
        if family == "unix":
            self._path = socket_path(token or "anon", self.worker_id)
            try:
                os.unlink(self._path)  # stale file from a crashed epoch
            except FileNotFoundError:
                pass
            self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._listener.bind(self._path)
            self.address = self._path
        else:
            self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listener.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self._listener.bind(("127.0.0.1", 0))
            self.address = self._listener.getsockname()
        self._listener.listen(max(1, self.n_workers))
        self._listener.setblocking(False)
        # Established streams: src worker id -> nonblocking socket, plus
        # its partial-record receive buffer.
        self._conns: Dict[int, socket.socket] = {}
        self._bufs: Dict[int, bytearray] = {}
        # Accepted but not yet identified (hello still in flight).
        self._pending: list = []
        self._outbound: Dict[int, socket.socket] = {}
        # Streams that hit EOF: graceful (between records) vs broken
        # (mid-record).  Either one fails a still-incomplete watermark.
        self._eof: set = set()
        self._broken: set = set()
        # seq -> {(chunk index, partition): raw bytes | ndarray} —
        # identical layout to WorkerMesh's stash.
        self._stash: Dict[int, dict] = {}
        # Backpressure / traffic counters (cumulative, shipped to the
        # parent with each reduce as a "shuffle_stats" message).
        self.stall_seconds = 0.0
        self.stall_events = 0
        self.high_water_bytes = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- handshake ---------------------------------------------------------
    def attach_row(self, addresses: Dict[int, object]) -> None:
        """Connect to every peer's listener (this worker's outbound row).

        Called once, when the parent broadcasts the full address map
        after collecting every worker's ``socket_ready``; all listeners
        exist by then, and the kernel backlog absorbs connects that
        land before the peer's next :meth:`poll` accepts them.
        """
        for j, addr in sorted(addresses.items()):
            j = int(j)
            if j == self.worker_id or j in self._outbound:
                continue
            if isinstance(addr, str):
                s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            else:
                s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                s.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                addr = tuple(addr)
            s.settimeout(self.write_timeout)
            s.connect(addr)
            s.sendall(_HELLO.pack(self.worker_id))
            s.setblocking(False)
            self._outbound[j] = s

    # -- receiving ---------------------------------------------------------
    def _put(self, seq: int, ci: int, part: int, payload) -> None:
        self._stash.setdefault(seq, {})[(ci, part)] = payload

    def stash_relay(self, seq: int, ci: int, part: int, run) -> None:
        """Accept a parent-relayed record (API parity with WorkerMesh;
        the socket plane itself never produces fallbacks)."""
        self._put(seq, ci, part, run)

    def _accept(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            conn.setblocking(False)
            if self.family == "inet":
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._pending.append((conn, bytearray()))

    def _read_hellos(self) -> None:
        still = []
        for conn, buf in self._pending:
            try:
                data = conn.recv(_HELLO.size - len(buf))
            except (BlockingIOError, InterruptedError):
                still.append((conn, buf))
                continue
            except OSError:
                conn.close()
                continue
            if not data:  # peer vanished before identifying itself
                conn.close()
                continue
            buf.extend(data)
            if len(buf) < _HELLO.size:
                still.append((conn, buf))
                continue
            src = int(_HELLO.unpack(bytes(buf))[0])
            self._conns[src] = conn
            self._bufs.setdefault(src, bytearray())
        self._pending = still

    def _parse(self, src: int) -> bool:
        buf = self._bufs[src]
        got = False
        while len(buf) >= MESH_HEADER_NBYTES:
            hdr = np.frombuffer(
                bytes(buf[:MESH_HEADER_NBYTES]), MESH_HEADER_DTYPE
            )[0]
            n = int(hdr["nbytes"])
            if len(buf) < MESH_HEADER_NBYTES + n:
                break
            payload = bytes(buf[MESH_HEADER_NBYTES:MESH_HEADER_NBYTES + n])
            del buf[:MESH_HEADER_NBYTES + n]
            self._put(int(hdr["seq"]), int(hdr["chunk"]), int(hdr["part"]), payload)
            got = True
        return got

    def poll(self) -> bool:
        """Accept pending connections and drain every readable byte into
        the stash.  Never blocks; returns whether any record completed.
        Safe to call from inside a blocked send — that is what keeps
        cycles of mutually backpressured workers deadlock-free."""
        self._accept()
        if self._pending:
            self._read_hellos()
        got = False
        for src in list(self._conns):
            conn = self._conns[src]
            while True:
                try:
                    data = conn.recv(1 << 16)
                except (BlockingIOError, InterruptedError):
                    break
                except OSError:
                    data = b""
                if not data:
                    # EOF.  Mid-record means the peer died with bytes in
                    # flight; between records it is (usually) a graceful
                    # teardown — take_frame decides, because only an
                    # incomplete watermark makes either one an error.
                    (self._broken if self._bufs[src] else self._eof).add(src)
                    conn.close()
                    del self._conns[src]
                    break
                self.bytes_received += len(data)
                self._bufs[src].extend(data)
                if len(self._bufs[src]) > self.high_water_bytes:
                    self.high_water_bytes = len(self._bufs[src])
            if src in self._bufs and self._bufs[src]:
                got |= self._parse(src)
        return got

    # -- sending -----------------------------------------------------------
    def send(self, seq: int, ci: int, part: int, run: np.ndarray, owner: int) -> bool:
        """Ship one ``(chunk, partition)`` run to its owning worker.

        Always returns True: a stream has no per-record capacity limit,
        so the mesh plane's oversized-record fallback does not exist
        here.  A send blocked past ``write_timeout`` raises
        :class:`RingTimeout` (wedged peer); a reset connection raises
        :class:`SocketClosed` (dropped peer) — both recoverable.
        """
        if owner == self.worker_id:
            self._put(seq, ci, part, run)
            return True
        header = np.array(
            [(seq, ci, part, int(run.nbytes))], dtype=MESH_HEADER_DTYPE
        ).tobytes()
        view = memoryview(header + run.tobytes())
        conn = self._outbound[owner]
        deadline = time.monotonic() + self.write_timeout
        stalled_at = None
        while view:
            try:
                sent = conn.send(view)
            except (BlockingIOError, InterruptedError):
                if stalled_at is None:
                    stalled_at = time.monotonic()
                    self.stall_events += 1
                # Cooperative drain: while our peer's buffer is full,
                # keep consuming our own inbound streams.
                self.poll()
                if time.monotonic() > deadline:
                    self.stall_seconds += time.monotonic() - stalled_at
                    raise RingTimeout(
                        f"socket edge to worker {owner} blocked for more "
                        f"than {self.write_timeout}s"
                    )
                time.sleep(_POLL_SECONDS)
                continue
            except OSError as exc:
                raise SocketClosed(
                    f"connection to worker {owner} dropped mid-send "
                    f"(frame {seq}, chunk {ci}, partition {part}): {exc}"
                ) from exc
            if stalled_at is not None:
                self.stall_seconds += time.monotonic() - stalled_at
                stalled_at = None
            view = view[sent:]
            self.bytes_sent += sent
        return True

    # -- reducing ----------------------------------------------------------
    def take_frame(
        self,
        seq: int,
        owned: list,
        n_chunks: int,
        kv_dtype: np.dtype,
    ) -> list:
        """Wait for frame ``seq``'s completion watermark, then return its
        chunk-ordered runs — the same layout (and the same watermark
        arithmetic) as :meth:`WorkerMesh.take_frame`, so the downstream
        merge cannot tell the transports apart.

        Fails *fast* on a dropped peer: an inbound stream at EOF while
        the watermark is incomplete can never complete it, so
        :class:`SocketClosed` is raised immediately instead of burning
        the whole ``watermark_timeout``.
        """
        kv_dtype = np.dtype(kv_dtype)
        expected = int(n_chunks) * len(owned)
        deadline = time.monotonic() + self.watermark_timeout
        frame = self._stash.setdefault(seq, {})
        with span("shuffle-in", cat="shuffle", frame=seq, records=expected) as sp:
            while len(frame) < expected:
                if not self.poll() and len(frame) < expected:
                    if self._broken or self._eof:
                        gone = sorted(self._broken | self._eof)
                        raise SocketClosed(
                            f"connection from worker(s) {gone} dropped with "
                            f"frame {seq}'s watermark incomplete: "
                            f"{len(frame)}/{expected} records"
                        )
                    if time.monotonic() > deadline:
                        raise RingTimeout(
                            f"socket watermark for frame {seq} not reached: "
                            f"{len(frame)}/{expected} records after "
                            f"{self.watermark_timeout}s"
                        )
                    time.sleep(_POLL_SECONDS)
            records = self._stash.pop(seq)
            sp.set(
                bytes=sum(
                    len(r) if not isinstance(r, np.ndarray) else int(r.nbytes)
                    for r in records.values()
                )
                + MESH_HEADER_NBYTES * expected
            )
        runs_per_chunk = []
        for ci in range(int(n_chunks)):
            row = []
            for part in owned:
                raw = records[(ci, part)]
                if not isinstance(raw, np.ndarray):
                    raw = np.frombuffer(raw, dtype=kv_dtype)
                row.append(raw)
            runs_per_chunk.append(row)
        return runs_per_chunk

    # -- stats / teardown --------------------------------------------------
    def counters(self) -> dict:
        """Cumulative backpressure/traffic counters, shipped to the
        parent as a ``shuffle_stats`` message alongside each reduce."""
        return {
            "stall_seconds": self.stall_seconds,
            "stall_events": self.stall_events,
            "high_water_bytes": self.high_water_bytes,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
        }

    def close(self) -> None:
        """Close every socket and (as creator) unlink the AF_UNIX
        listener path.  The parent's deterministic-path sweep remains
        the backstop for SIGKILL/crash, exactly like mesh edges."""
        for conn, _ in self._pending:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already dead
                pass
        self._pending = []
        for conns in (self._conns, self._outbound):
            for conn in conns.values():
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already dead
                    pass
            conns.clear()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already dead
            pass
        if self._path is not None:
            try:
                os.unlink(self._path)
            except (FileNotFoundError, OSError):
                pass
        self._stash.clear()
        self._bufs.clear()
