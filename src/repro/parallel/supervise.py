"""Worker supervision and recovery policy for the pool executor.

MapReduce's signature robustness property is that failed map/reduce
tasks are simply re-executed on healthy workers; the paper inherits it
wholesale (a dead GPU's bricks are re-assigned and re-rendered).  This
module gives :class:`~repro.parallel.pool.SharedMemoryPoolExecutor`
the same property on the shared-memory planes:

* **Detection** — :func:`dead_workers` is the watchdog primitive the
  executor polls whenever its result queue goes quiet
  (``Process.is_alive`` + exitcode); wedged edges and watermark expiry
  surface as :class:`~repro.parallel.ring.RingTimeout`, either raised
  parent-side (uplink-ring reads) or reported by a worker in an error
  message whose exception-type tag :func:`worker_error_to_exception`
  classifies.
* **Classification** — :class:`PoolFailure` marks an *infrastructure*
  failure (a dead process, a wedged transport): these are recoverable
  by re-execution, because the inputs are intact and the kernels are
  deterministic.  An exception raised by *user code* (a mapper or
  reducer bug) is deliberately **not** a ``PoolFailure``: it would fail
  identically on every retry, so it propagates to the caller exactly as
  before supervision existed.
* **Policy & accounting** — :class:`PoolSupervisor` records every
  failure, respawn wave, re-executed frame, and degradation step.  The
  executor consults ``PoolConfig.max_frame_retries`` /
  ``retry_backoff`` for the bounded-retry ladder and exports the
  supervisor's snapshot through ``JobStats.recovery`` (excluded from
  ``as_dict()`` like the ring counters: recovery is timing-dependent,
  results are not).

The *fault domain* of this executor is the pool's transport epoch: the
SPSC rings, mesh edges, and control queues carry mid-frame state that
cannot be rewound for a single process, so recovery quarantines the
whole epoch — every transport object and worker process is recycled —
while the expensive state survives: the shared-memory **arena** (the
published volume bricks, transfer function, and acceleration grids)
stays mapped, and replacement workers re-attach it by name in
microseconds.  In-flight frames are then re-executed (re-publish →
re-map → re-reduce); the chunk-order merge invariant makes the
recovered output bitwise-identical to a failure-free run.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import List, Optional, Sequence, Tuple

from ..observability.tracer import instant
from .ring import RingTimeout

__all__ = [
    "PoolFailure",
    "PoolSupervisor",
    "classify_failure",
    "dead_workers",
    "worker_error_to_exception",
]

#: Stage label used when a failure cannot be attributed to a specific
#: point of the worker state machine (a process found dead between
#: messages tells us nothing about where it was).
STAGE_UNKNOWN = "death"


class PoolFailure(RuntimeError):
    """An *infrastructure* failure of the pool — recoverable by retry.

    kind:
        ``"worker-death"`` (a process exited or was killed),
        ``"wedged"`` (a ring/edge write or a frame watermark timed
        out), or ``"conn-drop"`` (a socket-plane peer connection
        reset/EOFed mid-frame — the stream analogue of finding the
        peer process dead).
    workers:
        The worker ids/names implicated, when known.
    stage:
        Where in the Map → shuffle-out → shuffle-in → Reduce machine the
        failure surfaced (best effort; :data:`STAGE_UNKNOWN` for deaths
        detected between messages).
    """

    def __init__(
        self,
        message: str,
        kind: str,
        workers: Sequence = (),
        stage: Optional[str] = None,
    ):
        super().__init__(message)
        self.kind = kind
        self.workers = list(workers)
        self.stage = stage if stage is not None else STAGE_UNKNOWN


def dead_workers(procs: Sequence) -> List[Tuple[str, Optional[int]]]:
    """The watchdog primitive: ``(name, exitcode)`` of every dead process."""
    return [(p.name, p.exitcode) for p in procs if not p.is_alive()]


def classify_failure(exc: BaseException) -> Optional[PoolFailure]:
    """The recoverability decision for one raised exception.

    Returns the failure to recover from, or None when the exception is
    *not* an infrastructure failure — user-code errors, protocol
    violations, and interrupts keep their historical fail-fast,
    tear-down semantics (a deterministic bug re-executes into the same
    bug; retrying it would only launder the traceback through the
    degradation ladder).
    """
    if isinstance(exc, PoolFailure):
        return exc
    if isinstance(exc, RingTimeout):
        # Parent-side timeout draining an uplink ring: the producing
        # worker stopped publishing mid-stream.
        return PoolFailure(str(exc), kind="wedged", stage="shuffle-out")
    # Deferred import: socketplane sits above shuffle, which imports
    # this module at load time.
    from .socketplane import SocketClosed

    if isinstance(exc, SocketClosed):
        # A socket-plane peer dropped its connection mid-frame: the
        # inputs are intact, so recycle the transport epoch and replay.
        return PoolFailure(str(exc), kind="conn-drop", stage="shuffle-out")
    return None


def worker_error_to_exception(
    wi: int, what: str, tb: str, etype: str
) -> Exception:
    """Turn one worker-reported ``("error", ...)`` message into the
    exception the parent should raise.

    Workers tag each report with the exception class name; a
    ``RingTimeout`` is transport wedging (a blocked edge/stream write
    inside a map task, or an expired frame watermark inside a reduce)
    and a ``SocketClosed`` is a dropped socket-plane peer connection —
    both map to a recoverable :class:`PoolFailure`, while anything else
    is a task failure in user code and keeps the historical fatal
    ``RuntimeError``.
    """
    if etype in ("RingTimeout", "SocketClosed"):
        stage = "shuffle-in" if what.startswith("reduce") else "shuffle-out"
        return PoolFailure(
            ("dropped connection" if etype == "SocketClosed"
             else "wedged transport")
            + f" in the worker pool [{what} on worker {wi}]:\n{tb}",
            kind="conn-drop" if etype == "SocketClosed" else "wedged",
            workers=[wi],
            stage=stage,
        )
    return RuntimeError(
        f"task failure in the worker pool [{what} on worker {wi}]:\n{tb}"
    )


class PoolSupervisor:
    """Recovery ledger of one executor: every failure, respawn wave,
    re-executed frame, and degradation step, cheap enough to keep
    always-on.  The executor owns the *policy loop* (it must interleave
    teardown/respawn/replay with its own state); this object owns the
    *accounting* that policy and reporting share."""

    #: Cap on the retained per-event history (counters are unbounded).
    MAX_EVENTS = 64

    def __init__(self):
        self.respawns = 0
        self.respawn_seconds = 0.0
        self.frames_reexecuted = 0
        self.failures = 0
        self.retries_by_stage: Counter = Counter()
        self.degraded_events: List[Tuple[int, int]] = []  # (from, to) widths
        self.serial_fallback = False
        self.events: List[dict] = []

    # -- recording ---------------------------------------------------------
    def _event(self, event: str, **detail) -> None:
        if len(self.events) < self.MAX_EVENTS:
            self.events.append({"event": event, "t": time.time(), **detail})
        # When tracing is on, ledger events double as timeline markers:
        # failure/degrade/fallback instants sit on the parent track next
        # to the respawn spans they explain.
        instant(f"supervisor:{event}", cat="supervisor", **detail)

    def record_failure(self, failure: PoolFailure) -> None:
        self.failures += 1
        self.retries_by_stage[failure.stage] += 1
        self._event(
            "failure",
            kind=failure.kind,
            stage=failure.stage,
            workers=list(failure.workers),
        )

    def record_respawn(self, workers: int, seconds: float, gen: int) -> None:
        self.respawns += 1
        self.respawn_seconds += float(seconds)
        self._event("respawn", workers=workers, seconds=seconds, gen=gen)

    def record_reexecuted(self, frames: int) -> None:
        self.frames_reexecuted += int(frames)

    def record_degraded(self, old_width: int, new_width: int) -> None:
        self.degraded_events.append((int(old_width), int(new_width)))
        self._event("degraded", workers_from=old_width, workers_to=new_width)

    def record_serial_fallback(self) -> None:
        self.serial_fallback = True
        self._event("serial-fallback")

    # -- reporting ---------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether any recovery activity happened at all (when False the
        executor leaves ``JobStats.recovery`` as None, so failure-free
        runs are indistinguishable from pre-supervision ones)."""
        return self.failures > 0 or self.respawns > 0

    def snapshot(self, frame_retries: int = 0, workers: int = 0) -> dict:
        """The ``JobStats.recovery`` payload: cumulative for the pool,
        plus the collecting frame's own retry count."""
        return {
            "failures": self.failures,
            "respawns": self.respawns,
            "respawn_seconds": self.respawn_seconds,
            "frames_reexecuted": self.frames_reexecuted,
            "retries_by_stage": dict(self.retries_by_stage),
            "degraded_events": list(self.degraded_events),
            "serial_fallback": self.serial_fallback,
            "frame_retries": int(frame_retries),
            "workers": int(workers),
        }

    def summary_lines(self) -> List[str]:
        """Human-readable recovery summary for the CLI backend report."""
        if not self.active:
            return []
        stages = ", ".join(
            f"{stage}={count}"
            for stage, count in sorted(self.retries_by_stage.items())
        )
        lines = [
            f"recovered from {self.failures} worker failure(s): "
            f"{self.respawns} respawn(s) "
            f"({self.respawn_seconds * 1e3:.1f} ms), "
            f"{self.frames_reexecuted} frame(s) re-executed"
            + (f" [{stages}]" if stages else "")
        ]
        for old, new in self.degraded_events:
            lines.append(f"degraded pool: {old} -> {new} worker(s)")
        if self.serial_fallback:
            lines.append("degraded to the serial in-process executor")
        return lines
