"""Pool worker: the per-"GPU" Map → shuffle-out → shuffle-in → Reduce
state machine.

Each worker is the multiprocess stand-in for one of the paper's GPUs.
At startup it (optionally) pins itself to its assigned core, then — on
the mesh shuffle plane — allocates its *inbound* edge rings (after
pinning, so first touch lands on the local node) and reports their
names to the parent.  Its loop then consumes control messages from a
per-worker task queue:

``("arena", ArenaSpec|None)``
    (Re)attach the published chunk/transfer-function arena.  Macro-cell
    occupancy grids published under ``(GRID_ARENA_KEY, cache key)`` seed
    the worker's process-local acceleration cache as zero-copy views —
    the multiprocess analogue of the paper's static per-GPU structures —
    and are evicted again before an old arena is unmapped.
``("mesh_attach", {peer: ring name})``
    Attach to every peer's inbound edge (this worker's outbound row of
    the N×N mesh).  Sent once, before any frame.
``("socket_attach", {peer: address})``
    The socket-plane analogue: connect to every peer's listener (see
    :mod:`repro.parallel.socketplane`).  Sent once, after the parent
    has collected every worker's ``socket_ready`` address.
``("frame", bytes)``
    Pickled :class:`FrameContext` parts for the next frame — mapper,
    partitioner, combiner, reducer, KV spec, key bound, chunk count.
    The transfer-function table is *not* in the pickle: it lives in the
    arena and is rebound here (the paper's "static data uploaded once
    per device").
``("map", frame_seq, chunk_index, chunk_id, nbytes, on_disk, meta, payload)``
    Run Map + Partition for one chunk: ray-cast (or any user mapper),
    validate, discard placeholders, combine, bucket by reducer.
    ``payload`` is ``None`` for workers on host 0 (the chunk is mapped
    zero-copy from the arena) and the chunk's ndarray for off-host
    workers, whose "host" has no shared segment.  **Shuffle-out**
    follows immediately: on the parent-routed plane the bucketed runs
    stream up this worker's uplink ring (counters travel on the result
    queue); on the direct planes (mesh edges / socket streams) each
    partition's run goes *directly* to the owning worker, tagged
    ``(frame, chunk, partition)`` — the parent sees counters only.
``("mesh_relay", frame_seq, chunk_index, partition, run)``
    An oversized record another mapper could not fit through its edge,
    relayed by the parent (control-plane escape hatch).  Stashed like
    any other inbound record; arrives before the frame's reduce
    message by queue order.
``("reduce", frame_seq, owned_partitions, runs_per_chunk|None)``
    Run Sort + Reduce for this worker's *owned* reducer partitions —
    the paper's symmetric half, where the same devices that mapped also
    reduce.  On the parent-routed plane ``runs_per_chunk`` holds the
    chunk-ordered runs (renumbered ``0..n-1``); on the mesh plane it is
    ``None`` and **shuffle-in** happens here: the worker drains its
    inbound edges until frame ``seq``'s completion watermark
    (``n_chunks × owned`` records, empty runs included) is reached,
    restores chunk order from the record tags, and executes the
    **literal** :func:`~repro.core.executors.merge_partition_runs` the
    parent would have run, shipping back composited per-partition
    ``(keys, values)`` outputs instead of raw fragments.
``("stop",)``
    Detach everything and exit.

Determinism: the map and reduce kernels are pure NumPy, so a chunk's
fragment runs — and a partition's reduced spans — are bitwise-identical
wherever they execute; chunk order (for runs) and partition order (for
reduced outputs) are restored from explicit tags, never from arrival
order, so both shuffle planes match
:class:`~repro.core.executors.InProcessExecutor` exactly.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_mod
import signal
import traceback
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from ..core.chunk import Chunk
from ..core.executors import (
    PartitionReduceSpec,
    ShuffleSpec,
    map_chunk_to_runs,
    merge_partition_runs,
)
from ..core.job import MapReduceSpec
from ..observability.tracer import (
    current_tracer,
    disable_tracing,
    enable_tracing,
    span,
)
from .faults import FaultPlan
from .ring import ShmRing
from .shm import ArenaSpec, ArenaView
from .shuffle import DEFAULT_RING_WRITE_TIMEOUT, WorkerMesh
from .socketplane import SocketMesh

__all__ = [
    "FrameContext",
    "map_chunk_to_runs",
    "worker_main",
    "GRID_ARENA_KEY",
    "TF_ARENA_KEY",
]

#: Arena key under which the transfer-function table is published.
TF_ARENA_KEY = "__tf_table__"

#: Arena key *tag* for macro-cell occupancy grids: the parent publishes
#: each grid under ``(GRID_ARENA_KEY, <acceleration-cache key>)``, so a
#: worker can seed its process-local cache mechanically — the second
#: element *is* the cache key the ray-cast kernel will look up.
GRID_ARENA_KEY = "__accel_grid__"

@dataclass
class FrameContext:
    """Everything a worker needs to map — and reduce — chunks of one frame."""

    mapper: Any
    partitioner: Any
    combiner: Any
    reducer: Any
    kv: Any
    max_key: int
    n_reducers: int
    n_chunks: int = 0  # mesh watermark: records/partition expected per frame
    tf_ref: Optional[tuple] = None  # (vmin, vmax) when the table is in the arena

    @classmethod
    def from_spec(
        cls,
        spec: MapReduceSpec,
        include_reducer: bool = False,
        n_chunks: int = 0,
    ) -> "FrameContext":
        # The reducer rides along only when workers will actually reduce
        # (reduce_mode="worker"); parent-mode jobs keep working even with
        # reducers that cannot be pickled.
        return cls(
            mapper=spec.mapper,
            partitioner=spec.partitioner,
            combiner=spec.combiner,
            reducer=spec.reducer if include_reducer else None,
            kv=spec.kv,
            max_key=spec.max_key,
            n_reducers=spec.n_reducers,
            n_chunks=int(n_chunks),
        )

    def rebind_tf(self, view: ArenaView) -> None:
        """Re-attach the mapper's transfer function from the arena."""
        if self.tf_ref is None:
            return
        from ..render.transfer import TransferFunction1D

        vmin, vmax = self.tf_ref
        self.mapper.tf = TransferFunction1D(
            table=view.array(TF_ARENA_KEY), vmin=vmin, vmax=vmax
        )


# map_chunk_to_runs is the *same function* the in-process executor runs
# (repro.core.executors) — a FrameContext duck-types for the spec — so a
# worker's runs are bitwise-identical to serial execution by construction.


def _pin_to_core(pin_cpu: Optional[int]) -> None:
    """Pin this worker to its assigned core (best effort).

    The parent already validated availability and emitted the warning
    when pinning was requested but impossible, so failures here (cores
    taken offline between spawn and pin) silently fall back to the
    unpinned scheduler placement rather than killing the worker.
    """
    if pin_cpu is None:
        return
    try:
        os.sched_setaffinity(0, {int(pin_cpu)})
    except (AttributeError, OSError):  # pragma: no cover - platform dependent
        pass


def _handle_map(
    worker_id: int,
    ctx: FrameContext,
    view: ArenaView,
    ring: ShmRing,
    mesh,  # WorkerMesh | SocketMesh | None (duck-typed)
    write_timeout: float,
    result_queue,
    msg: tuple,
    faults: Optional[FaultPlan] = None,
    flush_spans=None,
) -> None:
    """Run one map task, then shuffle its runs out.

    Mesh plane: one record per ``(chunk, partition)`` straight to the
    owner's inbound edge (oversized records fall back through the
    parent queue and are counted).  Parent plane: raw run bytes stream
    up the uplink ring, with the whole chunk falling back inline on the
    result queue when it outgrows the ring.  Either way the "done"
    message carries only counters.
    """
    _, seq, ci, chunk_id, nbytes, on_disk, meta, payload = msg
    try:
        with span(f"map:chunk={ci}", cat="map", frame=seq, chunk=ci):
            if faults is not None:
                faults.fire("map", worker_id, seq, chunk=ci)
            chunk = Chunk(
                id=chunk_id,
                nbytes=nbytes,
                # Off-host workers get the chunk bytes in the message
                # (no shared segment on their "host"); everyone else
                # maps the arena zero-copy.
                data=payload if payload is not None else view.array(chunk_id),
                on_disk=on_disk,
                meta=meta,
            )
            runs, emitted, kept, work, routed = map_chunk_to_runs(ctx, chunk)
        with span("shuffle-out", cat="shuffle", frame=seq, chunk=ci) as sp:
            if faults is not None:
                faults.fire("shuffle-out", worker_id, seq, chunk=ci)
            fallbacks = 0
            if mesh is not None:
                # Shuffle-out over the mesh/sockets: run bytes never
                # touch the parent.
                shuf = ShuffleSpec(ctx.n_reducers, mesh.n_workers)
                wire_base = getattr(mesh, "bytes_sent", None)
                for part, run in enumerate(runs):
                    run = np.ascontiguousarray(run)
                    if not mesh.send(seq, ci, part, run, shuf.owner_of(part)):
                        # Record too large for its edge: relay through the
                        # parent's control plane rather than deadlock.
                        # (Shm edges only — socket sends always succeed.)
                        result_queue.put(
                            ("mesh_fallback", worker_id, seq, ci, part, run)
                        )
                        fallbacks += 1
                inline = None
                # On the socket plane the completion message's byte
                # field reports this map's bytes-on-wire (headers
                # included, self-owned runs excluded); the shm mesh
                # keeps reporting 0 here — its traffic counters live in
                # the edge rings the parent already holds.
                ring_nbytes = (
                    mesh.bytes_sent - wire_base
                    if wire_base is not None
                    else 0
                )
            else:
                total = int(sum(run.nbytes for run in runs))
                if total <= ring.capacity:
                    # Fast path: stream raw run bytes through the ring
                    # (reducer order), publish only counts on the queue.
                    for run in runs:
                        if len(run):
                            ring.write_bytes(
                                np.ascontiguousarray(run),
                                timeout=write_timeout,
                            )
                    inline = None
                    ring_nbytes = total
                else:
                    # A single chunk outgrew the ring: fall back to the
                    # (pickling) queue rather than deadlock.
                    inline = np.concatenate(runs) if kept else None
                    ring_nbytes = 0
                    fallbacks = 1
            sp.set(bytes=ring_nbytes, fallbacks=fallbacks)
        if flush_spans is not None:
            flush_spans()
        result_queue.put(
            (
                "done",
                worker_id,
                seq,
                ci,
                emitted,
                kept,
                work,
                routed.tolist(),
                ring_nbytes,
                inline,
                fallbacks,
            )
        )
    except Exception as exc:
        # The exception class name rides along so the parent can tell
        # transport wedging (RingTimeout -> recoverable) from a bug in
        # user code (fatal) without parsing the traceback text.
        if flush_spans is not None:
            flush_spans()  # the failed task's spans still reach the trace
        result_queue.put(
            (
                "error",
                worker_id,
                f"map of chunk {ci}",
                traceback.format_exc(),
                type(exc).__name__,
            )
        )


def _handle_reduce(
    worker_id: int,
    ctx: FrameContext,
    mesh,  # WorkerMesh | SocketMesh | None (duck-typed)
    result_queue,
    msg: tuple,
    faults: Optional[FaultPlan] = None,
    flush_spans=None,
) -> None:
    """Sort + Reduce this worker's owned partitions for one frame.

    Runs the literal parent-side :func:`merge_partition_runs` over a
    :class:`PartitionReduceSpec` view in which the owned partitions are
    renumbered ``0..n-1`` — bitwise parity with parent-side reduce by
    construction.  On the mesh plane the runs payload is ``None`` and
    shuffle-in happens here: drain inbound edges to the frame's
    watermark, then restore chunk order from the record tags.
    """
    _, seq, owned, runs_per_chunk = msg
    try:
        if faults is not None:
            faults.fire("shuffle-in", worker_id, seq)
        if runs_per_chunk is None:
            # Shuffle-in proper: take_frame records the span around the
            # watermark drain (parent-plane runs arrive with the message,
            # so there is no wait to trace on that plane).
            runs_per_chunk = mesh.take_frame(
                seq, owned, ctx.n_chunks, ctx.kv.dtype
            )
        if faults is not None:
            faults.fire("reduce", worker_id, seq)
        ctx.reducer.initialize()
        view = PartitionReduceSpec(
            n_reducers=len(owned),
            kv=ctx.kv,
            max_key=ctx.max_key,
            reducer=ctx.reducer,
            partition_labels=owned,  # spans name the job-level partition
            frame_seq=seq,
        )
        outputs, pairs_per_reducer = merge_partition_runs(view, runs_per_chunk)
        if flush_spans is not None:
            flush_spans()
        if isinstance(mesh, SocketMesh):
            # Socket traffic counters live worker-side (the parent holds
            # no data sockets): ship a cumulative snapshot strictly
            # before the reduce result it describes (FIFO queue), so the
            # plane's frame_stats always covers this frame's traffic.
            result_queue.put(("shuffle_stats", worker_id, mesh.counters()))
        result_queue.put(
            ("reduced", worker_id, seq, owned, outputs, pairs_per_reducer)
        )
    except Exception as exc:
        if flush_spans is not None:
            flush_spans()
        result_queue.put(
            (
                "error",
                worker_id,
                f"reduce of partitions {owned}",
                traceback.format_exc(),
                type(exc).__name__,
            )
        )


def _evict_seeded(seeded: list) -> None:
    """Drop arena-backed grid views from the local accel cache.

    Must run before the arena they point into is unmapped — on arena
    swap *and* on worker shutdown — or the views' exported buffers keep
    the old segment pinned past ``close()``.
    """
    if not seeded:
        return
    from ..render.accel import shared_cache

    cache = shared_cache()
    for k in seeded:
        cache.pop(k)
    seeded.clear()


def _seed_grid_cache(view: ArenaView, seeded: list) -> None:
    """Install arena-published macro grids into the local accel cache.

    Entries tagged ``(GRID_ARENA_KEY, cache_key)`` are zero-copy views of
    parent-built grids; putting them under ``cache_key`` means this
    worker's ray-cast kernel finds them warm on its very first map task
    and never builds one itself.  ``seeded`` records the keys so the
    next arena swap can evict the views *before* the old segment is
    unmapped.
    """
    from ..render.accel import shared_cache

    cache = shared_cache()
    for key in view.spec.keys():
        if isinstance(key, tuple) and len(key) == 2 and key[0] == GRID_ARENA_KEY:
            cache.put(key[1], view.array(key))
            seeded.append(key[1])


def _next_message(task_queue, mesh):
    """Block for the next control message, draining the mesh meanwhile.

    An idle worker (done mapping, waiting for its reduce message) must
    keep consuming its inbound edges, or a peer still shuffling into a
    small edge would stall until this worker's reduce — which the
    parent only dispatches once *every* map completes, a distributed
    deadlock.  Polling between messages (and inside blocked writes, via
    the ring's ``on_wait`` hook) closes that window: whoever has ring
    data to move can always make progress.

    The poll interval backs off (5 ms → 100 ms) while both the edges
    and the task queue stay empty, so a pool held open between frames
    idles at ~10 wakeups per second instead of busy-polling; any
    activity snaps it back to the responsive interval.  The cap stays
    well under the edge write timeout (a tenth of it, at most), so a
    napping owner can never turn a blocked peer's normal backpressure
    into a spurious RingTimeout.
    """
    if mesh is None:
        return task_queue.get()
    timeout = 0.005
    cap = max(0.005, min(0.1, mesh.write_timeout / 10.0))
    while True:
        if mesh.poll():
            timeout = 0.005
        try:
            return task_queue.get(timeout=timeout)
        except queue_mod.Empty:
            timeout = min(timeout * 2.0, cap)


def worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    ring_name: Optional[str],
    cfg: Optional[dict] = None,
) -> None:
    """Entry point of one pool worker process.

    ``cfg`` carries the transport configuration resolved by the parent:
    ``pin_cpu`` (core to pin to, or None), ``write_timeout`` (shared by
    the uplink ring and every mesh edge), ``watermark_timeout`` (the
    mesh frame-completion bound), ``fault_plan``/``spawn_gen`` (the
    deterministic fault-injection plan and this process's spawn
    generation — see :mod:`repro.parallel.faults`), ``kernel`` (the
    march-kernel backend to resolve and JIT-warm once at spawn; None
    skips), and — when the mesh plane is active —
    ``mesh_active``/``n_workers``/``edge_capacity``.
    Pinning happens **before** the inbound mesh edges are created so
    their pages are first-touched on the pinned core's NUMA node.
    ``ring_name`` is the uplink ring (parent-routed plane only; None on
    the mesh plane, where run bytes travel the edges instead).

    An external SIGTERM is converted to ``SystemExit`` so the
    ``finally`` teardown below still runs: the dying worker detaches
    its arena views and closes (unlinking, as creator) its own mesh
    edges instead of leaving everything to the parent's deterministic
    -name sweep.  The sweep remains the backstop for SIGKILL/crash.
    """
    cfg = cfg or {}

    def _graceful_term(signum, frame):  # pragma: no cover - signal path
        raise SystemExit(128 + int(signum))

    try:
        signal.signal(signal.SIGTERM, _graceful_term)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    _pin_to_core(cfg.get("pin_cpu"))
    # Tracing: a fresh per-process buffer when the parent traces, else
    # explicitly disabled — a fork child inherits the parent's tracer
    # object, and recording into (or shipping) that copy would be wrong
    # either way.  Spans are flushed onto the result queue immediately
    # BEFORE each task-completion message, so FIFO order guarantees the
    # parent absorbs a task's spans no later than the task itself.
    spawn_gen = int(cfg.get("spawn_gen", 0))
    if cfg.get("trace"):
        enable_tracing()
    else:
        disable_tracing()

    def flush_spans() -> None:
        tracer = current_tracer()
        if tracer is not None and tracer.events:
            result_queue.put(("spans", worker_id, spawn_gen, tracer.drain()))

    write_timeout = float(cfg.get("write_timeout", DEFAULT_RING_WRITE_TIMEOUT))
    watermark_timeout = float(cfg.get("watermark_timeout", write_timeout))
    # The plan was validated in the parent; bind this process's spawn
    # generation so rules default to firing only on the first attempt.
    faults = FaultPlan.parse(cfg.get("fault_plan"), generation=spawn_gen)
    ring = ShmRing.attach(ring_name) if ring_name is not None else None
    # Either direct-plane transport binds here; the two duck-type the
    # same poll/send/take_frame/close surface for the loop below.
    mesh = None  # WorkerMesh | SocketMesh | None
    if cfg.get("mesh_active"):
        mesh = WorkerMesh(
            worker_id,
            int(cfg["n_workers"]),
            int(cfg["edge_capacity"]),
            write_timeout,
            token=cfg.get("mesh_token"),
            watermark_timeout=watermark_timeout,
        )
        # Report the inbound edge names; the parent attaches (adopting
        # unlink duty) and broadcasts each worker its outbound row.
        result_queue.put(("mesh_ready", worker_id, mesh.inbound_names))
    elif cfg.get("socket_active"):
        mesh = SocketMesh(
            worker_id,
            int(cfg["n_workers"]),
            write_timeout,
            token=cfg.get("socket_token"),
            watermark_timeout=watermark_timeout,
            family=cfg.get("socket_family") or "unix",
        )
        # The listener exists before this report, so by the time the
        # parent broadcasts the address map every peer is connectable.
        result_queue.put(("socket_ready", worker_id, mesh.address))
    # One-time march-kernel warmup, off the frame critical path: the
    # parent pins the concrete backend it resolved, and this process
    # must provide the same one — strict resolution means a worker
    # missing the parent's backend (or failing to compile it) reports
    # an error *before* the first frame rather than rendering with a
    # divergent marcher.  The span stays buffered until the first task's
    # flush (an eager flush here would interleave with the shuffle-plane
    # handshake messages) — FIFO still lands it before the frame seals,
    # so the JIT compile is visible on the trace timeline.
    kernel_name = cfg.get("kernel")
    if kernel_name is not None:
        try:
            from ..render.kernels import resolve_kernel

            kspec = resolve_kernel(kernel_name)
            with span(
                "kernel-warmup",
                cat="kernel",
                backend=kspec.name,
                worker=worker_id,
            ):
                kspec.warmup()
        except Exception as exc:
            result_queue.put(
                (
                    "error",
                    worker_id,
                    f"kernel warmup ({kernel_name})",
                    traceback.format_exc(),
                    type(exc).__name__,
                )
            )
    view: Optional[ArenaView] = None
    ctx: Optional[FrameContext] = None
    seeded: list = []  # accel-cache keys backed by the current arena
    try:
        while True:
            msg = _next_message(task_queue, mesh)
            kind = msg[0]
            if kind == "stop":
                break
            elif kind == "arena":
                spec: Optional[ArenaSpec] = msg[1]
                # The previous frame context may hold views of the old
                # arena (e.g. a transfer function bound to its table);
                # drop it first so the mapping can actually unmap.  A
                # "frame" message always follows an "arena" message.
                # Cached grid views pin the old segment the same way, so
                # evict them before closing.
                ctx = None
                _evict_seeded(seeded)
                if view is not None:
                    view.close()
                view = ArenaView(spec) if spec is not None else None
                if view is not None:
                    _seed_grid_cache(view, seeded)
            elif kind in ("mesh_attach", "socket_attach"):
                mesh.attach_row(msg[1])
            elif kind == "frame":
                ctx = pickle.loads(msg[1])
                if view is not None:
                    ctx.rebind_tf(view)
                ctx.mapper.initialize()
            elif kind == "map":
                # Task body lives in a helper so its locals (arena views,
                # fragment runs) are released as soon as it returns — the
                # final unmap in the ``finally`` below must see no views.
                _handle_map(
                    worker_id,
                    ctx,
                    view,
                    ring,
                    mesh,
                    write_timeout,
                    result_queue,
                    msg,
                    faults,
                    flush_spans,
                )
            elif kind == "mesh_relay":
                # Parent-relayed oversized record; counts toward the
                # frame watermark like any edge record.
                _, seq, ci, part, run = msg
                mesh.stash_relay(seq, ci, part, run)
            elif kind == "reduce":
                # Worker-side Sort+Reduce of the partitions this worker
                # owns; parent-plane payloads are parent-copied memory,
                # mesh payloads live in this worker's stash — neither is
                # an arena view, so both are ordering-safe w.r.t. arena
                # republish.
                _handle_reduce(
                    worker_id, ctx, mesh, result_queue, msg, faults, flush_spans
                )
            else:
                result_queue.put(
                    (
                        "error",
                        worker_id,
                        "message dispatch",
                        f"unknown message {kind!r}",
                        "RuntimeError",
                    )
                )
    finally:
        ctx = None  # release arena-backed views before unmapping
        _evict_seeded(seeded)
        if view is not None:
            view.close()
        if mesh is not None:
            mesh.close()
        if ring is not None:
            ring.close()
