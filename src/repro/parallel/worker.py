"""Pool worker: the per-"GPU" Map+Partition — and Sort+Reduce — stages.

Each worker is the multiprocess stand-in for one of the paper's GPUs.
Its loop consumes control messages from a per-worker task queue:

``("arena", ArenaSpec|None)``
    (Re)attach the published chunk/transfer-function arena.  Macro-cell
    occupancy grids published under ``(GRID_ARENA_KEY, cache key)`` seed
    the worker's process-local acceleration cache as zero-copy views —
    the multiprocess analogue of the paper's static per-GPU structures —
    and are evicted again before an old arena is unmapped.
``("frame", bytes)``
    Pickled :class:`FrameContext` parts for the next frame — mapper,
    partitioner, combiner, reducer, KV spec, key bound.  The transfer
    -function table is *not* in the pickle: it lives in the arena and is
    rebound here (the paper's "static data uploaded once per device").
``("map", frame_seq, chunk_index, chunk_id, nbytes, on_disk, meta)``
    Run Map + Partition for one chunk: ray-cast (or any user mapper),
    validate, discard placeholders, combine, bucket by reducer.  The
    bucketed fragment runs stream back through this worker's shared
    -memory ring; counters travel on the result queue.
``("reduce", frame_seq, owned_partitions, runs_per_chunk)``
    Run Sort + Reduce for this worker's *owned* reducer partitions —
    the paper's symmetric half, where the same devices that mapped also
    reduce.  ``runs_per_chunk`` holds the chunk-ordered runs for the
    owned partitions (renumbered ``0..n-1``); the worker executes the
    **literal** :func:`~repro.core.executors.merge_partition_runs` the
    parent would have run and ships back composited per-partition
    ``(keys, values)`` outputs instead of raw fragments.
``("stop",)``
    Detach everything and exit.

Determinism: the map and reduce kernels are pure NumPy, so a chunk's
fragment runs — and a partition's reduced spans — are bitwise-identical
wherever they execute; the parent only has to keep chunk order (for
runs) and partition order (for reduced outputs) to match
:class:`~repro.core.executors.InProcessExecutor` exactly.
"""

from __future__ import annotations

import pickle
import traceback
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from ..core.chunk import Chunk
from ..core.executors import (
    PartitionReduceSpec,
    map_chunk_to_runs,
    merge_partition_runs,
)
from ..core.job import MapReduceSpec
from .ring import ShmRing
from .shm import ArenaSpec, ArenaView

__all__ = [
    "FrameContext",
    "map_chunk_to_runs",
    "worker_main",
    "GRID_ARENA_KEY",
    "TF_ARENA_KEY",
]

#: Arena key under which the transfer-function table is published.
TF_ARENA_KEY = "__tf_table__"

#: Arena key *tag* for macro-cell occupancy grids: the parent publishes
#: each grid under ``(GRID_ARENA_KEY, <acceleration-cache key>)``, so a
#: worker can seed its process-local cache mechanically — the second
#: element *is* the cache key the ray-cast kernel will look up.
GRID_ARENA_KEY = "__accel_grid__"

#: How long a worker will sit in ring backpressure before giving up.
#: With ``pipeline_depth > 1`` the parent legitimately stops draining
#: while it reduces/stitches the previous frame, so a blocked write is
#: the *normal* flow-control state, not an error; the bound exists only
#: so a truly wedged parent surfaces as a RingTimeout (which tears the
#: pool down) instead of a silent hang.
RING_WRITE_TIMEOUT = 300.0


@dataclass
class FrameContext:
    """Everything a worker needs to map — and reduce — chunks of one frame."""

    mapper: Any
    partitioner: Any
    combiner: Any
    reducer: Any
    kv: Any
    max_key: int
    n_reducers: int
    tf_ref: Optional[tuple] = None  # (vmin, vmax) when the table is in the arena

    @classmethod
    def from_spec(
        cls, spec: MapReduceSpec, include_reducer: bool = False
    ) -> "FrameContext":
        # The reducer rides along only when workers will actually reduce
        # (reduce_mode="worker"); parent-mode jobs keep working even with
        # reducers that cannot be pickled.
        return cls(
            mapper=spec.mapper,
            partitioner=spec.partitioner,
            combiner=spec.combiner,
            reducer=spec.reducer if include_reducer else None,
            kv=spec.kv,
            max_key=spec.max_key,
            n_reducers=spec.n_reducers,
        )

    def rebind_tf(self, view: ArenaView) -> None:
        """Re-attach the mapper's transfer function from the arena."""
        if self.tf_ref is None:
            return
        from ..render.transfer import TransferFunction1D

        vmin, vmax = self.tf_ref
        self.mapper.tf = TransferFunction1D(
            table=view.array(TF_ARENA_KEY), vmin=vmin, vmax=vmax
        )


# map_chunk_to_runs is the *same function* the in-process executor runs
# (repro.core.executors) — a FrameContext duck-types for the spec — so a
# worker's runs are bitwise-identical to serial execution by construction.


def _handle_map(
    worker_id: int,
    ctx: FrameContext,
    view: ArenaView,
    ring: ShmRing,
    result_queue,
    msg: tuple,
) -> None:
    """Run one map task and publish its runs (ring) and counters (queue)."""
    _, seq, ci, chunk_id, nbytes, on_disk, meta = msg
    try:
        chunk = Chunk(
            id=chunk_id,
            nbytes=nbytes,
            data=view.array(chunk_id),
            on_disk=on_disk,
            meta=meta,
        )
        runs, emitted, kept, work, routed = map_chunk_to_runs(ctx, chunk)
        total = int(sum(run.nbytes for run in runs))
        fallback = total > ring.capacity
        if not fallback:
            # Fast path: stream raw run bytes through the ring (reducer
            # order), publish only counts on the queue.
            for run in runs:
                if len(run):
                    ring.write_bytes(
                        np.ascontiguousarray(run), timeout=RING_WRITE_TIMEOUT
                    )
            inline = None
            ring_nbytes = total
        else:
            # A single chunk outgrew the ring: fall back to the
            # (pickling) queue rather than deadlock.
            inline = np.concatenate(runs) if kept else None
            ring_nbytes = 0
        result_queue.put(
            (
                "done",
                worker_id,
                seq,
                ci,
                emitted,
                kept,
                work,
                routed.tolist(),
                ring_nbytes,
                inline,
                fallback,
            )
        )
    except Exception:
        result_queue.put(
            ("error", worker_id, f"map of chunk {ci}", traceback.format_exc())
        )


def _handle_reduce(
    worker_id: int,
    ctx: FrameContext,
    result_queue,
    msg: tuple,
) -> None:
    """Sort + Reduce this worker's owned partitions for one frame.

    Runs the literal parent-side :func:`merge_partition_runs` over a
    :class:`PartitionReduceSpec` view in which the owned partitions are
    renumbered ``0..n-1`` — bitwise parity with parent-side reduce by
    construction.
    """
    _, seq, owned, runs_per_chunk = msg
    try:
        ctx.reducer.initialize()
        view = PartitionReduceSpec(
            n_reducers=len(owned),
            kv=ctx.kv,
            max_key=ctx.max_key,
            reducer=ctx.reducer,
        )
        outputs, pairs_per_reducer = merge_partition_runs(view, runs_per_chunk)
        result_queue.put(
            ("reduced", worker_id, seq, owned, outputs, pairs_per_reducer)
        )
    except Exception:
        result_queue.put(
            (
                "error",
                worker_id,
                f"reduce of partitions {owned}",
                traceback.format_exc(),
            )
        )


def _evict_seeded(seeded: list) -> None:
    """Drop arena-backed grid views from the local accel cache.

    Must run before the arena they point into is unmapped — on arena
    swap *and* on worker shutdown — or the views' exported buffers keep
    the old segment pinned past ``close()``.
    """
    if not seeded:
        return
    from ..render.accel import shared_cache

    cache = shared_cache()
    for k in seeded:
        cache.pop(k)
    seeded.clear()


def _seed_grid_cache(view: ArenaView, seeded: list) -> None:
    """Install arena-published macro grids into the local accel cache.

    Entries tagged ``(GRID_ARENA_KEY, cache_key)`` are zero-copy views of
    parent-built grids; putting them under ``cache_key`` means this
    worker's ray-cast kernel finds them warm on its very first map task
    and never builds one itself.  ``seeded`` records the keys so the
    next arena swap can evict the views *before* the old segment is
    unmapped.
    """
    from ..render.accel import shared_cache

    cache = shared_cache()
    for key in view.spec.keys():
        if isinstance(key, tuple) and len(key) == 2 and key[0] == GRID_ARENA_KEY:
            cache.put(key[1], view.array(key))
            seeded.append(key[1])


def worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    ring_name: str,
) -> None:
    """Entry point of one pool worker process."""
    ring = ShmRing.attach(ring_name)
    view: Optional[ArenaView] = None
    ctx: Optional[FrameContext] = None
    seeded: list = []  # accel-cache keys backed by the current arena
    try:
        while True:
            msg = task_queue.get()
            kind = msg[0]
            if kind == "stop":
                break
            elif kind == "arena":
                spec: Optional[ArenaSpec] = msg[1]
                # The previous frame context may hold views of the old
                # arena (e.g. a transfer function bound to its table);
                # drop it first so the mapping can actually unmap.  A
                # "frame" message always follows an "arena" message.
                # Cached grid views pin the old segment the same way, so
                # evict them before closing.
                ctx = None
                _evict_seeded(seeded)
                if view is not None:
                    view.close()
                view = ArenaView(spec) if spec is not None else None
                if view is not None:
                    _seed_grid_cache(view, seeded)
            elif kind == "frame":
                ctx = pickle.loads(msg[1])
                if view is not None:
                    ctx.rebind_tf(view)
                ctx.mapper.initialize()
            elif kind == "map":
                # Task body lives in a helper so its locals (arena views,
                # fragment runs) are released as soon as it returns — the
                # final unmap in the ``finally`` below must see no views.
                _handle_map(worker_id, ctx, view, ring, result_queue, msg)
            elif kind == "reduce":
                # Worker-side Sort+Reduce of the partitions this worker
                # owns; the payload is parent-copied memory, never arena
                # views, so it is ordering-safe w.r.t. arena republish.
                _handle_reduce(worker_id, ctx, result_queue, msg)
            else:
                result_queue.put(
                    (
                        "error",
                        worker_id,
                        "message dispatch",
                        f"unknown message {kind!r}",
                    )
                )
    finally:
        ctx = None  # release arena-backed views before unmapping
        _evict_seeded(seeded)
        if view is not None:
            view.close()
        ring.close()
