"""Performance analysis: figures of merit and the §6.3 bottleneck study."""

from .bottleneck import (
    CommComputeSplit,
    compute_vs_communication,
    find_crossover,
    find_sweet_spot,
)
from .efficiency import (
    ScalingPoint,
    fps,
    parallel_efficiency,
    scaling_series,
    speedup,
    voxels_per_second,
)
from .peaks import StagePeaks, speed_of_light

__all__ = [
    "CommComputeSplit",
    "ScalingPoint",
    "StagePeaks",
    "compute_vs_communication",
    "find_crossover",
    "find_sweet_spot",
    "fps",
    "parallel_efficiency",
    "scaling_series",
    "speed_of_light",
    "speedup",
    "voxels_per_second",
]
