"""Compute-vs-communication analysis (paper §6.3).

The paper's headline numbers: a 1024³ volume on 8 GPUs needs ~515 ms of
communication and ~503 ms of computation; at 16 GPUs communication rises
past 1 s while computation falls to ~97 ms — computation is no longer
the bottleneck.  :func:`compute_vs_communication` produces exactly that
pair for any workload, and :func:`find_crossover` locates the GPU count
where communication overtakes computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.scheduler import MapWork
from ..sim.node import ClusterSpec
from .peaks import speed_of_light

__all__ = ["CommComputeSplit", "compute_vs_communication", "find_crossover", "find_sweet_spot"]


@dataclass(frozen=True)
class CommComputeSplit:
    """The §6.3 decomposition for one configuration."""

    n_gpus: int
    compute_seconds: float  # critical-path kernel time
    communication_seconds: float  # PCIe + network serial time

    @property
    def compute_bound(self) -> bool:
        return self.compute_seconds >= self.communication_seconds

    @property
    def ratio(self) -> float:
        """communication / compute — >1 means communication-bound."""
        if self.compute_seconds == 0:
            return float("inf")
        return self.communication_seconds / self.compute_seconds


def compute_vs_communication(
    cluster: ClusterSpec,
    works: list[MapWork],
    pair_nbytes: int,
    send_threshold_pairs: int = 1 << 16,
) -> CommComputeSplit:
    """Split a workload's map phase into compute and communication time.

    *Compute* is the busiest GPU's serial kernel time.  *Communication*
    is everything the data pays to move on the busiest node's resources:
    texture uploads (PCIe **and** the synchronous setup the paper was
    stuck with), fragment downloads, wire time, and the per-message
    software staging that dominates direct-send at high GPU counts.
    This matches the paper's accounting, where the two components are
    reported as additive serial times (515 ms + 503 ms ≈ the Fig. 3
    total for 1024³ on 8 GPUs).
    """
    n_gpus = cluster.gpu_count
    gpu_specs = cluster.gpu_specs()
    gpu_node = []
    for ni, node in enumerate(cluster.nodes):
        gpu_node.extend([ni] * node.gpu_count)

    per_gpu_kernel = np.zeros(n_gpus)
    per_gpu_pcie = np.zeros(n_gpus)
    node_msgs = np.zeros(cluster.node_count)  # handled messages (in + out)
    node_wire = np.zeros(cluster.node_count)  # serialisation seconds at TX
    for w in works:
        g = w.gpu
        spec = gpu_specs[g]
        node = cluster.nodes[gpu_node[g]]
        per_gpu_kernel[g] += spec.raycast_time(w.n_rays, w.n_samples)
        per_gpu_pcie[g] += (
            spec.texture_setup_overhead
            + w.upload_bytes / node.pcie.h2d_bandwidth
            + w.pairs_emitted * pair_nbytes / node.pcie.d2h_bandwidth
        )
        for r, n_pairs in enumerate(w.pairs_to_reducer):
            if n_pairs == 0:
                continue
            n_msgs = -(-int(n_pairs) // send_threshold_pairs)
            src, dst = gpu_node[g], gpu_node[r]
            node_msgs[src] += n_msgs
            node_msgs[dst] += n_msgs
            if src != dst:
                node_wire[src] += (
                    n_msgs * cluster.network.message_overhead
                    + int(n_pairs) * pair_nbytes / cluster.network.bandwidth
                )

    # Message staging serialises on the node's single-threaded MPI
    # progress engine (the 2010 norm), so it is NOT divided over cores.
    software = np.zeros(cluster.node_count)
    for ni, node in enumerate(cluster.nodes):
        software[ni] = node_msgs[ni] * node.cpu.message_handling_overhead
    comm = float(per_gpu_pcie.max(initial=0.0)) + float(
        (node_wire + software).max(initial=0.0)
    )
    return CommComputeSplit(
        n_gpus=n_gpus,
        compute_seconds=float(per_gpu_kernel.max(initial=0.0)),
        communication_seconds=comm,
    )


def find_crossover(
    splits: Sequence[CommComputeSplit],
) -> int | None:
    """Smallest GPU count at which communication exceeds computation.

    ``splits`` must come from the same workload at increasing GPU counts.
    Returns None when the workload stays compute-bound throughout.
    """
    for s in sorted(splits, key=lambda s: s.n_gpus):
        if not s.compute_bound:
            return s.n_gpus
    return None


def find_sweet_spot(
    runtimes: dict[int, float],
) -> int:
    """GPU count with the minimum total runtime (paper: 8 for ≤512³)."""
    if not runtimes:
        raise ValueError("no runtimes given")
    return min(runtimes, key=lambda n: (runtimes[n], n))
