"""Figures of merit (paper §4.2): VPS, runtime/FPS, parallel efficiency.

"Voxels per second is an important figure ... Runtime is just as
important ... Finally, parallel efficiency is important because it shows
the true scalability of the system."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "fps",
    "voxels_per_second",
    "speedup",
    "parallel_efficiency",
    "ScalingPoint",
    "scaling_series",
]


def fps(runtime_seconds: float) -> float:
    """Frames per second for a single-frame runtime."""
    if runtime_seconds <= 0:
        raise ValueError("runtime must be positive")
    return 1.0 / runtime_seconds


def voxels_per_second(voxel_count: int, runtime_seconds: float) -> float:
    """The paper's VPS metric: volume voxels / frame runtime."""
    if runtime_seconds <= 0:
        raise ValueError("runtime must be positive")
    if voxel_count < 0:
        raise ValueError("voxel count must be non-negative")
    return voxel_count / runtime_seconds


def speedup(t_base: float, t_n: float) -> float:
    """Speedup of a run against a baseline runtime."""
    if t_base <= 0 or t_n <= 0:
        raise ValueError("runtimes must be positive")
    return t_base / t_n


def parallel_efficiency(t_base: float, t_n: float, n: int, n_base: int = 1) -> float:
    """Efficiency = speedup / (resource ratio)."""
    if n < n_base or n_base < 1:
        raise ValueError("need n >= n_base >= 1")
    return speedup(t_base, t_n) / (n / n_base)


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a strong-scaling sweep."""

    n_gpus: int
    runtime: float
    voxel_count: int

    @property
    def fps(self) -> float:
        return fps(self.runtime)

    @property
    def vps(self) -> float:
        return voxels_per_second(self.voxel_count, self.runtime)

    @property
    def mvps(self) -> float:
        """Millions of voxels per second (the paper's Fig. 4 unit)."""
        return self.vps / 1e6


def scaling_series(points: Sequence[ScalingPoint]) -> list[dict]:
    """Annotate a sweep with speedup/efficiency against its smallest run."""
    if not points:
        return []
    pts = sorted(points, key=lambda p: p.n_gpus)
    base = pts[0]
    out = []
    for p in pts:
        out.append(
            {
                "n_gpus": p.n_gpus,
                "runtime": p.runtime,
                "fps": p.fps,
                "mvps": p.mvps,
                "speedup": speedup(base.runtime, p.runtime),
                "efficiency": parallel_efficiency(
                    base.runtime, p.runtime, p.n_gpus, base.n_gpus
                ),
            }
        )
    return out
