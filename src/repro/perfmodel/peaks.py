"""Speed-of-light analysis (paper §6.3).

"We do this by showing the 'speed-of-light' and the realistic peak
speeds for the tasks in the renderer, then showing that we come very
close to achieving those."  Disk time is excluded, as in the paper
("assume that all data is initially resident within CPU system memory").

Each peak is the unavoidable serial time of one stage given perfect
overlap of everything else — lower bounds the achieved stage time from
the simulator can be compared against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.scheduler import MapWork
from ..sim.node import ClusterSpec

__all__ = ["StagePeaks", "speed_of_light"]


@dataclass(frozen=True)
class StagePeaks:
    """Lower-bound seconds per stage."""

    upload: float  # H2D brick payloads through the PCIe links
    map_compute: float  # ray-cast kernels on the GPUs
    download: float  # D2H emitted pairs
    network: float  # direct-send exchange over NIC ports
    sort: float  # counting sort of received pairs
    reduce: float  # compositing of received pairs

    @property
    def map_phase(self) -> float:
        """Lower bound of the overlapped map phase: its slowest component."""
        return max(self.upload, self.map_compute, self.download, self.network)

    @property
    def total(self) -> float:
        return self.map_phase + self.sort + self.reduce

    def as_dict(self) -> dict[str, float]:
        return {
            "upload": self.upload,
            "map_compute": self.map_compute,
            "download": self.download,
            "network": self.network,
            "sort": self.sort,
            "reduce": self.reduce,
            "map_phase": self.map_phase,
            "total": self.total,
        }


def speed_of_light(
    cluster: ClusterSpec,
    works: list[MapWork],
    pair_nbytes: int,
    reduce_on: str = "cpu",
) -> StagePeaks:
    """Per-stage lower bounds for a workload on a cluster.

    Critical-path logic: per-GPU serial kernel/upload chains bound the
    compute stages (a GPU processes its chunks in order); per-node NIC
    serialisation bounds the exchange; per-node core counts bound the
    CPU stages.
    """
    n_gpus = cluster.gpu_count
    gpu_specs = cluster.gpu_specs()
    # Map GPU index -> node index.
    gpu_node = []
    for ni, node in enumerate(cluster.nodes):
        gpu_node.extend([ni] * node.gpu_count)

    per_gpu_kernel = np.zeros(n_gpus)
    per_gpu_upload = np.zeros(n_gpus)
    per_gpu_download = np.zeros(n_gpus)
    per_node_out = np.zeros(cluster.node_count)
    per_node_in = np.zeros(cluster.node_count)
    pairs_per_reducer = None
    for w in works:
        g = w.gpu
        spec = gpu_specs[g]
        per_gpu_kernel[g] += spec.raycast_time(w.n_rays, w.n_samples)
        node = cluster.nodes[gpu_node[g]]
        per_gpu_upload[g] += w.upload_bytes / node.pcie.h2d_bandwidth
        per_gpu_download[g] += w.pairs_emitted * pair_nbytes / node.pcie.d2h_bandwidth
        if pairs_per_reducer is None:
            pairs_per_reducer = np.zeros(len(w.pairs_to_reducer), dtype=np.int64)
        pairs_per_reducer += w.pairs_to_reducer
        for r, n_pairs in enumerate(w.pairs_to_reducer):
            dst = gpu_node[r]
            if dst != gpu_node[g]:
                nbytes = int(n_pairs) * pair_nbytes
                per_node_out[gpu_node[g]] += nbytes
                per_node_in[dst] += nbytes
    if pairs_per_reducer is None:
        pairs_per_reducer = np.zeros(n_gpus, dtype=np.int64)

    net = cluster.network
    network_peak = max(
        float(per_node_out.max(initial=0.0)), float(per_node_in.max(initial=0.0))
    ) / net.bandwidth

    # Sort / reduce: reducers on one node share its cores (CPU path) or
    # run on their own GPUs (GPU path).
    sort_peak = 0.0
    reduce_peak = 0.0
    for ni, node in enumerate(cluster.nodes):
        local_reducers = [r for r in range(len(pairs_per_reducer)) if gpu_node[r] == ni]
        pairs_here = int(sum(pairs_per_reducer[r] for r in local_reducers))
        if pairs_here == 0:
            continue
        cores = node.cpu.cores
        sort_peak = max(sort_peak, pairs_here / (node.cpu.sort_keys_per_sec * cores))
        if reduce_on == "cpu":
            reduce_peak = max(
                reduce_peak, pairs_here / (node.cpu.composite_frags_per_sec * cores)
            )
        else:
            slowest = max(
                int(pairs_per_reducer[r]) / gpu_specs[r].composite_frags_per_sec
                for r in local_reducers
            )
            reduce_peak = max(reduce_peak, slowest)

    return StagePeaks(
        upload=float(per_gpu_upload.max(initial=0.0)),
        map_compute=float(per_gpu_kernel.max(initial=0.0)),
        download=float(per_gpu_download.max(initial=0.0)),
        network=network_peak,
        sort=sort_peak,
        reduce=reduce_peak,
    )
