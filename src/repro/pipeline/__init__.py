"""The MapReduce volume renderer built on core + render + sim."""

from .combiner import FragmentCombiner
from .driver import RotationResult, orbit_path, render_rotation
from .outofcore import ResidencyPlan, plan_residency, strip_uploads
from .mappers import MIP_DTYPE, MaxIntensityMapper, RayCastMapper
from .reducers import CompositeReducer, MaxReducer
from .renderer import MapReduceVolumeRenderer, RenderResult
from .swap import LocalPartitioner, SwapRenderResult, render_swap, slab_assignment
from .workload import BrickWork, build_workload, model_brick_work

__all__ = [
    "BrickWork",
    "CompositeReducer",
    "FragmentCombiner",
    "LocalPartitioner",
    "MIP_DTYPE",
    "SwapRenderResult",
    "render_swap",
    "slab_assignment",
    "MapReduceVolumeRenderer",
    "MaxIntensityMapper",
    "MaxReducer",
    "RayCastMapper",
    "RenderResult",
    "ResidencyPlan",
    "RotationResult",
    "plan_residency",
    "strip_uploads",
    "build_workload",
    "model_brick_work",
    "orbit_path",
    "render_rotation",
]
