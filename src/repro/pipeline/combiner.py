"""The combiner the paper deliberately left out.

§3.1: "we specifically omitted partial reduce/combine because it didn't
increase performance for our volume renderer."  The reason is
structural: within one brick, each pixel's ray emits at most **one**
fragment (the in-brick samples are already composited front-to-back
inside the kernel), so a per-chunk combiner never finds two pairs with
the same key to merge.  :class:`FragmentCombiner` implements the merge
anyway — correctly, by depth-ordered over — so the ablation benchmark
can demonstrate the zero-merge fact instead of asserting it.
"""

from __future__ import annotations

import numpy as np

from ..core.api import Combiner
from ..core.sort import run_length_groups
from ..render.compositing import fold_depth_runs
from ..render.fragments import FRAGMENT_DTYPE, make_fragments

__all__ = ["FragmentCombiner"]


class FragmentCombiner(Combiner):
    """Depth-ordered per-key merge of fragments within one map output."""

    def __init__(self) -> None:
        self.pairs_in = 0
        self.pairs_out = 0

    def combine(self, pairs: np.ndarray) -> np.ndarray:
        self.pairs_in += len(pairs)
        if len(pairs) == 0:
            self.pairs_out += 0
            return pairs
        if pairs.dtype != FRAGMENT_DTYPE:
            raise TypeError("FragmentCombiner expects ray-fragment pairs")
        order = np.lexsort((pairs["depth"], pairs["pixel"]))
        f = pairs[order]
        keys, starts, counts = run_length_groups(f["pixel"])
        if np.all(counts == 1):
            # The common case the paper observed: nothing to merge.
            self.pairs_out += len(pairs)
            return pairs
        rgba = np.stack([f["r"], f["g"], f["b"], f["a"]], axis=1)
        # Same segmented-scan fold the reducer and compositors use.
        out = fold_depth_runs(rgba, starts)
        depth = f["depth"][starts]
        merged = make_fragments(keys.astype(np.int32), depth, out)
        self.pairs_out += len(merged)
        return merged
