"""Frame-sequence driver.

"Scientists care about the frame rate of their visualization" (§4.2) —
this module renders orbits (the canonical interaction) and reports the
sustained FPS the paper's Figure 4 is about, rather than single-frame
numbers.  Per-frame timings also expose view-dependence: fragment
counts and stage times change with the camera angle, which single-frame
benchmarks hide.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..render.camera import Camera, orbit_camera
from .renderer import MapReduceVolumeRenderer, RenderResult

__all__ = ["orbit_path", "RotationResult", "render_rotation"]


def orbit_path(
    volume_shape: Sequence[int],
    n_frames: int,
    elevation_deg: float = 20.0,
    width: int = 512,
    height: int = 512,
    distance_factor: float = 2.2,
    full_turns: float = 1.0,
) -> list[Camera]:
    """Cameras for an azimuthal orbit around the volume."""
    if n_frames < 1:
        raise ValueError("need at least one frame")
    return [
        orbit_camera(
            volume_shape,
            azimuth_deg=360.0 * full_turns * i / n_frames,
            elevation_deg=elevation_deg,
            distance_factor=distance_factor,
            width=width,
            height=height,
        )
        for i in range(n_frames)
    ]


@dataclass
class RotationResult:
    """Per-frame and aggregate numbers for one orbit.

    ``frame_runtimes`` are *simulated* seconds when the orbit ran in a
    timing mode, and measured wall-clock seconds for exec-only orbits
    (where the functional pipeline itself is the hardware being timed —
    the parallel-executor benchmarks use exactly this).
    ``wall_seconds`` always holds the measured per-frame wall times.
    """

    frame_runtimes: list[float]
    images: list[np.ndarray] = field(default_factory=list)
    results: list[RenderResult] = field(default_factory=list)
    wall_seconds: list[float] = field(default_factory=list)

    @property
    def n_frames(self) -> int:
        return len(self.frame_runtimes)

    @property
    def total_seconds(self) -> float:
        return float(sum(self.frame_runtimes))

    @property
    def mean_fps(self) -> float:
        if self.total_seconds <= 0:
            raise ValueError("no timed frames")
        return self.n_frames / self.total_seconds

    @property
    def worst_frame(self) -> float:
        return max(self.frame_runtimes)

    @property
    def frame_time_spread(self) -> float:
        """max/min frame time — the view-dependence of the workload."""
        lo = min(self.frame_runtimes)
        return self.worst_frame / lo if lo > 0 else float("inf")

    @property
    def wall_fps(self) -> float:
        """Measured end-to-end frames/second of the functional pipeline."""
        total = float(sum(self.wall_seconds))
        if total <= 0:
            raise ValueError("no wall-clock timings recorded")
        return len(self.wall_seconds) / total


def render_rotation(
    renderer: MapReduceVolumeRenderer,
    n_frames: int = 8,
    mode: str = "sim",
    elevation_deg: float = 20.0,
    width: int = 512,
    height: int = 512,
    bricks_per_gpu: int = 2,
    keep_images: bool = False,
) -> RotationResult:
    """Render an orbit and collect the paper's interactivity metrics.

    In ``"sim"``/``"both"`` modes frame runtimes come from the simulated
    cluster; in ``"exec"`` mode the functional pipeline runs per frame
    (use small volumes/images) and frame times are the measured wall
    clock — which is how the multiprocess executor's real speedup is
    benchmarked.

    When the renderer's executor supports frame pipelining (a pool
    executor with ``pipeline_depth > 1``) and the mode is functional,
    the orbit is rendered **double-buffered**: frame *k+1* is submitted
    before frame *k* is collected, so the workers map+reduce the next
    frame while the parent stitches the current one.  Frame completion
    order (and every image) is unchanged; per-frame wall times then
    measure the interval between successive frame *completions*, whose
    sum is the orbit's true end-to-end wall time.
    """
    cams = orbit_path(
        renderer.volume_shape, n_frames, elevation_deg, width, height
    )
    depth = renderer.frame_pipeline_depth if mode in ("exec", "both") else 1
    if depth > 1:
        return _render_rotation_pipelined(
            renderer, cams, mode, bricks_per_gpu, keep_images, depth
        )
    runtimes: list[float] = []
    wall: list[float] = []
    images: list[np.ndarray] = []
    results: list[RenderResult] = []
    for cam in cams:
        t0 = time.perf_counter()
        res = renderer.render(cam, mode=mode, bricks_per_gpu=bricks_per_gpu)
        wall.append(time.perf_counter() - t0)
        results.append(res)
        if res.outcome is not None:
            runtimes.append(res.outcome.total_runtime)
        if keep_images and res.image is not None:
            images.append(res.image)
    # Exec-only orbits have no simulated clock: the measured wall time of
    # the functional pipeline (serial or multiprocess) is the frame time.
    return RotationResult(
        frame_runtimes=runtimes if runtimes else list(wall),
        images=images,
        results=results,
        wall_seconds=wall,
    )


def _render_rotation_pipelined(
    renderer: MapReduceVolumeRenderer,
    cams: Sequence[Camera],
    mode: str,
    bricks_per_gpu: int,
    keep_images: bool,
    depth: int,
) -> RotationResult:
    """Keep up to ``depth`` frames in flight through the pool pipeline."""
    runtimes: list[float] = []
    wall: list[float] = []
    images: list[np.ndarray] = []
    results: list[RenderResult] = []
    inflight: deque = deque()
    t_mark = time.perf_counter()

    def _complete_oldest() -> None:
        nonlocal t_mark
        res = renderer.collect_frame(inflight.popleft(), mode=mode)
        now = time.perf_counter()
        wall.append(now - t_mark)
        t_mark = now
        results.append(res)
        if res.outcome is not None:
            runtimes.append(res.outcome.total_runtime)
        if keep_images and res.image is not None:
            images.append(res.image)

    for cam in cams:
        if len(inflight) >= depth:
            _complete_oldest()
        inflight.append(
            renderer.submit_frame(cam, bricks_per_gpu=bricks_per_gpu)
        )
    while inflight:
        _complete_oldest()
    return RotationResult(
        frame_runtimes=runtimes if runtimes else list(wall),
        images=images,
        results=results,
        wall_seconds=wall,
    )
