"""Map-phase implementations.

:class:`RayCastMapper` is the paper's mapper: one ray-cast kernel per
chunk (brick).  :class:`MaxIntensityMapper` demonstrates the library's
pluggability claim (§6.1): swapping the volume-sampling technique
touches *only* the map phase — partitioning, sort, and the reduce shape
stay identical (MIP reduces with ``max`` instead of ``over``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.api import Mapper, MapOutput
from ..core.chunk import Chunk
from ..render.camera import Camera
from ..render.fragments import FRAGMENT_DTYPE, PLACEHOLDER_KEY, make_fragments
from ..render.geometry import box_contains, ray_box_intersect
from ..render.raycast import RenderConfig, raycast_brick, trilinear_sample
from ..render.transfer import TransferFunction1D

__all__ = ["RayCastMapper", "MaxIntensityMapper", "MIP_DTYPE"]


class RayCastMapper(Mapper):
    """The paper's map task: partial ray casting against one brick.

    The chunk's ``meta`` must be a :class:`~repro.volume.bricking.Brick`;
    its payload is the ghost-padded voxel block.
    """

    def __init__(
        self,
        camera: Camera,
        tf: TransferFunction1D,
        volume_shape: tuple[int, int, int],
        config: RenderConfig = RenderConfig(),
        accel_token: Optional[str] = None,
    ):
        self.camera = camera
        self.tf = tf
        self.volume_shape = tuple(volume_shape)
        self.config = config
        # Stable per-volume token (see repro.render.accel.volume_token);
        # enables empty-space-table reuse across frames when set.
        self.accel_token = accel_token
        self._initialized = False

    def initialize(self, device=None) -> None:
        """Upload-once static state (view matrix, transfer-function texture)."""
        self._initialized = True

    def static_device_bytes(self) -> int:
        # View parameters + the 1D transfer-function texture.
        return 256 + self.tf.nbytes

    def accel_key_for(self, chunk: Chunk) -> Optional[tuple]:
        """Base acceleration-cache key for one chunk (None when untokened).

        The corner-max table is cached under this key directly; the
        macro-cell grid under
        :func:`repro.render.accel.grid_key` derived from it.  The pool
        executor uses the same derivation to publish grids into its
        shared-memory arena so workers can seed their caches without
        rebuilding anything.
        """
        if self.accel_token is None or self.tf is None:
            return None
        brick = chunk.meta
        if brick is None:
            return None
        # The padded region pins the payload: the same volume can be
        # bricked into different grids (brick id 0 of a 2-brick grid
        # is not brick id 0 of a 4-brick grid).
        return (
            self.accel_token,
            self.tf.version,
            chunk.id,
            tuple(brick.data_lo),
            tuple(brick.data_hi),
        )

    def map(self, chunk: Chunk) -> MapOutput:
        brick = chunk.meta
        if brick is None:
            raise ValueError(f"chunk {chunk.id} lacks Brick metadata")
        accel_key = self.accel_key_for(chunk)
        fragments, stats = raycast_brick(
            data=chunk.payload(),
            data_lo=brick.data_lo,
            core_lo=brick.lo,
            core_hi=brick.hi,
            volume_shape=self.volume_shape,
            camera=self.camera,
            tf=self.tf,
            config=self.config,
            accel_key=accel_key,
        )
        pairs = fragments.copy()
        # The renderer's fragment dtype doubles as the library KV dtype;
        # 'pixel' is the int32 key field.
        return MapOutput(
            pairs,
            work={
                "n_rays": stats.n_rays,
                "n_samples": stats.n_samples,
                "n_active_rays": stats.n_active_rays,
                "n_emitted": stats.n_emitted if self.config.emit_placeholders else stats.n_rays,
            },
        )


#: MIP pairs: key + (value, depth placeholder) — homogeneous 12-byte pairs.
MIP_DTYPE = np.dtype([("pixel", np.int32), ("value", np.float32)])


class MaxIntensityMapper(Mapper):
    """Maximum-intensity projection: per-brick max along each ray.

    MIP's fold (``max``) is associative and commutative, so unlike the
    over operator it needs no depth sorting at all — a nice stress of the
    library's generality.  That also makes the blocked march trivial:
    the per-block fold is a plain ``np.maximum`` over the sample axis,
    with no transmittance scan and no termination bookkeeping.
    """

    def __init__(
        self,
        camera: Camera,
        volume_shape: tuple[int, int, int],
        dt: float = 0.5,
        block_size: int = 64,
    ):
        if dt <= 0:
            raise ValueError("dt must be positive")
        if block_size < 1:
            raise ValueError("block_size must be at least 1")
        self.camera = camera
        self.volume_shape = tuple(volume_shape)
        self.dt = dt
        self.block_size = block_size

    def map(self, chunk: Chunk) -> MapOutput:
        brick = chunk.meta
        data = chunk.payload()
        core_lo = np.asarray(brick.lo, np.float64)
        core_hi = np.asarray(brick.hi, np.float64)
        corners = np.array(
            [
                [
                    (core_lo[0], core_hi[0])[(c >> 0) & 1],
                    (core_lo[1], core_hi[1])[(c >> 1) & 1],
                    (core_lo[2], core_hi[2])[(c >> 2) & 1],
                ]
                for c in range(8)
            ]
        )
        rect = self.camera.brick_rect(corners)
        if rect.empty:
            return MapOutput(np.empty(0, MIP_DTYPE), work={"n_rays": 0, "n_samples": 0})
        origins, dirs, keys = self.camera.rays_for_rect(rect)
        tn, tf_, hit = ray_box_intersect(origins, dirs, core_lo, core_hi)
        vol_hi = np.asarray(self.volume_shape, np.float64)
        tv, _, hitv = ray_box_intersect(origins, dirs, np.zeros(3), vol_hi)
        active = hit & hitv
        best = np.full(len(keys), -np.inf, dtype=np.float32)
        n_samples = 0
        if np.any(active):
            idx = np.nonzero(active)[0]
            o_c, d_c, tv_c = origins[idx], dirs[idx], tv[idx]
            k0 = np.maximum(np.floor((tn[idx] - tv_c) / self.dt - 1), 0).astype(np.int64)
            k1 = np.ceil((tf_[idx] - tv_c) / self.dt + 1).astype(np.int64)
            data_lo = np.asarray(brick.data_lo, np.float64)
            K = self.block_size
            for kb in range(int(k0.min()), int(k1.max()) + 1, K):
                ks = np.arange(kb, kb + K, dtype=np.float64)
                live = (k0 <= kb + K - 1) & (k1 >= kb)
                if not live.any():
                    continue
                li = np.nonzero(live)[0]
                t = tv_c[li, None] + (ks[None, :] + 0.5) * self.dt
                p = o_c[li, None, :] + t[..., None] * d_c[li, None, :]
                in_range = (k0[li, None] <= ks[None, :]) & (ks[None, :] <= k1[li, None])
                owned = in_range & box_contains(p, core_lo, core_hi)
                flat = np.nonzero(owned.ravel())[0]
                if flat.size == 0:
                    continue
                local = p.reshape(-1, 3)[flat] - data_lo
                v = trilinear_sample(data, local)
                n_samples += flat.size
                grid = np.full(len(li) * K, -np.inf, dtype=np.float32)
                grid[flat] = v
                block_best = grid.reshape(len(li), K).max(axis=1)
                bi = idx[li]  # unique per block — no scatter races
                best[bi] = np.maximum(best[bi], block_best)
        got = np.isfinite(best) & (best > 0)
        pairs = np.empty(int(got.sum()), MIP_DTYPE)
        pairs["pixel"] = keys[got]
        pairs["value"] = best[got]
        return MapOutput(
            pairs,
            work={"n_rays": len(keys), "n_samples": n_samples},
        )
