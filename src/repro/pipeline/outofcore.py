"""In-core vs out-of-core planning and brick residency.

Paper §6: "If enough GPUs are available to fit the bricked volume
entirely in core, the speed benefits are obvious.  But if not, the speed
of the rendering is still quite good."

The planner decides which regime a (grid, cluster) pair is in.  When the
assigned bricks fit each GPU's VRAM (beside the mapper's static data),
an *interactive frame sequence* uploads every brick once and re-renders
from residency — the "obvious speed benefit".  Otherwise every frame
streams its bricks through the GPUs again (out-of-core), optionally from
disk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.scheduler import MapWork
from ..sim.node import ClusterSpec
from ..volume.bricking import BrickGrid

__all__ = ["ResidencyPlan", "plan_residency", "strip_uploads"]


@dataclass(frozen=True)
class ResidencyPlan:
    """Whether each GPU can keep its assigned bricks resident."""

    in_core: bool
    per_gpu_bytes: tuple[int, ...]  # assigned brick payload per GPU
    vram_bytes: tuple[int, ...]  # capacity per GPU
    static_bytes: int  # mapper constants per GPU

    @property
    def worst_fill(self) -> float:
        """Highest VRAM fill fraction across GPUs."""
        return max(
            (b + self.static_bytes) / v
            for b, v in zip(self.per_gpu_bytes, self.vram_bytes)
        )

    def headroom_bytes(self, gpu: int) -> int:
        return self.vram_bytes[gpu] - self.per_gpu_bytes[gpu] - self.static_bytes


def plan_residency(
    grid: BrickGrid,
    cluster: ClusterSpec,
    static_bytes: int = 0,
    assignment=None,
) -> ResidencyPlan:
    """Check whether round-robin brick assignment fits every GPU's VRAM.

    ``assignment`` optionally maps brick id → GPU (defaults to
    ``id % n_gpus``, the streaming scheduler's order).
    """
    n_gpus = cluster.gpu_count
    specs = cluster.gpu_specs()
    per_gpu = [0] * n_gpus
    for b in grid:
        g = assignment(b.id) if assignment is not None else b.id % n_gpus
        if not 0 <= g < n_gpus:
            raise ValueError(f"assignment sent brick {b.id} to missing GPU {g}")
        per_gpu[g] += b.nbytes
    in_core = all(
        per_gpu[g] + static_bytes <= specs[g].vram_bytes for g in range(n_gpus)
    )
    return ResidencyPlan(
        in_core=in_core,
        per_gpu_bytes=tuple(per_gpu),
        vram_bytes=tuple(s.vram_bytes for s in specs),
        static_bytes=static_bytes,
    )


def strip_uploads(works: list[MapWork]) -> list[MapWork]:
    """Works for a frame whose bricks are already resident on the GPUs.

    Upload bytes and disk reads go to zero; kernel work and fragment
    traffic are unchanged (they depend on the view, not on residency).
    """
    return [
        MapWork(
            chunk_id=w.chunk_id,
            gpu=w.gpu,
            upload_bytes=0,
            n_rays=w.n_rays,
            n_samples=w.n_samples,
            pairs_emitted=w.pairs_emitted,
            pairs_to_reducer=w.pairs_to_reducer.copy(),
            read_from_disk=False,
        )
        for w in works
    ]
