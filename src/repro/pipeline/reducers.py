"""Reduce-phase implementations.

:class:`CompositeReducer` is the paper's reducer: "all ray fragments for
a given pixel are ascending-depth sorted, composited, and blended
against the background color".  The required per-pixel depth sort is
exactly why the paper found CPU reduction faster than GPU — the counting
sort groups by *key* only, so depth ordering is the reducer's job.

:class:`MaxReducer` pairs with the MIP mapper for the pluggability demo.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.api import Reducer
from ..core.sort import run_length_groups
from ..render.compositing import fold_depth_runs

__all__ = ["CompositeReducer", "MaxReducer"]


class CompositeReducer(Reducer):
    """Front-to-back depth compositing of pixel fragment groups.

    ``reduce_all`` expects pairs sorted (stably) by the ``pixel`` key and
    returns ``(unique pixel keys, premultiplied RGBA rows)``.
    """

    def __init__(self, background: Sequence[float] | None = None):
        # Background blending is deferred to stitching by default, per the
        # paper's phase separation; pass a colour to blend here instead.
        self.background = None if background is None else np.asarray(background, np.float32)

    def reduce_all(self, pairs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if len(pairs) == 0:
            return np.empty(0, np.int64), np.zeros((0, 4), np.float32)
        # Ascending-depth order within each (already grouped) pixel run.
        order = np.lexsort((pairs["depth"], pairs["pixel"]))
        f = pairs[order]
        keys, starts, counts = run_length_groups(f["pixel"])
        rgba = np.stack([f["r"], f["g"], f["b"], f["a"]], axis=1)
        # One segmented transmittance scan + one segmented sum replaces
        # the per-depth-rank blend loop.
        out = fold_depth_runs(rgba, starts)
        if self.background is not None:
            alpha = out[:, 3:4]
            out = out.copy()
            out[:, :3] += (1.0 - alpha) * self.background[None, :]
            out[:, 3] = 1.0
        return keys, out


class MaxReducer(Reducer):
    """Per-key maximum — the MIP fold."""

    def reduce_all(self, pairs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if len(pairs) == 0:
            return np.empty(0, np.int64), np.zeros(0, np.float32)
        keys, starts, counts = run_length_groups(pairs["pixel"])
        out = np.maximum.reduceat(pairs["value"], starts)
        return keys, out.astype(np.float32)
