"""The end-to-end MapReduce volume renderer (the paper's application).

:class:`MapReduceVolumeRenderer` wires a volume, camera, and transfer
function into the library:

* **exec mode** — functional execution through
  :class:`~repro.core.executors.InProcessExecutor`: real ray casting,
  real partition/sort/reduce, a real image out.  The per-chunk work
  counters it measures can be *replayed* on the simulated cluster for
  timing (mode ``"both"``).
* **sim mode** — timing-only execution: the analytic workload model
  predicts every brick's kernel work and traffic, and the discrete-event
  scheduler produces the paper's stage breakdown.  This is how the
  1024³-scale figures are regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.chunk import Chunk
from ..core.executors import InProcessExecutor, SimClusterExecutor
from ..core.job import JobConfig, MapReduceSpec
from ..core.keyvalue import KVSpec
from ..core.partition import RoundRobinPartitioner
from ..core.api import Partitioner
from ..core.scheduler import MapWork, SimOutcome
from ..core.stats import JobStats
from ..observability.tracer import span
from ..render.accel import volume_token
from ..render.camera import Camera
from ..render.fragments import FRAGMENT_DTYPE, FRAGMENT_NBYTES
from ..render.raycast import RenderConfig
from ..render.stitch import stitch_pixels
from ..render.transfer import TransferFunction1D, default_tf
from ..sim.node import ClusterSpec
from ..sim.presets import accelerator_cluster
from ..volume.bricking import BrickGrid, bricks_for_gpu_count
from ..volume.occupancy import grid_occupancy
from ..volume.volume import Volume
from .mappers import RayCastMapper
from .reducers import CompositeReducer
from .workload import build_workload

# plan_residency / strip_uploads are imported lazily inside
# render_sequence to avoid an import cycle with pipeline.outofcore.

__all__ = ["FrameHandle", "RenderResult", "MapReduceVolumeRenderer"]


@dataclass
class RenderResult:
    """Output of one rendered frame."""

    image: Optional[np.ndarray]  # (h, w, 4) premultiplied RGBA (exec modes)
    outcome: Optional[SimOutcome]  # stage timings (sim / both modes)
    stats: Optional[JobStats]  # work counters (exec modes)
    n_bricks: int
    n_gpus: int

    @property
    def runtime(self) -> float:
        if self.outcome is None:
            raise ValueError("no timing available (exec-only render)")
        return self.outcome.total_runtime


@dataclass
class FrameHandle:
    """An in-flight frame started by
    :meth:`MapReduceVolumeRenderer.submit_frame`; redeem it with
    :meth:`MapReduceVolumeRenderer.collect_frame`."""

    camera: Camera
    grid: "BrickGrid"
    pending: object  # executor PendingFrame, or a finished result
    asynchronous: bool  # whether `pending` still needs executor.collect()


class MapReduceVolumeRenderer:
    """Facade assembling the full pipeline.

    Parameters
    ----------
    volume:
        In-core volume (exec modes) — optional when only sim mode with a
        procedural ``field`` is used.
    cluster:
        A :class:`~repro.sim.node.ClusterSpec` or a GPU count (builds the
        paper's AC preset).
    tf, render_config, job_config:
        Transfer function and knobs; defaults match the paper.
    field:
        Procedural dataset field for out-of-core / sim workloads.
    volume_shape:
        Required when ``volume`` is None.
    executor, workers:
        Functional execution backend: ``"inprocess"`` (serial, default),
        ``"pool"`` (the :mod:`repro.parallel` shared-memory multiprocess
        executor, ``workers`` processes — default one per simulated GPU
        capped to the machine's cores), or any object exposing
        ``execute(spec, chunks, chunk_to_gpu)``.  Pool renderers should
        be closed (or used as context managers) to release worker
        processes and shared memory.
    reduce_mode:
        Where the pool executor runs Sort+Reduce: ``"parent"`` (default)
        or ``"worker"`` (each worker reduces its owned partitions and
        ships back composited pixel spans — the paper's symmetric
        layout).  Bitwise-identical output either way; ignored by the
        in-process executor, which is its own single device.
    shuffle_mode:
        Which shuffle plane moves fragment runs between pool processes:
        ``"parent"`` (runs route through the parent, the PR-2/3
        layout), ``"mesh"`` (direct worker↔worker shared-memory edge
        rings — the paper's GPUs exchanging fragments over the
        interconnect, parent demoted to a pure control plane), ``"tcp"``
        (the same record protocol streamed worker↔worker over
        AF_UNIX/TCP sockets — the multi-host regime; requires
        ``reduce_mode="worker"``), or ``"auto"`` (default: mesh exactly
        when workers reduce; never tcp).  Bitwise-identical output on
        every plane.
    host_spec:
        Socket-plane host placement (tcp only): an int (workers spread
        round-robin over that many "hosts") or a comma-separated/id
        sequence assigning each worker a host id.  Host 0 holds the
        shared-memory arena; workers placed off host 0 receive chunk
        payloads over the wire instead of attaching the arena.
    pin_workers:
        Opt-in NUMA/core pinning for pool workers: each worker is
        pinned to a distinct core before allocating its inbound mesh
        edges.  No-op with a warning when affinity is unavailable or
        cores < workers.
    pipeline_depth:
        Max frames in flight for the pool executor's async
        :meth:`submit_frame`/:meth:`collect_frame` pipeline (used by
        :func:`~repro.pipeline.driver.render_rotation` for exec-mode
        orbits).  1 (default) is fully synchronous; 2 double-buffers:
        workers map+reduce frame *k+1* while the parent stitches frame
        *k*.
    accel, macro_cell_size:
        Overrides for :attr:`RenderConfig.accel` /
        :attr:`RenderConfig.macro_cell_size` — the ray caster's
        empty-space machinery (``"grid"`` macro-cell span skipping, the
        default; ``"table"`` per-sample corner-max only; ``"off"``).
        All settings produce bitwise-identical images and counters; the
        knobs trade acceleration-structure build cost against marching
        cost.  Macro grids are cached per volume+tf+brick and, with the
        pool executor, published once into the shared-memory arena so
        workers never rebuild them across an orbit's frames.
    kernel:
        Override for :attr:`RenderConfig.kernel` — the march-kernel
        backend (``"auto"``/``"numpy"``/``"numba"``).  ``"auto"`` is
        resolved to a concrete backend at construction and pinned, so
        parent and pool workers provably run the same marcher (workers
        JIT-warm it at spawn and fail fast if they cannot provide it).
    supervise, max_frame_retries, fault_plan:
        Pool-executor fault tolerance (ignored by the in-process
        executor): ``supervise`` (default True) recovers infrastructure
        failures in place — respawn the workers, re-execute the
        in-flight frames bitwise-identically, degrade to fewer workers
        and finally to serial execution when ``max_frame_retries`` is
        exhausted.  ``fault_plan`` injects deterministic worker faults
        (see :mod:`repro.parallel.faults`) for testing/benchmarking.
    """

    def __init__(
        self,
        volume: Optional[Volume] = None,
        cluster: ClusterSpec | int = 1,
        tf: Optional[TransferFunction1D] = None,
        render_config: Optional[RenderConfig] = None,
        job_config: Optional[JobConfig] = None,
        field: Optional[Callable] = None,
        volume_shape: Optional[tuple[int, int, int]] = None,
        partitioner_factory: Optional[Callable[[int], Partitioner]] = None,
        executor: str | object = "inprocess",
        workers: Optional[int] = None,
        reduce_mode: str = "parent",
        pipeline_depth: int = 1,
        shuffle_mode: str = "auto",
        host_spec=None,
        pin_workers: bool = False,
        accel: Optional[str] = None,
        macro_cell_size: Optional[int] = None,
        kernel: Optional[str] = None,
        supervise: Optional[bool] = None,
        max_frame_retries: Optional[int] = None,
        fault_plan: Optional[str] = None,
    ):
        if volume is None and volume_shape is None:
            raise ValueError("need a volume or a volume_shape")
        self.volume = volume
        self.volume_shape = tuple(volume.shape if volume is not None else volume_shape)
        self.field = field
        self.cluster_spec = (
            cluster if isinstance(cluster, ClusterSpec) else accelerator_cluster(cluster)
        )
        self.tf = tf if tf is not None else default_tf()
        self.render_config = render_config if render_config is not None else RenderConfig()
        if accel is not None or macro_cell_size is not None or kernel is not None:
            # Convenience overrides for the empty-space machinery and
            # the march-kernel backend, so callers need not rebuild a
            # whole RenderConfig to flip them.
            overrides = {}
            if accel is not None:
                overrides["accel"] = accel
            if macro_cell_size is not None:
                overrides["macro_cell_size"] = int(macro_cell_size)
            if kernel is not None:
                overrides["kernel"] = kernel
            self.render_config = replace(self.render_config, **overrides)
        # Resolve "auto" to a concrete backend exactly once, here in the
        # parent: the pinned name rides the pickled mapper config into
        # every pool worker, where resolution is strict — a worker that
        # cannot provide the parent's backend fails fast at warmup
        # instead of silently rendering with a different marcher.
        from ..render.kernels import resolve_kernel

        self.render_config = replace(
            self.render_config,
            kernel=resolve_kernel(self.render_config.kernel).name,
        )
        self.job_config = job_config if job_config is not None else JobConfig()
        self.kv = KVSpec(FRAGMENT_DTYPE, key_field="pixel")
        self._partitioner_factory = partitioner_factory or RoundRobinPartitioner
        if isinstance(executor, str) and executor not in ("inprocess", "pool"):
            raise ValueError(f"unknown executor {executor!r}")
        if reduce_mode not in ("parent", "worker"):
            raise ValueError(f"unknown reduce_mode {reduce_mode!r}")
        if shuffle_mode not in ("auto", "parent", "mesh", "tcp"):
            raise ValueError(f"unknown shuffle_mode {shuffle_mode!r}")
        if pipeline_depth < 1:
            raise ValueError("pipeline depth must be at least 1")
        self.executor = executor
        self.workers = workers
        self.reduce_mode = reduce_mode
        self.shuffle_mode = shuffle_mode
        self.host_spec = host_spec
        self.pin_workers = bool(pin_workers)
        self.pipeline_depth = int(pipeline_depth)
        self.supervise = supervise
        self.max_frame_retries = max_frame_retries
        self.fault_plan = fault_plan
        self._exec_instance = None

    @property
    def n_gpus(self) -> int:
        return self.cluster_spec.gpu_count

    # -- executor lifecycle ------------------------------------------------
    def _executor(self):
        """The functional executor (created lazily, reused across frames).

        ``executor="pool"`` builds a
        :class:`~repro.parallel.SharedMemoryPoolExecutor` with one worker
        per simulated GPU by default (capped to the machine's cores), so
        the ``chunk_to_gpu`` placement the library already records maps
        straight onto real processes.  Any object with a compatible
        ``execute`` method is also accepted.
        """
        if self._exec_instance is None:
            if not isinstance(self.executor, str):
                self._exec_instance = self.executor
            elif self.executor == "pool":
                from ..parallel import SharedMemoryPoolExecutor, default_pool_workers

                workers = self.workers
                if workers is None:
                    workers = default_pool_workers(self.n_gpus)
                self._exec_instance = SharedMemoryPoolExecutor(
                    workers=workers,
                    config=self.job_config,
                    reduce_mode=self.reduce_mode,
                    pipeline_depth=self.pipeline_depth,
                    shuffle_mode=self.shuffle_mode,
                    host_spec=self.host_spec,
                    pin_workers=self.pin_workers,
                    supervise=self.supervise,
                    max_frame_retries=self.max_frame_retries,
                    fault_plan=self.fault_plan,
                    kernel=self.render_config.kernel,
                )
            else:
                self._exec_instance = InProcessExecutor(self.job_config)
        return self._exec_instance

    @property
    def executor_workers(self) -> Optional[int]:
        """Worker count of the active executor (None when serial or not
        yet instantiated) — what a pool render actually ran with."""
        return getattr(self._exec_instance, "workers", None)

    @property
    def executor_shuffle_mode(self) -> Optional[str]:
        """Effective shuffle plane of the active executor (``"parent"``,
        ``"mesh"``, or ``"tcp"``; None when serial or not yet
        instantiated) — the plane that actually carries run bytes, which
        is what ``JobStats.ring["shuffle_mode"]`` reports too (a mesh
        request under parent-side reduce degenerates to ``"parent"``)."""
        return getattr(self._exec_instance, "effective_shuffle_mode", None)

    @property
    def executor_recovery_summary(self) -> list[str]:
        """Human-readable recovery ledger of the active pool executor
        (empty for failure-free runs, serial executors, or before the
        pool is instantiated) — what the CLI prints after a render."""
        sup = getattr(self._exec_instance, "_supervisor", None)
        return sup.summary_lines() if sup is not None else []

    def close(self) -> None:
        """Shut down the executor (worker processes, shared memory)."""
        inst = self._exec_instance
        self._exec_instance = None
        if inst is not None and hasattr(inst, "close"):
            inst.close()

    def __enter__(self) -> "MapReduceVolumeRenderer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals ---------------------------------------------------------
    def _grid(self, bricks_per_gpu: int) -> BrickGrid:
        return bricks_for_gpu_count(self.volume_shape, self.n_gpus, bricks_per_gpu)

    def _chunks(self, grid: BrickGrid, out_of_core: bool) -> list[Chunk]:
        chunks = []
        for b in grid:
            if out_of_core:
                if self.field is None and self.volume is None:
                    raise ValueError("out-of-core render needs a field or volume")
                if self.field is not None:
                    loader = (lambda bb=b: grid.extract_from_field(self.field, bb))
                else:
                    loader = (lambda bb=b: grid.extract(self.volume, bb))
                chunks.append(
                    Chunk(id=b.id, nbytes=b.nbytes, loader=loader, on_disk=True, meta=b)
                )
            else:
                if self.volume is None:
                    raise ValueError("in-core render needs an in-core volume")
                chunks.append(
                    Chunk(
                        id=b.id,
                        nbytes=b.nbytes,
                        data=grid.extract(self.volume, b),
                        meta=b,
                    )
                )
        return chunks

    def _spec(self, camera: Camera) -> MapReduceSpec:
        # The token keys the per-volume acceleration cache (and the pool
        # executor's publish-once arena) across an orbit's frames.
        token = volume_token(self.volume if self.volume is not None else self.field)
        return MapReduceSpec(
            mapper=RayCastMapper(
                camera,
                self.tf,
                self.volume_shape,
                self.render_config,
                accel_token=token,
            ),
            reducer=CompositeReducer(),
            partitioner=self._partitioner_factory(self.n_gpus),
            kv=self.kv,
            max_key=camera.pixel_count - 1,
        )

    def _occupancy(self, grid: BrickGrid) -> np.ndarray:
        threshold = self.tf.opacity_threshold_value()
        if self.volume is not None:
            return grid_occupancy(grid, threshold, volume=self.volume)
        return grid_occupancy(grid, threshold, field=self.field)

    # -- public API -----------------------------------------------------------
    def render(
        self,
        camera: Camera,
        mode: str = "exec",
        bricks_per_gpu: int = 2,
        out_of_core: bool = False,
        grid: Optional[BrickGrid] = None,
    ) -> RenderResult:
        """Render one frame.

        ``mode``: ``"exec"`` (functional image, no clock), ``"both"``
        (functional image + replayed timing), or ``"sim"`` (timing from
        the analytic workload, no image).
        """
        if mode not in ("exec", "both", "sim"):
            raise ValueError(f"unknown mode {mode!r}")
        grid = grid or self._grid(bricks_per_gpu)
        self._check_grid(grid)

        if mode == "sim":
            works = build_workload(
                grid,
                camera,
                self.render_config.dt,
                self._occupancy(grid),
                self._partitioner_factory(self.n_gpus),
                self.n_gpus,
                emit_placeholders=True,
                on_disk=out_of_core,
                ert=self.render_config.ert_alpha < 1.0,
                fetches_per_sample=self.render_config.fetches_per_sample,
            )
            outcome, _ = SimClusterExecutor(self.cluster_spec, self.job_config).execute(
                works, pair_nbytes=FRAGMENT_NBYTES
            )
            return RenderResult(
                image=None,
                outcome=outcome,
                stats=None,
                n_bricks=len(grid),
                n_gpus=self.n_gpus,
            )

        # Functional execution: the synchronous render is exactly one
        # submit/collect round trip, so chunk construction and placement
        # live only in submit_frame.
        handle = self.submit_frame(
            camera, bricks_per_gpu=bricks_per_gpu,
            out_of_core=out_of_core, grid=grid,
        )
        return self.collect_frame(handle, mode=mode)

    def submit_frame(
        self,
        camera: Camera,
        bricks_per_gpu: int = 2,
        out_of_core: bool = False,
        grid: Optional[BrickGrid] = None,
    ) -> FrameHandle:
        """Start a functional frame without waiting for it.

        With a pool executor and ``pipeline_depth > 1`` this is the
        async half of the double-buffered orbit pipeline: map (and
        worker-side reduce) work for this frame is enqueued — and its
        arena, including any out-of-core chunk loads, published — while
        previously submitted frames are still being collected and
        stitched.  With a synchronous executor the frame simply runs to
        completion here.  Redeem the handle with :meth:`collect_frame`;
        frames complete in submission order.
        """
        grid = grid or self._grid(bricks_per_gpu)
        self._check_grid(grid)
        spec = self._spec(camera)
        chunks = self._chunks(grid, out_of_core)
        chunk_to_gpu = [c.id % self.n_gpus for c in chunks]
        ex = self._executor()
        if hasattr(ex, "submit") and hasattr(ex, "collect"):
            return FrameHandle(camera, grid, ex.submit(spec, chunks, chunk_to_gpu), True)
        return FrameHandle(camera, grid, ex.execute(spec, chunks, chunk_to_gpu), False)

    def collect_frame(self, handle: FrameHandle, mode: str = "exec") -> RenderResult:
        """Finish a frame started by :meth:`submit_frame` and stitch it.

        ``mode`` is ``"exec"`` or ``"both"`` (sim-mode frames have no
        functional execution to pipeline).
        """
        if mode not in ("exec", "both"):
            raise ValueError(f"unknown mode {mode!r} for collect_frame")
        if handle.asynchronous:
            result = self._executor().collect(handle.pending)
        else:
            result = handle.pending
        return self._finish_exec(handle.camera, mode, handle.grid, result)

    @property
    def frame_pipeline_depth(self) -> int:
        """Frames the active executor can keep in flight (1 = serial)."""
        ex = self._executor()
        if hasattr(ex, "submit") and hasattr(ex, "collect"):
            return int(getattr(ex, "pipeline_depth", 1))
        return 1

    def _check_grid(self, grid: BrickGrid) -> None:
        max_vram = max(g.vram_bytes for g in self.cluster_spec.gpu_specs())
        oversized = grid.max_brick_nbytes()
        if oversized > max_vram:
            raise MemoryError(
                f"brick of {oversized} B exceeds GPU VRAM {max_vram} B; "
                "use more bricks per GPU"
            )

    def _finish_exec(self, camera, mode, grid, result) -> RenderResult:
        parts = [
            (keys, values) for keys, values in result.outputs if len(keys)
        ]
        with span("stitch", cat="stitch", parts=len(parts)):
            image = stitch_pixels(parts, camera.width, camera.height)

        outcome = None
        if mode == "both":  # replay measured work on the simulated cluster
            outcome, _ = SimClusterExecutor(self.cluster_spec, self.job_config).execute(
                result.works, pair_nbytes=FRAGMENT_NBYTES
            )
            result.stats.breakdown = outcome.breakdown
            result.stats.bytes_uploaded = outcome.bytes_uploaded
            result.stats.bytes_downloaded = outcome.bytes_downloaded
            result.stats.bytes_internode = outcome.bytes_internode
            result.stats.bytes_intranode = outcome.bytes_intranode
            result.stats.n_messages = outcome.n_messages
        return RenderResult(
            image=image,
            outcome=outcome,
            stats=result.stats,
            n_bricks=len(grid),
            n_gpus=self.n_gpus,
        )

    def render_sequence(
        self,
        cameras: Sequence[Camera],
        bricks_per_gpu: int = 2,
        out_of_core: bool = False,
        resident: bool = True,
    ) -> list[RenderResult]:
        """Simulate an interactive frame sequence (sim mode only).

        With ``resident=True`` and a grid that fits each GPU's VRAM
        (checked by :func:`~repro.pipeline.outofcore.plan_residency`),
        only the first frame pays brick uploads; later frames re-render
        from residency — the paper's "obvious speed benefits" of the
        in-core regime.  When the volume does not fit, every frame
        streams its bricks (out-of-core regime).
        """
        from .outofcore import plan_residency, strip_uploads

        if not cameras:
            raise ValueError("need at least one camera")
        grid = self._grid(bricks_per_gpu)
        partitioner = self._partitioner_factory(self.n_gpus)
        occupancy = self._occupancy(grid)
        static = RayCastMapper(
            cameras[0], self.tf, self.volume_shape, self.render_config
        ).static_device_bytes()
        plan = plan_residency(grid, self.cluster_spec, static)
        results: list[RenderResult] = []
        for i, cam in enumerate(cameras):
            works = build_workload(
                grid,
                cam,
                self.render_config.dt,
                occupancy,
                partitioner,
                self.n_gpus,
                emit_placeholders=True,
                on_disk=out_of_core,
                ert=self.render_config.ert_alpha < 1.0,
                fetches_per_sample=self.render_config.fetches_per_sample,
            )
            if resident and plan.in_core and i > 0:
                works = strip_uploads(works)
            outcome, _ = SimClusterExecutor(
                self.cluster_spec, self.job_config
            ).execute(works, pair_nbytes=FRAGMENT_NBYTES)
            results.append(
                RenderResult(
                    image=None,
                    outcome=outcome,
                    stats=None,
                    n_bricks=len(grid),
                    n_gpus=self.n_gpus,
                )
            )
        return results
