"""Sort-last ("swap") rendering mode — the §6.1 modularity claim.

"Swap compositing can be implemented by changing the partitioning on
each node.  Every node would consume all generated ray fragments to
create its partial image.  The reduction phase would then be changed to
perform swap compositing."

This module does exactly that with the same building blocks:

* bricks are assigned to GPUs as **view-ordered slabs** of the brick
  grid (object-space decomposition), so each GPU's content occupies a
  contiguous depth range per pixel;
* the *partition* stage becomes :class:`LocalPartitioner` — every
  fragment stays with the GPU that produced it;
* each GPU's reduce composites its own fragments into a full-viewport
  partial image;
* the partial images merge front-to-back with
  :func:`~repro.baselines.binary_swap.swap_partial_images`.

Correctness requires the slab visibility order to be per-pixel constant,
which holds when the camera eye lies outside the volume's extent along
the slab axis — checked at render time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.binary_swap import swap_partial_images
from ..core.api import Partitioner
from ..render.camera import Camera
from ..render.compositing import composite_fragments
from ..render.fragments import concat_fragments
from ..render.raycast import RenderConfig, raycast_brick
from ..render.transfer import TransferFunction1D
from ..volume.bricking import BrickGrid
from ..volume.volume import Volume

__all__ = ["LocalPartitioner", "slab_assignment", "render_swap"]


class LocalPartitioner(Partitioner):
    """Keeps every fragment on its producing GPU (no shuffle).

    The "partition" is decided per map task, not per key, so the
    constructor pins a destination and the mapper driving it swaps the
    pin per chunk.
    """

    def __init__(self, n_reducers: int, owner: int = 0):
        super().__init__(n_reducers)
        if not 0 <= owner < n_reducers:
            raise ValueError(f"owner {owner} out of range")
        self.owner = owner

    def partition(self, keys: np.ndarray) -> np.ndarray:
        return np.full(len(np.asarray(keys)), self.owner, dtype=np.int32)


def slab_assignment(
    grid: BrickGrid, camera: Camera, n_gpus: int
) -> tuple[list[list[int]], int]:
    """Assign bricks to GPUs as contiguous view-ordered slabs.

    Returns ``(slabs, axis)`` where ``slabs[g]`` lists the brick ids for
    GPU ``g``, ordered front-to-back across GPUs along the dominant view
    ``axis``.  Raises when the eye is inside the volume's slab extent
    (no constant visibility order exists for a slab decomposition).
    """
    if n_gpus < 1:
        raise ValueError("need at least one GPU")
    _, _, fwd = camera.basis
    axis = int(np.argmax(np.abs(fwd)))
    eye = np.asarray(camera.eye, dtype=np.float64)
    extent = grid.volume_shape[axis]
    if 0.0 < eye[axis] < extent:
        raise ValueError(
            "camera eye lies inside the volume along the slab axis; "
            "slab visibility order is undefined"
        )
    n_slices = grid.counts[axis]
    # Front-to-back slice order along the axis.
    towards_positive = eye[axis] <= 0.0
    slice_order = range(n_slices) if towards_positive else range(n_slices - 1, -1, -1)
    # Group brick-grid slices into n_gpus contiguous runs.
    slices = list(slice_order)
    groups: list[list[int]] = [[] for _ in range(n_gpus)]
    for i, s in enumerate(slices):
        groups[min(i * n_gpus // len(slices), n_gpus - 1)].append(s)
    slabs: list[list[int]] = [[] for _ in range(n_gpus)]
    for g, slice_ids in enumerate(groups):
        for b in grid:
            if b.index[axis] in slice_ids:
                slabs[g].append(b.id)
    return slabs, axis


@dataclass
class SwapRenderResult:
    """Output of a sort-last render."""

    image: np.ndarray
    partial_images: list[np.ndarray]
    fragments_per_gpu: list[int]
    axis: int


def render_swap(
    volume: Volume,
    camera: Camera,
    tf: TransferFunction1D,
    n_gpus: int,
    config: RenderConfig = RenderConfig(),
    grid: BrickGrid | None = None,
) -> SwapRenderResult:
    """Functional sort-last render: local compositing + swap merge.

    Produces the same image as the sort-first (direct-send) pipeline —
    the associativity of premultiplied *over* guarantees it, because the
    slab assignment keeps each GPU's fragments in a disjoint per-pixel
    depth range.
    """
    grid = grid or BrickGrid(volume.shape, max(min(volume.shape) // 2, 4), ghost=1)
    slabs, axis = slab_assignment(grid, camera, n_gpus)
    partials: list[np.ndarray] = []
    frag_counts: list[int] = []
    for brick_ids in slabs:
        parts = []
        for bid in brick_ids:
            b = grid.brick(bid)
            frags, _ = raycast_brick(
                data=grid.extract(volume, b),
                data_lo=b.data_lo,
                core_lo=b.lo,
                core_hi=b.hi,
                volume_shape=volume.shape,
                camera=camera,
                tf=tf,
                config=config,
            )
            parts.append(frags)
        merged = concat_fragments(parts)
        frag_counts.append(len(merged))
        # composite_fragments handles the empty slab (all-transparent image).
        flat = composite_fragments(merged, camera.pixel_count)
        partials.append(flat.reshape(camera.height, camera.width, 4))
    image = swap_partial_images(partials)
    return SwapRenderResult(
        image=image,
        partial_images=partials,
        fragments_per_gpu=frag_counts,
        axis=axis,
    )
