"""Analytic workload model for figure-scale runs.

Python cannot functionally ray cast a 1024³ volume in benchmark time, so
the simulated benchmarks predict each brick's kernel work and fragment
traffic from geometry instead:

* **rays** — the block-padded screen footprint of the brick, computed
  exactly with the same camera math the functional kernel uses;
* **samples** — the brick's world volume divided by the volume of one
  sample cell at the brick's depth: a ray through depth ``z`` covers
  ``(z/f)²·dt`` world volume per step, so
  ``samples ≈ V_brick · (f/z)² / dt``, damped by an ERT/empty-space
  efficiency factor derived from occupancy;
* **kept fragments** — footprint pixels × the probability a ray hits at
  least one non-empty voxel on its chord,
  ``1 − (1−occupancy)^(chord/dt)``;
* **routing** — the partitioner applied to the *actual* footprint pixel
  keys (exact), scaled to the kept-fragment count.

The `exec`-mode benchmarks validate these predictions against functional
counts on small volumes (see ``tests/test_workload.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.api import Partitioner
from ..core.scheduler import MapWork
from ..render.camera import Camera
from ..volume.bricking import Brick, BrickGrid

__all__ = ["BrickWork", "model_brick_work", "build_workload"]


@dataclass
class BrickWork:
    """Predicted kernel work and traffic for one brick."""

    brick_id: int
    n_rays: int
    n_samples: int
    kept_fragments: int
    upload_bytes: int


def _brick_corners(brick: Brick) -> np.ndarray:
    lo, hi = brick.world_lo, brick.world_hi
    return np.array(
        [
            [
                (lo[0], hi[0])[(c >> 0) & 1],
                (lo[1], hi[1])[(c >> 1) & 1],
                (lo[2], hi[2])[(c >> 2) & 1],
            ]
            for c in range(8)
        ]
    )


#: Fraction of a projected box's corner-bounding-rectangle its actual
#: (hexagonal) silhouette covers, averaged over view angles.
_SILHOUETTE_FACTOR = 0.68


def model_brick_work(
    brick: Brick,
    camera: Camera,
    dt: float,
    occupancy: float,
    ert: bool = True,
) -> BrickWork:
    """Predict one brick's map-kernel work from geometry and occupancy.

    The sample count is exact geometry when early ray termination is off
    (the fixed-step kernel samples *every* owned lattice point — it does
    not skip empty space); with ERT on, opaque content terminates rays
    early, modelled as a linear damping in occupancy.  Kept fragments are
    the silhouette pixels times the fraction of the cross-section the
    occupied matter covers, ``occupancy^(2/3)`` for a compact region.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    if not 0.0 <= occupancy <= 1.0:
        raise ValueError("occupancy must be in [0, 1]")
    corners = _brick_corners(brick)
    rect = camera.brick_rect(corners, pad_to_block=True)
    tight = camera.brick_rect(corners, pad_to_block=False)
    if rect.empty:
        return BrickWork(brick.id, 0, 0, 0, brick.nbytes)
    center = (brick.world_lo + brick.world_hi) / 2.0
    _, _, fwd = camera.basis
    z = float(np.dot(center - np.asarray(camera.eye), fwd))
    z = max(z, 1e-6)
    f = camera.focal_pixels
    v_brick = float(np.prod(brick.world_hi - brick.world_lo))
    # A ray step at depth z sweeps (z/f)²·dt of world volume, so the
    # brick receives V·(f/z)²/dt samples.
    geo_samples = v_brick * (f / z) ** 2 / dt
    efficiency = (1.0 - 0.5 * occupancy) if ert else 1.0
    n_samples = int(geo_samples * efficiency)
    coverage = min(1.0, occupancy ** (2.0 / 3.0))
    kept = int(round(tight.area * _SILHOUETTE_FACTOR * coverage))
    return BrickWork(
        brick_id=brick.id,
        n_rays=rect.area,
        n_samples=n_samples,
        kept_fragments=min(kept, tight.area),
        upload_bytes=brick.nbytes,
    )


def _route_exact(
    kept: int, brick: Brick, camera: Camera, partitioner: Partitioner
) -> np.ndarray:
    """Split ``kept`` fragments over reducers using the real footprint keys."""
    routed = np.zeros(partitioner.n_reducers, dtype=np.int64)
    if kept == 0:
        return routed
    rect = camera.brick_rect(_brick_corners(brick), pad_to_block=False)
    if rect.empty:
        return routed
    px, py = rect.pixel_coords()
    keys = camera.pixel_index(px, py)
    dests = partitioner.partition(keys)
    hist = np.bincount(dests, minlength=partitioner.n_reducers).astype(np.float64)
    total = hist.sum()
    if total == 0:
        return routed
    routed = np.floor(hist * (kept / total)).astype(np.int64)
    # Distribute the rounding remainder to the largest shares.
    short = kept - int(routed.sum())
    if short > 0:
        order = np.argsort(-(hist - routed))
        routed[order[:short]] += 1
    return routed


def build_workload(
    grid: BrickGrid,
    camera: Camera,
    dt: float,
    occupancy: np.ndarray,
    partitioner: Partitioner,
    n_gpus: int,
    emit_placeholders: bool = True,
    on_disk: bool = False,
    ert: bool = True,
    fetches_per_sample: int = 1,
) -> list[MapWork]:
    """Model every brick and assign bricks to GPUs round-robin.

    ``occupancy`` is the per-brick array from
    :func:`repro.volume.occupancy.grid_occupancy`.  With
    ``emit_placeholders`` (the paper's kernel contract) the D2H transfer
    carries the padded ray count; otherwise only kept fragments.
    """
    if len(occupancy) != len(grid):
        raise ValueError("occupancy array does not match brick grid")
    if n_gpus < 1:
        raise ValueError("need at least one GPU")
    if fetches_per_sample < 1:
        raise ValueError("fetches_per_sample must be >= 1")
    works: list[MapWork] = []
    for b in grid:
        bw = model_brick_work(b, camera, dt, float(occupancy[b.id]), ert=ert)
        routed = _route_exact(bw.kept_fragments, b, camera, partitioner)
        works.append(
            MapWork(
                chunk_id=b.id,
                gpu=b.id % n_gpus,
                upload_bytes=bw.upload_bytes,
                n_rays=bw.n_rays,
                n_samples=bw.n_samples * fetches_per_sample,
                pairs_emitted=bw.n_rays if emit_placeholders else bw.kept_fragments,
                pairs_to_reducer=routed,
                read_from_disk=on_disk,
            )
        )
    return works
