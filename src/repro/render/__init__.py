"""Ray-casting renderer substrate: cameras, kernels, compositing."""

from .accel import AccelCache, invalidate_volume, shared_cache, volume_token
from .camera import BLOCK, Camera, PixelRect, orbit_camera
from .compositing import (
    blend_background,
    composite_fragments,
    composite_pixel_fragments,
    group_ranks,
    over,
    segmented_exclusive_cumprod,
)
from .fragments import (
    FRAGMENT_DTYPE,
    FRAGMENT_NBYTES,
    PLACEHOLDER_KEY,
    concat_fragments,
    drop_placeholders,
    empty_fragments,
    fragment_sort_order,
    make_fragments,
    rgba_view,
)
from .geometry import box_contains, ray_box_intersect
from .image import image_stats, max_abs_diff, mean_abs_diff, psnr
from .raycast import MapStats, RenderConfig, raycast_brick, trilinear_sample
from .kernels import (
    KERNEL_CHOICES,
    KernelSpec,
    MarchPlan,
    available_backends,
    resolve_kernel,
)
from .reference import ReferenceResult, render_reference
from .shading import PhongParams, central_gradient, shade_phong
from .stitch import rgba_to_rgb8, stitch_pixels, write_ppm
from .transfer import (
    TransferFunction1D,
    bone_tf,
    default_tf,
    fire_tf,
    grayscale_tf,
    opacity_correction,
)

__all__ = [
    "AccelCache",
    "BLOCK",
    "Camera",
    "FRAGMENT_DTYPE",
    "FRAGMENT_NBYTES",
    "KERNEL_CHOICES",
    "KernelSpec",
    "MapStats",
    "MarchPlan",
    "PLACEHOLDER_KEY",
    "PhongParams",
    "PixelRect",
    "central_gradient",
    "shade_phong",
    "ReferenceResult",
    "RenderConfig",
    "TransferFunction1D",
    "available_backends",
    "blend_background",
    "bone_tf",
    "box_contains",
    "composite_fragments",
    "composite_pixel_fragments",
    "concat_fragments",
    "default_tf",
    "drop_placeholders",
    "empty_fragments",
    "fire_tf",
    "fragment_sort_order",
    "grayscale_tf",
    "group_ranks",
    "image_stats",
    "invalidate_volume",
    "make_fragments",
    "max_abs_diff",
    "mean_abs_diff",
    "opacity_correction",
    "orbit_camera",
    "over",
    "psnr",
    "ray_box_intersect",
    "raycast_brick",
    "resolve_kernel",
    "render_reference",
    "rgba_to_rgb8",
    "rgba_view",
    "segmented_exclusive_cumprod",
    "shared_cache",
    "stitch_pixels",
    "trilinear_sample",
    "volume_token",
    "write_ppm",
]
