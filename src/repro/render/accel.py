"""Per-volume acceleration caching for the ray-cast kernel.

The blocked marcher's corner-max empty-space table
(:func:`repro.render.raycast._empty_space_table`) depends only on the
brick payload and the transfer function, yet until this module existed
it was rebuilt on every :func:`~repro.render.raycast.raycast_brick`
call — once per brick per frame.  Across the frames of an orbit (same
volume, same transfer function, new camera) that is pure waste.

:class:`AccelCache` is a byte-bounded LRU of those tables, keyed on
``(volume token, chunk id, transfer-function version)``:

* the **volume token** is a process-unique string minted per volume (or
  procedural field) object by :func:`volume_token` — tokens are never
  reused, so a table can never be served for the wrong data;
* the **chunk id** identifies the brick within that volume;
* the **transfer-function version** is a content hash
  (:attr:`~repro.render.transfer.TransferFunction1D.version`), so
  editing the transfer function invalidates every cached table.

A module-level cache (:func:`shared_cache`) is what the renderer uses by
default.  Each process owns its own instance — the shared-memory pool
workers of :mod:`repro.parallel` therefore warm their caches on the
first orbit frame and reuse the tables for every later frame, exactly
like static acceleration structures resident on a real GPU.
"""

from __future__ import annotations

import itertools
import weakref
from collections import OrderedDict
from typing import Any, Hashable, Optional

import numpy as np

__all__ = ["AccelCache", "invalidate_volume", "shared_cache", "volume_token"]


class AccelCache:
    """Byte-bounded LRU cache of per-brick acceleration tables."""

    def __init__(self, max_entries: int = 256, max_bytes: int = 256 << 20):
        if max_entries < 1 or max_bytes < 1:
            raise ValueError("cache bounds must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: OrderedDict[Hashable, np.ndarray] = OrderedDict()
        self._nbytes = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        return self._nbytes

    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """Return the cached table for ``key`` (marking it recently used)."""
        table = self._entries.get(key)
        if table is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return table

    def put(self, key: Hashable, table: np.ndarray) -> None:
        """Insert ``table``, evicting least-recently-used entries to fit."""
        if key in self._entries:
            self._nbytes -= self._entries.pop(key).nbytes
        self._entries[key] = table
        self._nbytes += table.nbytes
        while self._entries and (
            len(self._entries) > self.max_entries or self._nbytes > self.max_bytes
        ):
            _, evicted = self._entries.popitem(last=False)
            self._nbytes -= evicted.nbytes

    def clear(self) -> None:
        self._entries.clear()
        self._nbytes = 0
        self.hits = 0
        self.misses = 0


_shared = AccelCache()


def shared_cache() -> AccelCache:
    """The process-wide default cache (one per worker process)."""
    return _shared


_token_counter = itertools.count()
# id(obj) -> (token, weakref).  Keyed by id (not the object) because
# Volume-like objects need not be hashable; the weakref's callback
# removes the entry at collection, so a recycled id can never resurrect
# a dead object's token.
_tokens: dict[int, tuple[str, "weakref.ref"]] = {}


def volume_token(obj: Any) -> Optional[str]:
    """Process-unique, never-reused token identifying a volume-like object.

    Tokens live exactly as long as the object and embed a monotonic
    counter, so (unlike a raw ``id()``) a new object can never inherit a
    collected object's token.  Returns None for objects that cannot be
    weak-referenced — callers then simply skip acceleration caching.

    The token asserts **immutability of the object's voxel data**: it is
    identity-based, so mutating ``volume.data`` in place keeps the token
    and would serve stale cached tables (and stale pool-executor
    arenas).  Renderers treat volumes as immutable; code that must edit
    voxels in place should call :func:`invalidate_volume` afterwards (or
    simply wrap the data in a fresh ``Volume``).
    """
    if obj is None:
        return None
    key = id(obj)
    entry = _tokens.get(key)
    if entry is not None and entry[1]() is obj:
        return entry[0]
    token = f"vol-{next(_token_counter)}"
    try:
        ref = weakref.ref(obj, lambda _r, key=key: _tokens.pop(key, None))
    except TypeError:  # not weak-referenceable
        return None
    _tokens[key] = (token, ref)
    return token


def invalidate_volume(obj: Any) -> None:
    """Forget ``obj``'s token after an in-place edit of its voxel data.

    The next :func:`volume_token` call mints a fresh token, so every
    consumer keyed on it (acceleration caches, the pool executor's
    shared-memory arena fingerprint) re-derives from the new data.
    """
    _tokens.pop(id(obj), None)
