"""Per-volume acceleration caching for the ray-cast kernel.

Two acceleration structures are pure functions of ``(brick payload,
transfer function)`` and get rebuilt for nothing across the frames of an
orbit (same volume, same transfer function, new camera) unless cached:

* the blocked marcher's per-voxel corner-max empty-space table
  (:func:`repro.render.raycast._empty_space_table`), cached under the
  caller's base key;
* the macro-cell occupancy grid (:func:`build_macro_grid`) that the
  marcher DDA-traverses to carve whole transparent spans out of each
  ray's sample interval *before* marching, cached under
  :func:`grid_key` (base key + macro-cell size).

Both structures are built (and cached) by :func:`raycast_brick`
*before* it dispatches to a march-kernel backend
(:mod:`repro.render.kernels`), and the cache key deliberately contains
no backend name: the tables are pure functions of ``(brick payload,
transfer function)``, identical whichever backend consumes them, so a
table warmed under ``kernel="numpy"`` is served verbatim to a later
``kernel="numba"`` render (and vice versa) instead of being rebuilt
per backend.

:class:`AccelCache` is a byte-bounded LRU of both, keyed on
``(volume token, chunk id, transfer-function version)``:

* the **volume token** is a process-unique string minted per volume (or
  procedural field) object by :func:`volume_token` — tokens are never
  reused, so a table can never be served for the wrong data;
* the **chunk id** identifies the brick within that volume;
* the **transfer-function version** is a content hash
  (:attr:`~repro.render.transfer.TransferFunction1D.version`), so
  editing the transfer function invalidates every cached table.

A module-level cache (:func:`shared_cache`) is what the renderer uses by
default.  Each process owns its own instance — the shared-memory pool
workers of :mod:`repro.parallel` therefore warm their caches on the
first orbit frame and reuse the structures for every later frame,
exactly like static acceleration structures resident on a real GPU.
(Macro grids additionally ship parent → worker through the pool's
shared-memory arena, so workers never build them at all; see
:meth:`repro.parallel.SharedMemoryPoolExecutor._publish`.)

Bricks for which a macro grid cannot help — the transfer function has
no leading zero-alpha run to skip, or every cell of the brick is
occupied — cache the :data:`NO_GRID` sentinel instead, so the negative
result is remembered (no per-frame rebuild) without ever storing
``None`` (which :meth:`AccelCache.put` rejects).
"""

from __future__ import annotations

import itertools
import weakref
from collections import OrderedDict
from typing import Any, Hashable, Optional

import numpy as np

__all__ = [
    "AccelCache",
    "NO_GRID",
    "build_macro_grid",
    "grid_key",
    "invalidate_volume",
    "is_no_grid",
    "shared_cache",
    "volume_token",
]


class AccelCache:
    """Byte-bounded LRU cache of per-brick acceleration structures."""

    def __init__(self, max_entries: int = 512, max_bytes: int = 256 << 20):
        if max_entries < 1 or max_bytes < 1:
            raise ValueError("cache bounds must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: OrderedDict[Hashable, np.ndarray] = OrderedDict()
        self._nbytes = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        return self._nbytes

    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """Return the cached table for ``key`` (marking it recently used)."""
        table = self._entries.get(key)
        if table is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return table

    def put(self, key: Hashable, table: np.ndarray) -> None:
        """Insert ``table``, evicting least-recently-used entries to fit.

        ``None`` is rejected: "no structure exists for this key" must be
        cached as an explicit sentinel (e.g. :data:`NO_GRID`) so the
        negative result is itself remembered instead of recomputed — or
        not cached at all.
        """
        if table is None:
            raise TypeError(
                "AccelCache cannot store None; cache an explicit sentinel "
                "(repro.render.accel.NO_GRID) or skip the put"
            )
        if key in self._entries:
            self._nbytes -= self._entries.pop(key).nbytes
        self._entries[key] = table
        self._nbytes += table.nbytes
        while self._entries and (
            len(self._entries) > self.max_entries or self._nbytes > self.max_bytes
        ):
            _, evicted = self._entries.popitem(last=False)
            self._nbytes -= evicted.nbytes

    def pop(self, key: Hashable) -> Optional[np.ndarray]:
        """Remove and return ``key``'s entry (None when absent).

        Used by pool workers to drop arena-backed grid views before the
        arena segment they point into is unmapped.
        """
        table = self._entries.pop(key, None)
        if table is not None:
            self._nbytes -= table.nbytes
        return table

    def stats(self) -> dict:
        """Hit-rate snapshot for the telemetry registry."""
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else None,
            "entries": len(self._entries),
            "nbytes": self._nbytes,
        }

    def clear(self) -> None:
        self._entries.clear()
        self._nbytes = 0
        self.hits = 0
        self.misses = 0


_shared = AccelCache()


def shared_cache() -> AccelCache:
    """The process-wide default cache (one per worker process)."""
    return _shared


_token_counter = itertools.count()
# id(obj) -> (token, weakref).  Keyed by id (not the object) because
# Volume-like objects need not be hashable; the weakref's callback
# removes the entry at collection, so a recycled id can never resurrect
# a dead object's token.
_tokens: dict[int, tuple[str, "weakref.ref"]] = {}


def volume_token(obj: Any) -> Optional[str]:
    """Process-unique, never-reused token identifying a volume-like object.

    Tokens live exactly as long as the object and embed a monotonic
    counter, so (unlike a raw ``id()``) a new object can never inherit a
    collected object's token.  Returns None for objects that cannot be
    weak-referenced — callers then simply skip acceleration caching.

    The token asserts **immutability of the object's voxel data**: it is
    identity-based, so mutating ``volume.data`` in place keeps the token
    and would serve stale cached tables (and stale pool-executor
    arenas).  Renderers treat volumes as immutable; code that must edit
    voxels in place should call :func:`invalidate_volume` afterwards (or
    simply wrap the data in a fresh ``Volume``).
    """
    if obj is None:
        return None
    key = id(obj)
    entry = _tokens.get(key)
    if entry is not None and entry[1]() is obj:
        return entry[0]
    token = f"vol-{next(_token_counter)}"
    try:
        ref = weakref.ref(obj, lambda _r, key=key: _tokens.pop(key, None))
    except TypeError:  # not weak-referenceable
        return None
    _tokens[key] = (token, ref)
    return token


def invalidate_volume(obj: Any) -> None:
    """Forget ``obj``'s token after an in-place edit of its voxel data.

    The next :func:`volume_token` call mints a fresh token, so every
    consumer keyed on it (acceleration caches, the pool executor's
    shared-memory arena fingerprint) re-derives from the new data.
    """
    _tokens.pop(id(obj), None)


# -- macro-cell occupancy grids ----------------------------------------------

#: Cached marker for "no macro grid can help this (brick, tf)": the
#: transfer function has no leading zero-alpha run, or every macro cell
#: of the brick is occupied.  A zero-length array (rather than None) so
#: it round-trips through :class:`AccelCache` and through the pool
#: executor's shared-memory arena like any other entry; detect it with
#: :func:`is_no_grid`.
NO_GRID = np.empty(0, dtype=bool)


def is_no_grid(grid: Optional[np.ndarray]) -> bool:
    """Whether a cache/arena entry is the :data:`NO_GRID` sentinel."""
    return grid is not None and grid.size == 0


#: Occupied-cell fraction above which a macro grid is not worth using:
#: the span walk + per-block span flattening cost O(rays · cells) and
#: O(spans) regardless of how little they carve, so a nearly-full grid
#: is pure overhead.  Such bricks cache :data:`NO_GRID` and fall back to
#: the corner-max table (output is bitwise-identical either way — this
#: is purely a cost model).
GRID_OCCUPANCY_CUTOFF = 0.875


def grid_key(base_key: tuple, cell_size: int) -> tuple:
    """Cache key of a brick's macro grid (one per macro-cell size).

    ``base_key`` is the caller's ``(volume token, tf version, chunk id,
    region)`` identity — the same tuple the corner-max table is cached
    under directly.
    """
    return ("grid", int(cell_size)) + tuple(base_key)


def build_macro_grid(
    data: np.ndarray, tf: Any, cell_size: int
) -> np.ndarray:
    """Classify a brick's macro cells against ``tf`` → boolean occupancy.

    Returns a bool array shaped
    :func:`~repro.volume.occupancy.macro_cell_dims` where ``True`` means
    "this cell may contribute", or the :data:`NO_GRID` sentinel when a
    grid cannot pay off (see :data:`NO_GRID`).

    Conservative-skip proof obligation
    ----------------------------------
    The ray caster uses ``False`` cells to carve whole sample spans out
    of a ray's march *before* positions are computed, and its output
    must stay **bitwise identical** to the unaccelerated march.  The
    kernel's exact per-sample filter drops a sample iff its float32
    table coordinate lands in the transfer function's *leading*
    zero-alpha run (``u <= u_thr``); removing exactly that set from the
    float32 transmittance scan is a no-op, while removing any other
    sample — even one whose alpha is exactly zero inside an *interior*
    zero-alpha range — would shift the scan's operand positions and
    perturb float association.  A cell is therefore marked empty only
    when every sample it can produce provably passes the kernel's own
    filter:

    * the cell's scalar range is the (min, max) over its **padded**
      trilinear support (:func:`~repro.volume.occupancy.macro_cell_minmax`
      with one extra voxel per side), absorbing the sub-1e-3-voxel gap
      between the classifier's float64 ray positions and the march's
      float32 ones, boundary clamping included;
    * the range's float64 table coordinate must sit a **full table
      entry** below the first non-zero alpha entry, absorbing float32
      `table_coord` rounding and trilinear lerp overshoot beyond the
      support's max.

    Every carved sample thus satisfies ``u <= u_thr`` under the march's
    own arithmetic; the kernel re-applies the exact filter to whatever
    survives, so the scan input — and the image, fragment keys/depths,
    and counters — cannot change.
    """
    from ..volume.occupancy import macro_cell_minmax
    from .raycast import _alpha_zero_threshold

    if min(data.shape) < 2:
        return NO_GRID
    u_thr = _alpha_zero_threshold(tf)
    if u_thr < 0:  # no leading zero-alpha run: nothing is ever skippable
        return NO_GRID
    _, maxs = macro_cell_minmax(data, cell_size, pad=1)
    if np.isinf(u_thr):  # alpha identically zero: every cell is empty
        return np.zeros(maxs.shape, dtype=bool)
    scale = 1.0 / (float(tf.vmax) - float(tf.vmin))
    u_max = np.clip(
        (maxs.astype(np.float64) - float(tf.vmin)) * scale, 0.0, 1.0
    ) * (tf.resolution - 1)
    occ = u_max > (u_thr - 1.0)  # one-entry conservative margin
    if float(occ.mean()) > GRID_OCCUPANCY_CUTOFF:
        return NO_GRID
    return occ
