"""Pinhole camera and per-brick screen footprints.

The paper launches the map kernel on "a 2D grid of 2D blocks ... made to
match the size of the sub-image (with a potentially small amount of
padding) onto which the current chunk projects".  :meth:`Camera.brick_rect`
reproduces that: project the brick's corners, take the bounding rectangle,
pad it up to whole 16×16 blocks, clip to the viewport.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

__all__ = ["Camera", "PixelRect", "orbit_camera"]

BLOCK = 16  # CUDA block edge used by the paper's kernel


@dataclass(frozen=True)
class PixelRect:
    """Half-open pixel rectangle ``[x0,x1) × [y0,y1)``."""

    x0: int
    y0: int
    x1: int
    y1: int

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0

    @property
    def area(self) -> int:
        return max(self.width, 0) * max(self.height, 0)

    @property
    def empty(self) -> bool:
        return self.width <= 0 or self.height <= 0

    def pixel_coords(self) -> tuple[np.ndarray, np.ndarray]:
        """(px, py) integer coordinates of every pixel, x fastest."""
        ys, xs = np.mgrid[self.y0 : self.y1, self.x0 : self.x1]
        return xs.ravel(), ys.ravel()


@dataclass(frozen=True)
class Camera:
    """Right-handed perspective camera.

    ``eye`` looks at ``center``; ``fov_y`` is the vertical field of view
    in radians; the image is ``width × height`` pixels.  Pixel (0,0) is
    the top-left corner; the paper's key convention
    ``pixel = y*width + x`` is provided by :meth:`pixel_index`.
    """

    eye: tuple[float, float, float]
    center: tuple[float, float, float]
    up: tuple[float, float, float] = (0.0, 0.0, 1.0)
    fov_y: float = math.radians(45.0)
    width: int = 512
    height: int = 512

    def __post_init__(self):
        if self.width < 1 or self.height < 1:
            raise ValueError("image must be at least 1x1")
        if not 0 < self.fov_y < math.pi:
            raise ValueError("fov_y must be in (0, pi)")
        fwd = np.asarray(self.center, np.float64) - np.asarray(self.eye, np.float64)
        n = np.linalg.norm(fwd)
        if n == 0:
            raise ValueError("eye and center coincide")
        fwd = fwd / n
        upv = np.asarray(self.up, np.float64)
        right = np.cross(fwd, upv)
        rn = np.linalg.norm(right)
        if rn < 1e-12:
            raise ValueError("up vector is parallel to the view direction")
        right /= rn
        true_up = np.cross(right, fwd)
        object.__setattr__(self, "_fwd", fwd)
        object.__setattr__(self, "_right", right)
        object.__setattr__(self, "_up", true_up)
        object.__setattr__(self, "_focal", (self.height / 2.0) / math.tan(self.fov_y / 2.0))

    def __getstate__(self):
        # The cached full-viewport direction grid (see rect_rays_f32) is
        # a per-process render cache, not camera state — and at ~12 B per
        # pixel it would bloat every pickled per-frame payload the
        # multiprocess executor ships to its workers.  Receivers rebuild
        # it lazily on first use.
        state = dict(self.__dict__)
        state.pop("_dirs32_grid", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    # -- basis ------------------------------------------------------------
    @property
    def basis(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(right, up, forward) world-space unit vectors."""
        return self._right, self._up, self._fwd

    @property
    def focal_pixels(self) -> float:
        return self._focal

    # -- rays ------------------------------------------------------------
    def rays_for_pixels(
        self, px: np.ndarray, py: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(origins, unit directions) for rays through pixel centers.

        ``px``/``py`` are integer pixel coordinates; rays pass through
        ``(px+0.5, py+0.5)``.  Screen y grows downward, so it maps to
        −up.
        """
        px = np.asarray(px, dtype=np.float64)
        py = np.asarray(py, dtype=np.float64)
        u = px + 0.5 - self.width / 2.0
        v = py + 0.5 - self.height / 2.0
        dirs = (
            self._fwd[None, :]
            + (u / self._focal)[:, None] * self._right[None, :]
            - (v / self._focal)[:, None] * self._up[None, :]
        )
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        origins = np.broadcast_to(
            np.asarray(self.eye, dtype=np.float64), dirs.shape
        ).copy()
        return origins, dirs

    def rays_for_rect(self, rect: PixelRect) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(origins, dirs, pixel_keys) for every pixel in a rect."""
        px, py = rect.pixel_coords()
        o, d = self.rays_for_pixels(px, py)
        return o, d, self.pixel_index(px, py)

    def rect_rays_f32(self, rect: PixelRect) -> tuple[np.ndarray, np.ndarray]:
        """(unit dirs float32, pixel keys) for a rect — the kernel fast path.

        A camera is immutable and every brick of a frame shares it, so the
        full-viewport direction grid is computed once, cached, and sliced
        per brick footprint — per-chunk ray setup then costs one contiguous
        copy instead of a trig-and-normalize pass.
        """
        cache = getattr(self, "_dirs32_grid", None)
        if cache is None:
            px, py = self.full_rect().pixel_coords()
            _, d = self.rays_for_pixels(px, py)
            cache = np.ascontiguousarray(
                d.reshape(self.height, self.width, 3), dtype=np.float32
            )
            object.__setattr__(self, "_dirs32_grid", cache)
        dirs = np.ascontiguousarray(
            cache[rect.y0 : rect.y1, rect.x0 : rect.x1]
        ).reshape(-1, 3)
        xs = np.arange(rect.x0, rect.x1, dtype=np.int32)
        ys = np.arange(rect.y0, rect.y1, dtype=np.int32)
        keys = (ys[:, None] * np.int32(self.width) + xs[None, :]).reshape(-1)
        return dirs, keys

    def pixel_index(self, px: np.ndarray, py: np.ndarray) -> np.ndarray:
        """The paper's MapReduce key: ``y * width + x`` as int32."""
        return (np.asarray(py) * self.width + np.asarray(px)).astype(np.int32)

    @property
    def pixel_count(self) -> int:
        return self.width * self.height

    # -- projection ----------------------------------------------------------
    def project_points(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Project world points to pixel coordinates.

        Returns (xy, in_front): ``xy`` is ``(N,2)`` pixel coordinates and
        ``in_front`` flags points with positive camera depth.  Points
        behind the eye get non-finite coordinates.
        """
        p = np.asarray(points, dtype=np.float64) - np.asarray(self.eye, np.float64)
        xc = p @ self._right
        yc = p @ self._up
        zc = p @ self._fwd
        in_front = zc > 1e-9
        with np.errstate(divide="ignore", invalid="ignore"):
            x = self._focal * xc / zc + self.width / 2.0
            y = -self._focal * yc / zc + self.height / 2.0
        x = np.where(in_front, x, np.nan)
        y = np.where(in_front, y, np.nan)
        return np.stack([x, y], axis=-1), in_front

    def brick_rect(
        self, corners: np.ndarray, pad_to_block: bool = True
    ) -> PixelRect:
        """Padded, clipped screen footprint of a world-space box.

        If any corner is behind the eye the footprint conservatively
        covers the whole viewport (the eye is inside/near the box).
        """
        xy, in_front = self.project_points(corners)
        if not np.all(in_front):
            x0, y0, x1, y1 = 0, 0, self.width, self.height
        else:
            x0 = int(math.floor(xy[:, 0].min()))
            y0 = int(math.floor(xy[:, 1].min()))
            x1 = int(math.ceil(xy[:, 0].max()))
            y1 = int(math.ceil(xy[:, 1].max()))
        if pad_to_block:
            x0 = (x0 // BLOCK) * BLOCK
            y0 = (y0 // BLOCK) * BLOCK
            x1 = ((x1 + BLOCK - 1) // BLOCK) * BLOCK
            y1 = ((y1 + BLOCK - 1) // BLOCK) * BLOCK
        x0 = max(0, min(x0, self.width))
        y0 = max(0, min(y0, self.height))
        x1 = max(0, min(x1, self.width))
        y1 = max(0, min(y1, self.height))
        return PixelRect(x0, y0, x1, y1)

    def full_rect(self) -> PixelRect:
        return PixelRect(0, 0, self.width, self.height)


def orbit_camera(
    volume_shape: Sequence[int],
    azimuth_deg: float = 30.0,
    elevation_deg: float = 20.0,
    distance_factor: float = 3.6,
    width: int = 512,
    height: int = 512,
    fov_deg: float = 45.0,
) -> Camera:
    """Camera orbiting the volume center — the paper's interactive view."""
    shape = np.asarray(volume_shape, dtype=np.float64)
    center = shape / 2.0
    radius = float(np.linalg.norm(shape)) / 2.0
    az = math.radians(azimuth_deg)
    el = math.radians(elevation_deg)
    direction = np.array(
        [math.cos(el) * math.cos(az), math.cos(el) * math.sin(az), math.sin(el)]
    )
    eye = center + direction * radius * distance_factor
    return Camera(
        eye=tuple(eye),
        center=tuple(center),
        up=(0.0, 0.0, 1.0),
        fov_y=math.radians(fov_deg),
        width=width,
        height=height,
    )
