"""Fragment compositing — the Reduce-phase math.

All colour is premultiplied alpha, so the *over* operator is associative
and partial per-brick rays can be combined in any grouping as long as
depth order is respected.  The paper composites "all ray fragments for a
given pixel ... ascending-depth sorted, composited, and blended against
the background color"; :func:`composite_fragments` is that operation,
vectorised across every pixel at once.

The workhorse is :func:`segmented_exclusive_cumprod`: with fragments
sorted by (pixel, depth), the transmittance in front of each fragment is
the exclusive running product of ``(1 − α)`` within its pixel's run, so
the whole image reduces to one segmented scan plus one segmented sum —
no per-depth-rank Python iteration.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.sort import counting_scatter_available, stable_counting_order
from .fragments import FRAGMENT_DTYPE, rgba_view

__all__ = [
    "over",
    "composite_fragments",
    "composite_pixel_fragments",
    "blend_background",
    "fold_depth_runs",
    "group_ranks",
    "segmented_exclusive_cumprod",
]


def over(front: np.ndarray, back: np.ndarray) -> np.ndarray:
    """Premultiplied front-to-back over: ``out = F + (1−αF)·B``."""
    front = np.asarray(front, dtype=np.float32)
    back = np.asarray(back, dtype=np.float32)
    a = front[..., 3:4]
    return front + (1.0 - a) * back


def group_ranks(sorted_keys: np.ndarray) -> np.ndarray:
    """Rank of each element within its run of equal keys (keys pre-sorted)."""
    n = len(sorted_keys)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
    pos = np.arange(n)
    run_start = np.maximum.accumulate(np.where(starts, pos, 0))
    return pos - run_start


def segmented_exclusive_cumprod(
    values: np.ndarray, seg_start: np.ndarray, max_run: Optional[int] = None
) -> np.ndarray:
    """Exclusive running product of ``values`` within each segment.

    ``seg_start`` is a boolean mask flagging the first element of every
    segment (element 0 must be flagged).  Returns ``out`` with
    ``out[j] = Π values[i]`` over the elements ``i`` of ``j``'s segment
    that precede ``j`` (so 1.0 at each segment start).  ``max_run``, when
    the caller already knows an upper bound on the longest segment,
    skips one pass over the data.

    Implemented as a Hillis–Steele doubling scan: ``ceil(log2(max run))``
    vectorised passes, each a masked elementwise multiply — the GPU-style
    replacement for iterating depth ranks one at a time.  Zeros are fine
    (no division anywhere), which matters because a fully opaque fragment
    has ``1 − α = 0``.  This one scan serves both the Reduce-side
    compositors here and the ray-cast kernel's in-block fold.
    """
    values = np.asarray(values, dtype=np.float32)
    n = len(values)
    if n == 0:
        return values.copy()
    seg_start = np.asarray(seg_start, dtype=bool)
    # Shift values right by one inside each segment: an inclusive scan of
    # the shifted sequence is the exclusive scan of the original.
    p = np.empty(n, dtype=np.float32)
    p[0] = 1.0
    p[1:] = values[:-1]
    p[seg_start] = 1.0
    seg_id = np.cumsum(seg_start)
    if max_run is None:
        starts_idx = np.nonzero(seg_start)[0]
        max_run = int(np.diff(np.r_[starts_idx, n]).max())
    shift = 1
    while shift < max_run:
        same = seg_id[shift:] == seg_id[:-shift]
        p[shift:] = np.where(same, p[shift:] * p[:-shift], p[shift:])
        shift <<= 1
    return p


def fold_depth_runs(rgba: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Front-to-back *over* fold of depth-sorted runs → one RGBA per run.

    ``rgba`` rows must be grouped into runs (one per pixel) with depth
    ascending inside each; ``starts`` lists every run's first row index
    (``starts[0] == 0``).  One segmented transmittance scan plus one
    segmented sum — the shared Reduce-side fold used by the compositors,
    the reducer, and the combiner.
    """
    seg_start = np.zeros(len(rgba), dtype=bool)
    seg_start[starts] = True
    trans = segmented_exclusive_cumprod(1.0 - rgba[:, 3], seg_start)
    out = np.add.reduceat(trans[:, None] * rgba, starts, axis=0)
    return out.astype(np.float32, copy=False)


def _depth_rank_bits(depth: np.ndarray) -> np.ndarray:
    """Monotone uint32 image of float32 depths.

    Adding +0.0 first canonicalizes −0.0 to +0.0 so the two zeros
    compare equal (as ``np.lexsort`` treats them) instead of ordering
    by sign bit — equal-depth fragments must keep arrival order.
    """
    canon = np.asarray(depth, dtype=np.float32) + np.float32(0.0)
    bits = canon.view(np.uint32)
    neg = bits >> np.uint32(31)
    return np.where(neg.astype(bool), ~bits, bits ^ np.uint32(0x80000000))


def _pixel_depth_order(pix: np.ndarray, n_pixels: int, depth: np.ndarray) -> np.ndarray:
    """Stable (pixel, depth)-ascending permutation, θ(n).

    A three-pass LSD radix built from the Sort stage's counting scatter:
    two 16-bit passes order by depth, one dense pass groups by pixel.
    Each pass is stable, so the composition is the stable lexicographic
    order — the same result as ``np.lexsort`` at a fraction of the cost.
    Without the C scatter, three argsort passes would cost *more* than
    one lexsort, so fall back to lexsort directly.
    """
    if not counting_scatter_available():
        return np.lexsort((depth, pix))
    key = _depth_rank_bits(depth)
    o1 = stable_counting_order((key & np.uint32(0xFFFF)).astype(np.int32), 1 << 16)
    o2 = stable_counting_order(
        np.take((key >> np.uint32(16)).astype(np.int32), o1), 1 << 16
    )
    o12 = np.take(o1, o2)
    o3 = stable_counting_order(np.take(pix, o12), n_pixels)
    return np.take(o12, o3)


def composite_pixel_fragments(fragments: np.ndarray) -> np.ndarray:
    """Composite one pixel's fragments (ascending depth) → RGBA (premult)."""
    if fragments.dtype != FRAGMENT_DTYPE:
        raise TypeError("expected fragment records")
    if len(fragments) == 0:
        return np.zeros(4, dtype=np.float32)
    order = np.argsort(fragments["depth"], kind="stable")
    return fold_depth_runs(rgba_view(fragments[order]), np.array([0]))[0]


def composite_fragments(
    fragments: np.ndarray,
    n_pixels: int,
    pixel_base: int = 0,
) -> np.ndarray:
    """Depth-composite fragments into a flat premultiplied RGBA buffer.

    ``fragments['pixel']`` must lie in ``[pixel_base, pixel_base+n_pixels)``
    (a reducer owns a contiguous or strided key range; pass the dense
    buffer size it manages).  Returns ``(n_pixels, 4)`` float32.
    """
    out = np.zeros((n_pixels, 4), dtype=np.float32)
    if len(fragments) == 0:
        return out
    pix_raw = fragments["pixel"].astype(np.int32) - np.int32(pixel_base)
    if pix_raw.min() < 0 or pix_raw.max() >= n_pixels:
        raise ValueError("fragment pixel key outside reducer range")
    order = _pixel_depth_order(pix_raw, n_pixels, fragments["depth"])
    pix = np.take(pix_raw, order)
    rgba = np.empty((len(order), 4), dtype=np.float32)
    rgba[:, 0] = np.take(fragments["r"], order)
    rgba[:, 1] = np.take(fragments["g"], order)
    rgba[:, 2] = np.take(fragments["b"], order)
    rgba[:, 3] = np.take(fragments["a"], order)
    starts = np.nonzero(np.r_[True, pix[1:] != pix[:-1]])[0]
    out[pix[starts]] = fold_depth_runs(rgba, starts)
    return out


def blend_background(
    rgba: np.ndarray, background: Sequence[float] = (0.0, 0.0, 0.0)
) -> np.ndarray:
    """Blend premultiplied RGBA over an opaque background colour → RGB."""
    rgba = np.asarray(rgba, dtype=np.float32)
    bg = np.asarray(background, dtype=np.float32)
    if bg.shape != (3,):
        raise ValueError("background must be an RGB triple")
    alpha = rgba[..., 3:4]
    return rgba[..., :3] + (1.0 - alpha) * bg
