"""Fragment compositing — the Reduce-phase math.

All colour is premultiplied alpha, so the *over* operator is associative
and partial per-brick rays can be combined in any grouping as long as
depth order is respected.  The paper composites "all ray fragments for a
given pixel ... ascending-depth sorted, composited, and blended against
the background color"; :func:`composite_fragments` is that operation,
vectorised across every pixel at once (rank-layered blending).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .fragments import FRAGMENT_DTYPE, fragment_sort_order

__all__ = [
    "over",
    "composite_fragments",
    "composite_pixel_fragments",
    "blend_background",
    "group_ranks",
]


def over(front: np.ndarray, back: np.ndarray) -> np.ndarray:
    """Premultiplied front-to-back over: ``out = F + (1−αF)·B``."""
    front = np.asarray(front, dtype=np.float32)
    back = np.asarray(back, dtype=np.float32)
    a = front[..., 3:4]
    return front + (1.0 - a) * back


def group_ranks(sorted_keys: np.ndarray) -> np.ndarray:
    """Rank of each element within its run of equal keys (keys pre-sorted)."""
    n = len(sorted_keys)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
    pos = np.arange(n)
    run_start = np.maximum.accumulate(np.where(starts, pos, 0))
    return pos - run_start


def composite_pixel_fragments(fragments: np.ndarray) -> np.ndarray:
    """Composite one pixel's fragments (ascending depth) → RGBA (premult)."""
    if fragments.dtype != FRAGMENT_DTYPE:
        raise TypeError("expected fragment records")
    order = np.argsort(fragments["depth"], kind="stable")
    out = np.zeros(4, dtype=np.float32)
    for f in fragments[order]:
        frag = np.array([f["r"], f["g"], f["b"], f["a"]], dtype=np.float32)
        out = out + (1.0 - out[3]) * frag
    return out


def composite_fragments(
    fragments: np.ndarray,
    n_pixels: int,
    pixel_base: int = 0,
) -> np.ndarray:
    """Depth-composite fragments into a flat premultiplied RGBA buffer.

    ``fragments['pixel']`` must lie in ``[pixel_base, pixel_base+n_pixels)``
    (a reducer owns a contiguous or strided key range; pass the dense
    buffer size it manages).  Returns ``(n_pixels, 4)`` float32.
    """
    out = np.zeros((n_pixels, 4), dtype=np.float32)
    if len(fragments) == 0:
        return out
    order = fragment_sort_order(fragments)
    f = fragments[order]
    pix = f["pixel"].astype(np.int64) - pixel_base
    if pix.min() < 0 or pix.max() >= n_pixels:
        raise ValueError("fragment pixel key outside reducer range")
    ranks = group_ranks(pix)
    rgba = np.stack([f["r"], f["g"], f["b"], f["a"]], axis=1)
    # Layer-by-layer front-to-back blend: at rank r every pixel appears at
    # most once, so fancy indexing is race-free.  Iteration count equals
    # the deepest fragment list, which the paper bounds by the brick
    # count B (upper bound O(B·X) total fragments).
    for r in range(int(ranks.max()) + 1):
        sel = ranks == r
        p = pix[sel]
        one_m = (1.0 - out[p, 3])[:, None]
        out[p] += one_m * rgba[sel]
    return out


def blend_background(
    rgba: np.ndarray, background: Sequence[float] = (0.0, 0.0, 0.0)
) -> np.ndarray:
    """Blend premultiplied RGBA over an opaque background colour → RGB."""
    rgba = np.asarray(rgba, dtype=np.float32)
    bg = np.asarray(background, dtype=np.float32)
    if bg.shape != (3,):
        raise ValueError("background must be an RGB triple")
    alpha = rgba[..., 3:4]
    return rgba[..., :3] + (1.0 - alpha) * bg
