"""Ray fragments — the intermediate key-value pairs of the pipeline.

A fragment is the paper's emitted pair: **key** = 4-byte pixel index
(``y*width + x``), **value** = a fixed-size record ``(depth, r, g, b, a)``
holding the partial colour a ray accumulated inside one brick.  All
values are homogeneous 20-byte payloads (paper restriction #3); with the
key the wire size is 24 bytes per fragment.

Colour is stored *premultiplied by alpha*, which makes the front-to-back
over operator associative — the property that lets per-brick partial
rays composite in depth order to the exact single-pass result.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FRAGMENT_DTYPE",
    "FRAGMENT_NBYTES",
    "PLACEHOLDER_KEY",
    "make_fragments",
    "concat_fragments",
    "empty_fragments",
    "drop_placeholders",
    "fragment_sort_order",
    "rgba_view",
]

#: One emitted key-value pair: int32 key + 20-byte homogeneous value.
FRAGMENT_DTYPE = np.dtype(
    [
        ("pixel", np.int32),
        ("depth", np.float32),
        ("r", np.float32),
        ("g", np.float32),
        ("b", np.float32),
        ("a", np.float32),
    ]
)

FRAGMENT_NBYTES = FRAGMENT_DTYPE.itemsize  # 24

#: "If the thread computes a useless key-value pair, the kernel emits a
#: later-discarded place holder."  We use key −1.
PLACEHOLDER_KEY = np.int32(-1)


def empty_fragments() -> np.ndarray:
    return np.empty(0, dtype=FRAGMENT_DTYPE)


def make_fragments(
    pixel: np.ndarray, depth: np.ndarray, rgba: np.ndarray
) -> np.ndarray:
    """Pack parallel arrays into a fragment record array."""
    pixel = np.asarray(pixel)
    depth = np.asarray(depth)
    rgba = np.asarray(rgba)
    n = len(pixel)
    if depth.shape != (n,) or rgba.shape != (n, 4):
        raise ValueError(
            f"shape mismatch: pixel {pixel.shape}, depth {depth.shape}, rgba {rgba.shape}"
        )
    out = np.empty(n, dtype=FRAGMENT_DTYPE)
    out["pixel"] = pixel
    out["depth"] = depth
    out["r"] = rgba[:, 0]
    out["g"] = rgba[:, 1]
    out["b"] = rgba[:, 2]
    out["a"] = rgba[:, 3]
    return out


def concat_fragments(parts: list[np.ndarray]) -> np.ndarray:
    parts = [p for p in parts if len(p)]
    if not parts:
        return empty_fragments()
    return np.concatenate(parts)


def drop_placeholders(fragments: np.ndarray) -> np.ndarray:
    """Discard placeholder emissions (done at Partition in the paper)."""
    return fragments[fragments["pixel"] != PLACEHOLDER_KEY]


def fragment_sort_order(fragments: np.ndarray) -> np.ndarray:
    """Indices sorting fragments by (pixel, depth) ascending.

    This is the canonical compositing order: group per pixel, front to
    back.  Uses a stable lexsort so equal-depth fragments keep arrival
    order (deterministic output).
    """
    return np.lexsort((fragments["depth"], fragments["pixel"]))


def rgba_view(fragments: np.ndarray) -> np.ndarray:
    """(N, 4) float32 copy of the colour fields."""
    return np.stack(
        [fragments["r"], fragments["g"], fragments["b"], fragments["a"]], axis=1
    )
