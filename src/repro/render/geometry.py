"""Ray/box geometry.

Everything is vectorised over rays: the ray-cast "kernel" processes one
brick's whole pixel footprint as NumPy arrays, which is the CPU analogue
of the paper's 16×16-thread CUDA blocks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ray_box_intersect", "box_contains", "dual_box_intersect_f32"]


def ray_box_intersect(
    origins: np.ndarray,
    directions: np.ndarray,
    box_lo: np.ndarray,
    box_hi: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Slab-method intersection of N rays with one AABB.

    Parameters
    ----------
    origins, directions:
        ``(N, 3)`` ray origins and (not necessarily unit) directions.
    box_lo, box_hi:
        ``(3,)`` box corners, ``lo < hi`` componentwise.

    Returns
    -------
    (t_near, t_far, hit):
        Entry/exit parameters and a boolean hit mask.  ``t_near`` is
        clamped to 0 so rays starting inside the box enter at t=0.  All
        rays the paper's kernel would "immediately discard" have
        ``hit=False``.
    """
    origins = np.asarray(origins, dtype=np.float64)
    directions = np.asarray(directions, dtype=np.float64)
    if origins.ndim != 2 or origins.shape[1] != 3:
        raise ValueError(f"origins must be (N,3), got {origins.shape}")
    if directions.shape != origins.shape:
        raise ValueError("origins/directions shape mismatch")
    box_lo = np.asarray(box_lo, dtype=np.float64)
    box_hi = np.asarray(box_hi, dtype=np.float64)
    if np.any(box_hi <= box_lo):
        raise ValueError(f"degenerate box {box_lo}..{box_hi}")

    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        inv = 1.0 / directions
        t1 = (box_lo[None, :] - origins) * inv
        t2 = (box_hi[None, :] - origins) * inv
    t_lo = np.minimum(t1, t2)
    t_hi = np.maximum(t1, t2)
    # Where a direction component is 0, the ray is parallel to that slab:
    # inside → (-inf, +inf), outside → empty interval.  Applied after the
    # min/max so the empty interval (+inf, -inf) is not re-ordered, and so
    # 0·inf NaNs from origins on a slab face are overwritten.
    parallel = directions == 0.0
    if np.any(parallel):
        inside = (origins >= box_lo[None, :]) & (origins <= box_hi[None, :])
        t_lo = np.where(parallel, np.where(inside, -np.inf, np.inf), t_lo)
        t_hi = np.where(parallel, np.where(inside, np.inf, -np.inf), t_hi)
    t_near = t_lo.max(axis=1)
    t_far = t_hi.min(axis=1)
    hit = (t_far >= t_near) & (t_far >= 0.0)
    t_near = np.maximum(t_near, 0.0)
    return t_near, t_far, hit


def dual_box_intersect_f32(
    eye: np.ndarray,
    dirs: np.ndarray,
    lo_a: np.ndarray,
    hi_a: np.ndarray,
    lo_b: np.ndarray,
    hi_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Slab intersection of shared-origin rays with two AABBs, float32.

    The ray-cast kernel needs both the brick-core and the whole-volume
    interval for every ray; fusing the two tests shares the reciprocal
    directions and the eye-relative box corners, and float32 halves the
    memory traffic of the f64 general-purpose :func:`ray_box_intersect`.
    Face t-values are ``(face − eye_axis) · inv_axis`` — bitwise identical
    for the shared face of two adjacent bricks, which is what lets the
    kernel carve exact per-ray sample intervals out of these numbers.

    Returns ``(tn_a, tf_a, hit_a, tn_b, tf_b, hit_b)`` with ``tn``
    clamped to 0 (rays starting inside enter at t=0).
    """
    d = np.asarray(dirs, dtype=np.float32)
    eye = np.asarray(eye, dtype=np.float32)
    rel_lo_a = np.asarray(lo_a, dtype=np.float32) - eye
    rel_hi_a = np.asarray(hi_a, dtype=np.float32) - eye
    rel_lo_b = np.asarray(lo_b, dtype=np.float32) - eye
    rel_hi_b = np.asarray(hi_b, dtype=np.float32) - eye
    parallel = d == 0.0
    any_parallel = bool(parallel.any())

    def one_box(rel_lo, rel_hi, inv):
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            t1 = rel_lo[None, :] * inv
            t2 = rel_hi[None, :] * inv
        lo_t = np.minimum(t1, t2)
        hi_t = np.maximum(t1, t2)
        if any_parallel:
            inside = (rel_lo[None, :] <= 0.0) & (rel_hi[None, :] >= 0.0) & parallel
            lo_t = np.where(parallel, np.where(inside, -np.inf, np.inf), lo_t)
            hi_t = np.where(parallel, np.where(inside, np.inf, -np.inf), hi_t)
        tn = lo_t.max(axis=1)
        tf = hi_t.min(axis=1)
        hit = (tf >= tn) & (tf >= 0.0)
        np.maximum(tn, np.float32(0.0), out=tn)
        return tn, tf, hit

    with np.errstate(divide="ignore", over="ignore"):
        inv = np.float32(1.0) / d
    tn_a, tf_a, hit_a = one_box(rel_lo_a, rel_hi_a, inv)
    # A brick spanning the whole volume (reference renders, single-brick
    # grids) makes the second test a mirror of the first.
    if np.array_equal(rel_lo_a, rel_lo_b) and np.array_equal(rel_hi_a, rel_hi_b):
        return tn_a, tf_a, hit_a, tn_a, tf_a, hit_a
    tn_b, tf_b, hit_b = one_box(rel_lo_b, rel_hi_b, inv)
    return tn_a, tf_a, hit_a, tn_b, tf_b, hit_b


def box_contains(
    points: np.ndarray, box_lo: np.ndarray, box_hi: np.ndarray
) -> np.ndarray:
    """Half-open containment test ``lo ≤ p < hi``, vectorised over points.

    The half-open convention is what makes brick cores partition the
    volume exactly: a sample landing on a shared face belongs to exactly
    one brick.
    """
    points = np.asarray(points)
    lo = np.asarray(box_lo)
    hi = np.asarray(box_hi)
    return np.all((points >= lo) & (points < hi), axis=-1)
