"""Image comparison utilities used by tests and regression checks."""

from __future__ import annotations

import math

import numpy as np

__all__ = ["psnr", "max_abs_diff", "mean_abs_diff", "image_stats"]


def max_abs_diff(a: np.ndarray, b: np.ndarray) -> float:
    """Largest per-channel absolute difference."""
    a, b = np.asarray(a, np.float64), np.asarray(b, np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    if a.size == 0:
        return 0.0
    return float(np.abs(a - b).max())


def mean_abs_diff(a: np.ndarray, b: np.ndarray) -> float:
    a, b = np.asarray(a, np.float64), np.asarray(b, np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    if a.size == 0:
        return 0.0
    return float(np.abs(a - b).mean())


def psnr(a: np.ndarray, b: np.ndarray, peak: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB; inf for identical images."""
    a, b = np.asarray(a, np.float64), np.asarray(b, np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    mse = float(np.mean((a - b) ** 2))
    if mse == 0.0:
        return math.inf
    return 10.0 * math.log10(peak * peak / mse)


def image_stats(image: np.ndarray) -> dict[str, float]:
    """Quick summary used in example scripts' console output."""
    img = np.asarray(image, np.float64)
    alpha = img[..., 3] if img.shape[-1] == 4 else np.ones(img.shape[:-1])
    return {
        "mean_alpha": float(alpha.mean()),
        "covered_fraction": float((alpha > 1e-3).mean()),
        "max_value": float(img.max()),
        "min_value": float(img.min()),
    }
