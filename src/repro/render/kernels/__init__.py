"""Pluggable march-kernel backends for the blocked ray caster.

``raycast_brick`` owns everything *around* the march — ray generation,
slab intersection, ownership intervals, empty-space structure
build/caching, macro-grid span carving, and fragment emission.  What
happens *inside* a carved sample span is the kernel contract captured by
:class:`MarchPlan` + :class:`KernelSpec`:

* trilinear gather of each owned sample (ravel-offset addressing, the
  optional clamp fold, degenerate-axis strides);
* transfer-function ``table_coord`` + the exact per-sample empty-space
  filter ``u > u_thr`` and the corner-max skip-table probe at the
  gather's support base;
* TF lookup + opacity correction, optional Levoy/Phong shading;
* the front-to-back fold with block-granular early ray termination,
  writing the per-ray accumulators (``acc_rgb``/``acc_a``/``term``)
  in place;
* owned-sample accounting: ``march`` returns the number of *owned*
  samples of every live block, counted before any empty-space elision,
  exactly as ``MapStats.n_samples`` has always counted them (the caller
  multiplies by ``fetches_per_sample``).

Backends
--------
``numpy``
    The literal blocked/vectorized loop ``raycast_brick`` has always
    run, moved here verbatim — a pure refactor, bitwise-identical by
    construction.  Always available; the conformance oracle for every
    other backend.
``numba``
    ``@njit(cache=True, fastmath=False)`` per-ray march loops that fuse
    gather + lookup + composite into one pass
    (:mod:`~repro.render.kernels.numba_backend`).  Optional: resolved
    only when ``numba`` imports.
``auto``
    ``numba`` when importable, else ``numpy`` (with a single
    once-per-process :class:`RuntimeWarning`).  Explicitly requesting
    ``"numba"`` on a box without it raises instead, with install
    guidance — a pinned backend must never silently change.

Bitwise vs. tolerance-band parity (the conformance contract)
------------------------------------------------------------
The numba marcher mirrors the numpy fold's arithmetic operation by
operation — the same float32/float64 mixed-precision walk NumPy's
promotion rules actually produce (positions and trilinear lerps carry
float64 via the int32->float32-scalar promotions; table coordinates,
lookups, opacity correction and all accumulators are float32), the same
truncation casts, the same clamp folds, and the same per-block
accumulation order (block-local transmittance folded into the carried
accumulators through ``t_prior = 1 - acc_a``, sums in
``np.add.reduceat``'s sequential order).  Consequently these are
**exact** across backends:

* fragment keys and the kept/emitted sets (``acc_a`` is nonzero iff
  some filter-passing sample had nonzero TF alpha — a structural fact,
  not a rounding one, at the default ``alpha_eps=0``);
* fragment depths (``t0`` per ray, computed outside the kernel);
* every ``MapStats`` counter (``n_samples`` counts owned samples before
  elision; the skip decisions themselves — the skip-table probe and the
  exact filter ``u > u_thr`` — compare bitwise-identical ``u`` values);
* which samples are visible, and their per-sample RGBA inputs to the
  fold.

Two operations are **tolerance-band** (colors only), and golden images
for the numba backend are therefore compared within the same
``2e-4``/``5e-4`` (shaded) band the blocked-vs-reference suite already
uses rather than pinned bitwise:

* the in-block transmittance: numpy computes it with a Hillis–Steele
  *doubling scan* (``segmented_exclusive_cumprod``) whose float
  association differs from the numba backend's sequential running
  product for runs of three or more visible samples — last-ulp
  differences in ``trans`` and hence in the folded colors;
* ``x ** y`` on float32 (opacity correction at ``dt != 1`` and the
  Phong specular term): NumPy's ``npy_powf`` and LLVM's libm ``powf``
  may round differently in the last ulp.

Theoretical knife-edges (never observed in the suites, documented for
completeness): a color-band difference can flip ``acc_a >= ert_alpha``
or ``acc_a > alpha_eps`` (with a nonzero ``alpha_eps``) exactly at the
threshold, changing a termination point or a kept-set membership by one
ulp of accumulated alpha.  The default configs (``alpha_eps=0``) are
immune to the latter by the structural argument above.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = [
    "KERNEL_CHOICES",
    "KernelSpec",
    "MarchPlan",
    "available_backends",
    "resolve_kernel",
]

#: Accepted values of ``RenderConfig.kernel`` / ``--kernel``.
KERNEL_CHOICES = ("auto", "numpy", "numba")

# "auto" fell back to numpy: warn once per process, not once per brick.
_FALLBACK_WARNED = False


@dataclass
class MarchPlan:
    """Everything one blocked march needs, prepared by ``raycast_brick``.

    Inputs are read-only to the kernel; ``acc_rgb``/``acc_a``/``term``
    are the per-active-ray accumulators the kernel mutates in place.
    ``march`` returns the owned-sample count (pre-elision) so the caller
    can charge ``MapStats.n_samples`` uniformly across backends.
    """

    # Volume payload.
    data: np.ndarray  # 3-D payload (shading's gradient taps)
    flat: np.ndarray  # contiguous ravel of ``data``
    shape: tuple  # payload dims (nx, ny, nz)
    need_clamp: bool  # fold clamp-to-edge into the coordinates?
    # Per-active-ray march state.
    counts: np.ndarray  # (n,) int64 owned sample counts
    t0: np.ndarray  # (n,) float32 t of each ray's first owned sample
    dirs: np.ndarray  # (n, 3) float32 ray directions
    base_w: np.ndarray  # (3,) float32 lattice origin (eye − data_lo − ½)
    dt: float  # step length (voxel units)
    block_size: int
    use_ert: bool
    ert_alpha: float
    # Empty-space machinery (both optional; both conservative).
    u_thr: float  # exact filter threshold (−1: none, +inf: all empty)
    skip_table: Optional[np.ndarray]  # flat corner-max table, or None
    spans: Optional[tuple]  # macro-grid CSR (row_ptr, j0, j1), or None
    # Classification + shading.
    tf: "TransferFunction1D"  # noqa: F821 - transfer.TransferFunction1D
    shading: bool
    # Outputs (mutated in place).
    acc_rgb: np.ndarray  # (n, 3) float32
    acc_a: np.ndarray  # (n,) float32
    term: np.ndarray  # (n,) bool


@dataclass(frozen=True)
class KernelSpec:
    """A resolved march backend.

    ``march(plan) -> owned_samples`` runs one brick's blocked march;
    ``warmup()`` performs any one-time compilation (a no-op for numpy,
    the JIT compile for numba) so pool workers can pay it at spawn,
    off the frame critical path.
    """

    name: str
    march: Callable[[MarchPlan], int]
    warmup: Callable[[], None]


def available_backends() -> tuple[str, ...]:
    """Concrete backends importable in this process (numpy always is)."""
    from . import numba_backend

    return ("numpy", "numba") if numba_backend.available() else ("numpy",)


def resolve_kernel(name: str = "auto", *, warn: bool = True) -> KernelSpec:
    """Resolve a ``RenderConfig.kernel`` value to a concrete backend.

    ``"numpy"`` and ``"numba"`` are strict: the numba backend raises a
    ``RuntimeError`` with install guidance when numba is missing (a
    pinned backend must never silently change — pool workers rely on
    this to fail fast instead of diverging from their parent).
    ``"auto"`` prefers numba and falls back to numpy with one
    per-process :class:`RuntimeWarning` (suppressed with
    ``warn=False`` — e.g. environment probes).
    """
    global _FALLBACK_WARNED
    if name not in KERNEL_CHOICES:
        raise ValueError(
            f"kernel must be one of {KERNEL_CHOICES}, got {name!r}"
        )
    from . import numba_backend, numpy_backend

    if name == "numpy":
        return numpy_backend.SPEC
    if name == "numba":
        if not numba_backend.available():
            raise RuntimeError(
                "kernel='numba' requested but numba is not importable "
                f"({numba_backend.import_error()!r}); install it with "
                "`pip install -e .[numba]` or select kernel='auto' / "
                "'numpy'"
            )
        return numba_backend.SPEC
    # auto
    if numba_backend.available():
        return numba_backend.SPEC
    if warn and not _FALLBACK_WARNED:
        _FALLBACK_WARNED = True
        warnings.warn(
            "kernel='auto': numba is not importable — falling back to "
            "the numpy march kernel (install the compiled backend with "
            "`pip install -e .[numba]`)",
            RuntimeWarning,
            stacklevel=2,
        )
    return numpy_backend.SPEC
