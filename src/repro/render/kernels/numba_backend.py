"""The numba march backend — fused per-ray JIT march loops.

One ``@njit(cache=True, fastmath=False)`` kernel walks each active ray
sample by sample, fusing what the numpy fold does in separate
array passes — positioning, skip-table probe, trilinear gather, transfer
lookup, opacity correction, optional Phong shading, and the
front-to-back fold with block-granular ERT — into a single loop with no
intermediate arrays and no interpreter dispatch.

Parity discipline (see the package docstring for the full contract):
every arithmetic step mirrors the numpy backend's *actual* mixed
precision under NumPy 2 promotion rules — positions and trilinear lerps
ride float64 (``int32 * float32-scalar`` promotes), corner differences
and everything downstream of ``table_coord`` stay float32, truncation
casts and clamp folds are identical — so skip decisions, visible-sample
sets, fragment keys, depths and all ``MapStats`` counters are exact
across backends.  The only divergences are the in-block transmittance
association (sequential product here vs. the numpy doubling scan) and
float32 ``pow``, which band the colors.

``fastmath=False`` is load-bearing: it forbids FMA contraction and
reassociation, keeping the lerp and fold arithmetic bit-compatible with
NumPy's un-fused ufunc loops.

The module imports cleanly without numba (``available()`` → False and
``SPEC.march`` raises); resolution-time fallback lives in
:func:`~repro.render.kernels.resolve_kernel`.  Payloads that are not
float32 (no production volume is) delegate to the numpy backend rather
than compiling a second specialization.
"""

from __future__ import annotations

import numpy as np

from . import KernelSpec, MarchPlan

try:  # pragma: no cover - exercised via the import-blocked tests
    from numba import njit as _njit

    _HAVE_NUMBA = True
    _IMPORT_ERROR: Exception | None = None
except Exception as _exc:  # ImportError, or a broken install
    _HAVE_NUMBA = False
    _IMPORT_ERROR = _exc

    def _njit(*args, **kwargs):  # keep the module importable
        def deco(fn):
            return fn

        return deco


_WARMED = False

_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_BOOL = np.zeros(0, dtype=bool)


def available() -> bool:
    """Whether the compiled backend can actually run here."""
    return _HAVE_NUMBA


def import_error() -> str:
    """Why numba failed to import (empty string when it imported)."""
    return str(_IMPORT_ERROR) if _IMPORT_ERROR is not None else ""


@_njit(cache=True, fastmath=False)
def _sample_rgba(
    flat,
    j,
    t0i,
    dt64,
    dx64,
    dy64,
    dz64,
    dxf,
    dyf,
    dzf,
    bw0,
    bw1,
    bw2,
    nx,
    ny,
    nz,
    sx,
    sy,
    sz,
    clamp,
    table,
    have_table,
    have_filter,
    u_thr,
    tf_table,
    tf_diff,
    tf_scale,
    tf_vmin,
    tf_inv_range,
    dt_is_one,
    dt_pow,
    shading,
):
    """One owned sample: position → probe → gather → TF → shade → (r,g,b,a).

    Returns ``(r, g, b, a, visible)``; ``visible=False`` means the
    sample was elided by the skip-table probe or the exact per-sample
    filter — exactly the samples the numpy fold drops before its scan.
    Precision mirrors the numpy path op for op (see module docstring).
    """
    f0 = np.float32(0.0)
    f1 = np.float32(1.0)
    # t_flat = t0 + j * dt: int32 * f32-scalar promotes to float64.
    t = t0i + np.float64(j) * dt64
    cx = np.float64(bw0) + t * dx64
    cy = np.float64(bw1) + t * dy64
    cz = np.float64(bw2) + t * dz64
    if clamp:
        hix = np.float64(np.float32(nx - 1))
        hiy = np.float64(np.float32(ny - 1))
        hiz = np.float64(np.float32(nz - 1))
        if cx < 0.0:
            cx = 0.0
        elif cx > hix:
            cx = hix
        if cy < 0.0:
            cy = 0.0
        elif cy > hiy:
            cy = hiy
        if cz < 0.0:
            cz = 0.0
        elif cz > hiz:
            cz = hiz
        ix = int(cx)
        iy = int(cy)
        iz = int(cz)
        mx = nx - 2 if nx >= 2 else 0
        my = ny - 2 if ny >= 2 else 0
        mz = nz - 2 if nz >= 2 else 0
        if ix > mx:
            ix = mx
        if iy > my:
            iy = my
        if iz > mz:
            iz = mz
    else:
        ix = int(cx)
        iy = int(cy)
        iz = int(cz)
    # fx = cx − ix: float64 − int32 array promotes to float64.
    fx = cx - np.float64(ix)
    fy = cy - np.float64(iy)
    fz = cz - np.float64(iz)
    base = (ix * ny + iy) * nz + iz
    if have_table and not table[base]:
        return f0, f0, f0, f0, False
    val = _gather_mixed(flat, base, sx, sy, sz, fx, fy, fz)
    # table_coord: cast to f32, optional rescale, clip, scale to [0, N−1].
    v = np.float32(val)
    if tf_scale:
        v = (v - tf_vmin) * tf_inv_range
    if v < f0:
        v = f0
    elif v > f1:
        v = f1
    u = v * np.float32(tf_table.shape[0] - 1)
    if have_filter and not (u > u_thr):
        return f0, f0, f0, f0, False
    # lookup_from_u.
    i0 = int(u)
    res2 = tf_table.shape[0] - 2
    if i0 > res2:
        i0 = res2
    fu = u - np.float32(i0)
    r = tf_table[i0, 0] + fu * tf_diff[i0, 0]
    g = tf_table[i0, 1] + fu * tf_diff[i0, 1]
    b = tf_table[i0, 2] + fu * tf_diff[i0, 2]
    a = tf_table[i0, 3] + fu * tf_diff[i0, 3]
    if shading:
        r, g, b = _shade(
            flat, nx, ny, nz, sx, sy, sz, cx, cy, cz, dxf, dyf, dzf, r, g, b
        )
    # opacity_correction (python-float operands are weak → float32).
    c9999 = np.float32(0.9999)
    if a > c9999:
        a = c9999
    if not dt_is_one:
        # The f32 cast pins the pow result width (np.power stays f32).
        a = f1 - np.float32((f1 - a) ** dt_pow)
    return r, g, b, a, True


@_njit(cache=True, fastmath=False)
def _gather_mixed(flat, base, sx, sy, sz, fx, fy, fz):
    """The trilinear lerp tree in numpy's actual mixed precision.

    Corner differences are float32 (f32 − f32); each lerp then promotes
    through the float64 fraction — ``v + f*(v' − v)`` with ``f`` float64
    — exactly as the vectorized ``_trilinear_gather`` computes it.
    """
    v000 = flat[base]
    v001 = flat[base + sz]
    v010 = flat[base + sy]
    v011 = flat[base + sy + sz]
    b1 = base + sx
    v100 = flat[b1]
    v101 = flat[b1 + sz]
    v110 = flat[b1 + sy]
    v111 = flat[b1 + sy + sz]
    c00 = np.float64(v000) + fz * np.float64(v001 - v000)
    c01 = np.float64(v010) + fz * np.float64(v011 - v010)
    c10 = np.float64(v100) + fz * np.float64(v101 - v100)
    c11 = np.float64(v110) + fz * np.float64(v111 - v110)
    c0 = c00 + fy * (c01 - c00)
    c1 = c10 + fy * (c11 - c10)
    return c0 + fx * (c1 - c0)


@_njit(cache=True, fastmath=False)
def _tap(flat, nx, ny, nz, sx, sy, sz, tx, ty, tz):
    """One gradient stencil tap: ``trilinear_sample`` at f32 coords.

    ``t*`` are the already-f32 lattice coords (tap − ½); the prep always
    clamps, and its ``fx`` is float64 (f32 array − int32 array), feeding
    the same mixed-precision lerp tree as the main gather.
    """
    f0 = np.float32(0.0)
    hx = np.float32(nx - 1)
    hy = np.float32(ny - 1)
    hz = np.float32(nz - 1)
    if tx < f0:
        tx = f0
    elif tx > hx:
        tx = hx
    if ty < f0:
        ty = f0
    elif ty > hy:
        ty = hy
    if tz < f0:
        tz = f0
    elif tz > hz:
        tz = hz
    ix = int(tx)
    iy = int(ty)
    iz = int(tz)
    mx = nx - 2 if nx >= 2 else 0
    my = ny - 2 if ny >= 2 else 0
    mz = nz - 2 if nz >= 2 else 0
    if ix > mx:
        ix = mx
    if iy > my:
        iy = my
    if iz > mz:
        iz = mz
    fx = np.float64(tx) - np.float64(ix)
    fy = np.float64(ty) - np.float64(iy)
    fz = np.float64(tz) - np.float64(iz)
    base = (ix * ny + iy) * nz + iz
    return _gather_mixed(flat, base, sx, sy, sz, fx, fy, fz)


@_njit(cache=True, fastmath=False)
def _shade(flat, nx, ny, nz, sx, sy, sz, cx, cy, cz, dxf, dyf, dzf, r, g, b):
    """Headlight Phong with the default :class:`PhongParams`.

    Mirrors ``central_gradient`` + ``shade_phong``: the sample position
    is the float64 lattice coord + ½, the six ±½ taps are computed in
    float64 then cast to float32 per tap (the vectorized path's
    ``asarray(taps, f32)``), each tap re-subtracts the f32 half, and the
    Phong algebra runs in float32 with ``add.reduce``'s left-to-right
    sum order.
    """
    f0 = np.float32(0.0)
    f1 = np.float32(1.0)
    half = np.float32(0.5)
    # pos = lattice coord + f32(0.5) → float64.
    px = cx + np.float64(half)
    py = cy + np.float64(half)
    pz = cz + np.float64(half)
    h = 0.5
    vpx = _tap(flat, nx, ny, nz, sx, sy, sz, np.float32(px + h) - half, np.float32(py) - half, np.float32(pz) - half)
    vpy = _tap(flat, nx, ny, nz, sx, sy, sz, np.float32(px) - half, np.float32(py + h) - half, np.float32(pz) - half)
    vpz = _tap(flat, nx, ny, nz, sx, sy, sz, np.float32(px) - half, np.float32(py) - half, np.float32(pz + h) - half)
    vmx = _tap(flat, nx, ny, nz, sx, sy, sz, np.float32(px - h) - half, np.float32(py) - half, np.float32(pz) - half)
    vmy = _tap(flat, nx, ny, nz, sx, sy, sz, np.float32(px) - half, np.float32(py - h) - half, np.float32(pz) - half)
    vmz = _tap(flat, nx, ny, nz, sx, sy, sz, np.float32(px) - half, np.float32(py) - half, np.float32(pz - h) - half)
    # grad = (v₊ − v₋) / f32(2h) with 2h = 1: exact; then the f32 cast.
    gx = np.float32(vpx - vmx)
    gy = np.float32(vpy - vmy)
    gz = np.float32(vpz - vmz)
    mag = np.sqrt((gx * gx + gy * gy) + gz * gz)
    if not (mag > np.float32(1e-4)):  # gradient_epsilon: pass unshaded
        return r, g, b
    nxn = gx / mag
    nyn = gy / mag
    nzn = gz / mag
    lx = -dxf
    ly = -dyf
    lz = -dzf
    ndotl = abs((nxn * lx + nyn * ly) + nzn * lz)
    spec = np.float32(ndotl ** np.float32(24.0))  # shininess
    factor = np.float32(0.25) + np.float32(0.65) * ndotl  # ambient+diffuse
    sc = np.float32(0.25)  # specular
    r = r * factor + sc * spec
    g = g * factor + sc * spec
    b = b * factor + sc * spec
    if r < f0:
        r = f0
    elif r > f1:
        r = f1
    if g < f0:
        g = f0
    elif g > f1:
        g = f1
    if b < f0:
        b = f0
    elif b > f1:
        b = f1
    return r, g, b


@_njit(cache=True, fastmath=False)
def _march_rays(
    flat,
    nx,
    ny,
    nz,
    clamp,
    counts,
    t0,
    dirs,
    bw0,
    bw1,
    bw2,
    dt64,
    dt_pow,
    dt_is_one,
    K,
    use_ert,
    ert_alpha,
    u_thr,
    have_filter,
    table,
    have_table,
    row_ptr,
    sj0,
    sj1,
    have_spans,
    tf_table,
    tf_diff,
    tf_scale,
    tf_vmin,
    tf_inv_range,
    shading,
    acc_rgb,
    acc_a,
    term,
):
    """March every active ray; returns the owned-sample count.

    Per ray, per ``K``-sample block window: accumulate the visible
    samples into block-local partial sums with a sequential running
    transmittance, fold them through ``t_prior = 1 − acc_a`` (the same
    two-level accumulation the numpy backend's scan + ``reduceat``
    fold performs), then apply block-granular ERT.
    """
    f0 = np.float32(0.0)
    f1 = np.float32(1.0)
    sx = ny * nz if nx > 1 else 0
    sy = nz if ny > 1 else 0
    sz = 1 if nz > 1 else 0
    owned = 0
    n = counts.shape[0]
    for i in range(n):
        cnt_i = counts[i]
        if cnt_i <= 0:
            continue
        t0i = np.float64(t0[i])
        dxf = dirs[i, 0]
        dyf = dirs[i, 1]
        dzf = dirs[i, 2]
        dx64 = np.float64(dxf)
        dy64 = np.float64(dyf)
        dz64 = np.float64(dzf)
        s_lo = 0
        s_hi = 0
        if have_spans:
            s_lo = row_ptr[i]
            s_hi = row_ptr[i + 1]
        jb = 0
        while jb < cnt_i:
            m = cnt_i - jb
            if m > K:
                m = K
            owned += m
            c_r = f0
            c_g = f0
            c_b = f0
            c_w = f0
            btrans = f1
            if have_spans:
                for s in range(s_lo, s_hi):
                    a0 = sj0[s]
                    a1 = sj1[s]
                    if a1 <= jb:
                        continue
                    if a0 >= jb + m:
                        break
                    b0 = a0 if a0 > jb else jb
                    b1 = a1 if a1 < jb + m else jb + m
                    for j in range(b0, b1):
                        r, g, b, a, vis = _sample_rgba(
                            flat, j, t0i, dt64, dx64, dy64, dz64,
                            dxf, dyf, dzf, bw0, bw1, bw2,
                            nx, ny, nz, sx, sy, sz, clamp,
                            table, have_table, have_filter, u_thr,
                            tf_table, tf_diff, tf_scale, tf_vmin,
                            tf_inv_range, dt_is_one, dt_pow, shading,
                        )
                        if vis:
                            w = btrans * a
                            c_r += w * r
                            c_g += w * g
                            c_b += w * b
                            c_w += w
                            btrans = btrans * (f1 - a)
            else:
                for j in range(jb, jb + m):
                    r, g, b, a, vis = _sample_rgba(
                        flat, j, t0i, dt64, dx64, dy64, dz64,
                        dxf, dyf, dzf, bw0, bw1, bw2,
                        nx, ny, nz, sx, sy, sz, clamp,
                        table, have_table, have_filter, u_thr,
                        tf_table, tf_diff, tf_scale, tf_vmin,
                        tf_inv_range, dt_is_one, dt_pow, shading,
                    )
                    if vis:
                        w = btrans * a
                        c_r += w * r
                        c_g += w * g
                        c_b += w * b
                        c_w += w
                        btrans = btrans * (f1 - a)
            # Fold the block (adding exact zeros for empty blocks is the
            # identity, matching numpy's fold-only-present-rows).
            t_prior = f1 - acc_a[i]
            acc_rgb[i, 0] += t_prior * c_r
            acc_rgb[i, 1] += t_prior * c_g
            acc_rgb[i, 2] += t_prior * c_b
            acc_a[i] += t_prior * c_w
            if use_ert and acc_a[i] >= ert_alpha:
                term[i] = True
                break
            jb += K
    return owned


def march(plan: MarchPlan) -> int:
    """Adapt a :class:`MarchPlan` to the JIT kernel's flat arguments."""
    if not _HAVE_NUMBA:  # resolve_kernel never hands out this spec then
        raise RuntimeError(
            f"numba backend unavailable ({import_error()!r}); "
            "use kernel='auto' or 'numpy'"
        )
    if plan.flat.dtype != np.float32:
        # Non-f32 payloads (none in production) take the oracle path
        # instead of compiling extra specializations.
        from . import numpy_backend

        return numpy_backend.march(plan)
    nx, ny, nz = (int(d) for d in plan.shape)
    tf = plan.tf
    tf_scale = tf.vmin != 0.0 or tf.vmax != 1.0
    if plan.spans is not None:
        row_ptr, sj0, sj1 = (
            np.ascontiguousarray(a, dtype=np.int64) for a in plan.spans
        )
        have_spans = True
    else:
        row_ptr = sj0 = sj1 = _EMPTY_I64
        have_spans = False
    if plan.skip_table is not None:
        table = np.ascontiguousarray(plan.skip_table)
        have_table = True
    else:
        table = _EMPTY_BOOL
        have_table = False
    u_thr = float(plan.u_thr)
    owned = _march_rays(
        np.ascontiguousarray(plan.flat),
        nx,
        ny,
        nz,
        bool(plan.need_clamp),
        np.ascontiguousarray(plan.counts, dtype=np.int64),
        np.ascontiguousarray(plan.t0, dtype=np.float32),
        np.ascontiguousarray(plan.dirs, dtype=np.float32),
        np.float32(plan.base_w[0]),
        np.float32(plan.base_w[1]),
        np.float32(plan.base_w[2]),
        np.float64(np.float32(plan.dt)),  # f32 step widened, like j*dt
        np.float32(plan.dt),  # opacity-correction exponent
        plan.dt == 1.0,
        int(plan.block_size),
        bool(plan.use_ert),
        np.float32(plan.ert_alpha),
        np.float32(u_thr),
        u_thr >= 0,
        table,
        have_table,
        row_ptr,
        sj0,
        sj1,
        have_spans,
        tf.table,
        tf._diff,
        tf_scale,
        np.float32(tf.vmin),
        np.float32(1.0 / (tf.vmax - tf.vmin)) if tf_scale else np.float32(1.0),
        bool(plan.shading),
        plan.acc_rgb,
        plan.acc_a,
        plan.term,
    )
    return int(owned)


def warmup() -> None:
    """Force the one-time JIT compile (idempotent, per process).

    Pool workers call this at spawn — inside a ``kernel-warmup`` tracer
    span — so the first frame never pays compilation latency.  One call
    covers every runtime branch (spans/table/shading/ERT are plain
    booleans, not specializations); only the array dtypes select the
    compiled signature, and production payloads are always float32.
    """
    global _WARMED
    if not _HAVE_NUMBA:
        raise RuntimeError(
            f"numba backend unavailable ({import_error()!r}); "
            "cannot warm up"
        )
    if _WARMED:
        return
    rng = np.random.default_rng(0)
    data = rng.random((4, 4, 4), dtype=np.float32)
    tf_table = np.linspace(0.0, 1.0, 32, dtype=np.float32)[:, None].repeat(
        4, axis=1
    )
    tf_table[:8, 3] = 0.0  # a leading zero-alpha run, so the filter runs
    tf_diff = tf_table[1:] - tf_table[:-1]
    n = 2
    acc_rgb = np.zeros((n, 3), dtype=np.float32)
    acc_a = np.zeros(n, dtype=np.float32)
    term = np.zeros(n, dtype=bool)
    _march_rays(
        data.ravel(), 4, 4, 4, True,
        np.array([6, 6], dtype=np.int64),
        np.full(n, 0.25, dtype=np.float32),
        np.tile(np.array([[0.6, 0.5, 0.4]], dtype=np.float32), (n, 1)),
        np.float32(0.0), np.float32(0.0), np.float32(0.0),
        np.float64(0.5), np.float32(0.5), False,
        2, True, np.float32(0.98), np.float32(7.0), True,
        np.ones(64, dtype=bool), True,
        np.array([0, 1, 2], dtype=np.int64),
        np.array([0, 1], dtype=np.int64),
        np.array([5, 6], dtype=np.int64),
        True,
        tf_table, tf_diff, False, np.float32(0.0), np.float32(1.0),
        True, acc_rgb, acc_a, term,
    )
    _WARMED = True


SPEC = KernelSpec(name="numba", march=march, warmup=warmup)
