"""The numpy march backend — the blocked vectorized fold, verbatim.

This is the loop ``raycast_brick`` has always run (see the raycast
module docstring for the blocked-march design), moved behind the
:class:`~repro.render.kernels.KernelSpec` contract as a pure refactor:
same arrays, same operation order, bitwise-identical output by
construction.  It is the conformance oracle every other backend is
tested against.
"""

from __future__ import annotations

import numpy as np

from ..compositing import segmented_exclusive_cumprod
from ..raycast import _block_spans_flat, _trilinear_gather, _trilinear_prep
from ..transfer import opacity_correction
from . import KernelSpec, MarchPlan

_F32 = np.float32


def march(plan: MarchPlan) -> int:
    """Run the blocked march; returns the owned-sample count."""
    counts = plan.counts
    t0_c = plan.t0
    d_c = plan.dirs
    base_w = plan.base_w
    dt = _F32(plan.dt)
    K = plan.block_size
    use_ert = plan.use_ert
    ert_alpha = _F32(plan.ert_alpha)
    u_thr = plan.u_thr
    skip_table = plan.skip_table
    spans = plan.spans
    flat = plan.flat
    shape = plan.shape
    need_clamp = plan.need_clamp
    tf = plan.tf
    acc_rgb_c = plan.acc_rgb
    acc_a_c = plan.acc_a
    term = plan.term
    n_act = len(counts)
    owned = 0

    max_cnt = int(counts.max()) if n_act else 0
    jb = 0
    while jb < max_cnt:
        alive = (counts > jb) & ~term
        if not alive.any():
            break
        li = np.nonzero(alive)[0]
        L = len(li)
        cnt = np.minimum(counts[li] - jb, K)
        m_all = int(cnt.sum())
        # Every *owned* sample of the block is counted before any
        # empty-space elision (table or grid) — the counters are part of
        # the bitwise parity contract across accel modes and backends.
        owned += m_all
        if spans is None:
            # Flat (ray, step) list straight from the ownership intervals.
            rows = np.repeat(np.arange(L, dtype=np.int32), cnt)
            off = np.zeros(L, dtype=np.int32)
            np.cumsum(cnt[:-1], dtype=np.int32, out=off[1:])
            j_flat = (np.arange(m_all, dtype=np.int32) - np.take(off, rows)) + np.int32(jb)
        else:
            # Grid-carved list: only samples inside occupied spans are
            # positioned at all; rows/ordinals keep the uncarved order.
            rows, j_flat = _block_spans_flat(spans, li, cnt, jb)
            if len(rows) == 0:
                jb += K
                continue
        t_flat = np.take(t0_c[li], rows) + j_flat * dt
        drow = np.take(d_c[li], rows, axis=0)
        cx = base_w[0] + t_flat * drow[:, 0]
        cy = base_w[1] + t_flat * drow[:, 1]
        cz = base_w[2] + t_flat * drow[:, 2]
        base, fx, fy, fz = _trilinear_prep(shape, cx, cy, cz, clamp=need_clamp)

        if skip_table is not None:
            # The skip test indexes the table at the exact 2×2×2 support
            # base the trilinear gather uses.
            op = np.nonzero(np.take(skip_table, base))[0]
            if len(op) != len(base):
                base = np.take(base, op)
                fx = np.take(fx, op)
                fy = np.take(fy, op)
                fz = np.take(fz, op)
                rows = np.take(rows, op)
                if plan.shading:
                    cx = np.take(cx, op)
                    cy = np.take(cy, op)
                    cz = np.take(cz, op)
                    drow = np.take(drow, op, axis=0)
        if len(rows) == 0:
            jb += K
            continue

        values = _trilinear_gather(flat, shape, base, fx, fy, fz)
        u = tf.table_coord(values)
        opq = np.nonzero(u > _F32(u_thr))[0] if u_thr >= 0 else np.arange(len(u))
        if len(opq) == 0:
            jb += K
            continue
        u_op = np.take(u, opq)
        rows_op = np.take(rows, opq)
        rgba = tf.lookup_from_u(u_op)
        if plan.shading:
            from ..shading import central_gradient, shade_phong

            pos_op = np.stack(
                [np.take(cx, opq), np.take(cy, opq), np.take(cz, opq)], axis=1
            ) + _F32(0.5)
            grads = central_gradient(plan.data, pos_op)
            rgba[:, :3] = shade_phong(
                rgba[:, :3], grads, np.take(drow, opq, axis=0)
            )
        a = opacity_correction(rgba[:, 3], plan.dt)

        first = np.empty(len(rows_op), dtype=bool)
        first[0] = True
        np.not_equal(rows_op[1:], rows_op[:-1], out=first[1:])
        trans = segmented_exclusive_cumprod(
            _F32(1.0) - a, first, max_run=int(cnt.max())
        )
        w = trans * a
        starts = np.nonzero(first)[0]
        present = np.take(rows_op, starts)  # rows with ≥1 visible sample
        t_prior = _F32(1.0) - acc_a_c[li]
        contrib = np.add.reduceat(w[:, None] * rgba[:, :3], starts, axis=0)
        lip = li[present]
        acc_rgb_c[lip] += t_prior[present, None] * contrib
        acc_a_c[lip] += t_prior[present] * np.add.reduceat(w, starts)

        if use_ert:
            done = acc_a_c[li] >= ert_alpha
            if done.any():
                term[li[done]] = True
        jb += K
    return owned


def warmup() -> None:
    """Nothing to compile for the numpy fold."""


SPEC = KernelSpec(name="numpy", march=march, warmup=warmup)
