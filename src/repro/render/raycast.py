"""The ray-casting map kernel.

This is the functional equivalent of the paper's CUDA kernel (§3.2):

* rays are generated for the (block-padded) sub-image the chunk projects
  onto — one "thread" per pixel;
* all rays are intersected against the brick's bounding box and
  non-intersecting rays are immediately discarded;
* surviving rays advance with **fixed increments** and non-adaptive
  **trilinear** sampling, apply the 1-D transfer function per sample, and
  accumulate **front-to-back** with early ray termination;
* each ray emits one fragment (key = pixel index, value = depth +
  premultiplied RGBA); useless rays emit a placeholder.

Global-t sampling
-----------------
Sample positions are ``t_k = t_volume_entry + (k + ½)·dt`` where
``t_volume_entry`` is the ray's entry into the *full volume* box — a
quantity every brick computes identically.  A sample is *owned* by the
brick whose half-open core contains it.  Owned samples therefore
partition each ray exactly, so compositing the per-brick fragments in
depth order reproduces the single-pass image bit-for-bit (up to float
associativity).  This is the invariant the whole MapReduce pipeline is
tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from .camera import Camera, PixelRect
from .fragments import (
    FRAGMENT_DTYPE,
    PLACEHOLDER_KEY,
    empty_fragments,
    make_fragments,
)
from .geometry import box_contains, ray_box_intersect
from .transfer import TransferFunction1D, opacity_correction

__all__ = ["RenderConfig", "MapStats", "raycast_brick", "trilinear_sample"]


@dataclass(frozen=True)
class RenderConfig:
    """Knobs of the ray-cast kernel.

    ``dt`` is the fixed step in voxel units.  ``ert_alpha`` is the early
    ray-termination threshold applied to the alpha accumulated *within
    the current brick* (a distributed renderer cannot see upstream
    bricks' opacity); set it to 1.0 to disable termination, which makes
    the bricked render exactly equal to the reference.  ``alpha_eps``
    controls fragment discard — fragments with accumulated alpha at or
    below it carry no visible contribution and are dropped, exactly the
    paper's "ray fragments with no contributions are discarded".
    """

    dt: float = 0.5
    ert_alpha: float = 0.98
    alpha_eps: float = 0.0
    pad_to_block: bool = True
    emit_placeholders: bool = False
    shading: bool = False  # Levoy-style gradient Phong shading

    def __post_init__(self):
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if not 0 < self.ert_alpha <= 1.0:
            raise ValueError("ert_alpha must be in (0, 1]")
        if self.alpha_eps < 0:
            raise ValueError("alpha_eps must be non-negative")

    @property
    def fetches_per_sample(self) -> int:
        """Texture fetches per sample point (drives the GPU cost model):
        1 for the scalar, plus 6 for the central-difference gradient."""
        return 7 if self.shading else 1


@dataclass
class MapStats:
    """Work counters of one kernel execution (drive the cost models)."""

    n_rays: int = 0  # padded thread count launched
    n_active_rays: int = 0  # rays that hit the brick box
    n_samples: int = 0  # trilinear samples taken
    n_emitted: int = 0  # key-value pairs written (incl. placeholders)
    n_kept: int = 0  # fragments surviving the contribution discard

    def merge(self, other: "MapStats") -> "MapStats":
        return MapStats(
            self.n_rays + other.n_rays,
            self.n_active_rays + other.n_active_rays,
            self.n_samples + other.n_samples,
            self.n_emitted + other.n_emitted,
            self.n_kept + other.n_kept,
        )


def trilinear_sample(data: np.ndarray, local_pos: np.ndarray) -> np.ndarray:
    """Trilinear interpolation on the voxel-center lattice, clamp addressing.

    ``local_pos`` is ``(M, 3)`` in the data block's local world
    coordinates (voxel ``i`` spans ``[i, i+1)``, its center at ``i+0.5``).
    Matches CUDA 3D-texture filtering with clamp-to-edge.
    """
    c = np.asarray(local_pos, dtype=np.float64) - 0.5
    i0 = np.floor(c).astype(np.int64)
    f = (c - i0).astype(np.float32)
    nx, ny, nz = data.shape
    x0 = np.clip(i0[:, 0], 0, nx - 1)
    y0 = np.clip(i0[:, 1], 0, ny - 1)
    z0 = np.clip(i0[:, 2], 0, nz - 1)
    x1 = np.clip(i0[:, 0] + 1, 0, nx - 1)
    y1 = np.clip(i0[:, 1] + 1, 0, ny - 1)
    z1 = np.clip(i0[:, 2] + 1, 0, nz - 1)
    fx, fy, fz = f[:, 0], f[:, 1], f[:, 2]
    gx, gy, gz = 1.0 - fx, 1.0 - fy, 1.0 - fz
    return (
        data[x0, y0, z0] * (gx * gy * gz)
        + data[x1, y0, z0] * (fx * gy * gz)
        + data[x0, y1, z0] * (gx * fy * gz)
        + data[x0, y0, z1] * (gx * gy * fz)
        + data[x1, y1, z0] * (fx * fy * gz)
        + data[x1, y0, z1] * (fx * gy * fz)
        + data[x0, y1, z1] * (gx * fy * fz)
        + data[x1, y1, z1] * (fx * fy * fz)
    )


def raycast_brick(
    data: np.ndarray,
    data_lo: tuple[int, int, int],
    core_lo: tuple[int, int, int],
    core_hi: tuple[int, int, int],
    volume_shape: tuple[int, int, int],
    camera: Camera,
    tf: TransferFunction1D,
    config: RenderConfig = RenderConfig(),
    rect: Optional[PixelRect] = None,
) -> tuple[np.ndarray, MapStats]:
    """Ray cast one ghost-padded brick; return (fragments, stats).

    Parameters mirror a :class:`~repro.volume.bricking.Brick`: ``data`` is
    the padded payload starting at voxel ``data_lo``; the half-open core
    is ``[core_lo, core_hi)``; ``volume_shape`` defines the global box
    used for the shared ray parametrisation.
    """
    stats = MapStats()
    core_lo_w = np.asarray(core_lo, dtype=np.float64)
    core_hi_w = np.asarray(core_hi, dtype=np.float64)
    vol_lo = np.zeros(3)
    vol_hi = np.asarray(volume_shape, dtype=np.float64)

    if rect is None:
        corners = np.array(
            [
                [
                    (core_lo_w[0], core_hi_w[0])[(c >> 0) & 1],
                    (core_lo_w[1], core_hi_w[1])[(c >> 1) & 1],
                    (core_lo_w[2], core_hi_w[2])[(c >> 2) & 1],
                ]
                for c in range(8)
            ]
        )
        rect = camera.brick_rect(corners, pad_to_block=config.pad_to_block)
    if rect.empty:
        return empty_fragments(), stats

    origins, dirs, keys = camera.rays_for_rect(rect)
    n = len(keys)
    stats.n_rays = n

    tn_b, tf_b, hit_b = ray_box_intersect(origins, dirs, core_lo_w, core_hi_w)
    tn_v, _, hit_v = ray_box_intersect(origins, dirs, vol_lo, vol_hi)
    active = hit_b & hit_v & (tf_b > tn_b)
    stats.n_active_rays = int(active.sum())
    if not np.any(active):
        if config.emit_placeholders:
            stats.n_emitted = n
            ph = make_fragments(
                np.full(n, PLACEHOLDER_KEY, np.int32),
                np.zeros(n, np.float32),
                np.zeros((n, 4), np.float32),
            )
            return ph, stats
        return empty_fragments(), stats

    dt = config.dt
    # Conservative global sample-index range touching the brick.
    k_lo = np.where(active, np.floor((tn_b - tn_v) / dt - 1.0), 0).astype(np.int64)
    k_lo = np.maximum(k_lo, 0)
    k_hi = np.where(active, np.ceil((tf_b - tn_v) / dt + 1.0), -1).astype(np.int64)

    # Per-ray accumulators (premultiplied colour, alpha).
    acc_rgb = np.zeros((n, 3), dtype=np.float32)
    acc_a = np.zeros(n, dtype=np.float32)
    first_t = np.full(n, np.inf, dtype=np.float64)
    terminated = np.zeros(n, dtype=bool)

    k = int(k_lo[active].min())
    k_end = int(k_hi[active].max())
    while k <= k_end:
        live = active & ~terminated & (k_lo <= k) & (k <= k_hi)
        if not np.any(live):
            # All rays currently out of range or done; jump to the next
            # ray's range start if any remain.
            remaining = active & ~terminated & (k_lo > k)
            if not np.any(remaining):
                break
            k = int(k_lo[remaining].min())
            continue
        idx = np.nonzero(live)[0]
        t = tn_v[idx] + (k + 0.5) * dt
        p = origins[idx] + t[:, None] * dirs[idx]
        owned = box_contains(p, core_lo_w, core_hi_w)
        if np.any(owned):
            oi = idx[owned]
            po = p[owned]
            local = po - np.asarray(data_lo, dtype=np.float64)[None, :]
            values = trilinear_sample(data, local)
            stats.n_samples += len(oi) * config.fetches_per_sample
            rgba = tf.lookup(values)
            if config.shading:
                from .shading import central_gradient, shade_phong

                grads = central_gradient(data, local)
                rgba = rgba.copy()
                rgba[:, :3] = shade_phong(rgba[:, :3], grads, dirs[oi])
            a = opacity_correction(rgba[:, 3], dt)
            one_m = 1.0 - acc_a[oi]
            acc_rgb[oi] += (one_m * a)[:, None] * rgba[:, :3]
            acc_a[oi] += one_m * a
            # Record the depth of the first owned sample.
            first_t[oi] = np.minimum(first_t[oi], t[owned])
            if config.ert_alpha < 1.0:
                done = acc_a[oi] >= config.ert_alpha
                if np.any(done):
                    terminated[oi[done]] = True
        k += 1

    contributed = np.isfinite(first_t) & (acc_a > config.alpha_eps)
    stats.n_emitted = n if config.emit_placeholders else int(contributed.sum())
    stats.n_kept = int(contributed.sum())

    if config.emit_placeholders:
        pix = np.where(contributed, keys, PLACEHOLDER_KEY).astype(np.int32)
        depth = np.where(contributed, first_t, 0.0).astype(np.float32)
        rgba = np.concatenate([acc_rgb, acc_a[:, None]], axis=1)
        rgba[~contributed] = 0.0
        return make_fragments(pix, depth, rgba), stats

    sel = np.nonzero(contributed)[0]
    rgba = np.concatenate([acc_rgb[sel], acc_a[sel, None]], axis=1)
    return (
        make_fragments(keys[sel], first_t[sel].astype(np.float32), rgba),
        stats,
    )
