"""The ray-casting map kernel — a blocked, fully vectorized marcher.

This is the functional equivalent of the paper's CUDA kernel (§3.2):

* rays are generated for the (block-padded) sub-image the chunk projects
  onto — one "thread" per pixel;
* all rays are intersected against the brick's bounding box and
  non-intersecting rays are immediately discarded;
* surviving rays advance with **fixed increments** and non-adaptive
  **trilinear** sampling, apply the 1-D transfer function per sample, and
  accumulate **front-to-back** with early ray termination;
* each ray emits one fragment (key = pixel index, value = depth +
  premultiplied RGBA); useless rays emit a placeholder.

Global-t sampling and interval ownership
----------------------------------------
Sample positions are ``t_k = t_volume_entry + (k + ½)·dt`` where
``t_volume_entry`` is the ray's entry into the *full volume* box — a
quantity every brick computes identically.  A brick owns the contiguous
run of sample indices ``k ∈ [k_first, k_last)`` carved out of its
slab-test interval ``[t_near, t_far)`` by one shared formula
(``ceil((t − t_volume_entry)/dt − ½)``).  Because two face-adjacent
bricks compute the shared face's t-value with bitwise-identical
arithmetic, ``k_last`` of one brick equals ``k_first`` of the next: the
per-brick runs partition every ray exactly, with no per-sample
containment test at all, so compositing the per-brick fragments in depth
order reproduces the single-pass image (up to float32 associativity).
This is the invariant the whole MapReduce pipeline is tested against.
(The one theoretical exception is a ray travelling exactly parallel to
and *inside* a shared brick face, which both bricks claim; cameras with
finite-precision normalized directions do not produce such rays.)

Blocked marching
----------------
Instead of advancing one global sample index per Python-interpreter
iteration, the marcher processes each live ray's next ``block_size``
owned samples at once and amortizes interpreter dispatch over the whole
block:

* the flat sample list of a block is built directly from the ownership
  intervals (``np.repeat`` over per-ray counts — ownership is a mask by
  construction, not a test);
* one flattened trilinear gather fetches all samples (ravel-offset
  ``np.take`` on ``data.ravel()`` — no 3-D fancy indexing);
* a conservative corner-max empty-space table (built per call when the
  sample count warrants it) drops samples whose transfer-function alpha
  is provably exactly zero *before* the gather — a pure win that cannot
  change the image;
* one batched transfer-function lookup colours the surviving samples;

Macro-cell empty-space grid (``accel="grid"``)
----------------------------------------------
The corner-max table still *positions* every owned sample before it can
discard one.  The macro grid goes coarser: the brick is partitioned into
``macro_cell_size``³ cells carrying min/max scalar ranges, cells whose
entire padded range provably maps into the transfer function's leading
zero-alpha run are classified empty
(:func:`repro.render.accel.build_macro_grid`), and each ray DDA-walks
the cell grid once (:func:`_macro_grid_spans`) to carve its owned sample
interval down to occupied spans **before the blocked march** — skipped
spans never compute positions, never probe the corner-max table, never
gather.

Conservative-skip proof obligation: the grid path must be **bitwise
identical** to ``accel="off"``, counters included.  Three facts carry
it:  (1) a cell is marked empty only when every sample it can produce —
under the march's own float32 arithmetic, clamping included — satisfies
the kernel's exact per-sample filter ``u <= u_thr`` (see
``build_macro_grid`` for the two safety margins), so carving removes
only samples every other path also removes before the transmittance
scan, leaving the scan's operand list — and hence float association —
unchanged;  (2) the block structure is preserved: spans are intersected
with the same ``block_size`` windows, so partial accumulator folds and
block-granular ERT checks happen at the same points with the same
values;  (3) ``MapStats.n_samples`` counts every *owned* sample of each
live block before any elision (exactly as the table path always has),
so the counters cannot see the skip either.  ``accel="table"`` keeps
the PR-1 behaviour; ``accel="off"`` disables both structures and is the
conformance oracle.

* front-to-back accumulation along each ray is closed-form: the
  transmittance in front of every sample is a segmented exclusive
  product scan of ``(1 − α)`` scaled by the transmittance carried in
  from earlier blocks, so a block folds into the accumulators with a
  handful of array ops.

Early ray termination runs at **block granularity**: after each block,
rays whose accumulated alpha reached ``ert_alpha`` stop marching.
Within a block all owned samples are processed (and counted in
``MapStats.n_samples``), so a larger ``block_size`` trades per-block
dispatch overhead against samples marched past the termination point.
``block_size=1`` reproduces classic per-step termination exactly; the
default of 8 covers a typical 16³-brick crossing in one or two blocks
while keeping ERT waste low.  Raise it to 32–64 when termination is
disabled (reference renders) or content is mostly transparent; drop
toward 1 for dense, high-opacity transfer functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .camera import Camera, PixelRect
from .fragments import PLACEHOLDER_KEY, empty_fragments, make_fragments
from .geometry import dual_box_intersect_f32
from .transfer import TransferFunction1D

__all__ = ["RenderConfig", "MapStats", "raycast_brick", "trilinear_sample"]

_F32 = np.float32


@dataclass(frozen=True)
class RenderConfig:
    """Knobs of the ray-cast kernel.

    ``dt`` is the fixed step in voxel units.  ``ert_alpha`` is the early
    ray-termination threshold applied to the alpha accumulated *within
    the current brick* (a distributed renderer cannot see upstream
    bricks' opacity); set it to 1.0 to disable termination, which makes
    the bricked render exactly equal to the reference.  ``alpha_eps``
    controls fragment discard — fragments with accumulated alpha at or
    below it carry no visible contribution and are dropped, exactly the
    paper's "ray fragments with no contributions are discarded".
    ``block_size`` is the number of consecutive owned samples the
    blocked marcher folds per iteration; termination is checked between
    blocks (see the module docstring for the tradeoff).

    ``accel`` selects the empty-space machinery — all three settings are
    bitwise-identical in output and counters (see the module docstring's
    proof obligation): ``"grid"`` (default) DDA-walks a
    ``macro_cell_size``³ macro-cell min/max grid per ray to carve whole
    transparent spans before the march *and* keeps the corner-max table
    for the surviving samples; ``"table"`` is the per-sample corner-max
    probe alone; ``"off"`` disables both (the conformance oracle).

    ``kernel`` selects the march backend behind the kernel contract
    (:mod:`repro.render.kernels`): ``"numpy"`` is the blocked vectorized
    fold (the oracle), ``"numba"`` the compiled per-ray JIT marcher, and
    ``"auto"`` (default) prefers numba when importable, falling back to
    numpy with a single warning.  Fragment keys, depths and all
    ``MapStats`` counters are exact across backends; colors are
    tolerance-banded (see the kernels package docstring).  The macro
    grid / corner-max structures compose with every backend.
    """

    dt: float = 0.5
    ert_alpha: float = 0.98
    alpha_eps: float = 0.0
    pad_to_block: bool = True
    emit_placeholders: bool = False
    shading: bool = False  # Levoy-style gradient Phong shading
    block_size: int = 8
    accel: str = "grid"
    macro_cell_size: int = 8
    kernel: str = "auto"

    def __post_init__(self):
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if not 0 < self.ert_alpha <= 1.0:
            raise ValueError("ert_alpha must be in (0, 1]")
        if self.alpha_eps < 0:
            raise ValueError("alpha_eps must be non-negative")
        if self.block_size < 1:
            raise ValueError("block_size must be at least 1")
        if self.accel not in ("grid", "table", "off"):
            raise ValueError("accel must be one of 'grid', 'table', 'off'")
        if self.macro_cell_size < 1:
            raise ValueError("macro_cell_size must be at least 1")
        if self.kernel not in ("auto", "numpy", "numba"):
            raise ValueError("kernel must be one of 'auto', 'numpy', 'numba'")

    @property
    def fetches_per_sample(self) -> int:
        """Texture fetches per sample point (drives the GPU cost model):
        1 for the scalar, plus 6 for the central-difference gradient."""
        return 7 if self.shading else 1


@dataclass
class MapStats:
    """Work counters of one kernel execution (drive the cost models)."""

    n_rays: int = 0  # padded thread count launched
    n_active_rays: int = 0  # rays that hit the brick box
    n_samples: int = 0  # trilinear samples taken
    n_emitted: int = 0  # key-value pairs written (incl. placeholders)
    n_kept: int = 0  # fragments surviving the contribution discard

    def merge(self, other: "MapStats") -> "MapStats":
        return MapStats(
            self.n_rays + other.n_rays,
            self.n_active_rays + other.n_active_rays,
            self.n_samples + other.n_samples,
            self.n_emitted + other.n_emitted,
            self.n_kept + other.n_kept,
        )


def _trilinear_prep(
    shape: tuple[int, int, int],
    cx: np.ndarray,
    cy: np.ndarray,
    cz: np.ndarray,
    clamp: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(base ravel index, fx, fy, fz) for lattice coords ``c = pos − ½``.

    Clamp-to-edge is folded into the coordinates: clipping ``c`` to
    ``[0, n−1]`` and the base index to ``n−2`` reproduces the classic
    per-corner index clamp (outside samples collapse onto the edge value)
    while keeping the +1 neighbour offsets constant.  Callers that can
    prove every sample's 2×2×2 support lies inside the payload (interior
    bricks with a full ghost shell) pass ``clamp=False`` and skip the
    six clip passes.
    """
    nx, ny, nz = shape
    if clamp:
        cx = np.clip(cx, _F32(0.0), _F32(nx - 1))
        cy = np.clip(cy, _F32(0.0), _F32(ny - 1))
        cz = np.clip(cz, _F32(0.0), _F32(nz - 1))
        ix = np.minimum(cx.astype(np.int32), max(nx - 2, 0))
        iy = np.minimum(cy.astype(np.int32), max(ny - 2, 0))
        iz = np.minimum(cz.astype(np.int32), max(nz - 2, 0))
    else:
        ix = cx.astype(np.int32)
        iy = cy.astype(np.int32)
        iz = cz.astype(np.int32)
    fx = cx - ix
    fy = cy - iy
    fz = cz - iz
    if nx * ny * nz >= 2**31:  # int32 ravel offsets would wrap
        ix = ix.astype(np.int64)
    base = (ix * ny + iy) * nz + iz
    return base, fx, fy, fz


def _trilinear_gather(
    flat: np.ndarray,
    shape: tuple[int, int, int],
    base: np.ndarray,
    fx: np.ndarray,
    fy: np.ndarray,
    fz: np.ndarray,
) -> np.ndarray:
    """Eight ravel-offset ``np.take`` corner fetches + factored lerps."""
    nx, ny, nz = shape
    # Degenerate (size-1) axes collapse the +1 neighbour onto the voxel.
    sx = ny * nz if nx > 1 else 0
    sy = nz if ny > 1 else 0
    sz = 1 if nz > 1 else 0
    v000 = np.take(flat, base)
    v001 = np.take(flat, base + sz)
    v010 = np.take(flat, base + sy)
    v011 = np.take(flat, base + sy + sz)
    base = base + sx
    v100 = np.take(flat, base)
    v101 = np.take(flat, base + sz)
    v110 = np.take(flat, base + sy)
    v111 = np.take(flat, base + sy + sz)
    c00 = v000 + fz * (v001 - v000)
    c01 = v010 + fz * (v011 - v010)
    c10 = v100 + fz * (v101 - v100)
    c11 = v110 + fz * (v111 - v110)
    c0 = c00 + fy * (c01 - c00)
    c1 = c10 + fy * (c11 - c10)
    return c0 + fx * (c1 - c0)


def _trilinear_flat(
    flat: np.ndarray,
    shape: tuple[int, int, int],
    cx: np.ndarray,
    cy: np.ndarray,
    cz: np.ndarray,
) -> np.ndarray:
    """Trilinear filter on raveled data; ``c*`` are lattice coords (pos−½)."""
    base, fx, fy, fz = _trilinear_prep(shape, cx, cy, cz)
    return _trilinear_gather(flat, shape, base, fx, fy, fz)


def trilinear_sample(data: np.ndarray, local_pos: np.ndarray) -> np.ndarray:
    """Trilinear interpolation on the voxel-center lattice, clamp addressing.

    ``local_pos`` is ``(M, 3)`` in the data block's local world
    coordinates (voxel ``i`` spans ``[i, i+1)``, its center at ``i+0.5``).
    Matches CUDA 3D-texture filtering with clamp-to-edge.  Runs in
    float32 with flat ravel-offset gathers (see :func:`_trilinear_flat`).
    """
    c = np.asarray(local_pos, dtype=_F32) - _F32(0.5)
    flat = np.ascontiguousarray(data).ravel()
    return _trilinear_flat(flat, data.shape, c[:, 0], c[:, 1], c[:, 2])


def _sample_intervals(
    tn_brick: np.ndarray,
    tf_brick: np.ndarray,
    tn_volume: np.ndarray,
    dt: float,
) -> tuple[np.ndarray, np.ndarray]:
    """(k_first, count) of the owned global sample indices per ray.

    ``k`` is owned iff ``t_k = tnv + (k+½)·dt`` lies in
    ``[tn_brick, tf_brick)``.  Evaluated with one shared float32 formula
    so adjacent bricks' runs tile each ray exactly (see module docs).
    """
    dt = _F32(dt)
    # int64: a tiny dt over a long ray can exceed int32 sample indices,
    # which would wrap in the cast and silently drop the whole brick.
    kf = np.ceil((tn_brick - tn_volume) / dt - _F32(0.5)).astype(np.int64)
    np.maximum(kf, 0, out=kf)
    kl = np.ceil((tf_brick - tn_volume) / dt - _F32(0.5)).astype(np.int64)
    return kf, np.maximum(kl - kf, 0)


def _empty_space_table(
    data: np.ndarray, tf: TransferFunction1D, u_thr: float
) -> Optional[np.ndarray]:
    """Flat per-voxel table of "some corner of my cell can be visible".

    Entry ``i`` (data ravel order) is False only when the max over the
    2×2×2 corner block at ``i`` maps below the transfer function's first
    non-zero alpha — every trilinear sample based at ``i`` then has alpha
    exactly 0, so skipping it cannot change the image.
    """
    if u_thr < 0:
        return None
    m = np.maximum(data[:-1], data[1:])
    m = np.maximum(m[:, :-1], m[:, 1:])
    m = np.maximum(m[:, :, :-1], m[:, :, 1:])
    table = np.zeros(data.shape, dtype=bool)
    u = tf.table_coord(m.ravel())
    table[: data.shape[0] - 1, : data.shape[1] - 1, : data.shape[2] - 1] = (
        u > _F32(u_thr)
    ).reshape(m.shape)
    return table.ravel()


def _alpha_zero_threshold(tf: TransferFunction1D) -> float:
    """Largest table coordinate below which interpolated alpha is exactly 0.

    Samples with ``u <= u_thr`` interpolate between all-zero alpha table
    entries; returns −1 when the table has no leading zero run and +inf
    when alpha is identically zero.
    """
    nz = np.nonzero(tf.table[:, 3] > 0)[0]
    if len(nz) == 0:
        return np.inf
    if nz[0] == 0:
        return -1.0
    return float(nz[0] - 1)


#: Slack (in samples) the span carve leaves on both sides of every
#: occupied cell interval.  It only has to cover float64 roundoff in the
#: t → sample-ordinal conversion (orders of magnitude below half a
#: sample); positional float32-vs-float64 divergence is absorbed by the
#: classifier's one-voxel support padding instead.  Erring large merely
#: keeps a boundary sample that the exact per-sample filter re-tests
#: anyway.
_SPAN_SLACK = 0.5

_EMPTY_I32 = np.zeros(0, dtype=np.int32)


def _macro_grid_spans(
    occ: np.ndarray,
    cell_size: int,
    base_w: np.ndarray,
    dirs: np.ndarray,
    t0: np.ndarray,
    counts: np.ndarray,
    dt: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Occupied sample spans per ray from one DDA walk of the macro grid.

    ``occ`` is the boolean macro-cell occupancy
    (:func:`~repro.render.accel.build_macro_grid`); ``base_w`` the
    lattice-origin offset ``eye − data_lo − ½`` the march itself uses;
    ``t0``/``counts`` the rays' first-owned-sample t and owned counts.

    Returns a CSR triple ``(row_ptr, j0, j1)``: ray ``i``'s occupied
    spans are the half-open global sample ordinals ``[j0[k], j1[k])``
    for ``k in [row_ptr[i], row_ptr[i+1])``, sorted and non-overlapping.
    Samples outside every span are *provably* dropped by the kernel's
    exact empty-space filter (the classifier's obligation); everything
    questionable — cell-boundary samples, rays that pin against the
    clamped grid edge, walks that exhaust their step budget — errs
    toward keeping.

    Two traversal strategies produce the same conservative span set (the
    kernel's exact filter makes any conservative superset bitwise
    equivalent, so the choice is purely a cost model):

    * **sparse grids** (occupied cells ≲ cells a ray can cross): one
      vectorized slab test of *all* rays against each occupied cell's
      box — O(occupied cells · rays);
    * otherwise a vectorized Amanatides–Woo DDA over the cell-index
      space — O(cells-crossed · rays), independent of occupancy.

    Both run in float64 over the *clamped* trilinear base coordinate
    (grid-edge cells extend to infinity on their outer faces), so a
    sample that clamps onto the payload edge is attributed to the edge
    cell — the same cell whose padded min/max covers the clamped
    support.  Cost never depends on ``dt``.
    """
    n = len(t0)
    gx, gy, gz = occ.shape
    occ_flat = np.ascontiguousarray(occ).ravel()
    cs = float(cell_size)
    dtf = float(dt)
    bw = np.asarray(base_w, dtype=np.float64)
    t_in = t0.astype(np.float64)
    cnt = counts.astype(np.int64)
    t_end = t_in + (cnt - 1) * dtf  # t of each ray's last owned sample

    rows_parts: list = []
    j0_parts: list = []
    j1_parts: list = []

    def emit(rows_idx, t_lo, t_hi, j_hi_cap):
        j0 = np.ceil((t_lo - t_in[rows_idx]) / dtf - _SPAN_SLACK).astype(np.int64)
        j1 = np.floor((t_hi - t_in[rows_idx]) / dtf + _SPAN_SLACK).astype(np.int64) + 1
        np.clip(j0, 0, None, out=j0)
        np.minimum(j1, j_hi_cap, out=j1)
        ok = j1 > j0
        if ok.any():
            rows_parts.append(rows_idx[ok])
            j0_parts.append(j0[ok])
            j1_parts.append(j1[ok])

    occ_cells = np.nonzero(occ_flat)[0]
    max_steps = int(gx + gy + gz + 4)
    gdims = (gx, gy, gz)
    if len(occ_cells) <= max_steps:
        # Sparse path: slab-test every ray against each occupied cell's
        # box once.  Grid-edge cells extend to infinity on their outer
        # faces so clamped positions attribute to them.
        d64 = [dirs[:, a].astype(np.float64) for a in range(3)]
        with np.errstate(divide="ignore"):
            inv = [
                np.where(d64[a] != 0.0, 1.0 / d64[a], np.inf) for a in range(3)
            ]
        zero = [d64[a] == 0.0 for a in range(3)]
        any_zero = [bool(zero[a].any()) for a in range(3)]
        for fc in occ_cells.tolist():
            ci = (fc // (gy * gz), (fc // gz) % gy, fc % gz)
            t_enter, t_exit = t_in, t_end
            for a in range(3):
                lo = -np.inf if ci[a] == 0 else ci[a] * cs
                hi = np.inf if ci[a] == gdims[a] - 1 else (ci[a] + 1) * cs
                # invalid="ignore": a zero-direction lane whose constant
                # coordinate sits exactly on a cell face computes 0·inf
                # here; the zero-lane branch below overwrites those NaNs.
                with np.errstate(invalid="ignore"):
                    t1 = (lo - bw[a]) * inv[a]
                    t2 = (hi - bw[a]) * inv[a]
                tl = np.minimum(t1, t2)
                th = np.maximum(t1, t2)
                if any_zero[a]:
                    # Constant-coordinate rays: in the slab forever or
                    # never (also overwrites any 0·inf NaN above).
                    inside = (bw[a] >= lo) & (bw[a] < hi)
                    tl = np.where(zero[a], -np.inf if inside else np.inf, tl)
                    th = np.where(zero[a], np.inf if inside else -np.inf, th)
                t_enter = np.maximum(t_enter, tl)
                t_exit = np.minimum(t_exit, th)
            er = np.nonzero(t_exit >= t_enter)[0]
            if len(er):
                emit(er, t_enter[er], t_exit[er], cnt[er])
    else:
        # Per-axis contiguous DDA state (a (n, 3) layout would make
        # every walk op strided and every update a fancy-index scatter).
        cell = [None, None, None]
        tmax = [None, None, None]
        tdelta = [None, None, None]
        stepv = [None, None, None]
        for a, nca in ((0, gx), (1, gy), (2, gz)):
            da = dirs[:, a].astype(np.float64)
            pa = bw[a] + t_in * da
            ca = np.floor(pa / cs).astype(np.int64)
            np.clip(ca, 0, nca - 1, out=ca)
            sa = np.sign(da).astype(np.int64)
            with np.errstate(divide="ignore", invalid="ignore"):
                inva = np.where(da != 0.0, 1.0 / da, np.inf)
                tma = np.where(
                    da != 0.0, ((ca + (sa > 0)) * cs - bw[a]) * inva, np.inf
                )
            tda = np.where(da != 0.0, cs * np.abs(inva), np.inf)
            # Init cells clamped from outside the grid can yield a
            # boundary crossing *behind* the first sample; advance such
            # a crossing by whole cell strides so the walk's cell always
            # tracks the clamped base cell of the current position.
            lag = np.nonzero(tma < t_in)[0]
            if len(lag):
                tma[lag] += np.ceil((t_in[lag] - tma[lag]) / tda[lag]) * tda[lag]
            cell[a], tmax[a], tdelta[a], stepv[a] = ca, tma, tda, sa
        cx, cy, cz = cell
        tmx, tmy, tmz = tmax
        tdx, tdy, tdz = tdelta
        sx, sy, sz = stepv

        alive = cnt > 0
        t_cur = t_in.copy()
        # A straight ray crosses at most gx+gy+gz+2 cells; clamped edge
        # riders may burn a few phantom steps, covered by the fallback.
        for _ in range(max_steps):
            if not alive.any():
                break
            tm = np.minimum(np.minimum(tmx, tmy), tmz)
            flat_cell = (cx * gy + cy) * gz + cz
            hit = alive & np.take(occ_flat, flat_cell)
            if hit.any():
                er = np.nonzero(hit)[0]
                emit(er, t_cur[er], np.minimum(tm[er], t_end[er]), cnt[er])
            alive &= tm < t_end
            if not alive.any():
                break
            # Step the min-tmax axis (ties prefer x then y — argmin order).
            mx = alive & (tmx <= tmy) & (tmx <= tmz)
            my = alive & ~mx & (tmy <= tmz)
            mz = alive & ~mx & ~my
            cx = np.clip(np.where(mx, cx + sx, cx), 0, gx - 1)
            cy = np.clip(np.where(my, cy + sy, cy), 0, gy - 1)
            cz = np.clip(np.where(mz, cz + sz, cz), 0, gz - 1)
            t_cur = np.where(alive, tm, t_cur)
            tmx = np.where(mx, tmx + tdx, tmx)
            tmy = np.where(my, tmy + tdy, tmy)
            tmz = np.where(mz, tmz + tdz, tmz)
        else:
            rem = np.nonzero(alive)[0]  # budget exhausted: keep the rest
            if len(rem):
                emit(rem, t_cur[rem], t_end[rem], cnt[rem])

    if not rows_parts:
        return np.zeros(n + 1, np.int64), np.zeros(0, np.int64), np.zeros(0, np.int64)
    row = np.concatenate(rows_parts)
    j0 = np.concatenate(j0_parts)
    j1 = np.concatenate(j1_parts)
    # Merge overlapping/adjacent spans per ray (slack-expanded neighbours
    # overlap; a sample must enter the flat march list exactly once).
    # The slab path emits cells in grid order, not per-ray t order, so
    # sort by (ray, start) rather than trusting emission order.
    order = np.lexsort((j0, row))
    row, j0, j1 = row[order], j0[order], j1[order]
    big = int(cnt.max()) + 2
    a0 = j0 + row * big
    running_hi = np.maximum.accumulate(j1 + row * big)
    first = np.empty(len(row), dtype=bool)
    first[0] = True
    np.greater(a0[1:], running_hi[:-1], out=first[1:])
    starts = np.nonzero(first)[0]
    seg_last = np.r_[starts[1:], len(row)] - 1
    m_row = row[starts]
    m_j0 = j0[starts]
    m_j1 = running_hi[seg_last] - m_row * big
    row_ptr = np.searchsorted(m_row, np.arange(n + 1, dtype=np.int64))
    return row_ptr, m_j0, m_j1


def _block_spans_flat(
    spans: tuple[np.ndarray, np.ndarray, np.ndarray],
    li: np.ndarray,
    cnt: np.ndarray,
    jb: int,
) -> tuple[np.ndarray, np.ndarray]:
    """One block's flat (row, global ordinal) sample list, grid-carved.

    Intersects the alive rays' occupied spans with the block window
    ``[jb, jb + cnt_row)``.  Rows ascend and ordinals ascend within each
    row — the same ordering the uncarved construction produces — so all
    downstream segment handling (scan boundaries, reduceat starts) is
    oblivious to the carve.
    """
    row_ptr, sj0, sj1 = spans
    s0 = row_ptr[li]
    lens = row_ptr[li + 1] - s0
    nsp = int(lens.sum())
    if nsp == 0:
        return _EMPTY_I32, _EMPTY_I32
    L = len(li)
    srow = np.repeat(np.arange(L, dtype=np.int32), lens)
    off = np.zeros(L, dtype=np.int64)
    np.cumsum(lens[:-1], dtype=np.int64, out=off[1:])
    sidx = (np.arange(nsp, dtype=np.int64) - np.take(off, srow)) + np.take(s0, srow)
    b0 = np.maximum(np.take(sj0, sidx), jb)
    b1 = np.minimum(np.take(sj1, sidx), jb + np.take(cnt, srow))
    ln = b1 - b0
    keep = ln > 0
    if not keep.all():
        srow = srow[keep]
        b0 = b0[keep]
        ln = ln[keep]
    m = int(ln.sum())
    if m == 0:
        return _EMPTY_I32, _EMPTY_I32
    ns = len(ln)
    rows = np.repeat(srow, ln)
    off2 = np.zeros(ns, dtype=np.int64)
    np.cumsum(ln[:-1], dtype=np.int64, out=off2[1:])
    span_of = np.repeat(np.arange(ns, dtype=np.int64), ln)
    j_flat = (
        np.arange(m, dtype=np.int64) - np.take(off2, span_of) + np.take(b0, span_of)
    ).astype(np.int32)
    return rows, j_flat


def raycast_brick(
    data: np.ndarray,
    data_lo: tuple[int, int, int],
    core_lo: tuple[int, int, int],
    core_hi: tuple[int, int, int],
    volume_shape: tuple[int, int, int],
    camera: Camera,
    tf: TransferFunction1D,
    config: RenderConfig = RenderConfig(),
    rect: Optional[PixelRect] = None,
    accel_key: Optional[tuple] = None,
    accel_cache: Optional["AccelCache"] = None,
) -> tuple[np.ndarray, MapStats]:
    """Ray cast one ghost-padded brick; return (fragments, stats).

    Parameters mirror a :class:`~repro.volume.bricking.Brick`: ``data`` is
    the padded payload starting at voxel ``data_lo``; the half-open core
    is ``[core_lo, core_hi)``; ``volume_shape`` defines the global box
    used for the shared ray parametrisation.

    ``accel_key`` (optional) enables empty-space caching: it must
    uniquely identify ``(data, tf)`` — the renderer uses
    ``(volume token, brick id, tf version)`` — and lookups go to
    ``accel_cache`` (default: the process-wide
    :func:`~repro.render.accel.shared_cache`).  The corner-max table is
    cached under the key itself; the macro-cell occupancy grid under
    :func:`~repro.render.accel.grid_key` (bricks where no grid can help
    cache the ``NO_GRID`` sentinel instead, so the negative result is
    not recomputed every frame).  Both structures are pure functions of
    ``(data, tf)`` and skipping with them provably cannot change the
    image or the stats, so caching never affects output.
    """
    stats = MapStats()
    core_lo_w = np.asarray(core_lo, dtype=np.float64)
    core_hi_w = np.asarray(core_hi, dtype=np.float64)

    if rect is None:
        corners = np.array(
            [
                [
                    (core_lo_w[0], core_hi_w[0])[(c >> 0) & 1],
                    (core_lo_w[1], core_hi_w[1])[(c >> 1) & 1],
                    (core_lo_w[2], core_hi_w[2])[(c >> 2) & 1],
                ]
                for c in range(8)
            ]
        )
        rect = camera.brick_rect(corners, pad_to_block=config.pad_to_block)
    if rect.empty:
        return empty_fragments(), stats

    dirs, keys = camera.rect_rays_f32(rect)
    n = len(keys)
    stats.n_rays = n
    eye = np.asarray(camera.eye, dtype=np.float64)

    tn_b, tf_b, hit_b, tn_v, _, hit_v = dual_box_intersect_f32(
        eye, dirs, core_lo_w, core_hi_w, np.zeros(3), volume_shape
    )
    active = hit_b & hit_v & (tf_b > tn_b)
    stats.n_active_rays = int(active.sum())

    def emit(acc_rgb, acc_a, first_t, contributed):
        stats.n_emitted = n if config.emit_placeholders else int(contributed.sum())
        stats.n_kept = int(contributed.sum())
        if config.emit_placeholders:
            pix = np.where(contributed, keys, PLACEHOLDER_KEY).astype(np.int32)
            depth = np.where(contributed, first_t, _F32(0.0))
            rgba = np.concatenate([acc_rgb, acc_a[:, None]], axis=1)
            rgba[~contributed] = 0.0
            return make_fragments(pix, depth, rgba)
        sel = np.nonzero(contributed)[0]
        rgba = np.concatenate([acc_rgb[sel], acc_a[sel, None]], axis=1)
        return make_fragments(keys[sel], first_t[sel], rgba)

    if stats.n_active_rays == 0:
        z1 = np.zeros(n, dtype=_F32)
        frags = emit(np.zeros((n, 3), _F32), z1, z1, np.zeros(n, dtype=bool))
        return frags, stats

    dt = _F32(config.dt)
    ai = np.nonzero(active)[0]
    tnv_c = tn_v[ai]
    kf, counts = _sample_intervals(tn_b[ai], tf_b[ai], tnv_c, dt)
    d_c = dirs[ai]
    # t of each ray's first owned sample; later samples add whole steps.
    t0_c = tnv_c + (kf.astype(_F32) + _F32(0.5)) * dt
    # Lattice coords c = (position − ½) with the brick origin folded in.
    base_w = (eye - np.asarray(data_lo, np.float64) - 0.5).astype(_F32)

    n_act = len(ai)
    acc_rgb_c = np.zeros((n_act, 3), dtype=_F32)
    acc_a_c = np.zeros(n_act, dtype=_F32)
    term = np.zeros(n_act, dtype=bool)

    K = config.block_size
    use_ert = config.ert_alpha < 1.0
    flat = np.ascontiguousarray(data).ravel()
    shape = data.shape
    fetches = config.fetches_per_sample
    nx, ny, nz = shape
    # Interior bricks with a full one-voxel ghost shell keep every
    # sample's 2×2×2 support inside the payload — no clamping needed.
    dlo = np.asarray(data_lo)
    need_clamp = bool(
        np.any(dlo > np.asarray(core_lo) - 1)
        or np.any(dlo + np.asarray(shape) < np.asarray(core_hi) + 1)
    )
    u_thr = _alpha_zero_threshold(tf)
    total_expected = int(counts.sum())
    # The empty-space structures cost O(voxels); build them only when the
    # march is big enough to amortize it — unless a cached copy is free.
    build_worthwhile = total_expected > data.size // 8
    skip_table = None
    # u_thr < 0 means the alpha table has no leading zero run: there is
    # nothing to skip and _empty_space_table would return None.
    table_possible = (
        config.accel != "off"
        and np.isfinite(u_thr)
        and u_thr >= 0
        and min(shape) >= 2
    )
    cache = None
    if config.accel != "off" and accel_key is not None:
        from .accel import shared_cache

        cache = accel_cache if accel_cache is not None else shared_cache()
    if table_possible:
        if cache is not None:
            skip_table = cache.get(accel_key)
        if skip_table is None and build_worthwhile:
            skip_table = _empty_space_table(data, tf, u_thr)
            if cache is not None and skip_table is not None:
                cache.put(accel_key, skip_table)
    # Macro-cell occupancy grid: carves whole transparent spans off each
    # ray's owned interval before the march (bitwise-invisible; see the
    # module docstring's proof obligation).
    grid_occ = None
    if config.accel == "grid" and min(shape) >= 2:
        from .accel import build_macro_grid, grid_key, is_no_grid

        gkey = (
            grid_key(accel_key, config.macro_cell_size)
            if accel_key is not None
            else None
        )
        if cache is not None and gkey is not None:
            grid_occ = cache.get(gkey)
        if grid_occ is None and build_worthwhile:
            grid_occ = build_macro_grid(data, tf, config.macro_cell_size)
            if cache is not None and gkey is not None:
                cache.put(gkey, grid_occ)
        if grid_occ is not None and is_no_grid(grid_occ):
            grid_occ = None  # cached negative: no grid can help here
    spans = None
    if grid_occ is not None:
        spans = _macro_grid_spans(
            grid_occ, config.macro_cell_size, base_w, d_c, t0_c, counts, config.dt
        )

    # The march itself runs behind the kernel contract: the numpy
    # backend is this function's original blocked fold moved verbatim
    # (bitwise-identical), the numba backend a compiled per-ray marcher
    # (exact keys/depths/counters, tolerance-banded colors — see the
    # kernels package docstring).  Imported lazily: kernels imports this
    # module's helpers at load time.
    from .kernels import MarchPlan, resolve_kernel

    kspec = resolve_kernel(config.kernel)
    plan = MarchPlan(
        data=data,
        flat=flat,
        shape=shape,
        need_clamp=need_clamp,
        counts=counts,
        t0=t0_c,
        dirs=d_c,
        base_w=base_w,
        dt=float(config.dt),
        block_size=K,
        use_ert=use_ert,
        ert_alpha=float(config.ert_alpha),
        u_thr=float(u_thr),
        skip_table=skip_table,
        spans=spans,
        tf=tf,
        shading=config.shading,
        acc_rgb=acc_rgb_c,
        acc_a=acc_a_c,
        term=term,
    )
    stats.n_samples += kspec.march(plan) * fetches

    # Expand to the full ray set and emit.
    acc_rgb = np.zeros((n, 3), dtype=_F32)
    acc_a = np.zeros(n, dtype=_F32)
    first_t = np.zeros(n, dtype=_F32)
    has_samples = np.zeros(n, dtype=bool)
    acc_rgb[ai] = acc_rgb_c
    acc_a[ai] = acc_a_c
    first_t[ai] = t0_c
    has_samples[ai] = counts > 0
    contributed = has_samples & (acc_a > config.alpha_eps)
    first_t = np.where(contributed, first_t, _F32(0.0))
    return emit(acc_rgb, acc_a, first_t, contributed), stats
