"""Single-pass reference renderer.

Treats the entire volume as one brick and runs the same kernel the
distributed pipeline uses — including the blocked vectorized marcher, so
``config.block_size`` tunes this path too.  Because the MapReduce
renderer samples on the identical global-t lattice, its composited
output must equal this reference exactly (with early termination
disabled) — the strongest end-to-end correctness check available.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..volume.volume import Volume
from .camera import Camera
from .compositing import composite_fragments
from .raycast import MapStats, RenderConfig, raycast_brick
from .transfer import TransferFunction1D

__all__ = ["render_reference", "ReferenceResult"]


@dataclass
class ReferenceResult:
    """Image plus kernel statistics of a reference render."""

    image: np.ndarray  # (height, width, 4) premultiplied RGBA
    fragments: np.ndarray
    stats: MapStats


def render_reference(
    volume: Volume,
    camera: Camera,
    tf: TransferFunction1D,
    config: RenderConfig = RenderConfig(),
) -> ReferenceResult:
    """Ray cast the whole volume in one pass and composite to an image."""
    fragments, stats = raycast_brick(
        data=volume.data,
        data_lo=(0, 0, 0),
        core_lo=(0, 0, 0),
        core_hi=volume.shape,
        volume_shape=volume.shape,
        camera=camera,
        tf=tf,
        config=config,
    )
    flat = composite_fragments(fragments, camera.pixel_count)
    image = flat.reshape(camera.height, camera.width, 4)
    return ReferenceResult(image=image, fragments=fragments, stats=stats)
