"""Gradient estimation and Phong shading.

Levoy's classic volume-rendering formulation (the paper's §2 reference
for ray casting) shades each sample with the local gradient as the
surface normal.  The paper's own kernel is unshaded; shading is provided
as the standard quality extension, implemented so that the bricked
pipeline still reproduces the reference renderer exactly: central
differences use a ±½-voxel stencil, which stays inside a brick's
one-voxel ghost shell for every owned sample position.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .raycast import trilinear_sample

__all__ = ["PhongParams", "central_gradient", "shade_phong"]


@dataclass(frozen=True)
class PhongParams:
    """Headlight Phong model (light co-located with the camera)."""

    ambient: float = 0.25
    diffuse: float = 0.65
    specular: float = 0.25
    shininess: float = 24.0
    gradient_epsilon: float = 1e-4  # below this |∇f|, leave unshaded

    def __post_init__(self):
        for name in ("ambient", "diffuse", "specular"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.shininess <= 0:
            raise ValueError("shininess must be positive")


def central_gradient(
    data: np.ndarray, local_pos: np.ndarray, h: float = 0.5
) -> np.ndarray:
    """Central-difference gradient of the trilinear field at sample points.

    ``h`` is the half-stencil in voxel units; 0.5 keeps all lookups
    within the one-voxel ghost shell for positions inside a brick core.
    Returns ``(M, 3)`` gradients (per unit voxel length).

    All six stencil taps are batched into a single trilinear gather so
    the blocked marcher pays one dispatch per block, not six.
    """
    if h <= 0:
        raise ValueError("stencil h must be positive")
    pos = np.asarray(local_pos, dtype=np.float64)
    m = len(pos)
    # (6, M, 3) stencil: +x, +y, +z, −x, −y, −z.
    offsets = np.zeros((6, 1, 3))
    for axis in range(3):
        offsets[axis, 0, axis] = h
        offsets[axis + 3, 0, axis] = -h
    taps = (pos[None, :, :] + offsets).reshape(-1, 3)
    vals = trilinear_sample(data, taps).reshape(6, m)
    grad = (vals[:3] - vals[3:]) / np.float32(2.0 * h)
    return np.ascontiguousarray(grad.T, dtype=np.float32)


def shade_phong(
    rgb: np.ndarray,
    gradients: np.ndarray,
    view_dir: np.ndarray,
    params: PhongParams = PhongParams(),
) -> np.ndarray:
    """Shade premultiplied-free sample colours with a headlight Phong model.

    ``view_dir`` is the (unit) ray direction per sample, ``(M, 3)``; the
    light shines along the ray, so L = −view_dir.  Samples with a
    near-zero gradient (homogeneous regions) pass through unshaded, as
    is conventional for volume shading.
    """
    rgb = np.asarray(rgb, dtype=np.float32)
    gradients = np.asarray(gradients, dtype=np.float32)
    view_dir = np.asarray(view_dir, dtype=np.float32)
    if rgb.shape != gradients.shape or view_dir.shape != rgb.shape:
        raise ValueError("rgb / gradients / view_dir shape mismatch")
    mag = np.linalg.norm(gradients, axis=1)
    lit = mag > params.gradient_epsilon
    out = rgb.copy()
    if not np.any(lit):
        return out
    n = gradients[lit] / mag[lit, None]
    light = -view_dir[lit]
    # Two-sided diffuse: a gradient points out of either side of a shell.
    ndotl = np.abs(np.sum(n * light, axis=1))
    # Headlight: H = L = V ⇒ specular term uses the same dot product.
    spec = np.power(ndotl, np.float32(params.shininess))
    factor = np.float32(params.ambient) + np.float32(params.diffuse) * ndotl
    out[lit] = np.clip(
        rgb[lit] * factor[:, None] + np.float32(params.specular) * spec[:, None],
        0.0,
        1.0,
    )
    return out
