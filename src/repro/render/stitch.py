"""Final image assembly ("stitching") and PPM output.

After Reduce, each reducer holds final colours for its share of the
pixels (a round-robin interleave in the paper's default partitioning).
Stitching scatters those shares back into one framebuffer.  The paper
times neither bricking nor stitching; we implement stitching anyway so
examples produce complete images.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence, Union

import numpy as np

from .compositing import blend_background

__all__ = ["stitch_pixels", "rgba_to_rgb8", "write_ppm"]


def stitch_pixels(
    parts: Sequence[tuple[np.ndarray, np.ndarray]],
    width: int,
    height: int,
) -> np.ndarray:
    """Scatter (pixel_keys, rgba_rows) pairs into an (h, w, 4) image.

    Missing pixels stay transparent black; duplicate keys are an error
    (each pixel must be reduced by exactly one reducer).
    """
    flat = np.zeros((width * height, 4), dtype=np.float32)
    seen = np.zeros(width * height, dtype=bool)
    for keys, rgba in parts:
        keys = np.asarray(keys, dtype=np.int64)
        rgba = np.asarray(rgba, dtype=np.float32)
        if keys.ndim != 1 or rgba.shape != (len(keys), 4):
            raise ValueError("each part must be (keys (N,), rgba (N,4))")
        if len(keys) == 0:
            continue
        if keys.min() < 0 or keys.max() >= width * height:
            raise ValueError("pixel key outside the image")
        if np.any(seen[keys]):
            raise ValueError("pixel reduced by more than one reducer")
        seen[keys] = True
        flat[keys] = rgba
    return flat.reshape(height, width, 4)


def rgba_to_rgb8(
    image: np.ndarray, background: Sequence[float] = (0.0, 0.0, 0.0)
) -> np.ndarray:
    """Premultiplied RGBA float image → uint8 RGB over a background."""
    rgb = blend_background(image, background)
    return (np.clip(rgb, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)


def write_ppm(
    path: Union[str, Path],
    image: np.ndarray,
    background: Sequence[float] = (0.0, 0.0, 0.0),
) -> None:
    """Write a premultiplied RGBA image as a binary PPM (P6)."""
    rgb = rgba_to_rgb8(image, background)
    h, w, _ = rgb.shape
    with open(path, "wb") as f:
        f.write(f"P6\n{w} {h}\n255\n".encode())
        f.write(rgb.tobytes())
