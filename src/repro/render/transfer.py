"""1-D transfer functions.

The paper applies "a texture-based 1D transfer function" per sample to
map scalar values to colour and opacity.  :class:`TransferFunction1D`
mimics a CUDA 1D texture: a fixed-size RGBA table sampled with linear
interpolation and clamp-to-edge addressing.

Opacities in the table are defined for a *reference step length of one
voxel*; the ray caster applies the standard opacity correction
``α' = 1 − (1−α)^(dt)`` when marching at a different step.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "TransferFunction1D",
    "default_tf",
    "bone_tf",
    "fire_tf",
    "grayscale_tf",
    "opacity_correction",
]


@dataclass(frozen=True)
class TransferFunction1D:
    """RGBA lookup table over scalar domain ``[vmin, vmax]``."""

    table: np.ndarray  # (N, 4) float32, straight (non-premultiplied) RGBA
    vmin: float = 0.0
    vmax: float = 1.0

    def __post_init__(self):
        t = np.ascontiguousarray(self.table, dtype=np.float32)
        if t.ndim != 2 or t.shape[1] != 4 or t.shape[0] < 2:
            raise ValueError(f"table must be (N>=2, 4), got {t.shape}")
        if np.any(t < 0) or np.any(t > 1):
            raise ValueError("table entries must lie in [0, 1]")
        if not self.vmax > self.vmin:
            raise ValueError("vmax must exceed vmin")
        object.__setattr__(self, "table", t)
        # Cached forward differences: lookup then needs one table gather and
        # one diff gather instead of two table gathers plus a subtraction.
        object.__setattr__(self, "_diff", t[1:] - t[:-1])

    @property
    def resolution(self) -> int:
        return self.table.shape[0]

    @property
    def version(self) -> str:
        """Content hash identifying this transfer function.

        Two instances with identical tables and domains share a version;
        any edit produces a new one.  Acceleration caches key on it so a
        changed transfer function can never be served stale tables.
        """
        v = self.__dict__.get("_version")
        if v is None:
            h = hashlib.blake2b(digest_size=12)
            h.update(self.table.tobytes())
            h.update(np.float64([self.vmin, self.vmax]).tobytes())
            v = h.hexdigest()
            object.__setattr__(self, "_version", v)
        return v

    @property
    def nbytes(self) -> int:
        return self.table.nbytes

    def table_coord(self, values: np.ndarray) -> np.ndarray:
        """Scalar → clamped fractional table coordinate ``u ∈ [0, N−1]``.

        Float32 with a fast path for the common unit domain ``[0, 1]``
        (no rescale).  The ray-cast kernel uses ``u`` both for its
        exact empty-space test and for :meth:`lookup_from_u`.
        """
        v = np.asarray(values, dtype=np.float32)
        if self.vmin != 0.0 or self.vmax != 1.0:
            v = (v - np.float32(self.vmin)) * np.float32(
                1.0 / (self.vmax - self.vmin)
            )
        return np.clip(v, 0.0, 1.0) * np.float32(self.resolution - 1)

    def lookup_from_u(self, u: np.ndarray) -> np.ndarray:
        """RGBA for precomputed table coordinates (see :meth:`table_coord`)."""
        i0 = u.astype(np.int32)  # u >= 0, so truncation is floor
        i0 = np.minimum(i0, self.resolution - 2)
        f = (u - i0.astype(np.float32))[..., None]
        return np.take(self.table, i0, axis=0) + f * np.take(
            self._diff, i0, axis=0
        )

    def lookup(self, values: np.ndarray) -> np.ndarray:
        """Linearly-interpolated RGBA for each scalar (clamp addressing).

        Runs in float32 end-to-end — the CUDA texture unit this models
        filters in reduced precision, and the ray caster's whole sample
        path stays float32.
        """
        return self.lookup_from_u(self.table_coord(values))

    def opacity_threshold_value(self, alpha_eps: float = 1e-3) -> float:
        """Smallest scalar whose opacity exceeds ``alpha_eps``.

        Used by the empty-space model: voxels below this value generate
        discarded fragments.
        """
        alphas = self.table[:, 3]
        hit = np.nonzero(alphas > alpha_eps)[0]
        if len(hit) == 0:
            return self.vmax
        frac = hit[0] / (self.resolution - 1)
        return self.vmin + frac * (self.vmax - self.vmin)


def opacity_correction(alpha: np.ndarray, dt: float) -> np.ndarray:
    """Correct per-unit-length opacity for step size ``dt``.

    Preserves the input float width (float32 stays float32 — no float64
    intermediates on the render hot path).  ``dt == 1`` is the reference
    step and needs no power at all.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    clipped = np.minimum(alpha, 0.9999)
    if dt == 1.0:
        return clipped
    return 1.0 - np.power(1.0 - clipped, dt)


def _ramp(n: int, stops: Sequence[tuple[float, tuple[float, float, float, float]]]) -> np.ndarray:
    """Piecewise-linear RGBA ramp through (position, rgba) stops."""
    xs = np.array([s[0] for s in stops])
    cs = np.array([s[1] for s in stops])
    if np.any(np.diff(xs) <= 0):
        raise ValueError("stops must be strictly increasing")
    u = np.linspace(0.0, 1.0, n)
    out = np.empty((n, 4), dtype=np.float32)
    for c in range(4):
        out[:, c] = np.interp(u, xs, cs[:, c])
    return out


def default_tf(resolution: int = 256) -> TransferFunction1D:
    """General-purpose blue→white→orange ramp with increasing opacity."""
    stops = [
        (0.00, (0.0, 0.0, 0.0, 0.0)),
        (0.08, (0.1, 0.1, 0.4, 0.0)),
        (0.30, (0.2, 0.4, 0.9, 0.15)),
        (0.55, (0.9, 0.9, 0.9, 0.35)),
        (0.80, (1.0, 0.6, 0.2, 0.7)),
        (1.00, (1.0, 0.3, 0.1, 0.9)),
    ]
    return TransferFunction1D(_ramp(resolution, stops))


def bone_tf(resolution: int = 256) -> TransferFunction1D:
    """CT-style: soft tissue translucent, bone bright and opaque (Skull)."""
    stops = [
        (0.00, (0.0, 0.0, 0.0, 0.0)),
        (0.15, (0.4, 0.2, 0.1, 0.02)),
        (0.40, (0.8, 0.6, 0.4, 0.10)),
        (0.70, (1.0, 0.95, 0.85, 0.60)),
        (1.00, (1.0, 1.0, 1.0, 0.95)),
    ]
    return TransferFunction1D(_ramp(resolution, stops))


def fire_tf(resolution: int = 256) -> TransferFunction1D:
    """Black-body ramp for the Supernova/Plume datasets."""
    stops = [
        (0.00, (0.0, 0.0, 0.0, 0.0)),
        (0.20, (0.4, 0.0, 0.0, 0.05)),
        (0.45, (0.9, 0.2, 0.0, 0.20)),
        (0.70, (1.0, 0.7, 0.1, 0.50)),
        (1.00, (1.0, 1.0, 0.8, 0.85)),
    ]
    return TransferFunction1D(_ramp(resolution, stops))


def grayscale_tf(resolution: int = 256, max_alpha: float = 0.8) -> TransferFunction1D:
    """Linear grayscale; handy for tests because lookup(v) is analytic."""
    u = np.linspace(0.0, 1.0, resolution, dtype=np.float32)
    table = np.stack([u, u, u, u * max_alpha], axis=1)
    return TransferFunction1D(table)
