"""Simulated multi-GPU cluster substrate.

The paper evaluates on real 2010 hardware (NCSA Accelerator Cluster,
Tesla S1070 GPUs, QDR InfiniBand).  This subpackage replaces that
hardware with a discrete-event simulation whose cost constants are
calibrated to the micro-costs the paper states (64³ brick ≈ 20 ms from
disk, <0.2 ms over PCIe, <2 ms fragment download, VRAM ≫ DRAM bandwidth),
so the *relative* stage costs — and hence every scaling trend in the
evaluation — are preserved.
"""

from .cpu import CPUSpec
from .disk import DiskSpec
from .engine import AllOf, AnyOf, Environment, Event, Process, SimulationError, Timeout
from .gpu import GPUSpec, tesla_c1060
from .network import NetworkSpec
from .node import ClusterRuntime, ClusterSpec, GPUHandle, NodeRuntime, NodeSpec
from .pcie import PCIeSpec
from .presets import accelerator_cluster, cpu_cluster, laptop
from .resources import Link, Resource, Store, TokenBucket
from .trace import Span, StageBreakdown, Trace

__all__ = [
    "AllOf",
    "AnyOf",
    "CPUSpec",
    "ClusterRuntime",
    "ClusterSpec",
    "DiskSpec",
    "Environment",
    "Event",
    "GPUHandle",
    "GPUSpec",
    "Link",
    "NetworkSpec",
    "NodeRuntime",
    "NodeSpec",
    "PCIeSpec",
    "Process",
    "Resource",
    "SimulationError",
    "Span",
    "StageBreakdown",
    "Store",
    "Timeout",
    "TokenBucket",
    "Trace",
    "accelerator_cluster",
    "cpu_cluster",
    "laptop",
    "tesla_c1060",
]
