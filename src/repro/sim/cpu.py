"""Host CPU model.

The paper keeps two tasks on the CPU deliberately: the θ(n) counting sort
when fragment counts are small, and the Reduce-phase compositing (found
empirically faster on the CPU because of the per-pixel depth sort).  The
constants model a 2010-era quad-core host.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CPUSpec"]


@dataclass(frozen=True)
class CPUSpec:
    """Throughput model for one compute node's host CPU.

    Attributes
    ----------
    cores:
        Physical cores (the AC nodes were quad-core).
    dram_bandwidth:
        Host memory bandwidth, bytes/s.
    sort_keys_per_sec:
        Counting-sort throughput per core (keys/s).
    composite_frags_per_sec:
        Front-to-back compositing throughput per core, including the
        ascending-depth sort of each pixel's fragment list.
    partition_pairs_per_sec:
        Modulo-and-bin throughput per core, including the placeholder
        compaction pass and staging copies into pinned send buffers.
    memcpy_bandwidth:
        Host-side staging copy bandwidth, bytes/s.
    task_overhead:
        Fixed seconds to launch one host-side task (thread wake-up,
        MPI bookkeeping, allocation) — charged per partition/sort/reduce
        task.  2010-era software stacks spend milliseconds here, which is
        what keeps small volumes from scaling past ~8 GPUs (Fig. 3).
    message_handling_overhead:
        Fixed CPU seconds to stage one network message (pack at the
        sender, unpack/append at the receiver).
    """

    cores: int = 4
    dram_bandwidth: float = 10e9
    sort_keys_per_sec: float = 40e6
    composite_frags_per_sec: float = 2.5e6
    partition_pairs_per_sec: float = 80e6
    memcpy_bandwidth: float = 6e9
    task_overhead: float = 6e-3
    message_handling_overhead: float = 1.8e-3

    def counting_sort_time(self, n_pairs: int, threads: int = 1) -> float:
        """Seconds for a θ(n) counting sort of ``n_pairs`` on ``threads`` cores."""
        threads = max(1, min(threads, self.cores))
        return n_pairs / (self.sort_keys_per_sec * threads)

    def composite_time(self, n_fragments: int, threads: int = 1) -> float:
        """Seconds to depth-sort and composite ``n_fragments`` on the CPU."""
        threads = max(1, min(threads, self.cores))
        return n_fragments / (self.composite_frags_per_sec * threads)

    def partition_time(self, n_pairs: int, threads: int = 1) -> float:
        """Seconds to bin ``n_pairs`` pairs into per-reducer buckets."""
        threads = max(1, min(threads, self.cores))
        return n_pairs / (self.partition_pairs_per_sec * threads)

    def memcpy_time(self, nbytes: int) -> float:
        """Seconds for a host staging copy of ``nbytes``."""
        return nbytes / self.memcpy_bandwidth

    def comparison_sort_time(self, n: int, threads: int = 1) -> float:
        """Seconds for an O(n log n) comparison sort (baseline for ablation)."""
        if n <= 1:
            return 0.0
        threads = max(1, min(threads, self.cores))
        # Comparison sorts move several times more data per key than a
        # counting sort; fold that into a constant factor of ~3.
        return (n * math.log2(n) * 3.0) / (self.sort_keys_per_sec * threads * 8.0)
