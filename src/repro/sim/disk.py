"""Disk model.

Calibrated from the paper's single stated disk cost: "loading a 64³ block
from disk takes approximately 20 ms on our cluster".  A 64³ float brick is
1 MiB; with 5 ms of seek/issue latency and ~70 MB/s effective streaming
bandwidth that read costs 5 + 15 = 20 ms, matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DiskSpec"]


@dataclass(frozen=True)
class DiskSpec:
    """Latency/bandwidth model of a node-local disk."""

    latency: float = 5e-3
    bandwidth: float = 70e6

    def read_time(self, nbytes: int) -> float:
        """Unloaded time to read ``nbytes`` (one seek + streaming)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency + nbytes / self.bandwidth

    def write_time(self, nbytes: int) -> float:
        """Unloaded time to write ``nbytes``."""
        return self.read_time(nbytes)
