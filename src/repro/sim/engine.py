"""Discrete-event simulation engine.

This is the substrate on which the simulated GPU cluster runs.  It is a
compact, dependency-free process-based discrete-event simulator in the
style of SimPy: *processes* are Python generators that ``yield`` events
(timeouts, resource grants, completion of other processes), and the
:class:`Environment` advances a virtual clock from one scheduled event to
the next.

The paper's MapReduce library owes its performance to *overlap* — disk
reads, PCIe copies, GPU kernels, and network sends all proceed
concurrently.  A process-based simulator expresses that overlap directly:
each concurrent activity is a process, shared hardware is a
:class:`~repro.sim.resources.Resource`, and the event queue interleaves
them exactly as a real asynchronous runtime would.

Example
-------
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for protocol violations inside the simulator."""


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event starts *untriggered*; calling :meth:`succeed` (or
    :meth:`fail`) schedules it, and once the environment processes it the
    event is *processed* and its callbacks have run.  Processes wait on
    events by ``yield``-ing them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled onto the queue."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception if it failed)."""
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully, optionally after ``delay``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception that will be re-raised in waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay)
        return self


class Timeout(Event):
    """An event that fires ``delay`` units of simulated time after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """A running generator; also an event that fires when the generator returns.

    The generator must yield :class:`Event` instances.  The value sent back
    into the generator is the event's payload; failed events re-raise their
    exception inside the generator so processes can ``try/except`` them.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise TypeError("process() requires a generator")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume the generator at time now.
        boot = Event(env)
        boot.callbacks.append(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event.ok:
                target = self.generator.send(event.value)
            else:
                target = self.generator.throw(event.value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:  # propagate failure to waiters
            if not self._triggered:
                self.fail(exc)
                if not self.callbacks:
                    # Nobody is waiting on this process: surface the error
                    # instead of swallowing it.
                    raise
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Events"
            )
        if target.processed:
            # Already done: resume immediately at the current time.
            relay = Event(self.env)
            relay.callbacks.append(self._resume)
            if target.ok:
                relay.succeed(target.value)
            else:
                relay.fail(target.value)
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)


class AllOf(Event):
    """Fires when all child events have fired; value is the list of their values."""

    __slots__ = ("_pending", "_results", "_events")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._results: list[Any] = [None] * len(self._events)
        self._pending = 0
        for i, ev in enumerate(self._events):
            if ev.processed:
                if not ev.ok:
                    self.fail(ev.value)
                    return
                self._results[i] = ev.value
            else:
                self._pending += 1
                ev.callbacks.append(self._make_cb(i))
        if self._pending == 0 and not self._triggered:
            self.succeed(self._results)

    def _make_cb(self, index: int) -> Callable[[Event], None]:
        def cb(ev: Event) -> None:
            if self._triggered:
                return
            if not ev.ok:
                self.fail(ev.value)
                return
            self._results[index] = ev.value
            self._pending -= 1
            if self._pending == 0:
                self.succeed(self._results)

        return cb


class AnyOf(Event):
    """Fires when the first child event fires; value is ``(index, value)``."""

    __slots__ = ("_events",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            raise ValueError("AnyOf requires at least one event")
        for i, ev in enumerate(self._events):
            if ev.processed:
                if ev.ok:
                    self.succeed((i, ev.value))
                else:
                    self.fail(ev.value)
                return
            ev.callbacks.append(self._make_cb(i))

    def _make_cb(self, index: int) -> Callable[[Event], None]:
        def cb(ev: Event) -> None:
            if self._triggered:
                return
            if ev.ok:
                self.succeed((index, ev.value))
            else:
                self.fail(ev.value)

        return cb


class Environment:
    """Owns the virtual clock and the pending-event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()

    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention throughout repro)."""
        return self._now

    # -- event construction helpers ------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), event))

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on empty queue")
        t, _, event = heapq.heappop(self._queue)
        if t < self._now:
            raise SimulationError("time went backwards")
        self._now = t
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for cb in callbacks:
            cb(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until``."""
        if until is not None and until < self._now:
            raise ValueError("run(until) is in the past")
        while self._queue:
            t = self._queue[0][0]
            if until is not None and t > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until
