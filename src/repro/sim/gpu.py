"""GPU device model.

The paper ran on NCSA's Accelerator Cluster: each node hosted a Tesla
S1070 (four logical C1060 GPUs).  We model a GPU as a small set of
throughput constants plus cost functions for the kernels the renderer
actually launches.  The constants below are calibrated to the paper's
stated micro-costs (see ``repro.sim.presets``) rather than to vendor peak
numbers — the goal is that *stage-time ratios* match the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["GPUSpec", "tesla_c1060"]

MiB = 1024 * 1024
GiB = 1024 * MiB


@dataclass(frozen=True)
class GPUSpec:
    """Throughput model for one GPU.

    Attributes
    ----------
    name:
        Human-readable device name.
    vram_bytes:
        Device memory capacity; a :class:`~repro.core.chunk.Chunk` must fit
        here (paper restriction #1).
    vram_bandwidth:
        Device-memory bandwidth in bytes/s (paper: "more than 10X faster
        than modern CPU DRAM").
    texture_samples_per_sec:
        Sustained trilinear 3D-texture sample rate of the ray-cast kernel,
        including the transfer-function lookup and blend per sample.  This
        is the dominant Map-phase constant.  Calibrated to the paper's
        §6.3 measurement (~4 GPU-seconds of ray casting for a 1024³
        volume), not to the C1060's theoretical fill rate.
    texture_setup_overhead:
        Fixed seconds per 3D-texture chunk upload: ``cudaMalloc3DArray``
        plus the *synchronous* copy setup the paper was forced into
        ("in order to use a CUDA 3-D texture, we were forced to use
        synchronous memory copies").  Charged once per chunk.
    task_setup_overhead:
        Fixed seconds to stage a multi-kernel GPU task (sort or reduce):
        buffer allocation, several kernel launches with host sync.  This
        is what makes the *CPU* win sort/reduce at small fragment counts
        — the paper's empirical §3.1.2 observation.
    ray_setup_per_sec:
        Rate of per-ray fixed work (ray-box slab test, init, final emit).
    kernel_launch_overhead:
        Fixed seconds per kernel launch.
    sort_keys_per_sec:
        GPU counting-sort throughput (keys/s) — used by the GPU flavor of
        the Sort stage.
    composite_frags_per_sec:
        GPU fragment-compositing throughput for the GPU Reduce variant.
    partition_pairs_per_sec:
        Rate of computing `key % n_reducers` and binning on the GPU.
    """

    name: str = "Tesla C1060"
    vram_bytes: int = 4 * GiB
    vram_bandwidth: float = 102e9
    texture_samples_per_sec: float = 40e6
    ray_setup_per_sec: float = 400e6
    kernel_launch_overhead: float = 8e-6
    texture_setup_overhead: float = 18e-3
    task_setup_overhead: float = 2.5e-3
    sort_keys_per_sec: float = 400e6
    composite_frags_per_sec: float = 120e6
    partition_pairs_per_sec: float = 2e9
    # Future-work (§7) knobs:
    zero_copy_bandwidth: float = 1.5e9  # host-mapped writes, ~2 orders < VRAM
    manual_filter_slowdown: float = 1.6  # shared-mem trilinear vs HW filtering

    # -- kernel cost models ---------------------------------------------
    def raycast_time(self, n_rays: int, n_samples: int) -> float:
        """Seconds for one ray-cast map kernel over a chunk.

        ``n_rays`` is the (block-padded) thread count; ``n_samples`` is the
        total number of trilinear volume samples taken by all rays.
        """
        if n_rays < 0 or n_samples < 0:
            raise ValueError("negative work")
        return (
            self.kernel_launch_overhead
            + n_rays / self.ray_setup_per_sec
            + n_samples / self.texture_samples_per_sec
        )

    def sort_time(self, n_pairs: int) -> float:
        """Seconds for the GPU counting sort of ``n_pairs`` key-value pairs."""
        return self.kernel_launch_overhead + n_pairs / self.sort_keys_per_sec

    def composite_time(self, n_fragments: int) -> float:
        """Seconds for GPU per-pixel compositing of ``n_fragments``."""
        return self.kernel_launch_overhead + n_fragments / self.composite_frags_per_sec

    def partition_time(self, n_pairs: int) -> float:
        """Seconds to bin ``n_pairs`` pairs by reducer on the GPU."""
        return self.kernel_launch_overhead + n_pairs / self.partition_pairs_per_sec

    def fits(self, nbytes: int) -> bool:
        """True if a buffer of ``nbytes`` fits in VRAM (with no slack)."""
        return nbytes <= self.vram_bytes


def tesla_c1060(**overrides) -> GPUSpec:
    """The paper's GPU (one quarter of a Tesla S1070 unit)."""
    return GPUSpec(**overrides) if overrides else GPUSpec()
