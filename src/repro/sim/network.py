"""Interconnect model.

The Accelerator Cluster is connected with QDR InfiniBand: 40 Gb/s signal
rate, ~32 Gb/s (4 GB/s) effective data rate per port, microsecond-scale
latency.  We model the fabric as a non-blocking crossbar with one
full-duplex port per node: transfers contend only at the sending node's
TX channel and the receiving node's RX channel, never in the core.  That
matches a fat-tree IB fabric at the paper's scale (≤8 nodes).

Intra-node "transfers" (GPU to GPU on the same node) never touch the NIC;
they cost a host memcpy instead, which the scheduler accounts separately.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkSpec"]


@dataclass(frozen=True)
class NetworkSpec:
    """Per-port bandwidth/latency of the cluster fabric.

    ``bandwidth`` is the *effective application payload* rate through the
    2010 MPI stack (host staging, eager/rendezvous protocol), not the
    32 Gb/s QDR signalling rate — measured MPI bandwidth on such systems
    was an order of magnitude below wire speed for the message sizes the
    renderer produces.
    """

    bandwidth: float = 900e6
    latency: float = 2e-6
    message_overhead: float = 50e-6  # per-message software/verbs cost

    def transfer_time(self, nbytes: int) -> float:
        """Unloaded end-to-end time for one ``nbytes`` message."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency + self.message_overhead + nbytes / self.bandwidth

    def exchange_lower_bound(self, per_node_out_bytes: float) -> float:
        """Lower bound on an all-to-all where each node sends ``per_node_out_bytes``.

        Used by the speed-of-light analysis in :mod:`repro.perfmodel.peaks`.
        """
        return self.latency + per_node_out_bytes / self.bandwidth
