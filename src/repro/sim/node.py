"""Node and cluster runtime objects.

:class:`NodeSpec` / :class:`ClusterSpec` are plain descriptions; a
:class:`ClusterRuntime` instantiates them inside a simulation
:class:`~repro.sim.engine.Environment`, wiring up the contended resources
(GPU engines, PCIe links, disks, NIC ports, CPU cores) and providing the
timed primitives the MapReduce scheduler composes:

* ``gpu.upload_texture`` — *synchronous* 3D-texture H2D copy (occupies the
  GPU engine as well as the PCIe link, per the paper's CUDA limitation);
* ``gpu.run_raycast`` / ``run_kernel`` — kernel execution;
* ``gpu.download`` — asynchronous D2H fragment copy (PCIe only);
* ``node.read_disk`` — brick load;
* ``node.cpu_work`` — host-side partition/sort/composite work;
* ``cluster.send`` — internode message (NIC TX + RX), or an intranode
  memcpy when source and destination share a node.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Generator, Optional

from .cpu import CPUSpec
from .disk import DiskSpec
from .engine import Environment
from .gpu import GPUSpec
from .network import NetworkSpec
from .pcie import PCIeSpec
from .resources import Link, Resource
from . import trace as T
from .trace import Trace

__all__ = ["NodeSpec", "ClusterSpec", "GPUHandle", "NodeRuntime", "ClusterRuntime"]


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one compute node."""

    cpu: CPUSpec = field(default_factory=CPUSpec)
    disk: DiskSpec = field(default_factory=DiskSpec)
    pcie: PCIeSpec = field(default_factory=PCIeSpec)
    gpus: tuple[GPUSpec, ...] = field(default_factory=lambda: (GPUSpec(),))
    dram_bytes: int = 8 * 1024**3

    @property
    def gpu_count(self) -> int:
        return len(self.gpus)


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of the whole cluster."""

    nodes: tuple[NodeSpec, ...]
    network: NetworkSpec = field(default_factory=NetworkSpec)

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def gpu_count(self) -> int:
        return sum(n.gpu_count for n in self.nodes)

    def gpu_specs(self) -> list[GPUSpec]:
        return [g for n in self.nodes for g in n.gpus]

    def with_gpu(self, **overrides) -> "ClusterSpec":
        """Return a copy with every GPU spec's fields overridden."""
        new_nodes = tuple(
            replace(n, gpus=tuple(replace(g, **overrides) for g in n.gpus))
            for n in self.nodes
        )
        return replace(self, nodes=new_nodes)


class GPUHandle:
    """Runtime handle for one GPU inside a simulation."""

    def __init__(
        self,
        env: Environment,
        trace: Trace,
        spec: GPUSpec,
        node: "NodeRuntime",
        global_index: int,
        pcie_link: Link,
    ):
        self.env = env
        self.trace = trace
        self.spec = spec
        self.node = node
        self.index = global_index
        self.name = f"gpu{global_index}"
        self.engine = Resource(env, 1, name=f"{self.name}:engine")
        self.pcie = pcie_link
        self.vram_used = 0

    # -- memory accounting ------------------------------------------------
    def allocate(self, nbytes: int) -> None:
        """Reserve VRAM; raises MemoryError when the chunk cannot fit."""
        if self.vram_used + nbytes > self.spec.vram_bytes:
            raise MemoryError(
                f"{self.name}: allocation of {nbytes} B exceeds VRAM "
                f"({self.vram_used}/{self.spec.vram_bytes} B in use)"
            )
        self.vram_used += nbytes

    def free(self, nbytes: int) -> None:
        if nbytes > self.vram_used:
            raise ValueError(f"{self.name}: freeing more than allocated")
        self.vram_used -= nbytes

    # -- timed operations --------------------------------------------------
    def upload_texture(self, nbytes: int, setup_overhead: float = 0.0) -> Generator:
        """Synchronous H2D 3D-texture copy: holds engine *and* PCIe.

        ``setup_overhead`` charges the ``cudaMalloc3DArray``-style fixed
        cost on the engine before the copy starts.
        """
        grant = self.engine.request()
        yield grant
        try:
            t0 = self.env.now
            if setup_overhead > 0:
                yield self.env.timeout(setup_overhead)
            yield self.env.process(self.pcie.transfer(nbytes, direction=0))
            self.trace.record(T.CAT_H2D, self.name, t0, self.env.now, nbytes)
        finally:
            self.engine.release()

    def upload_async(self, nbytes: int) -> Generator:
        """Asynchronous H2D buffer copy: PCIe only, engine stays free.

        The §7 alternative to synchronous 3D-texture uploads — the volume
        lands in a linear buffer and the kernel filters manually in
        shared memory (pay ``manual_filter_slowdown`` there instead).
        """
        t0 = self.env.now
        yield self.env.process(self.pcie.transfer(nbytes, direction=0))
        self.trace.record(T.CAT_H2D_ASYNC, self.name, t0, self.env.now, nbytes)

    def download(self, nbytes: int) -> Generator:
        """Asynchronous D2H copy of results: PCIe only, engine free."""
        t0 = self.env.now
        yield self.env.process(self.pcie.transfer(nbytes, direction=1))
        self.trace.record(T.CAT_D2H, self.name, t0, self.env.now, nbytes)

    def run_kernel(self, seconds: float, category: str = T.CAT_KERNEL) -> Generator:
        """Occupy the kernel engine for ``seconds``."""
        if seconds < 0:
            raise ValueError("negative kernel time")
        grant = self.engine.request()
        yield grant
        try:
            t0 = self.env.now
            yield self.env.timeout(seconds)
            self.trace.record(category, self.name, t0, self.env.now)
        finally:
            self.engine.release()

    def run_raycast(self, n_rays: int, n_samples: int) -> Generator:
        yield from self.run_kernel(self.spec.raycast_time(n_rays, n_samples))


class NodeRuntime:
    """Runtime handle for one node: CPU cores, disk, NIC ports, GPUs."""

    def __init__(
        self,
        env: Environment,
        trace: Trace,
        spec: NodeSpec,
        index: int,
        network: NetworkSpec,
        gpu_base_index: int,
    ):
        self.env = env
        self.trace = trace
        self.spec = spec
        self.index = index
        self.name = f"node{index}"
        self.cpu = Resource(env, spec.cpu.cores, name=f"{self.name}:cpu")
        self.disk = Resource(env, 1, name=f"{self.name}:disk")
        self.nic_tx = Resource(env, 1, name=f"{self.name}:tx")
        self.nic_rx = Resource(env, 1, name=f"{self.name}:rx")
        self.network = network
        # PCIe links are shared by groups of `pcie.shared_by` GPUs (the
        # S1070 attaches two GPUs per x16 cable).
        self.gpus: list[GPUHandle] = []
        share = max(1, spec.pcie.shared_by)
        links: list[Link] = []
        for i, gspec in enumerate(spec.gpus):
            if i % share == 0:
                links.append(
                    Link(
                        env,
                        bandwidth=spec.pcie.h2d_bandwidth,
                        latency=spec.pcie.latency,
                        name=f"{self.name}:pcie{i // share}",
                        duplex=True,
                    )
                )
            self.gpus.append(
                GPUHandle(env, trace, gspec, self, gpu_base_index + i, links[-1])
            )

    def read_disk(self, nbytes: int) -> Generator:
        """Read ``nbytes`` from the node-local disk (FIFO spindle)."""
        grant = self.disk.request()
        yield grant
        try:
            t0 = self.env.now
            yield self.env.timeout(self.spec.disk.read_time(nbytes))
            self.trace.record(T.CAT_DISK, self.name, t0, self.env.now, nbytes)
        finally:
            self.disk.release()

    def cpu_work(self, seconds: float, category: str = T.CAT_HOST, threads: int = 1) -> Generator:
        """Occupy ``threads`` CPU cores for ``seconds``."""
        if seconds < 0:
            raise ValueError("negative cpu time")
        threads = max(1, min(threads, self.spec.cpu.cores))
        grants = [self.cpu.request() for _ in range(threads)]
        for g in grants:
            yield g
        try:
            t0 = self.env.now
            yield self.env.timeout(seconds)
            self.trace.record(category, self.name, t0, self.env.now)
        finally:
            for _ in grants:
                self.cpu.release()


class ClusterRuntime:
    """The whole simulated machine: nodes + fabric + trace."""

    def __init__(self, spec: ClusterSpec, env: Optional[Environment] = None):
        self.spec = spec
        self.env = env or Environment()
        self.trace = Trace()
        self.nodes: list[NodeRuntime] = []
        base = 0
        for i, nspec in enumerate(spec.nodes):
            node = NodeRuntime(self.env, self.trace, nspec, i, spec.network, base)
            self.nodes.append(node)
            base += nspec.gpu_count
        self.gpus: list[GPUHandle] = [g for n in self.nodes for g in n.gpus]

    @property
    def gpu_count(self) -> int:
        return len(self.gpus)

    def send(self, src: int, dst: int, nbytes: int) -> Generator:
        """Move ``nbytes`` from node ``src`` to node ``dst``.

        Internode messages hold the sender's TX port and the receiver's RX
        port for the serialisation time, then pay wire latency.  Intranode
        destinations cost a host memcpy on the node's CPU instead.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        env = self.env
        if src == dst:
            node = self.nodes[src]
            secs = node.spec.cpu.memcpy_time(nbytes)
            t0 = env.now
            yield env.timeout(secs)
            self.trace.record(T.CAT_NET, f"{node.name}:local", t0, env.now, nbytes)
            return
        sender, receiver = self.nodes[src], self.nodes[dst]
        net = sender.network
        tx = sender.nic_tx.request()
        yield tx
        try:
            rx = receiver.nic_rx.request()
            yield rx
            try:
                t0 = env.now
                yield env.timeout(net.message_overhead + nbytes / net.bandwidth)
                self.trace.record(
                    T.CAT_NET, f"{sender.name}->{receiver.name}", t0, env.now, nbytes
                )
            finally:
                receiver.nic_rx.release()
        finally:
            sender.nic_tx.release()
        if net.latency > 0:
            yield env.timeout(net.latency)

    def run(self, until: Optional[float] = None) -> None:
        self.env.run(until)

    def utilization_report(self) -> dict[str, float]:
        """Mean busy fractions of the contended resources since t=0.

        Keys: ``gpu_engines``, ``nic_tx``, ``nic_rx``, ``cpus``, ``disks``
        — the quantities the paper's overlap argument is about (a good
        streaming schedule keeps GPU engines busy while NICs drain).
        """
        if self.env.now <= 0:
            return {k: 0.0 for k in ("gpu_engines", "nic_tx", "nic_rx", "cpus", "disks")}

        def mean(vals: list[float]) -> float:
            return sum(vals) / len(vals) if vals else 0.0

        return {
            "gpu_engines": mean([g.engine.utilization() for g in self.gpus]),
            "nic_tx": mean([n.nic_tx.utilization() for n in self.nodes]),
            "nic_rx": mean([n.nic_rx.utilization() for n in self.nodes]),
            "cpus": mean([n.cpu.utilization() for n in self.nodes]),
            "disks": mean([n.disk.utilization() for n in self.nodes]),
        }
