"""PCI-Express link model.

The paper measures a 64³ float brick (1 MiB) host-to-device in under
0.2 ms — consistent with PCIe 2.0 x16 sustaining ~5.5 GB/s — and notes
that CUDA 3D-texture uploads forced *synchronous* copies.  We model that
faithfully: a texture upload occupies both the PCIe link and the GPU's
kernel engine, so it cannot hide behind compute on the same GPU, while
ordinary buffer downloads (ray fragments, device-to-host) may proceed
asynchronously.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PCIeSpec"]


@dataclass(frozen=True)
class PCIeSpec:
    """Bandwidth/latency of the host↔device interconnect for one GPU.

    On the S1070, two GPUs shared each PCIe x16 cable; ``shared_by``
    records how many sibling GPUs contend for this link (used by the node
    builder to create shared :class:`~repro.sim.resources.Link` objects).
    """

    h2d_bandwidth: float = 5.7e9
    d2h_bandwidth: float = 5.2e9
    latency: float = 10e-6
    shared_by: int = 2

    def h2d_time(self, nbytes: int) -> float:
        """Unloaded host→device copy time for ``nbytes``."""
        return self.latency + nbytes / self.h2d_bandwidth

    def d2h_time(self, nbytes: int) -> float:
        """Unloaded device→host copy time for ``nbytes``."""
        return self.latency + nbytes / self.d2h_bandwidth
