"""Ready-made cluster configurations.

``accelerator_cluster`` reproduces the paper's testbed: NCSA's Accelerator
Cluster (AC), where each node has a quad-core CPU, 8 GB of DRAM, one
Tesla S1070 unit (four logical C1060 GPUs), and a QDR InfiniBand port.

``cpu_cluster`` models the ParaView comparison point from the paper's
footnote (software ray casting on CPU cores over the same fabric), and
``laptop`` is a tiny single-GPU machine for the in-core examples.
"""

from __future__ import annotations

import math

from .cpu import CPUSpec
from .disk import DiskSpec
from .gpu import GPUSpec
from .network import NetworkSpec
from .node import ClusterSpec, NodeSpec
from .pcie import PCIeSpec

__all__ = ["accelerator_cluster", "cpu_cluster", "laptop"]

GiB = 1024**3


def accelerator_cluster(n_gpus: int, gpus_per_node: int = 4) -> ClusterSpec:
    """The paper's AC testbed scaled to ``n_gpus`` total GPUs.

    GPUs fill nodes in groups of ``gpus_per_node`` (4 on the AC); a run
    with 2 GPUs therefore uses one node and never touches the network,
    exactly as on the real machine.
    """
    if n_gpus < 1:
        raise ValueError("need at least one GPU")
    if gpus_per_node < 1:
        raise ValueError("need at least one GPU per node")
    n_nodes = math.ceil(n_gpus / gpus_per_node)
    nodes = []
    remaining = n_gpus
    for _ in range(n_nodes):
        k = min(gpus_per_node, remaining)
        remaining -= k
        nodes.append(
            NodeSpec(
                cpu=CPUSpec(cores=4),
                disk=DiskSpec(),
                pcie=PCIeSpec(),
                gpus=tuple(GPUSpec() for _ in range(k)),
                dram_bytes=8 * GiB,
            )
        )
    return ClusterSpec(nodes=tuple(nodes), network=NetworkSpec())


def cpu_cluster(n_procs: int, procs_per_node: int = 2, vps_per_proc: float = 0.7e6) -> ClusterSpec:
    """A CPU-only cluster in the style of the paper's ParaView reference.

    Moreland et al. report ParaView sustaining 346 M voxels/s with 512
    processes on 256 nodes — about 0.68 M voxels/s/process.  We encode each
    CPU process as a pseudo-"GPU" whose sample throughput equals that
    per-process rate, so the same pipeline code can drive the baseline.
    """
    if n_procs < 1:
        raise ValueError("need at least one process")
    n_nodes = math.ceil(n_procs / procs_per_node)
    # One pseudo-device per process; texture sampling at CPU speed, no
    # PCIe cost (device memory *is* host memory).
    cpu_dev = GPUSpec(
        name="cpu-proc",
        vram_bytes=4 * GiB,
        vram_bandwidth=10e9,
        texture_samples_per_sec=vps_per_proc,
        ray_setup_per_sec=50e6,
        kernel_launch_overhead=0.0,
        texture_setup_overhead=0.0,  # no 3D-texture upload on a CPU proc
        sort_keys_per_sec=120e6,
        composite_frags_per_sec=45e6,
        partition_pairs_per_sec=350e6,
    )
    fast_pcie = PCIeSpec(h2d_bandwidth=1e12, d2h_bandwidth=1e12, latency=0.0, shared_by=1)
    nodes = []
    remaining = n_procs
    for _ in range(n_nodes):
        k = min(procs_per_node, remaining)
        remaining -= k
        nodes.append(
            NodeSpec(
                cpu=CPUSpec(cores=max(2, procs_per_node)),
                disk=DiskSpec(),
                pcie=fast_pcie,
                gpus=tuple(cpu_dev for _ in range(k)),
                dram_bytes=8 * GiB,
            )
        )
    return ClusterSpec(nodes=tuple(nodes), network=NetworkSpec())


def laptop() -> ClusterSpec:
    """One node, one GPU — for in-core quickstart runs."""
    return ClusterSpec(
        nodes=(
            NodeSpec(
                cpu=CPUSpec(cores=4),
                disk=DiskSpec(),
                pcie=PCIeSpec(shared_by=1),
                gpus=(GPUSpec(),),
                dram_bytes=16 * GiB,
            ),
        ),
        network=NetworkSpec(),
    )
