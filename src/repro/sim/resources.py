"""Shared-hardware primitives for the cluster simulator.

Three kinds of contention appear in the paper's pipeline and each maps to
one primitive here:

* :class:`Resource` — a FIFO server pool with integer capacity.  A GPU's
  kernel engine is a ``Resource(capacity=1)``; so is a disk spindle.
* :class:`Link` — a bandwidth/latency pipe (PCIe lane, InfiniBand port).
  Transfers serialise on the link and take ``latency + bytes/bandwidth``.
* :class:`Store` — a bounded FIFO buffer used to stream items between
  pipeline stages (the library's "streaming interface" that replaces the
  disk-based shuffle of classic MapReduce).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from .engine import Environment, Event, SimulationError

__all__ = ["Resource", "Link", "Store", "TokenBucket"]


class Resource:
    """FIFO resource with ``capacity`` concurrent users.

    Usage from a process::

        grant = resource.request()
        yield grant
        try:
            yield env.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        # utilisation accounting
        self._busy_time = 0.0
        self._last_change = env.now

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def _account(self) -> None:
        now = self.env.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def busy_time(self) -> float:
        """Integrated user-seconds up to the current simulated time."""
        self._account()
        return self._busy_time

    def utilization(self) -> float:
        """Mean fraction of capacity in use since t=0."""
        horizon = self.env.now
        if horizon <= 0:
            return 0.0
        return self.busy_time() / (self.capacity * horizon)

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        ev = self.env.event()
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Release one held slot (caller must hold one)."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot straight to the next waiter; in_use unchanged.
            ev = self._waiters.popleft()
            ev.succeed(self)
        else:
            self._account()
            self._in_use -= 1


class Link:
    """A serialising communication link with latency and bandwidth.

    A transfer of ``nbytes`` occupies the link for ``nbytes / bandwidth``
    seconds and completes ``latency`` seconds after its last byte leaves.
    Multiple in-flight transfers queue FIFO, which models a shared PCIe
    lane or a NIC port.  ``duplex=True`` gives independent queues per
    direction (QDR InfiniBand is full duplex).
    """

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        latency: float = 0.0,
        name: str = "",
        duplex: bool = False,
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.env = env
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.name = name
        self._channels = [Resource(env, 1, name=f"{name}:tx")]
        if duplex:
            self._channels.append(Resource(env, 1, name=f"{name}:rx"))
        self.bytes_moved = 0
        self.transfer_count = 0

    def occupancy(self, nbytes: int) -> float:
        """Seconds the link is occupied by a transfer of ``nbytes``."""
        return nbytes / self.bandwidth

    def transfer_time(self, nbytes: int) -> float:
        """Unloaded end-to-end time for ``nbytes``."""
        return self.latency + self.occupancy(nbytes)

    def transfer(self, nbytes: int, direction: int = 0):
        """Process generator: move ``nbytes`` across the link.

        ``direction`` selects the duplex channel (0=tx, 1=rx); on a
        half-duplex link all directions share channel 0.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        chan = self._channels[direction if direction < len(self._channels) else 0]
        grant = chan.request()
        yield grant
        try:
            yield self.env.timeout(self.occupancy(nbytes))
        finally:
            chan.release()
        # Propagation delay does not occupy the link.
        if self.latency > 0:
            yield self.env.timeout(self.latency)
        self.bytes_moved += nbytes
        self.transfer_count += 1
        return nbytes

    def utilization(self) -> float:
        return max(c.utilization() for c in self._channels)


class Store:
    """Bounded FIFO buffer connecting producer and consumer processes.

    ``put`` blocks when full, ``get`` blocks when empty — exactly the
    backpressure a streaming MapReduce runtime needs so a fast mapper
    cannot overrun GPU memory with un-partitioned fragments.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        ev = self.env.event()
        if self._getters:
            # Hand directly to a waiting consumer.
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(None)
        elif not self.is_full:
            self._items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        ev = self.env.event()
        if self._items:
            ev.succeed(self._items.popleft())
            if self._putters:
                put_ev, item = self._putters.popleft()
                self._items.append(item)
                put_ev.succeed(None)
        else:
            self._getters.append(ev)
        return ev


class TokenBucket:
    """Counting semaphore used e.g. to bound in-flight async PCIe buffers."""

    def __init__(self, env: Environment, tokens: int, name: str = ""):
        if tokens < 1:
            raise ValueError("tokens must be >= 1")
        self.env = env
        self.name = name
        self._res = Resource(env, tokens, name=name)

    def acquire(self) -> Event:
        return self._res.request()

    def release(self) -> None:
        self._res.release()

    @property
    def available(self) -> int:
        return self._res.capacity - self._res.in_use
