"""Event tracing and stage-time aggregation.

Every timed activity in the simulated cluster records a :class:`Span`
(category, resource, start, end).  The paper reports stacked per-stage
wall-clock bars (Fig. 3: Map, Partition + I/O, Sort, Reduce); the
:class:`StageBreakdown` here reproduces that accounting:

* the *Sort* and *Reduce* phases are separated from the map phase by a
  barrier (the paper sorts only "once all Mappers have finished and all
  data has been routed"), so their stage times are plain phase walls;
* within the map phase, compute and communication overlap, so the *Map*
  bar is the critical-path compute time ``max_gpu(Σ kernel+upload)`` and
  the *Partition + I/O* bar is whatever wall-clock the communication
  failed to hide: ``wall(map phase) − Map``.

That is exactly the decomposition that makes the paper's bars sum to the
total runtime.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = ["Span", "Trace", "StageBreakdown"]

# Canonical span categories used across the pipeline.
CAT_DISK = "disk"
CAT_H2D = "h2d"
CAT_H2D_ASYNC = "h2d_async"  # overlapped buffer uploads (§7 async mode)
CAT_KERNEL = "kernel"
CAT_D2H = "d2h"
CAT_PARTITION = "partition"
CAT_NET = "net"
CAT_SORT = "sort"
CAT_REDUCE = "reduce"
CAT_HOST = "host"


@dataclass(frozen=True)
class Span:
    """One timed activity on one resource."""

    category: str
    resource: str
    start: float
    end: float
    nbytes: int = 0
    meta: tuple = ()

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """Append-only span log with aggregation helpers."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.marks: dict[str, float] = {}

    def record(
        self,
        category: str,
        resource: str,
        start: float,
        end: float,
        nbytes: int = 0,
        **meta: Any,
    ) -> None:
        if end < start:
            raise ValueError(f"span ends before it starts: {start}..{end}")
        self.spans.append(
            Span(category, resource, start, end, nbytes, tuple(sorted(meta.items())))
        )

    def mark(self, name: str, time: float) -> None:
        """Record a named phase boundary."""
        self.marks[name] = time

    # -- aggregation -----------------------------------------------------
    def by_category(self) -> dict[str, list[Span]]:
        out: dict[str, list[Span]] = defaultdict(list)
        for s in self.spans:
            out[s.category].append(s)
        return dict(out)

    def busy_time(self, category: str, resource: Optional[str] = None) -> float:
        """Total (possibly overlapping) span-seconds in a category."""
        return sum(
            s.duration
            for s in self.spans
            if s.category == category and (resource is None or s.resource == resource)
        )

    def busy_by_resource(self, categories: Iterable[str]) -> dict[str, float]:
        """Σ duration per resource over the given categories."""
        cats = set(categories)
        out: dict[str, float] = defaultdict(float)
        for s in self.spans:
            if s.category in cats:
                out[s.resource] += s.duration
        return dict(out)

    def bytes_moved(self, category: str) -> int:
        return sum(s.nbytes for s in self.spans if s.category == category)

    def window(self, category: str) -> tuple[float, float]:
        """(first start, last end) over a category; (0, 0) if empty."""
        spans = [s for s in self.spans if s.category == category]
        if not spans:
            return (0.0, 0.0)
        return (min(s.start for s in spans), max(s.end for s in spans))

    def gantt_rows(self) -> list[tuple[str, str, float, float]]:
        """(resource, category, start, end) rows sorted by start time."""
        return sorted(
            ((s.resource, s.category, s.start, s.end) for s in self.spans),
            key=lambda r: (r[2], r[0]),
        )


@dataclass
class StageBreakdown:
    """Wall-clock decomposition matching the paper's Fig. 3 stacked bars."""

    map: float = 0.0
    partition_io: float = 0.0
    sort: float = 0.0
    reduce: float = 0.0

    @property
    def total(self) -> float:
        return self.map + self.partition_io + self.sort + self.reduce

    def as_dict(self) -> dict[str, float]:
        return {
            "map": self.map,
            "partition_io": self.partition_io,
            "sort": self.sort,
            "reduce": self.reduce,
            "total": self.total,
        }

    @classmethod
    def from_trace(cls, trace: Trace) -> "StageBreakdown":
        """Build the Fig. 3 accounting from a pipeline trace.

        Requires the phase marks ``map_phase_end``, ``sort_phase_end`` and
        ``reduce_phase_end`` plus the standard categories.
        """
        try:
            t_map_end = trace.marks["map_phase_end"]
            t_sort_end = trace.marks["sort_phase_end"]
            t_reduce_end = trace.marks["reduce_phase_end"]
        except KeyError as missing:
            raise ValueError(f"trace lacks phase mark {missing}") from None
        t0 = trace.marks.get("start", 0.0)
        wall_map_phase = t_map_end - t0
        # Critical-path compute inside the map phase: per-GPU serial time
        # of texture uploads + kernels (sync copies cannot overlap the
        # kernel on the same GPU, so they add).
        per_gpu = trace.busy_by_resource([CAT_KERNEL, CAT_H2D])
        map_compute = max(per_gpu.values(), default=0.0)
        map_stage = min(wall_map_phase, map_compute)
        return cls(
            map=map_stage,
            partition_io=wall_map_phase - map_stage,
            sort=t_sort_end - t_map_end,
            reduce=t_reduce_end - t_sort_end,
        )
