"""Volume data substrate: containers, procedural datasets, bricking, I/O."""

from .bricking import Brick, BrickGrid, bricks_for_gpu_count
from .datasets import (
    DATASET_FIELDS,
    PAPER_RESOLUTIONS,
    make_dataset,
    plume_field,
    skull_field,
    supernova_field,
)
from .histogram import auto_transfer_function, value_histogram
from .io import BvolReader, write_bvol
from .occupancy import brick_occupancy_estimate, brick_occupancy_exact, grid_occupancy
from .volume import Volume, field_on_grid

__all__ = [
    "Brick",
    "BrickGrid",
    "BvolReader",
    "auto_transfer_function",
    "value_histogram",
    "DATASET_FIELDS",
    "PAPER_RESOLUTIONS",
    "Volume",
    "brick_occupancy_estimate",
    "brick_occupancy_exact",
    "bricks_for_gpu_count",
    "field_on_grid",
    "grid_occupancy",
    "make_dataset",
    "plume_field",
    "skull_field",
    "supernova_field",
    "write_bvol",
]
