"""Volume bricking.

The paper streams the volume to GPUs as *bricks* ("the volume data is
bricked into small pieces, with each piece represented as a Chunk").
Bricks here carry:

* a **core** half-open voxel region ``[lo, hi)`` — every voxel belongs to
  exactly one brick's core, and a ray sample at world position ``p`` is
  *owned* by the brick whose core contains ``floor(p)`` (half-open test).
  This exact-partition rule is what lets the distributed renderer
  composite to the same image as a single-pass renderer.
* a **ghost shell** of one voxel on every side (clamped at the volume
  boundary), so trilinear interpolation at any owned sample position
  never needs data outside the brick.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence, Union

import numpy as np

from .volume import Volume, field_on_grid

__all__ = ["Brick", "BrickGrid", "bricks_for_gpu_count"]


@dataclass(frozen=True)
class Brick:
    """One brick of a volume: core region plus ghost-padded data region."""

    id: int
    index: tuple[int, int, int]  # (bx, by, bz) position in the brick grid
    lo: tuple[int, int, int]  # core region start (inclusive), voxels
    hi: tuple[int, int, int]  # core region end (exclusive), voxels
    data_lo: tuple[int, int, int]  # padded region start
    data_hi: tuple[int, int, int]  # padded region end

    @property
    def core_shape(self) -> tuple[int, int, int]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))  # type: ignore[return-value]

    @property
    def data_shape(self) -> tuple[int, int, int]:
        return tuple(h - l for l, h in zip(self.data_lo, self.data_hi))  # type: ignore[return-value]

    @property
    def core_voxels(self) -> int:
        return int(np.prod(self.core_shape))

    @property
    def nbytes(self) -> int:
        """Bytes of the ghost-padded float32 payload uploaded to the GPU."""
        return int(np.prod(self.data_shape)) * 4

    @property
    def world_lo(self) -> np.ndarray:
        """World-space lower corner of the core region."""
        return np.asarray(self.lo, dtype=np.float64)

    @property
    def world_hi(self) -> np.ndarray:
        """World-space upper corner of the core region."""
        return np.asarray(self.hi, dtype=np.float64)

    def corners(self) -> np.ndarray:
        """(8, 3) world-space corners of the core box."""
        lo, hi = self.world_lo, self.world_hi
        return np.array(
            [
                [
                    (lo[0], hi[0])[(c >> 0) & 1],
                    (lo[1], hi[1])[(c >> 1) & 1],
                    (lo[2], hi[2])[(c >> 2) & 1],
                ]
                for c in range(8)
            ]
        )


class BrickGrid:
    """Regular decomposition of a volume into ghost-padded bricks."""

    def __init__(
        self,
        volume_shape: Sequence[int],
        brick_size: Union[int, Sequence[int]],
        ghost: int = 1,
    ):
        self.volume_shape = tuple(int(s) for s in volume_shape)
        if len(self.volume_shape) != 3 or any(s < 1 for s in self.volume_shape):
            raise ValueError(f"bad volume shape {volume_shape}")
        if isinstance(brick_size, int):
            brick_size = (brick_size,) * 3
        self.brick_size = tuple(int(b) for b in brick_size)
        if any(b < 1 for b in self.brick_size):
            raise ValueError(f"brick size must be positive, got {self.brick_size}")
        if ghost < 0:
            raise ValueError("ghost must be non-negative")
        self.ghost = int(ghost)
        self.counts = tuple(
            math.ceil(s / b) for s, b in zip(self.volume_shape, self.brick_size)
        )

    def __len__(self) -> int:
        return int(np.prod(self.counts))

    def __iter__(self) -> Iterator[Brick]:
        for i in range(len(self)):
            yield self.brick(i)

    def brick_index(self, i: int) -> tuple[int, int, int]:
        """Linear id → (bx, by, bz), x fastest."""
        cx, cy, _ = self.counts
        return (i % cx, (i // cx) % cy, i // (cx * cy))

    def brick(self, i: int) -> Brick:
        if not 0 <= i < len(self):
            raise IndexError(f"brick {i} out of range 0..{len(self) - 1}")
        return self.brick_at(*self.brick_index(i))

    def brick_at(self, bx: int, by: int, bz: int) -> Brick:
        idx = (bx, by, bz)
        if any(not 0 <= b < c for b, c in zip(idx, self.counts)):
            raise IndexError(f"brick index {idx} outside grid {self.counts}")
        lo = tuple(b * s for b, s in zip(idx, self.brick_size))
        hi = tuple(
            min((b + 1) * s, n)
            for b, s, n in zip(idx, self.brick_size, self.volume_shape)
        )
        g = self.ghost
        data_lo = tuple(max(l - g, 0) for l in lo)
        data_hi = tuple(min(h + g, n) for h, n in zip(hi, self.volume_shape))
        cx, cy, _ = self.counts
        lin = bx + cx * (by + cy * bz)
        return Brick(lin, idx, lo, hi, data_lo, data_hi)

    # -- payload extraction -------------------------------------------------
    def extract(self, volume: Volume, brick: Brick) -> np.ndarray:
        """Ghost-padded float32 payload of ``brick`` from an in-core volume."""
        if volume.shape != self.volume_shape:
            raise ValueError(
                f"volume shape {volume.shape} != grid shape {self.volume_shape}"
            )
        return volume.region(brick.data_lo, brick.data_hi)

    def extract_from_field(
        self,
        field: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
        brick: Brick,
    ) -> np.ndarray:
        """Materialise only this brick of a procedural field (out-of-core path)."""
        return field_on_grid(field, self.volume_shape, brick.data_lo, brick.data_hi)

    # -- global properties --------------------------------------------------
    def total_payload_bytes(self) -> int:
        """Σ brick payloads; exceeds the raw volume because of ghost overlap."""
        return sum(b.nbytes for b in self)

    def max_brick_nbytes(self) -> int:
        return max(b.nbytes for b in self)


def bricks_for_gpu_count(
    volume_shape: Sequence[int],
    n_gpus: int,
    bricks_per_gpu: int = 2,
    ghost: int = 1,
    min_brick: int = 8,
) -> BrickGrid:
    """Choose a brick size so the brick count is close to ``n_gpus × bricks_per_gpu``.

    The paper's sweet spot keeps "the number of bricks close (roughly
    within a factor of four) to the number of GPUs".  We split the
    longest axis first into near-equal pieces until the target count is
    reached, which keeps bricks as cubic as possible.
    """
    if n_gpus < 1 or bricks_per_gpu < 1:
        raise ValueError("need positive GPU and brick counts")
    shape = tuple(int(s) for s in volume_shape)
    target = n_gpus * bricks_per_gpu
    splits = [1, 1, 1]
    while np.prod(splits) < target:
        # Split the axis with the largest current piece length.
        piece = [s / c for s, c in zip(shape, splits)]
        axis = int(np.argmax(piece))
        if piece[axis] / 2 < min_brick:
            break  # cannot split further without undersized bricks
        splits[axis] *= 2
    brick_size = tuple(math.ceil(s / c) for s, c in zip(shape, splits))
    return BrickGrid(shape, brick_size, ghost=ghost)
