"""Procedural stand-ins for the paper's datasets.

The paper renders three scalar volumes — **Skull**, **Supernova**, and
**Plume** — at resolutions 128³…1024³ (Plume at 512×512×2048).  The
original files are not distributable, so we provide deterministic
procedural fields with qualitatively matching structure:

* ``skull``      — a hollow bone-like shell with inner structure and
                   eye-socket cavities: mostly empty space, a thin
                   high-opacity surface (CT-scan-like histogram).
* ``supernova``  — a turbulent ball: dense core, filamentary shells
                   modulated by deterministic harmonics.
* ``plume``      — a rising column with sinusoidal sway and a mushroom
                   head, tall in z (matches the 512×512×2048 aspect).

Each field maps normalised coordinates in ``[0,1]³`` to values in
``[0,1]`` and is resolution-independent, so the *same* object can be
materialised at 64³ for tests and described analytically at 1024³ for
the simulated benchmarks.  Only voxel count and empty-space distribution
affect the paper's measurements, and both are preserved.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from .volume import Volume, field_on_grid

__all__ = [
    "skull_field",
    "supernova_field",
    "plume_field",
    "make_dataset",
    "DATASET_FIELDS",
    "PAPER_RESOLUTIONS",
]

Field = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


def _smoothstep(edge0: float, edge1: float, x: np.ndarray) -> np.ndarray:
    t = np.clip((x - edge0) / (edge1 - edge0), 0.0, 1.0)
    return t * t * (3.0 - 2.0 * t)


def skull_field(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Hollow shell + inner matter + socket cavities; ~85% empty."""
    cx, cy, cz = x - 0.5, y - 0.5, z - 0.5
    r = np.sqrt(cx * cx + cy * cy + (cz * 1.15) ** 2)
    # Outer cranium shell at r≈0.38, thickness ~0.03.
    shell = np.exp(-((r - 0.38) / 0.03) ** 2)
    # Inner tissue: soft value inside r<0.33.
    tissue = 0.25 * _smoothstep(0.33, 0.28, r)
    # Eye sockets: two cavities carved from the shell.
    s1 = np.sqrt((cx - 0.14) ** 2 + (cy - 0.30) ** 2 + (cz + 0.08) ** 2)
    s2 = np.sqrt((cx + 0.14) ** 2 + (cy - 0.30) ** 2 + (cz + 0.08) ** 2)
    sockets = np.maximum(_smoothstep(0.12, 0.05, s1), _smoothstep(0.12, 0.05, s2))
    # Jaw ridge: a torus-ish band near the bottom front.
    jaw = np.exp(-(((r - 0.30) / 0.05) ** 2)) * _smoothstep(-0.05, -0.25, cz)
    value = np.maximum(shell * (1.0 - 0.9 * sockets), 0.55 * jaw) + tissue
    return np.clip(value, 0.0, 1.0)


def supernova_field(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Turbulent exploding ball; dense core, filamentary outer shells."""
    cx, cy, cz = x - 0.5, y - 0.5, z - 0.5
    r = np.sqrt(cx * cx + cy * cy + cz * cz)
    theta = np.arctan2(np.sqrt(cx * cx + cy * cy), cz)
    phi = np.arctan2(cy, cx)
    # Deterministic "turbulence": a few spherical-harmonic-like wobbles.
    turb = (
        0.35 * np.sin(5.0 * theta) * np.cos(3.0 * phi)
        + 0.25 * np.sin(9.0 * theta + 1.3) * np.sin(7.0 * phi + 0.7)
        + 0.15 * np.cos(13.0 * theta) * np.cos(11.0 * phi + 2.1)
    )
    shell_r = 0.33 * (1.0 + 0.18 * turb)
    shell = np.exp(-((r - shell_r) / 0.045) ** 2)
    core = _smoothstep(0.16, 0.02, r)
    filaments = 0.5 * np.exp(-((r - 0.24 * (1 + 0.3 * turb)) / 0.03) ** 2)
    return np.clip(core + shell + filaments, 0.0, 1.0)


def plume_field(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Buoyant column rising in +z with sway and a mushroom head."""
    # Column axis sways sinusoidally with height.
    ax = 0.5 + 0.10 * np.sin(6.0 * z) * z
    ay = 0.5 + 0.10 * np.cos(5.0 * z) * z
    d = np.sqrt((x - ax) ** 2 + (y - ay) ** 2)
    # Column radius grows with height; density falls off radially.
    radius = 0.05 + 0.13 * z**1.5
    column = np.exp(-((d / np.maximum(radius, 1e-6)) ** 2)) * _smoothstep(0.02, 0.12, z)
    # Mushroom head near the top.
    hd = np.sqrt((x - ax) ** 2 + (y - ay) ** 2 + ((z - 0.85) / 1.6) ** 2)
    head = 0.9 * np.exp(-((hd / 0.16) ** 2))
    # Slow vertical density stratification.
    strat = 0.8 + 0.2 * np.sin(20.0 * z)
    return np.clip((column * strat + head), 0.0, 1.0)


DATASET_FIELDS: Dict[str, Field] = {
    "skull": skull_field,
    "supernova": supernova_field,
    "plume": plume_field,
}

#: Resolutions used in the paper's evaluation (Section 5).
PAPER_RESOLUTIONS: Dict[str, list[tuple[int, int, int]]] = {
    "skull": [(n, n, n) for n in (128, 256, 512, 1024)],
    "supernova": [(n, n, n) for n in (128, 256, 512, 1024)],
    "plume": [(512, 512, 2048)],
}


def make_dataset(name: str, shape: Sequence[int]) -> Volume:
    """Materialise one of the named datasets at an arbitrary resolution."""
    try:
        field = DATASET_FIELDS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(DATASET_FIELDS)}"
        ) from None
    return Volume(field_on_grid(field, shape), name=name)
