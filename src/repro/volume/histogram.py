"""Value histograms and automatic transfer-function design.

Transfer-function design is the practical entry barrier for volume
rendering; a library "easy to program for" (the paper's pitch) should
offer a sane default.  :func:`auto_transfer_function` builds one from
the volume's value histogram: the (huge) background mode is made
transparent and opacity ramps over the informative value range,
weighted toward rare values — a standard histogram-equalisation
heuristic.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..render.transfer import TransferFunction1D
from .volume import Volume

__all__ = ["value_histogram", "auto_transfer_function"]


def value_histogram(
    volume: Volume, bins: int = 256, sample_stride: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """(counts, bin_edges) of voxel values, optionally strided for speed."""
    if bins < 2:
        raise ValueError("need at least two bins")
    if sample_stride < 1:
        raise ValueError("stride must be >= 1")
    data = volume.data[::sample_stride, ::sample_stride, ::sample_stride]
    lo, hi = float(data.min()), float(data.max())
    if hi <= lo:
        hi = lo + 1.0
    return np.histogram(data, bins=bins, range=(lo, hi))


def auto_transfer_function(
    volume: Volume,
    bins: int = 256,
    max_alpha: float = 0.7,
    background_quantile: float = 0.5,
    colormap: str = "fire",
    sample_stride: int = 2,
) -> TransferFunction1D:
    """Design a transfer function from the volume's histogram.

    Values at or below the ``background_quantile`` of voxel mass are
    transparent; above it, opacity grows with rarity (inverse histogram
    frequency, smoothed), so thin structures — shells, filaments — stay
    visible against bulky regions.
    """
    if not 0 < max_alpha <= 1:
        raise ValueError("max_alpha must be in (0, 1]")
    if not 0 <= background_quantile < 1:
        raise ValueError("background_quantile must be in [0, 1)")
    counts, edges = value_histogram(volume, bins, sample_stride)
    total = counts.sum()
    if total == 0:
        raise ValueError("empty volume")
    cdf = np.cumsum(counts) / total
    # First bin index strictly past the background mass: +1 keeps the
    # dominant background bin itself transparent even when it alone
    # exceeds the quantile.
    start = int(np.searchsorted(cdf, background_quantile)) + 1
    start = min(start, bins - 2)
    # Rarity weighting over the informative range.
    informative = counts[start:].astype(np.float64)
    rarity = 1.0 / (informative + 1.0)
    rarity /= rarity.max()
    # Smooth with a small box filter so the alpha ramp is not jagged.
    kernel = np.ones(9) / 9.0
    smooth = np.convolve(rarity, kernel, mode="same")
    smooth /= max(smooth.max(), 1e-12)
    alpha = np.zeros(bins, dtype=np.float32)
    ramp = np.linspace(0.15, 1.0, bins - start)
    alpha[start:] = (max_alpha * ramp * (0.35 + 0.65 * smooth)).astype(np.float32)
    alpha = np.clip(alpha, 0.0, 1.0)

    u = np.linspace(0.0, 1.0, bins, dtype=np.float32)
    if colormap == "fire":
        r = np.clip(3.0 * u, 0, 1)
        g = np.clip(3.0 * u - 1.0, 0, 1)
        b = np.clip(3.0 * u - 2.0, 0, 1)
    elif colormap == "cool":
        r = u
        g = 1.0 - 0.5 * u
        b = np.ones_like(u)
    elif colormap == "gray":
        r = g = b = u
    else:
        raise ValueError(f"unknown colormap {colormap!r}")
    table = np.stack([r, g, b, alpha], axis=1).astype(np.float32)
    return TransferFunction1D(table, vmin=float(edges[0]), vmax=float(edges[-1]))
