"""Bricked on-disk volume format (``.bvol``) and out-of-core reading.

The paper's library "eliminates the need to focus on I/O algorithms": the
runtime streams bricks from disk into mappers.  This module provides the
disk half of that claim — a simple bricked container so any brick can be
read independently with one seek, which is what makes the out-of-core
render path possible.

Layout::

    magic  b"BVOL1\\n"
    u32    header_length
    bytes  header JSON {shape, brick_size, ghost, dtype, name, offsets}
    bytes  brick 0 payload (ghost-padded float32, C order)
    bytes  brick 1 payload
    ...

Offsets are absolute file offsets, so readers can seek straight to any
brick — the access pattern of an out-of-core renderer.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import Sequence, Union

import numpy as np

from .bricking import Brick, BrickGrid
from .volume import Volume

__all__ = ["write_bvol", "BvolReader"]

MAGIC = b"BVOL1\n"


def write_bvol(
    path: Union[str, Path],
    volume: Volume,
    brick_size: Union[int, Sequence[int]],
    ghost: int = 1,
) -> BrickGrid:
    """Brick ``volume`` and write it as a ``.bvol`` container.

    Returns the :class:`BrickGrid` used, which the caller needs to
    interpret brick ids.
    """
    grid = BrickGrid(volume.shape, brick_size, ghost=ghost)
    payloads = [grid.extract(volume, b) for b in grid]
    header = {
        "shape": list(volume.shape),
        "brick_size": list(grid.brick_size),
        "ghost": grid.ghost,
        "dtype": "float32",
        "name": volume.name,
        "offsets": [],
    }
    # Compute offsets with a fixed-point iteration: the header length
    # depends on the offsets' digits. Two passes always converge because
    # we pad the header to its final length.
    blob = json.dumps(header).encode()
    base = len(MAGIC) + 4 + len(blob)
    for _ in range(4):
        offsets = []
        pos = base
        for p in payloads:
            offsets.append(pos)
            pos += p.nbytes
        header["offsets"] = offsets
        blob = json.dumps(header).encode()
        new_base = len(MAGIC) + 4 + len(blob)
        if new_base == base:
            break
        base = new_base
    else:
        raise RuntimeError("header offset fixpoint did not converge")
    with open(path, "wb") as f:
        f.write(MAGIC)
        f.write(struct.pack("<I", len(blob)))
        f.write(blob)
        for p in payloads:
            f.write(np.ascontiguousarray(p).tobytes())
    return grid


class BvolReader:
    """Random-access reader over a ``.bvol`` file.

    Bricks are read lazily — an out-of-core renderer touches only the
    bricks scheduled onto its GPUs, never the whole file.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        with open(self.path, "rb") as f:
            magic = f.read(len(MAGIC))
            if magic != MAGIC:
                raise ValueError(f"{self.path}: not a .bvol file")
            (hlen,) = struct.unpack("<I", f.read(4))
            header = json.loads(f.read(hlen))
        self.name: str = header["name"]
        self.shape = tuple(header["shape"])
        self.grid = BrickGrid(self.shape, tuple(header["brick_size"]), header["ghost"])
        self.offsets: list[int] = header["offsets"]
        if len(self.offsets) != len(self.grid):
            raise ValueError(
                f"{self.path}: {len(self.offsets)} offsets for {len(self.grid)} bricks"
            )
        self.bytes_read = 0

    def __len__(self) -> int:
        return len(self.grid)

    def brick(self, i: int) -> Brick:
        return self.grid.brick(i)

    def read_brick(self, i: int) -> np.ndarray:
        """Read brick ``i``'s ghost-padded payload with a single seek."""
        b = self.grid.brick(i)
        nbytes = b.nbytes
        with open(self.path, "rb") as f:
            f.seek(self.offsets[i])
            raw = f.read(nbytes)
        if len(raw) != nbytes:
            raise IOError(f"{self.path}: short read for brick {i}")
        self.bytes_read += nbytes
        return np.frombuffer(raw, dtype=np.float32).reshape(b.data_shape).copy()

    def read_volume(self) -> Volume:
        """Reassemble the full volume (test/debug helper; defeats out-of-core)."""
        data = np.zeros(self.shape, dtype=np.float32)
        for i in range(len(self)):
            b = self.grid.brick(i)
            payload = self.read_brick(i)
            # Strip the ghost shell back off.
            sl = tuple(
                slice(l - dl, h - dl)
                for l, h, dl in zip(b.lo, b.hi, b.data_lo)
            )
            data[b.lo[0] : b.hi[0], b.lo[1] : b.hi[1], b.lo[2] : b.hi[2]] = payload[sl]
        return Volume(data, name=self.name)

    def file_size(self) -> int:
        return os.path.getsize(self.path)
