"""Per-brick occupancy estimation and macro-cell min/max grids.

Ray fragments "with no contributions are discarded" (paper §3), so the
number of fragments a brick emits — and therefore all communication
volumes — depends on how much of the brick is non-empty under the
transfer function.  For in-core volumes we measure occupancy exactly;
for figure-scale volumes (1024³) we estimate it by evaluating the
procedural field on a coarse lattice inside each brick, which costs a
few hundred samples per brick instead of millions of voxels.

:func:`macro_cell_minmax` is the data-side half of the ray caster's
macro-cell empty-space grid (paper §3.2's pre-sampling skip of
transparent space): it partitions a brick payload into ``cell_size``³
macro cells and reduces each cell's *padded trilinear support* to a
(min, max) scalar pair.  The render layer classifies those ranges
against a transfer function (:func:`repro.render.accel.build_macro_grid`)
and DDA-traverses the resulting occupancy grid per ray so whole
transparent spans are carved out before any sample is even positioned.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .bricking import Brick, BrickGrid
from .volume import Volume

__all__ = [
    "brick_occupancy_exact",
    "brick_occupancy_estimate",
    "grid_occupancy",
    "macro_cell_dims",
    "macro_cell_minmax",
]


def brick_occupancy_exact(
    volume: Volume, grid: BrickGrid, brick: Brick, threshold: float
) -> float:
    """Exact fraction of core voxels whose value exceeds ``threshold``."""
    core = volume.region(brick.lo, brick.hi)
    return float(np.count_nonzero(core > threshold)) / core.size


def brick_occupancy_estimate(
    field: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    volume_shape: Sequence[int],
    brick: Brick,
    threshold: float,
    samples_per_axis: int = 8,
) -> float:
    """Estimate occupancy by sampling the field on a coarse lattice.

    Samples are placed at stratified positions inside the brick's core,
    expressed in the normalised coordinates the dataset fields use.
    """
    if samples_per_axis < 1:
        raise ValueError("need at least one sample per axis")
    shape = np.asarray(volume_shape, dtype=np.float64)
    lo = np.asarray(brick.lo, dtype=np.float64)
    hi = np.asarray(brick.hi, dtype=np.float64)
    axes = [
        (lo[a] + (np.arange(samples_per_axis) + 0.5) / samples_per_axis * (hi[a] - lo[a]))
        / shape[a]
        for a in range(3)
    ]
    vals = field(axes[0][:, None, None], axes[1][None, :, None], axes[2][None, None, :])
    vals = np.broadcast_to(vals, (samples_per_axis,) * 3)
    return float(np.count_nonzero(vals > threshold)) / vals.size


def macro_cell_dims(
    shape: Sequence[int], cell_size: int
) -> tuple[int, int, int]:
    """Macro-grid dimensions for a payload of ``shape``.

    Cell ``c`` along an axis covers the trilinear *base* indices
    ``[c·cs, (c+1)·cs)``; bases run over ``[0, n−2]``, so the grid needs
    ``ceil((n−1)/cs)`` cells per axis (at least one).
    """
    cs = int(cell_size)
    if cs < 1:
        raise ValueError("cell_size must be at least 1")
    return tuple(max(1, -(-(int(n) - 1) // cs)) for n in shape)


def macro_cell_minmax(
    data: np.ndarray, cell_size: int, pad: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Per-macro-cell (min, max) over each cell's padded trilinear support.

    Cell ``c`` owns the samples whose trilinear base index falls in
    ``[c·cs, (c+1)·cs)`` per axis; such a sample reads voxels up to
    ``(c+1)·cs`` inclusive, so the cell's support is its base range plus
    one voxel.  ``pad`` widens the support by that many *additional*
    voxels per side (clamped to the payload).  The default ``pad=1`` is
    the conservative margin the ray caster's macro-grid skip relies on:
    the per-sample positions it classifies are recomputed in a different
    precision than the march's float32 path, and their divergence is
    orders of magnitude below one voxel — so a sample attributed to a
    cell by the classifier is guaranteed to draw its 2×2×2 support from
    inside the cell's padded footprint, whatever the march's rounding.

    Returns ``(mins, maxs)`` shaped :func:`macro_cell_dims`, in the
    payload's dtype.
    """
    if data.ndim != 3:
        raise ValueError("expected a 3-D payload")
    if min(data.shape) < 2:
        raise ValueError("payload must be at least 2 voxels per axis")
    if pad < 0:
        raise ValueError("pad must be non-negative")
    cs = int(cell_size)
    dims = macro_cell_dims(data.shape, cs)
    mins, maxs = data, data
    for axis in range(3):
        n = data.shape[axis]
        lo_parts, hi_parts = [], []
        for c in range(dims[axis]):
            lo = max(0, c * cs - pad)
            hi = min(n, (c + 1) * cs + 1 + pad)
            sl = [slice(None)] * 3
            sl[axis] = slice(lo, hi)
            lo_parts.append(mins[tuple(sl)].min(axis=axis, keepdims=True))
            hi_parts.append(maxs[tuple(sl)].max(axis=axis, keepdims=True))
        mins = np.concatenate(lo_parts, axis=axis)
        maxs = np.concatenate(hi_parts, axis=axis)
    return mins, maxs


def grid_occupancy(
    grid: BrickGrid,
    threshold: float,
    volume: Volume | None = None,
    field: Callable | None = None,
    samples_per_axis: int = 8,
) -> np.ndarray:
    """Occupancy per brick, exact when a volume is given, else estimated.

    Returns an array of length ``len(grid)`` aligned with brick ids.
    """
    if (volume is None) == (field is None):
        raise ValueError("pass exactly one of volume= or field=")
    out = np.empty(len(grid), dtype=np.float64)
    for b in grid:
        if volume is not None:
            out[b.id] = brick_occupancy_exact(volume, grid, b, threshold)
        else:
            out[b.id] = brick_occupancy_estimate(
                field, grid.volume_shape, b, threshold, samples_per_axis
            )
    return out
