"""Per-brick occupancy estimation.

Ray fragments "with no contributions are discarded" (paper §3), so the
number of fragments a brick emits — and therefore all communication
volumes — depends on how much of the brick is non-empty under the
transfer function.  For in-core volumes we measure occupancy exactly;
for figure-scale volumes (1024³) we estimate it by evaluating the
procedural field on a coarse lattice inside each brick, which costs a
few hundred samples per brick instead of millions of voxels.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .bricking import Brick, BrickGrid
from .volume import Volume

__all__ = ["brick_occupancy_exact", "brick_occupancy_estimate", "grid_occupancy"]


def brick_occupancy_exact(
    volume: Volume, grid: BrickGrid, brick: Brick, threshold: float
) -> float:
    """Exact fraction of core voxels whose value exceeds ``threshold``."""
    core = volume.region(brick.lo, brick.hi)
    return float(np.count_nonzero(core > threshold)) / core.size


def brick_occupancy_estimate(
    field: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    volume_shape: Sequence[int],
    brick: Brick,
    threshold: float,
    samples_per_axis: int = 8,
) -> float:
    """Estimate occupancy by sampling the field on a coarse lattice.

    Samples are placed at stratified positions inside the brick's core,
    expressed in the normalised coordinates the dataset fields use.
    """
    if samples_per_axis < 1:
        raise ValueError("need at least one sample per axis")
    shape = np.asarray(volume_shape, dtype=np.float64)
    lo = np.asarray(brick.lo, dtype=np.float64)
    hi = np.asarray(brick.hi, dtype=np.float64)
    axes = [
        (lo[a] + (np.arange(samples_per_axis) + 0.5) / samples_per_axis * (hi[a] - lo[a]))
        / shape[a]
        for a in range(3)
    ]
    vals = field(axes[0][:, None, None], axes[1][None, :, None], axes[2][None, None, :])
    vals = np.broadcast_to(vals, (samples_per_axis,) * 3)
    return float(np.count_nonzero(vals > threshold)) / vals.size


def grid_occupancy(
    grid: BrickGrid,
    threshold: float,
    volume: Volume | None = None,
    field: Callable | None = None,
    samples_per_axis: int = 8,
) -> np.ndarray:
    """Occupancy per brick, exact when a volume is given, else estimated.

    Returns an array of length ``len(grid)`` aligned with brick ids.
    """
    if (volume is None) == (field is None):
        raise ValueError("pass exactly one of volume= or field=")
    out = np.empty(len(grid), dtype=np.float64)
    for b in grid:
        if volume is not None:
            out[b.id] = brick_occupancy_exact(volume, grid, b, threshold)
        else:
            out[b.id] = brick_occupancy_estimate(
                field, grid.volume_shape, b, threshold, samples_per_axis
            )
    return out
