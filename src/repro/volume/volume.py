"""Volume container.

A :class:`Volume` is a dense 3-D scalar field of ``float32`` samples —
the paper's input datasets are "four-byte floating-point samples".

Conventions used throughout the renderer:

* ``data`` has shape ``(nx, ny, nz)`` and is indexed ``data[ix, iy, iz]``.
* Voxel ``i`` occupies the world-space slab ``[i, i+1)`` on its axis, so
  the whole volume fills the box ``[0,nx] × [0,ny] × [0,nz]`` and voxel
  *centers* sit at ``i + 0.5``.  Trilinear interpolation is defined on
  the lattice of centers with clamp-to-edge behaviour, matching the
  CUDA 3D-texture addressing the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

__all__ = ["Volume", "field_on_grid"]


def field_on_grid(
    field: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    shape: Sequence[int],
    lo: Sequence[int] = (0, 0, 0),
    hi: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Evaluate a normalized-coordinate scalar field on a voxel sub-grid.

    ``field`` takes broadcastable arrays of coordinates in ``[0, 1]³``
    (fractions of the *full* volume extent given by ``shape``) and returns
    scalar values.  Only voxels ``lo ≤ i < hi`` are evaluated, which lets
    callers materialise single bricks of arbitrarily large volumes.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) != 3 or any(s < 1 for s in shape):
        raise ValueError(f"shape must be three positive ints, got {shape}")
    hi = tuple(shape) if hi is None else tuple(int(h) for h in hi)
    lo = tuple(int(l) for l in lo)
    if any(l < 0 or h > s or l >= h for l, h, s in zip(lo, hi, shape)):
        raise ValueError(f"bad region {lo}..{hi} for shape {shape}")
    # Voxel-center coordinates normalised by the full extent.
    xs = (np.arange(lo[0], hi[0], dtype=np.float64) + 0.5) / shape[0]
    ys = (np.arange(lo[1], hi[1], dtype=np.float64) + 0.5) / shape[1]
    zs = (np.arange(lo[2], hi[2], dtype=np.float64) + 0.5) / shape[2]
    out = field(xs[:, None, None], ys[None, :, None], zs[None, None, :])
    out = np.broadcast_to(out, (hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]))
    return np.ascontiguousarray(out, dtype=np.float32)


@dataclass
class Volume:
    """A dense float32 scalar volume plus its metadata."""

    data: np.ndarray
    name: str = "volume"

    def __post_init__(self) -> None:
        if self.data.ndim != 3:
            raise ValueError(f"volume data must be 3-D, got ndim={self.data.ndim}")
        if self.data.dtype != np.float32:
            self.data = np.ascontiguousarray(self.data, dtype=np.float32)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_function(
        cls,
        field: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
        shape: Sequence[int],
        name: str = "volume",
    ) -> "Volume":
        """Materialise a procedural field at the given resolution."""
        return cls(field_on_grid(field, shape), name=name)

    # -- geometry ------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int, int]:
        return self.data.shape  # type: ignore[return-value]

    @property
    def voxel_count(self) -> int:
        return int(np.prod(self.shape))

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def bbox(self) -> tuple[np.ndarray, np.ndarray]:
        """World-space axis-aligned bounds: (0,0,0) .. shape."""
        return (
            np.zeros(3, dtype=np.float64),
            np.asarray(self.shape, dtype=np.float64),
        )

    def resolution_label(self) -> str:
        """Human label like '256^3' or '512x512x2048'."""
        nx, ny, nz = self.shape
        if nx == ny == nz:
            return f"{nx}^3"
        return f"{nx}x{ny}x{nz}"

    # -- access ----------------------------------------------------------
    def region(self, lo: Sequence[int], hi: Sequence[int]) -> np.ndarray:
        """Copy of the half-open voxel region ``lo ≤ i < hi``."""
        lo = tuple(int(l) for l in lo)
        hi = tuple(int(h) for h in hi)
        if any(l < 0 or h > s or l >= h for l, h, s in zip(lo, hi, self.shape)):
            raise ValueError(f"bad region {lo}..{hi} for shape {self.shape}")
        return np.ascontiguousarray(
            self.data[lo[0] : hi[0], lo[1] : hi[1], lo[2] : hi[2]]
        )

    def value_range(self) -> tuple[float, float]:
        return float(self.data.min()), float(self.data.max())
