"""Tests for the per-volume acceleration cache (empty-space table LRU)."""

import numpy as np
import pytest

from repro import MapReduceVolumeRenderer, make_dataset, orbit_camera
from repro.render import RenderConfig, default_tf, grayscale_tf
from repro.render.accel import AccelCache, shared_cache, volume_token
from repro.render.raycast import raycast_brick


def test_lru_eviction_by_entries_and_bytes():
    c = AccelCache(max_entries=2, max_bytes=1 << 20)
    t = {k: np.zeros(8, dtype=bool) for k in "abc"}
    c.put("a", t["a"])
    c.put("b", t["b"])
    assert c.get("a") is t["a"]  # refresh a: b becomes LRU
    c.put("c", t["c"])
    assert c.get("b") is None  # evicted
    assert c.get("a") is t["a"] and c.get("c") is t["c"]
    # Byte bound evicts independently of the entry bound.
    cb = AccelCache(max_entries=100, max_bytes=100)
    cb.put("x", np.zeros(80, np.uint8))
    cb.put("y", np.zeros(80, np.uint8))
    assert cb.get("x") is None and cb.get("y") is not None
    assert cb.nbytes <= 100


def test_cache_hit_miss_counters_and_clear():
    c = AccelCache()
    assert c.get("k") is None
    c.put("k", np.ones(4, dtype=bool))
    assert c.get("k") is not None
    assert (c.hits, c.misses) == (1, 1)
    c.clear()
    assert len(c) == 0 and c.nbytes == 0 and (c.hits, c.misses) == (0, 0)


def test_cache_bounds_validation():
    with pytest.raises(ValueError):
        AccelCache(max_entries=0)
    with pytest.raises(ValueError):
        AccelCache(max_bytes=0)


def test_volume_token_unique_and_stable():
    v1 = make_dataset("skull", (8, 8, 8))
    v2 = make_dataset("skull", (8, 8, 8))
    t1, t2 = volume_token(v1), volume_token(v2)
    assert t1 is not None and t2 is not None
    assert t1 != t2  # identical content, distinct objects
    assert volume_token(v1) == t1  # stable per object
    assert volume_token(None) is None
    assert volume_token(object()) is None  # not weak-referenceable: no token

    class Obj:
        pass

    assert volume_token(Obj()) is not None  # any weakref-able object


def test_invalidate_volume_mints_fresh_token():
    from repro.render.accel import invalidate_volume

    v = make_dataset("skull", (8, 8, 8))
    t = volume_token(v)
    # In-place voxel edits keep the object identity; callers signal them
    # explicitly so caches and arenas re-derive from the new data.
    v.data[:] = 0.0
    invalidate_volume(v)
    assert volume_token(v) != t


def test_invalidate_volume_end_to_end_after_inplace_edit():
    """The escape hatch must actually work: an in-place voxel edit
    followed by invalidate_volume() renders bitwise-identical to a cold
    render of the edited data — through the serial executor (stale
    accel tables) and the pool executor (stale shared-memory arenas)."""
    import copy

    from repro.render.accel import invalidate_volume

    vol = make_dataset("skull", (24,) * 3)
    cam = orbit_camera(vol.shape, azimuth_deg=40.0, width=64, height=64)
    cfg = RenderConfig(dt=0.75)

    r = MapReduceVolumeRenderer(volume=vol, cluster=2, render_config=cfg)
    before = r.render(cam, mode="exec").image
    r.render(cam, mode="exec")  # warm the accel cache

    # In-place edit: drop a dense block into a previously empty corner —
    # exactly the region a stale empty-space table would wrongly skip.
    vol.data[:10, :10, :10] = float(vol.data.max())
    invalidate_volume(vol)
    warm = r.render(cam, mode="exec").image

    # Cold oracle: same bytes, fresh object, fresh caches.
    vol2 = copy.deepcopy(vol)
    shared_cache().clear()
    cold = (
        MapReduceVolumeRenderer(volume=vol2, cluster=2, render_config=cfg)
        .render(cam, mode="exec")
        .image
    )
    assert not np.array_equal(cold, before)  # the edit is actually visible
    assert np.array_equal(warm, cold)


def test_invalidate_volume_end_to_end_pool_arena():
    import copy

    from repro.render.accel import invalidate_volume

    vol = make_dataset("skull", (24,) * 3)
    cam = orbit_camera(vol.shape, azimuth_deg=40.0, width=64, height=64)
    cfg = RenderConfig(dt=0.75)

    with MapReduceVolumeRenderer(
        volume=vol, cluster=2, render_config=cfg,
        executor="pool", workers=2, reduce_mode="worker",
    ) as rp:
        before = rp.render(cam, mode="exec").image
        vol.data[:10, :10, :10] = float(vol.data.max())
        # Without invalidation the arena fingerprint is unchanged, so the
        # pool keeps rendering the *stale* published voxels — that is the
        # documented hazard the escape hatch exists for.
        stale = rp.render(cam, mode="exec").image
        assert np.array_equal(stale, before)
        invalidate_volume(vol)
        fresh = rp.render(cam, mode="exec").image

    vol2 = copy.deepcopy(vol)
    shared_cache().clear()
    cold = (
        MapReduceVolumeRenderer(volume=vol2, cluster=2, render_config=cfg)
        .render(cam, mode="exec")
        .image
    )
    assert not np.array_equal(cold, before)
    assert np.array_equal(fresh, cold)


def test_volume_token_never_reused_after_gc():
    import gc

    v = make_dataset("skull", (8, 8, 8))
    t = volume_token(v)
    del v
    gc.collect()
    v2 = make_dataset("skull", (8, 8, 8))
    assert volume_token(v2) != t


def test_tf_version_tracks_content():
    a, b = default_tf(), default_tf()
    assert a.version == b.version  # content-addressed, not identity
    assert a.version != grayscale_tf().version
    assert len(a.version) > 0


def test_cached_table_cannot_change_image_or_stats():
    """Warm-cache renders are bitwise identical to cold-cache renders."""
    vol = make_dataset("skull", (32, 32, 32))
    r = MapReduceVolumeRenderer(volume=vol, cluster=2)
    cam = orbit_camera(vol.shape, width=96, height=96)
    shared_cache().clear()
    cold = r.render(cam, mode="exec")
    warm = r.render(cam, mode="exec")
    assert shared_cache().hits > 0  # the second frame actually hit
    assert np.array_equal(cold.image, warm.image)
    assert cold.stats.as_dict() == warm.stats.as_dict()


def test_cached_grid_cannot_change_image_or_stats():
    """The macro-grid mirror of the table test: cold vs warm bitwise,
    with per-brick grid entries actually landing in the cache."""
    vol = make_dataset("skull", (32, 32, 32))
    r = MapReduceVolumeRenderer(
        volume=vol, cluster=2, accel="grid", macro_cell_size=4
    )
    cam = orbit_camera(vol.shape, width=96, height=96)
    shared_cache().clear()
    cold = r.render(cam, mode="exec")
    grid_keys = [
        k for k in shared_cache()._entries
        if isinstance(k, tuple) and k and k[0] == "grid"
    ]
    assert len(grid_keys) == cold.n_bricks  # one grid (or sentinel) per brick
    hits = shared_cache().hits
    warm = r.render(cam, mode="exec")
    assert shared_cache().hits > hits
    assert np.array_equal(cold.image, warm.image)
    assert cold.stats.as_dict() == warm.stats.as_dict()


def test_invalidate_volume_refreshes_grids_after_inplace_edit():
    """Grid mirror of the table invalidation test: a stale macro grid
    wrongly skips the edited (previously empty) corner, and
    invalidate_volume() recovers bitwise agreement with a cold render."""
    import copy

    from repro.render.accel import invalidate_volume

    vol = make_dataset("skull", (24,) * 3)
    cam = orbit_camera(vol.shape, azimuth_deg=40.0, width=64, height=64)
    cfg = RenderConfig(dt=0.75, accel="grid", macro_cell_size=4)

    r = MapReduceVolumeRenderer(volume=vol, cluster=2, render_config=cfg)
    before = r.render(cam, mode="exec").image
    r.render(cam, mode="exec")  # warm the grid cache
    # In-place edit into a previously empty corner — the region a stale
    # occupancy grid would (at least partially) wrongly skip.
    vol.data[:10, :10, :10] = float(vol.data.max())
    invalidate_volume(vol)
    fresh = r.render(cam, mode="exec").image

    vol2 = copy.deepcopy(vol)
    shared_cache().clear()
    cold = (
        MapReduceVolumeRenderer(volume=vol2, cluster=2, render_config=cfg)
        .render(cam, mode="exec")
        .image
    )
    assert not np.array_equal(cold, before)  # the edit is actually visible
    assert np.array_equal(fresh, cold)


def test_cache_put_none_raises():
    c = AccelCache()
    with pytest.raises(TypeError):
        c.put("k", None)
    assert len(c) == 0


def test_cache_pop():
    c = AccelCache()
    t = np.ones(8, dtype=bool)
    c.put("k", t)
    assert c.pop("k") is t
    assert c.pop("k") is None  # absent key is fine
    assert len(c) == 0 and c.nbytes == 0


def test_accel_key_with_no_leading_zero_alpha_tf():
    # A transfer function that is opaque from entry 0 has no empty space
    # to skip: the corner-max table cannot exist (_empty_space_table
    # returns None, which must never be cached) and the macro grid
    # caches the NO_GRID sentinel so the negative result is remembered
    # instead of being re-derived every frame.
    from repro.render import TransferFunction1D
    from repro.render.accel import is_no_grid

    tf = TransferFunction1D(np.full((8, 4), 0.5, np.float32))
    rng = np.random.default_rng(5)
    data = rng.random((16, 16, 16), dtype=np.float32)
    cam = orbit_camera((16, 16, 16), width=48, height=48)
    cache = AccelCache()
    kwargs = dict(
        data=data,
        data_lo=(0, 0, 0),
        core_lo=(0, 0, 0),
        core_hi=(16, 16, 16),
        volume_shape=(16, 16, 16),
        camera=cam,
        tf=tf,
        config=RenderConfig(dt=0.5),
    )
    f1, _ = raycast_brick(**kwargs, accel_key=("k",), accel_cache=cache)
    # Exactly one entry: the grid sentinel.  No table, no None.
    assert len(cache) == 1 and cache.nbytes == 0
    ((key, entry),) = cache._entries.items()
    assert key[0] == "grid" and is_no_grid(entry)
    misses = cache.misses
    f2, _ = raycast_brick(**kwargs, accel_key=("k",), accel_cache=cache)
    assert cache.misses == misses  # sentinel hit: nothing re-derived
    f3, _ = raycast_brick(**kwargs)
    assert np.array_equal(f1, f2) and np.array_equal(f1, f3)


def test_raycast_brick_uses_explicit_cache():
    rng = np.random.default_rng(3)
    data = rng.random((12, 12, 12), dtype=np.float32)
    cam = orbit_camera((12, 12, 12), width=48, height=48)
    cache = AccelCache()
    kwargs = dict(
        data=data,
        data_lo=(0, 0, 0),
        core_lo=(0, 0, 0),
        core_hi=(12, 12, 12),
        volume_shape=(12, 12, 12),
        camera=cam,
        tf=default_tf(),
        config=RenderConfig(dt=0.5),
    )
    f1, s1 = raycast_brick(**kwargs, accel_key=("k",), accel_cache=cache)
    # Table stored under the base key, macro grid (or its sentinel)
    # under the derived grid key.
    assert len(cache) == 2
    f2, s2 = raycast_brick(**kwargs, accel_key=("k",), accel_cache=cache)
    assert cache.hits >= 2
    assert np.array_equal(f1, f2)
    assert s1.n_samples == s2.n_samples and s1.n_kept == s2.n_kept
    # No key -> the shared cache is untouched and output is unchanged.
    f3, _ = raycast_brick(**kwargs)
    assert np.array_equal(f1, f3)
