"""Tests for the ParaView-like, Mars-like, and binary-swap baselines."""

import numpy as np
import pytest

from repro.baselines import (
    PARAVIEW_REPORTED_VPS,
    InCoreOnlyError,
    SingleGpuBaseline,
    binary_swap_time,
    run_cpu_cluster_baseline,
    swap_partial_images,
)
from repro.render import (
    RenderConfig,
    default_tf,
    max_abs_diff,
    orbit_camera,
    over,
    render_reference,
)
from repro.render.compositing import composite_fragments
from repro.render.fragments import concat_fragments
from repro.render.raycast import raycast_brick
from repro.sim import NetworkSpec
from repro.volume import BrickGrid, make_dataset
from repro.volume.datasets import skull_field


def test_cpu_cluster_baseline_matches_reported_rate():
    """512 simulated CPU procs should land near ParaView's 346M VPS on a
    large volume (the regime Moreland et al. measured)."""
    res = run_cpu_cluster_baseline((1024, 1024, 1024), n_procs=512)
    assert res.n_procs == 512
    assert PARAVIEW_REPORTED_VPS / 2 <= res.vps <= PARAVIEW_REPORTED_VPS * 2


def test_cpu_cluster_scales_with_procs_until_composite_floor():
    t64 = run_cpu_cluster_baseline((512,) * 3, n_procs=64)
    t256 = run_cpu_cluster_baseline((512,) * 3, n_procs=256)
    assert t256.runtime < t64.runtime
    assert t256.composite_seconds > t64.composite_seconds  # overhead grows


def test_cpu_cluster_validation_and_fields():
    res = run_cpu_cluster_baseline((128,) * 3, n_procs=1)
    assert res.composite_seconds == 0.0
    assert res.runtime == res.render_seconds
    assert res.fps == 1.0 / res.runtime
    with pytest.raises(ValueError):
        run_cpu_cluster_baseline((128,) * 3, n_procs=0)
    with pytest.raises(ValueError):
        run_cpu_cluster_baseline((128,) * 3, image_pixels=-1)


# -- Mars-like single GPU -------------------------------------------------------
def test_single_gpu_renders_small_volume():
    vol = make_dataset("supernova", (24, 24, 24))
    cam = orbit_camera(vol.shape, width=32, height=32)
    base = SingleGpuBaseline(tf=default_tf(), render_config=RenderConfig(dt=0.8, ert_alpha=1.0))
    res = base.render(vol, cam)
    ref = render_reference(vol, cam, default_tf(), RenderConfig(dt=0.8, ert_alpha=1.0))
    assert max_abs_diff(res.image, ref.image) < 1e-4


def test_single_gpu_rejects_out_of_core_volume():
    base = SingleGpuBaseline(tf=default_tf())
    with pytest.raises(InCoreOnlyError):
        base.check_fits(5 * 1024**3)  # > 4 GiB VRAM
    assert base.would_fit((512, 512, 512))  # 512 MB fits
    assert not base.would_fit((1024, 1024, 1024 + 64))  # > 4 GiB does not


# -- binary swap ----------------------------------------------------------------
def test_swap_partial_images_equals_sequential_over():
    rng = np.random.default_rng(3)
    partials = []
    for _ in range(4):
        a = rng.uniform(0, 1, (8, 8, 1)).astype(np.float32)
        rgb = rng.uniform(0, 1, (8, 8, 3)).astype(np.float32) * a
        partials.append(np.concatenate([rgb, a], axis=2))
    tree = swap_partial_images(partials)
    seq = partials[0]
    for p in partials[1:]:
        seq = over(seq, p)
    assert np.allclose(tree, seq, atol=1e-5)


def test_swap_partial_images_odd_count_and_validation():
    imgs = [np.zeros((4, 4, 4), np.float32) for _ in range(3)]
    out = swap_partial_images(imgs)
    assert out.shape == (4, 4, 4)
    with pytest.raises(ValueError):
        swap_partial_images([])
    with pytest.raises(ValueError):
        swap_partial_images([np.zeros((4, 4, 4)), np.zeros((2, 2, 4))])


def test_swap_matches_reference_on_slab_decomposition():
    """Functional check: per-slab partial images composited with binary
    swap reproduce the reference image (visibility-ordered slabs)."""
    vol = make_dataset("supernova", (24, 24, 24))
    tf = default_tf()
    cfg = RenderConfig(dt=0.8, ert_alpha=1.0)
    # Camera along -y so slabs along y are in depth order.
    from repro.render import Camera

    cam = Camera(eye=(12.0, -90.0, 12.0), center=(12.0, 12.0, 12.0), width=32, height=32)
    ref = render_reference(vol, cam, tf, cfg)
    grid = BrickGrid(vol.shape, (24, 6, 24), ghost=1)  # 4 slabs along y
    partials = []
    for b in grid:  # brick ids ascend in y → ascending depth from camera
        frags, _ = raycast_brick(
            grid.extract(vol, b), b.data_lo, b.lo, b.hi, vol.shape, cam, tf, cfg
        )
        img = composite_fragments(frags, cam.pixel_count).reshape(32, 32, 4)
        partials.append(img)
    merged = swap_partial_images(partials)
    assert max_abs_diff(merged, ref.image) < 1e-4


def test_binary_swap_time_model():
    net = NetworkSpec(bandwidth=4e9, latency=2e-6, message_overhead=4e-6)
    one = binary_swap_time(1, 512 * 512, net)
    assert one.total == 0.0
    four = binary_swap_time(4, 512 * 512, net)
    assert four.rounds == 2
    assert four.comm_seconds > 0 and four.composite_seconds > 0
    # Non-power-of-two pays ceil(log2) rounds.
    assert binary_swap_time(6, 512 * 512, net).rounds == 3
    with pytest.raises(ValueError):
        binary_swap_time(0, 100, net)
    with pytest.raises(ValueError):
        binary_swap_time(2, -1, net)


def test_binary_swap_comm_grows_slowly_with_nodes():
    """Swap total exchange per node is bounded (~1 image) regardless of n."""
    net = NetworkSpec()
    t4 = binary_swap_time(4, 512 * 512, net, gather=False)
    t32 = binary_swap_time(32, 512 * 512, net, gather=False)
    # 8x the participants costs well under 8x the exchange time (the
    # per-round volume halves; only per-round overheads accumulate).
    assert t32.comm_seconds < 3 * t4.comm_seconds
