"""Tests for brick decomposition, including the exact-cover property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.volume import BrickGrid, Volume, bricks_for_gpu_count, make_dataset
from repro.volume.datasets import supernova_field


def test_grid_counts_and_len():
    g = BrickGrid((64, 64, 64), 32)
    assert g.counts == (2, 2, 2)
    assert len(g) == 8


def test_uneven_division_covers_remainder():
    g = BrickGrid((65, 64, 30), 32)
    assert g.counts == (3, 2, 1)
    last = g.brick_at(2, 0, 0)
    assert last.lo[0] == 64 and last.hi[0] == 65


def test_brick_linear_ids_roundtrip():
    g = BrickGrid((64, 96, 32), (32, 32, 16))
    for i, b in enumerate(g):
        assert b.id == i
        assert g.brick(i).index == b.index
        assert g.brick_index(i) == b.index


def test_brick_out_of_range():
    g = BrickGrid((32, 32, 32), 16)
    with pytest.raises(IndexError):
        g.brick(len(g))
    with pytest.raises(IndexError):
        g.brick_at(2, 0, 0)


def test_validation():
    with pytest.raises(ValueError):
        BrickGrid((0, 4, 4), 2)
    with pytest.raises(ValueError):
        BrickGrid((4, 4, 4), 0)
    with pytest.raises(ValueError):
        BrickGrid((4, 4, 4), 2, ghost=-1)


@given(
    shape=st.tuples(
        st.integers(1, 40), st.integers(1, 40), st.integers(1, 40)
    ),
    brick=st.tuples(st.integers(1, 16), st.integers(1, 16), st.integers(1, 16)),
)
@settings(max_examples=60, deadline=None)
def test_cores_exactly_cover_volume(shape, brick):
    """Every voxel belongs to exactly one brick core (hypothesis)."""
    g = BrickGrid(shape, brick)
    cover = np.zeros(shape, dtype=np.int32)
    for b in g:
        cover[b.lo[0] : b.hi[0], b.lo[1] : b.hi[1], b.lo[2] : b.hi[2]] += 1
    assert np.all(cover == 1)


@given(
    shape=st.tuples(st.integers(4, 32), st.integers(4, 32), st.integers(4, 32)),
    brick=st.integers(2, 12),
    ghost=st.integers(0, 2),
)
@settings(max_examples=40, deadline=None)
def test_ghost_shell_clamped_at_boundaries(shape, brick, ghost):
    g = BrickGrid(shape, brick, ghost=ghost)
    for b in g:
        for a in range(3):
            assert b.data_lo[a] == max(b.lo[a] - ghost, 0)
            assert b.data_hi[a] == min(b.hi[a] + ghost, shape[a])
            assert 0 <= b.data_lo[a] <= b.lo[a]
            assert b.hi[a] <= b.data_hi[a] <= shape[a]


def test_extract_matches_region():
    v = make_dataset("supernova", (20, 20, 20))
    g = BrickGrid(v.shape, 8, ghost=1)
    b = g.brick_at(1, 1, 1)
    payload = g.extract(v, b)
    assert payload.shape == b.data_shape
    assert np.array_equal(payload, v.data[7:17, 7:17, 7:17])


def test_extract_from_field_matches_extract():
    """Out-of-core brick materialisation equals in-core extraction."""
    v = Volume.from_function(supernova_field, (24, 24, 24))
    g = BrickGrid(v.shape, 10, ghost=1)
    for b in g:
        a = g.extract(v, b)
        c = g.extract_from_field(supernova_field, b)
        assert np.array_equal(a, c)


def test_extract_shape_mismatch():
    v = make_dataset("skull", (16, 16, 16))
    g = BrickGrid((32, 32, 32), 16)
    with pytest.raises(ValueError):
        g.extract(v, g.brick(0))


def test_nbytes_and_payload_total():
    g = BrickGrid((32, 32, 32), 16, ghost=1)
    b = g.brick_at(0, 0, 0)
    assert b.data_shape == (17, 17, 17)
    assert b.nbytes == 17**3 * 4
    assert g.total_payload_bytes() > 32**3 * 4  # ghost overlap costs bytes
    # Every brick of a 2x2x2 grid touches the boundary: 16 core + 1 ghost.
    assert g.max_brick_nbytes() == 17**3 * 4
    interior = BrickGrid((48, 48, 48), 16, ghost=1)
    assert interior.max_brick_nbytes() == 18**3 * 4  # interior brick: 2 ghosts


def test_corners_are_box_corners():
    g = BrickGrid((32, 32, 32), 16)
    b = g.brick_at(1, 0, 1)
    c = b.corners()
    assert c.shape == (8, 3)
    assert np.allclose(c.min(axis=0), [16, 0, 16])
    assert np.allclose(c.max(axis=0), [32, 16, 32])


@pytest.mark.parametrize("n_gpus,per_gpu", [(1, 1), (2, 2), (8, 2), (32, 4)])
def test_bricks_for_gpu_count_hits_target_band(n_gpus, per_gpu):
    g = bricks_for_gpu_count((256, 256, 256), n_gpus, per_gpu)
    target = n_gpus * per_gpu
    assert target <= len(g) <= 8 * target  # paper: within a small factor


def test_bricks_for_gpu_count_respects_min_brick():
    g = bricks_for_gpu_count((32, 32, 32), 1000, 4, min_brick=16)
    # 32^3 can only be split once per axis at min_brick=16.
    assert len(g) <= 8


def test_bricks_for_gpu_count_validation():
    with pytest.raises(ValueError):
        bricks_for_gpu_count((64, 64, 64), 0)
