"""Tests for the camera: rays, projection round-trip, brick footprints."""

import math

import numpy as np
import pytest

from repro.render import BLOCK, Camera, PixelRect, orbit_camera


def simple_camera(width=64, height=64):
    return Camera(
        eye=(0.0, -100.0, 0.0),
        center=(0.0, 0.0, 0.0),
        up=(0.0, 0.0, 1.0),
        fov_y=math.radians(45.0),
        width=width,
        height=height,
    )


def test_camera_validation():
    with pytest.raises(ValueError):
        Camera(eye=(0, 0, 0), center=(0, 0, 0))
    with pytest.raises(ValueError):
        Camera(eye=(0, 0, 0), center=(0, 0, 1), up=(0, 0, 1))
    with pytest.raises(ValueError):
        Camera(eye=(0, 0, 0), center=(0, 1, 0), width=0)
    with pytest.raises(ValueError):
        Camera(eye=(0, 0, 0), center=(0, 1, 0), fov_y=0.0)


def test_basis_orthonormal():
    cam = simple_camera()
    r, u, f = cam.basis
    for v in (r, u, f):
        assert np.linalg.norm(v) == pytest.approx(1.0)
    assert abs(np.dot(r, u)) < 1e-12
    assert abs(np.dot(r, f)) < 1e-12
    assert abs(np.dot(u, f)) < 1e-12


def test_center_pixel_ray_points_forward():
    cam = simple_camera()
    o, d = cam.rays_for_pixels(np.array([31]), np.array([31]))
    assert np.allclose(o[0], cam.eye)
    _, _, fwd = cam.basis
    # Center-adjacent pixel: direction nearly equals forward.
    assert np.dot(d[0], fwd) > 0.999


def test_rays_are_unit_length():
    cam = simple_camera()
    px, py = np.meshgrid(np.arange(0, 64, 7), np.arange(0, 64, 7))
    _, d = cam.rays_for_pixels(px.ravel(), py.ravel())
    assert np.allclose(np.linalg.norm(d, axis=1), 1.0)


def test_project_ray_roundtrip():
    """Projecting a point on a pixel's ray recovers that pixel."""
    cam = simple_camera()
    px = np.array([3, 17, 40, 63])
    py = np.array([5, 60, 31, 0])
    o, d = cam.rays_for_pixels(px, py)
    points = o + 37.5 * d
    xy, in_front = cam.project_points(points)
    assert np.all(in_front)
    assert np.allclose(xy[:, 0], px + 0.5, atol=1e-9)
    assert np.allclose(xy[:, 1], py + 0.5, atol=1e-9)


def test_points_behind_camera_flagged():
    cam = simple_camera()
    xy, in_front = cam.project_points(np.array([[0.0, -200.0, 0.0]]))
    assert not in_front[0]
    assert np.all(np.isnan(xy[0]))


def test_pixel_index_is_paper_key():
    cam = simple_camera(width=512)
    assert cam.pixel_index(np.array([3]), np.array([2]))[0] == 2 * 512 + 3
    assert cam.pixel_index(np.array([0]), np.array([0])).dtype == np.int32


def test_rect_properties_and_coords():
    r = PixelRect(16, 32, 48, 64)
    assert r.width == 32 and r.height == 32 and r.area == 1024
    assert not r.empty
    px, py = r.pixel_coords()
    assert len(px) == r.area
    assert px.min() == 16 and px.max() == 47
    assert py.min() == 32 and py.max() == 63
    assert PixelRect(5, 5, 5, 9).empty


def test_brick_rect_block_padding_and_clipping():
    cam = simple_camera(width=64, height=64)
    corners = np.array(
        [[x, y, z] for x in (-5, 5) for y in (-5, 5) for z in (-5, 5)], dtype=float
    )
    rect = cam.brick_rect(corners)
    assert rect.x0 % BLOCK == 0 and rect.y0 % BLOCK == 0
    assert rect.x1 % BLOCK == 0 or rect.x1 == cam.width
    assert 0 <= rect.x0 < rect.x1 <= cam.width
    assert 0 <= rect.y0 < rect.y1 <= cam.height


def test_brick_rect_contains_projection():
    cam = simple_camera(width=128, height=128)
    corners = np.array(
        [[x, y, z] for x in (-8, 8) for y in (-8, 8) for z in (-8, 8)], dtype=float
    )
    rect = cam.brick_rect(corners, pad_to_block=False)
    xy, _ = cam.project_points(corners)
    assert rect.x0 <= xy[:, 0].min() and rect.x1 >= xy[:, 0].max()
    assert rect.y0 <= xy[:, 1].min() and rect.y1 >= xy[:, 1].max()


def test_brick_rect_behind_camera_covers_viewport():
    cam = simple_camera()
    corners = np.array(
        [[x, y, z] for x in (-5, 5) for y in (-150, 5) for z in (-5, 5)], dtype=float
    )
    rect = cam.brick_rect(corners)
    assert rect == cam.full_rect()


def test_offscreen_brick_rect_is_empty():
    cam = simple_camera(width=64, height=64)
    # A box far to the right of the frustum.
    corners = np.array(
        [[x + 500, y, z] for x in (0, 5) for y in (0, 5) for z in (0, 5)],
        dtype=float,
    )
    rect = cam.brick_rect(corners)
    assert rect.empty or rect.area == 0


def test_orbit_camera_looks_at_center():
    cam = orbit_camera((64, 64, 64), azimuth_deg=45, elevation_deg=30)
    assert np.allclose(cam.center, (32, 32, 32))
    # The volume must be in front of the camera.
    xy, in_front = cam.project_points(np.array([[32.0, 32.0, 32.0]]))
    assert in_front[0]
    # The center projects to the image center.
    assert np.allclose(xy[0], [cam.width / 2, cam.height / 2], atol=1e-6)


def test_orbit_camera_sees_whole_volume():
    cam = orbit_camera((64, 64, 64))
    corners = np.array(
        [[x, y, z] for x in (0, 64) for y in (0, 64) for z in (0, 64)], dtype=float
    )
    xy, in_front = cam.project_points(corners)
    assert np.all(in_front)
    assert xy[:, 0].min() >= 0 and xy[:, 0].max() <= cam.width
    assert xy[:, 1].min() >= 0 and xy[:, 1].max() <= cam.height
