"""Tests for the combiner and the MIP pluggability path."""

import numpy as np
import pytest

from repro.core import (
    Chunk,
    InProcessExecutor,
    KVSpec,
    MapReduceSpec,
    RoundRobinPartitioner,
)
from repro.pipeline import (
    FragmentCombiner,
    MIP_DTYPE,
    MapReduceVolumeRenderer,
    MaxIntensityMapper,
    MaxReducer,
)
from repro.render import RenderConfig, default_tf, max_abs_diff, orbit_camera
from repro.render.fragments import make_fragments
from repro.volume import BrickGrid, make_dataset


# -- combiner --------------------------------------------------------------
def frag(pixel, depth, rgba):
    return make_fragments(
        np.array([pixel], np.int32),
        np.array([depth], np.float32),
        np.array([rgba], np.float32),
    )


def test_combiner_merges_same_key_in_depth_order():
    c = FragmentCombiner()
    near = frag(5, 1.0, [0.5, 0.0, 0.0, 0.5])
    far = frag(5, 9.0, [0.0, 0.0, 0.8, 0.8])
    merged = c.combine(np.concatenate([far, near]))
    assert len(merged) == 1
    # over(near, far): r = 0.5, b = (1-0.5)*0.8 = 0.4, a = 0.5+0.5*0.8 = 0.9
    assert merged[0]["r"] == pytest.approx(0.5)
    assert merged[0]["b"] == pytest.approx(0.4)
    assert merged[0]["a"] == pytest.approx(0.9)
    assert merged[0]["depth"] == pytest.approx(1.0)  # front depth survives
    assert c.pairs_in == 2 and c.pairs_out == 1


def test_combiner_passthrough_when_keys_unique():
    c = FragmentCombiner()
    pairs = np.concatenate([frag(1, 1.0, [0.1] * 4), frag(2, 2.0, [0.2] * 4)])
    out = c.combine(pairs)
    assert np.array_equal(out, pairs)
    assert c.pairs_in == 2 and c.pairs_out == 2


def test_combiner_empty_and_type_check():
    c = FragmentCombiner()
    empty = np.empty(0, dtype=frag(0, 0, [0, 0, 0, 0]).dtype)
    assert len(c.combine(empty)) == 0
    with pytest.raises(TypeError):
        c.combine(np.zeros(2, np.dtype([("pixel", np.int32)])))


def test_pipeline_with_combiner_image_unchanged():
    """Adding the combiner cannot change the image (it merges correctly),
    and for ray-cast fragments it merges nothing (the paper's point)."""
    vol = make_dataset("supernova", (20, 20, 20))
    cam = orbit_camera(vol.shape, width=40, height=40)
    cfg = RenderConfig(dt=0.8, ert_alpha=1.0)
    base = MapReduceVolumeRenderer(
        volume=vol, cluster=2, tf=default_tf(), render_config=cfg
    ).render(cam)
    r = MapReduceVolumeRenderer(
        volume=vol, cluster=2, tf=default_tf(), render_config=cfg
    )
    spec = r._spec(cam)
    combiner = FragmentCombiner()
    spec.combiner = combiner
    grid = r._grid(2)
    chunks = r._chunks(grid, out_of_core=False)
    res = InProcessExecutor().execute(spec, chunks)
    from repro.render import stitch_pixels

    img = stitch_pixels(
        [(k, v) for k, v in res.outputs if len(k)], cam.width, cam.height
    )
    assert max_abs_diff(img, base.image) == 0.0
    assert combiner.pairs_in == combiner.pairs_out  # nothing merged


# -- MIP pluggability -------------------------------------------------------
def mip_image(vol, cam, grid, n_red=2):
    spec = MapReduceSpec(
        mapper=MaxIntensityMapper(cam, vol.shape, dt=0.5),
        reducer=MaxReducer(),
        partitioner=RoundRobinPartitioner(n_red),
        kv=KVSpec(MIP_DTYPE, key_field="pixel"),
        max_key=cam.pixel_count - 1,
    )
    chunks = [
        Chunk(id=b.id, nbytes=b.nbytes, data=grid.extract(vol, b), meta=b)
        for b in grid
    ]
    res = InProcessExecutor().execute(spec, chunks)
    img = np.zeros(cam.pixel_count, np.float32)
    for keys, values in res.outputs:
        img[keys] = values
    return img


def test_mip_brick_invariance():
    """MIP's max fold is order/partition independent: any bricking gives
    the same image."""
    vol = make_dataset("supernova", (24, 24, 24))
    cam = orbit_camera(vol.shape, width=48, height=48)
    single = mip_image(vol, cam, BrickGrid(vol.shape, 24, ghost=1))
    bricked = mip_image(vol, cam, BrickGrid(vol.shape, 8, ghost=1))
    assert np.abs(single - bricked).max() < 1e-5


def test_mip_upper_bounds_volume_max():
    vol = make_dataset("supernova", (24, 24, 24))
    cam = orbit_camera(vol.shape, width=48, height=48)
    img = mip_image(vol, cam, BrickGrid(vol.shape, 12, ghost=1))
    assert img.max() <= vol.data.max() + 1e-6
    assert img.max() > 0.5 * vol.data.max()  # the core is visible


def test_mip_mapper_validation():
    cam = orbit_camera((8, 8, 8), width=16, height=16)
    with pytest.raises(ValueError):
        MaxIntensityMapper(cam, (8, 8, 8), dt=0.0)
