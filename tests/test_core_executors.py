"""Tests for the functional executor and the simulated scheduler, using a
small synthetic MapReduce job (histogram fold) independent of rendering."""

import numpy as np
import pytest

from repro.core import (
    Chunk,
    InProcessExecutor,
    JobConfig,
    KVSpec,
    MapOutput,
    Mapper,
    MapReduceSpec,
    MapWork,
    PLACEHOLDER,
    Reducer,
    RoundRobinPartitioner,
    SimClusterExecutor,
    run_length_groups,
)
from repro.sim import accelerator_cluster

KV = np.dtype([("key", np.int32), ("val", np.float32)])


class SquareMapper(Mapper):
    """Emits (value mod K, value^2) per element; odd inputs emit placeholders."""

    def __init__(self, max_key):
        self.max_key = max_key
        self.initialized = False

    def initialize(self, device=None):
        self.initialized = True

    def map(self, chunk):
        data = chunk.payload()
        pairs = np.empty(len(data), dtype=KV)
        keys = (data.astype(np.int64) % (self.max_key + 1)).astype(np.int32)
        odd = data % 2 == 1
        keys[odd] = PLACEHOLDER  # restriction #4: every thread emits
        pairs["key"] = keys
        pairs["val"] = data.astype(np.float32) ** 2
        return MapOutput(pairs, work={"n_rays": len(data), "n_samples": len(data) * 3})


class SumReducer(Reducer):
    def reduce_all(self, pairs):
        keys, starts, counts = run_length_groups(pairs["key"])
        sums = np.add.reduceat(pairs["val"], starts) if len(keys) else np.zeros(0)
        return keys, sums


def build_spec(n_reducers=3, max_key=9):
    return MapReduceSpec(
        mapper=SquareMapper(max_key),
        reducer=SumReducer(),
        partitioner=RoundRobinPartitioner(n_reducers),
        kv=KVSpec(KV),
        max_key=max_key,
    )


def make_chunks(n_chunks=4, elems=50, seed=0):
    rng = np.random.default_rng(seed)
    chunks = []
    for i in range(n_chunks):
        data = rng.integers(0, 100, elems).astype(np.int64) * 2  # even → all kept
        chunks.append(Chunk(id=i, nbytes=data.nbytes, data=data))
    return chunks


def test_functional_pipeline_matches_direct_computation():
    spec = build_spec()
    chunks = make_chunks()
    result = InProcessExecutor().execute(spec, chunks)
    # Direct ground truth.
    alldata = np.concatenate([c.data for c in chunks])
    expect = {}
    for v in alldata:
        k = int(v % 10)
        expect[k] = expect.get(k, 0.0) + float(v) ** 2
    got = {}
    for r, (keys, sums) in enumerate(result.outputs):
        for k, s in zip(keys, sums):
            assert k % spec.n_reducers == r  # routed to the right reducer
            got[int(k)] = float(s)
    assert set(got) == set(expect)
    for k in expect:
        assert got[k] == pytest.approx(expect[k], rel=1e-6)


def test_placeholders_are_discarded_but_counted():
    spec = build_spec()
    rng = np.random.default_rng(1)
    data = rng.integers(0, 100, 200).astype(np.int64)  # mixed parity
    chunks = [Chunk(id=0, nbytes=data.nbytes, data=data)]
    result = InProcessExecutor().execute(spec, chunks)
    st = result.stats
    n_odd = int(np.count_nonzero(data % 2 == 1))
    assert st.n_pairs_emitted == 200
    assert st.n_pairs_kept == 200 - n_odd
    assert 0 < st.discard_fraction < 1


def test_mapper_initialize_called():
    spec = build_spec()
    InProcessExecutor().execute(spec, make_chunks(1))
    assert spec.mapper.initialized


def test_works_record_routing():
    spec = build_spec(n_reducers=4)
    chunks = make_chunks(3)
    result = InProcessExecutor().execute(spec, chunks, chunk_to_gpu=[0, 1, 1])
    assert len(result.works) == 3
    assert [w.gpu for w in result.works] == [0, 1, 1]
    for w, c in zip(result.works, chunks):
        assert w.upload_bytes == c.nbytes
        assert int(w.pairs_to_reducer.sum()) <= w.pairs_emitted
    total_routed = sum(int(w.pairs_to_reducer.sum()) for w in result.works)
    assert total_routed == result.stats.n_pairs_kept
    assert np.array_equal(
        sum(w.pairs_to_reducer for w in result.works), result.pairs_per_reducer
    )


def test_out_of_core_chunk_loader():
    spec = build_spec()
    data = (np.arange(20, dtype=np.int64) * 2)
    chunk = Chunk(id=0, nbytes=data.nbytes, loader=lambda: data, on_disk=True)
    result = InProcessExecutor().execute(spec, [chunk])
    assert result.stats.n_pairs_kept == 20
    assert result.works[0].read_from_disk


def test_chunk_validation():
    with pytest.raises(ValueError):
        Chunk(id=0, nbytes=-1)
    with pytest.raises(ValueError):
        Chunk(id=0, nbytes=8, data=np.zeros(1), loader=lambda: np.zeros(1))
    c = Chunk(id=0, nbytes=4, loader=lambda: np.zeros(2, np.float32))
    with pytest.raises(ValueError):
        c.payload()  # loader size mismatch
    bare = Chunk(id=1, nbytes=8)
    with pytest.raises(ValueError):
        bare.payload()
    assert Chunk(id=2, nbytes=10).fits_on(vram_bytes=16, static_bytes=6)
    assert not Chunk(id=2, nbytes=10).fits_on(vram_bytes=15, static_bytes=6)


# -- simulated scheduler -----------------------------------------------------
def simple_works(n_gpus, n_chunks, pairs_each=1000, n_reducers=None):
    n_reducers = n_reducers or n_gpus
    works = []
    for i in range(n_chunks):
        routed = np.full(n_reducers, pairs_each // n_reducers, dtype=np.int64)
        works.append(
            MapWork(
                chunk_id=i,
                gpu=i % n_gpus,
                upload_bytes=1 << 20,
                n_rays=256 * 256,
                n_samples=5_000_000,
                pairs_emitted=pairs_each,
                pairs_to_reducer=routed,
            )
        )
    return works


def run_sim(n_gpus, n_chunks, **cfg):
    spec = accelerator_cluster(n_gpus)
    ex = SimClusterExecutor(spec, JobConfig(**cfg))
    outcome, cluster = ex.execute(simple_works(n_gpus, n_chunks), pair_nbytes=24)
    return outcome


def test_sim_produces_positive_stage_times():
    out = run_sim(4, 8)
    sb = out.breakdown
    assert sb.map > 0
    assert sb.sort > 0
    assert sb.reduce > 0
    assert sb.partition_io >= 0
    assert out.total_runtime == pytest.approx(sb.total, rel=1e-9)


def test_sim_map_scales_down_with_gpus():
    t1 = run_sim(1, 16).breakdown.map
    t4 = run_sim(4, 16).breakdown.map
    assert t4 < t1
    assert t4 < t1 / 2  # parallel speedup beyond 2x with 4 GPUs


def test_sim_network_traffic_only_across_nodes():
    # 4 GPUs = 1 node: all traffic intranode.
    out = run_sim(4, 8)
    assert out.bytes_internode == 0
    assert out.bytes_intranode > 0
    # 8 GPUs = 2 nodes: some traffic goes over the NIC.
    out8 = run_sim(8, 8)
    assert out8.bytes_internode > 0


def test_sim_sort_device_auto_switches():
    small = run_sim(2, 4, sort_on="auto", sort_gpu_cutoff=1 << 21)
    assert small.sort_device == "cpu"
    big = run_sim(2, 4, sort_on="auto", sort_gpu_cutoff=100)
    assert big.sort_device == "gpu"


def test_sim_gpu_reduce_mode_runs():
    out = run_sim(2, 4, reduce_on="gpu")
    assert out.breakdown.reduce > 0


def test_sim_rejects_oversized_chunk():
    spec = accelerator_cluster(1)
    w = simple_works(1, 1)
    w[0].upload_bytes = 100 << 30  # 100 GiB
    with pytest.raises(MemoryError):
        SimClusterExecutor(spec).execute(w, pair_nbytes=24)


def test_sim_rejects_bad_gpu_index():
    spec = accelerator_cluster(2)
    w = simple_works(4, 4)  # targets gpu 3 on a 2-GPU cluster
    with pytest.raises(ValueError):
        SimClusterExecutor(spec).execute(w, pair_nbytes=24)


def test_mapwork_validation():
    with pytest.raises(ValueError):
        MapWork(0, 0, 1, 1, 1, pairs_emitted=1, pairs_to_reducer=np.array([5]))
    with pytest.raises(ValueError):
        MapWork(0, 0, 1, 1, 1, pairs_emitted=1, pairs_to_reducer=np.array([-1]))


def test_sim_include_disk_adds_time():
    spec = accelerator_cluster(2)
    works = simple_works(2, 4)
    for w in works:
        w.read_from_disk = True
    base, _ = SimClusterExecutor(spec, JobConfig(include_disk=False)).execute(
        works, pair_nbytes=24
    )
    disk, _ = SimClusterExecutor(spec, JobConfig(include_disk=True)).execute(
        works, pair_nbytes=24
    )
    assert disk.total_runtime > base.total_runtime
