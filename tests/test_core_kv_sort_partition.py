"""Tests for key-value contracts, counting sort, partitioners, streams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BlockPartitioner,
    CallablePartitioner,
    KVSpec,
    PLACEHOLDER,
    RoundRobinPartitioner,
    SendBuffer,
    TiledPartitioner,
    counting_sort_pairs,
    discard_placeholders,
    run_length_groups,
    split_message_sizes,
    validate_pairs,
)

KV = np.dtype([("key", np.int32), ("val", np.float32)])
SPEC = KVSpec(KV)


def make_pairs(keys, vals=None):
    keys = np.asarray(keys, np.int32)
    out = np.empty(len(keys), dtype=KV)
    out["key"] = keys
    out["val"] = np.arange(len(keys)) if vals is None else vals
    return out


# -- KVSpec ---------------------------------------------------------------
def test_kvspec_validation():
    with pytest.raises(ValueError):
        KVSpec(np.dtype(np.int32))  # not structured
    with pytest.raises(ValueError):
        KVSpec(np.dtype([("key", np.int64), ("v", np.float32)]))  # key not int32
    with pytest.raises(ValueError):
        KVSpec(KV, key_field="missing")


def test_kvspec_sizes():
    assert SPEC.pair_nbytes == 8
    assert SPEC.value_nbytes == 4
    assert len(SPEC.empty()) == 0


def test_discard_placeholders_and_validate():
    pairs = make_pairs([0, PLACEHOLDER, 3, PLACEHOLDER])
    kept = discard_placeholders(pairs, SPEC)
    assert kept["key"].tolist() == [0, 3]
    validate_pairs(pairs, SPEC, max_key=3)
    with pytest.raises(ValueError):
        validate_pairs(make_pairs([5]), SPEC, max_key=3)
    with pytest.raises(TypeError):
        validate_pairs(np.zeros(1, np.dtype([("key", np.int32)])), SPEC, 3)


# -- counting sort ------------------------------------------------------------
def test_counting_sort_basic():
    pairs = make_pairs([3, 1, 3, 0, 1], vals=[10, 20, 30, 40, 50])
    sr = counting_sort_pairs(pairs, "key", 0, 3)
    assert sr.pairs["key"].tolist() == [0, 1, 1, 3, 3]
    assert sr.unique_keys.tolist() == [0, 1, 3]
    assert sr.starts.tolist() == [0, 1, 3]
    assert sr.counts.tolist() == [1, 2, 2]
    assert sr.group(1)["val"].tolist() == [20, 50]  # stable: arrival order
    assert sr.n_groups == 3


def test_counting_sort_stability():
    pairs = make_pairs([2] * 100, vals=np.arange(100))
    sr = counting_sort_pairs(pairs, "key", 0, 10)
    assert np.array_equal(sr.pairs["val"], np.arange(100))


def test_counting_sort_empty_and_range_checks():
    sr = counting_sort_pairs(SPEC.empty(), "key", 0, 10)
    assert sr.n_groups == 0
    with pytest.raises(ValueError):
        counting_sort_pairs(make_pairs([5]), "key", 0, 3)
    with pytest.raises(ValueError):
        counting_sort_pairs(make_pairs([1]), "key", 2, 1)


@given(
    keys=st.lists(st.integers(0, 63), min_size=0, max_size=300),
)
@settings(max_examples=80, deadline=None)
def test_counting_sort_matches_stable_argsort(keys):
    pairs = make_pairs(keys)
    sr = counting_sort_pairs(pairs, "key", 0, 63)
    ref = pairs[np.argsort(pairs["key"], kind="stable")]
    assert np.array_equal(sr.pairs, ref)
    assert int(sr.counts.sum()) == len(keys)
    # Histogram agrees with bincount.
    assert np.array_equal(
        sr.counts, np.bincount(pairs["key"], minlength=64)[sr.unique_keys]
    )


def test_run_length_groups():
    u, s, c = run_length_groups(np.array([1, 1, 4, 4, 4, 9]))
    assert u.tolist() == [1, 4, 9]
    assert s.tolist() == [0, 2, 5]
    assert c.tolist() == [2, 3, 1]
    u, s, c = run_length_groups(np.array([]))
    assert len(u) == 0


# -- partitioners ------------------------------------------------------------
def test_round_robin_is_modulo():
    p = RoundRobinPartitioner(4)
    keys = np.arange(16)
    assert np.array_equal(p.partition(keys), keys % 4)


@given(n_red=st.integers(1, 16), n_keys=st.integers(0, 500))
@settings(max_examples=60, deadline=None)
def test_round_robin_balance_within_one(n_red, n_keys):
    """Dense keys spread with max-min load <= 1 (the paper's rationale)."""
    p = RoundRobinPartitioner(n_red)
    if n_keys == 0:
        return
    dests = p.partition(np.arange(n_keys))
    loads = np.bincount(dests, minlength=n_red)
    assert loads.max() - loads.min() <= 1
    # owned_key_count agrees with the actual partition.
    for r in range(n_red):
        assert p.owned_key_count(r, n_keys) == loads[r]


def test_round_robin_local_index_roundtrip():
    p = RoundRobinPartitioner(3)
    keys = np.array([0, 1, 2, 3, 4, 5, 6, 7])
    local = p.local_index(keys)
    for r in range(3):
        mine = keys[p.partition(keys) == r]
        back = p.global_key(r, p.local_index(mine))
        assert np.array_equal(back, mine)


def test_block_partitioner_contiguous():
    p = BlockPartitioner(4, n_keys=100)
    dests = p.partition(np.arange(100))
    # Non-decreasing: contiguous stripes.
    assert np.all(np.diff(dests) >= 0)
    assert sum(p.owned_key_count(r, 100) for r in range(4)) == 100


def test_tiled_partitioner_covers_all_reducers():
    p = TiledPartitioner(4, width=64, height=64, tile=16)
    keys = np.arange(64 * 64)
    dests = p.partition(keys)
    assert set(np.unique(dests)) == {0, 1, 2, 3}
    # All pixels of one tile go to the same reducer.
    tile_keys = np.array([y * 64 + x for y in range(16) for x in range(16)])
    assert len(np.unique(p.partition(tile_keys))) == 1


def test_callable_partitioner_validation():
    p = CallablePartitioner(2, lambda k: k % 2)
    assert p.partition(np.array([0, 1, 2])).tolist() == [0, 1, 0]
    bad = CallablePartitioner(2, lambda k: k * 0 + 7)
    with pytest.raises(ValueError):
        bad.partition(np.array([0, 1]))


def test_partitioner_requires_reducers():
    with pytest.raises(ValueError):
        RoundRobinPartitioner(0)


# -- send buffer ----------------------------------------------------------------
def test_send_buffer_flushes_at_threshold():
    flushed = []
    buf = SendBuffer(2, threshold_pairs=10, on_flush=lambda d, p: flushed.append((d, len(p))))
    buf.add(0, make_pairs(list(range(7))))
    assert flushed == [] and buf.pending(0) == 7
    buf.add(0, make_pairs(list(range(7))))
    assert flushed == [(0, 10)] and buf.pending(0) == 4
    buf.flush_all()
    assert flushed == [(0, 10), (0, 4)]
    assert buf.pairs_sent == 14
    assert buf.flushes == 2


def test_send_buffer_multiple_destinations_independent():
    flushed = []
    buf = SendBuffer(3, threshold_pairs=5, on_flush=lambda d, p: flushed.append(d))
    buf.add(1, make_pairs(list(range(5))))
    buf.add(2, make_pairs(list(range(4))))
    assert flushed == [1]
    buf.flush_all()
    assert flushed == [1, 2]


def test_send_buffer_validation():
    with pytest.raises(ValueError):
        SendBuffer(0, 10)
    with pytest.raises(ValueError):
        SendBuffer(1, 0)
    buf = SendBuffer(1, 10)
    with pytest.raises(IndexError):
        buf.add(5, make_pairs([1]))


@given(n=st.integers(0, 10_000), thr=st.integers(1, 999))
@settings(max_examples=60, deadline=None)
def test_split_message_sizes_conserves_pairs(n, thr):
    sizes = split_message_sizes(n, thr)
    assert sum(sizes) == n
    assert all(1 <= s <= thr for s in sizes)
    if n:
        assert all(s == thr for s in sizes[:-1])
