"""Tests for the rotation driver, auto transfer functions, and the CLI."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.pipeline import MapReduceVolumeRenderer, orbit_path, render_rotation
from repro.render import RenderConfig, default_tf
from repro.volume import auto_transfer_function, make_dataset, value_histogram
from repro.volume.datasets import skull_field


# -- orbit path / rotation -------------------------------------------------
def test_orbit_path_shapes_and_validation():
    cams = orbit_path((32, 32, 32), 6, width=64, height=64)
    assert len(cams) == 6
    assert all(c.width == 64 for c in cams)
    # Azimuths spread over the circle: first and fourth oppose.
    e0 = np.asarray(cams[0].eye)
    e3 = np.asarray(cams[3].eye)
    center = np.array([16.0, 16.0, 16.0])
    assert np.dot(e0[:2] - center[:2], e3[:2] - center[:2]) < 0
    with pytest.raises(ValueError):
        orbit_path((32, 32, 32), 0)


def test_render_rotation_sim_mode():
    r = MapReduceVolumeRenderer(
        volume=None,
        volume_shape=(128, 128, 128),
        field=skull_field,
        cluster=4,
        tf=default_tf(),
        render_config=RenderConfig(dt=1.0),
    )
    rot = render_rotation(r, n_frames=4, mode="sim", width=256, height=256)
    assert rot.n_frames == 4
    assert rot.mean_fps > 0
    assert rot.worst_frame >= max(rot.frame_runtimes) - 1e-12
    assert rot.frame_time_spread >= 1.0
    assert rot.total_seconds == pytest.approx(sum(rot.frame_runtimes))


def test_render_rotation_exec_keeps_images():
    vol = make_dataset("supernova", (16, 16, 16))
    r = MapReduceVolumeRenderer(
        volume=vol, cluster=2, tf=default_tf(), render_config=RenderConfig(dt=1.0)
    )
    rot = render_rotation(
        r, n_frames=3, mode="both", width=32, height=32, keep_images=True
    )
    assert len(rot.images) == 3
    assert all(img.shape == (32, 32, 4) for img in rot.images)
    # Different angles produce different images.
    assert not np.array_equal(rot.images[0], rot.images[1])


def test_render_rotation_exec_mode_times_wall_clock():
    # Exec-only orbits have no simulated clock: frame times are the
    # measured wall clock of the functional pipeline.
    vol = make_dataset("supernova", (16, 16, 16))
    r = MapReduceVolumeRenderer(volume=vol, cluster=2)
    rot = render_rotation(r, n_frames=2, mode="exec", width=32, height=32)
    assert rot.n_frames == 2
    assert len(rot.wall_seconds) == 2
    assert all(t > 0 for t in rot.wall_seconds)
    assert rot.frame_runtimes == rot.wall_seconds
    assert rot.wall_fps > 0
    # Timed modes still report the simulated clock, not the wall clock.
    rot_sim = render_rotation(r, n_frames=2, mode="sim", width=32, height=32)
    assert len(rot_sim.wall_seconds) == 2
    assert rot_sim.frame_runtimes != rot_sim.wall_seconds


# -- histogram / auto transfer function ------------------------------------
def test_value_histogram_basic():
    vol = make_dataset("skull", (24, 24, 24))
    counts, edges = value_histogram(vol, bins=64)
    assert counts.sum() == vol.voxel_count
    assert len(edges) == 65
    with pytest.raises(ValueError):
        value_histogram(vol, bins=1)
    with pytest.raises(ValueError):
        value_histogram(vol, sample_stride=0)


def test_auto_transfer_function_properties():
    vol = make_dataset("supernova", (24, 24, 24))
    tf = auto_transfer_function(vol, max_alpha=0.6)
    # Valid table, background transparent, opacity reaches meaningful levels.
    assert tf.table.shape[1] == 4
    assert tf.lookup(np.array([0.0]))[0, 3] == pytest.approx(0.0, abs=1e-5)
    assert tf.table[:, 3].max() <= 0.6 + 1e-6
    assert tf.table[:, 3].max() > 0.2
    with pytest.raises(ValueError):
        auto_transfer_function(vol, max_alpha=0.0)
    with pytest.raises(ValueError):
        auto_transfer_function(vol, colormap="rainbow")


def test_auto_transfer_function_renders():
    """An auto TF must produce a non-empty image through the pipeline."""
    vol = make_dataset("skull", (24, 24, 24))
    tf = auto_transfer_function(vol)
    from repro.render import orbit_camera, render_reference

    cam = orbit_camera(vol.shape, width=48, height=48)
    ref = render_reference(vol, cam, tf, RenderConfig(dt=1.0))
    assert ref.image[..., 3].max() > 0.05


# -- CLI ------------------------------------------------------------------------
def test_cli_parser_subcommands():
    p = build_parser()
    args = p.parse_args(["render", "--dataset", "supernova", "--size", "16"])
    assert args.command == "render" and args.size == 16
    args = p.parse_args(["sweep", "--figure", "fig4", "--sizes", "128,256"])
    assert args.sizes == [128, 256]
    with pytest.raises(SystemExit):
        p.parse_args(["sweep", "--sizes", "x,y"])


def test_cli_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "repro" in out and "GPU model" in out


def test_cli_render_writes_ppm(tmp_path, capsys):
    out = tmp_path / "cli.ppm"
    rc = main(
        [
            "render",
            "--dataset",
            "supernova",
            "--size",
            "16",
            "--gpus",
            "2",
            "--image",
            "32",
            "--out",
            str(out),
        ]
    )
    assert rc == 0
    assert out.exists() and out.read_bytes().startswith(b"P6")
    assert "simulated stages" in capsys.readouterr().out


def test_cli_render_with_shading_and_auto_tf(tmp_path):
    out = tmp_path / "shaded.ppm"
    rc = main(
        [
            "render", "--size", "16", "--gpus", "1", "--image", "32",
            "--shading", "--auto-tf", "--out", str(out),
        ]
    )
    assert rc == 0 and out.exists()


def test_cli_sweep_fig3(capsys):
    rc = main(["sweep", "--figure", "fig3", "--sizes", "64", "--gpus", "1,4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Fig 3" in out and "64^3" in out


def test_cli_analyze(capsys):
    rc = main(["analyze", "--size", "128"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "§6.3" in out


def test_cli_rotate(capsys):
    rc = main(
        ["rotate", "--size", "64", "--gpus", "2", "--frames", "3", "--image", "128"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "steady frame" in out and "FPS" in out


def test_cli_rotate_streaming(capsys):
    rc = main(
        ["rotate", "--size", "64", "--gpus", "2", "--frames", "2",
         "--image", "128", "--no-resident"]
    )
    assert rc == 0
    assert "streaming" in capsys.readouterr().out
