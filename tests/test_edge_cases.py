"""Edge-case and robustness tests across the stack."""

import numpy as np
import pytest

from repro.core import JobConfig
from repro.pipeline import MapReduceVolumeRenderer
from repro.render import (
    Camera,
    PixelRect,
    RenderConfig,
    default_tf,
    grayscale_tf,
    orbit_camera,
    raycast_brick,
    render_reference,
)
from repro.sim import Environment, SimulationError
from repro.volume import BrickGrid, Volume, make_dataset


# -- degenerate sizes -------------------------------------------------------
def test_one_voxel_volume_renders():
    v = Volume(np.full((1, 1, 1), 0.9, np.float32))
    cam = orbit_camera(v.shape, width=8, height=8)
    ref = render_reference(v, cam, grayscale_tf(), RenderConfig(dt=0.25))
    assert ref.image.shape == (8, 8, 4)
    assert ref.image[..., 3].max() > 0  # the voxel is visible


def test_one_pixel_image():
    v = make_dataset("supernova", (8, 8, 8))
    cam = orbit_camera(v.shape, width=1, height=1)
    ref = render_reference(v, cam, default_tf(), RenderConfig(dt=0.5))
    assert ref.image.shape == (1, 1, 4)


def test_single_brick_equals_whole_volume():
    v = make_dataset("skull", (12, 12, 12))
    cam = orbit_camera(v.shape, width=24, height=24)
    cfg = RenderConfig(dt=0.8, ert_alpha=1.0)
    grid = BrickGrid(v.shape, 12, ghost=1)  # exactly one brick
    assert len(grid) == 1
    b = grid.brick(0)
    frags, _ = raycast_brick(
        grid.extract(v, b), b.data_lo, b.lo, b.hi, v.shape, cam, default_tf(), cfg
    )
    ref = render_reference(v, cam, default_tf(), cfg)
    assert len(frags) == len(ref.fragments)


def test_anisotropic_1d_sliver_volume():
    v = Volume(np.random.default_rng(0).uniform(0, 1, (2, 2, 32)).astype(np.float32))
    cam = orbit_camera(v.shape, width=16, height=16)
    ref = render_reference(v, cam, grayscale_tf(), RenderConfig(dt=0.5, ert_alpha=1.0))
    from tests.test_raycast import render_bricked

    grid = BrickGrid(v.shape, (2, 2, 8), ghost=1)
    img, _, _ = render_bricked(v, grid, cam, grayscale_tf(), RenderConfig(dt=0.5, ert_alpha=1.0))
    assert np.abs(img - ref.image).max() < 1e-4


def test_camera_exactly_on_axis():
    """Axis-aligned view: ray components hit the parallel-slab path."""
    v = make_dataset("supernova", (16, 16, 16))
    cam = Camera(eye=(8.0, 8.0, -60.0), center=(8.0, 8.0, 8.0), up=(0, 1, 0), width=16, height=16)
    ref = render_reference(v, cam, default_tf(), RenderConfig(dt=0.5))
    assert ref.stats.n_active_rays > 0


def test_explicit_rect_parameter():
    """Callers may restrict the kernel to a given pixel rect."""
    v = make_dataset("supernova", (16, 16, 16))
    cam = orbit_camera(v.shape, width=32, height=32)
    rect = PixelRect(0, 0, 16, 32)
    frags, stats = raycast_brick(
        v.data, (0, 0, 0), (0, 0, 0), v.shape, v.shape, cam, default_tf(),
        RenderConfig(dt=0.5), rect=rect,
    )
    assert stats.n_rays == rect.area
    if len(frags):
        xs = frags["pixel"] % cam.width
        assert xs.max() < 16


def test_alpha_eps_discards_faint_fragments():
    v = Volume(np.full((8, 8, 8), 0.02, np.float32))  # barely-opaque fog
    cam = orbit_camera(v.shape, width=16, height=16)
    tf = grayscale_tf(max_alpha=0.05)
    keep_all, _ = raycast_brick(
        v.data, (0, 0, 0), (0, 0, 0), v.shape, v.shape, cam, tf,
        RenderConfig(dt=0.5, alpha_eps=0.0),
    )
    strict, _ = raycast_brick(
        v.data, (0, 0, 0), (0, 0, 0), v.shape, v.shape, cam, tf,
        RenderConfig(dt=0.5, alpha_eps=0.5),
    )
    assert len(keep_all) > 0
    assert len(strict) == 0


# -- engine edge cases -----------------------------------------------------
def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_environment_initial_time():
    env = Environment(initial_time=5.0)
    fired = []

    def w():
        yield env.timeout(1.0)
        fired.append(env.now)

    env.process(w())
    env.run()
    assert fired == [6.0]


def test_run_until_without_events_advances_clock():
    env = Environment()
    env.run(until=3.0)
    assert env.now == 3.0


# -- pipeline edge cases ------------------------------------------------------
def test_render_sim_single_gpu_single_brick():
    from repro.volume.datasets import skull_field

    r = MapReduceVolumeRenderer(
        volume=None,
        volume_shape=(64, 64, 64),
        field=skull_field,
        cluster=1,
        tf=default_tf(),
        render_config=RenderConfig(dt=1.0),
    )
    cam = orbit_camera((64,) * 3, width=64, height=64)
    res = r.render(cam, mode="sim", bricks_per_gpu=1)
    assert res.n_bricks >= 1
    assert res.runtime > 0


def test_offscreen_volume_renders_empty():
    """A camera looking away sees nothing; the pipeline must not choke."""
    v = make_dataset("supernova", (12, 12, 12))
    cam = Camera(eye=(6.0, -40.0, 6.0), center=(6.0, -80.0, 6.0), up=(0, 0, 1), width=16, height=16)
    res = MapReduceVolumeRenderer(
        volume=v, cluster=2, tf=default_tf(), render_config=RenderConfig(dt=0.5)
    ).render(cam)
    assert np.all(res.image == 0)


def test_job_config_validation():
    with pytest.raises(ValueError):
        JobConfig(send_threshold_pairs=0)
    with pytest.raises(ValueError):
        JobConfig(sort_on="tpu")
    with pytest.raises(ValueError):
        JobConfig(reduce_on="fpga")
    with pytest.raises(ValueError):
        JobConfig(reduce_threads=0)
    assert JobConfig(sort_on="cpu").sort_device(10**9) == "cpu"
    assert JobConfig(sort_on="gpu").sort_device(1) == "gpu"
