"""Tests for fragment records and the Reduce-phase compositing math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render import (
    FRAGMENT_DTYPE,
    FRAGMENT_NBYTES,
    PLACEHOLDER_KEY,
    blend_background,
    composite_fragments,
    composite_pixel_fragments,
    concat_fragments,
    drop_placeholders,
    empty_fragments,
    fragment_sort_order,
    group_ranks,
    make_fragments,
    over,
)


def frag(pixel, depth, rgba):
    return make_fragments(
        np.array([pixel], np.int32),
        np.array([depth], np.float32),
        np.array([rgba], np.float32),
    )


def random_premult_rgba(rng, n):
    a = rng.uniform(0, 1, n).astype(np.float32)
    rgb = rng.uniform(0, 1, (n, 3)).astype(np.float32) * a[:, None]
    return np.concatenate([rgb, a[:, None]], axis=1)


def test_fragment_wire_size_is_24_bytes():
    """4-byte int key + homogeneous 20-byte value (paper restrictions)."""
    assert FRAGMENT_NBYTES == 24
    assert FRAGMENT_DTYPE["pixel"].itemsize == 4


def test_make_fragments_shape_validation():
    with pytest.raises(ValueError):
        make_fragments(np.zeros(2, np.int32), np.zeros(3), np.zeros((2, 4)))


def test_concat_and_empty():
    a = frag(0, 1.0, [0.1, 0.1, 0.1, 0.5])
    assert len(concat_fragments([])) == 0
    assert len(concat_fragments([empty_fragments(), a])) == 1
    assert len(concat_fragments([a, a, a])) == 3


def test_drop_placeholders():
    good = frag(7, 1.0, [0.1, 0.2, 0.3, 0.4])
    bad = frag(int(PLACEHOLDER_KEY), 0.0, [0, 0, 0, 0])
    mixed = concat_fragments([bad, good, bad])
    kept = drop_placeholders(mixed)
    assert len(kept) == 1 and kept[0]["pixel"] == 7


def test_sort_order_groups_pixels_then_depth():
    f = concat_fragments(
        [
            frag(5, 2.0, [0, 0, 0, 0.1]),
            frag(3, 9.0, [0, 0, 0, 0.1]),
            frag(5, 1.0, [0, 0, 0, 0.1]),
            frag(3, 4.0, [0, 0, 0, 0.1]),
        ]
    )
    s = f[fragment_sort_order(f)]
    assert s["pixel"].tolist() == [3, 3, 5, 5]
    assert s["depth"].tolist() == [4.0, 9.0, 1.0, 2.0]


def test_group_ranks():
    keys = np.array([3, 3, 5, 5, 5, 9])
    assert group_ranks(keys).tolist() == [0, 1, 0, 1, 2, 0]
    assert group_ranks(np.array([])).tolist() == []


# -- over operator ------------------------------------------------------------
def test_over_opaque_front_hides_back():
    front = np.array([0.2, 0.3, 0.4, 1.0])
    back = np.array([0.9, 0.9, 0.9, 0.9])
    assert np.allclose(over(front, back), front)


def test_over_transparent_front_passes_back():
    front = np.zeros(4)
    back = np.array([0.5, 0.4, 0.3, 0.8])
    assert np.allclose(over(front, back), back)


@given(data=st.data())
@settings(max_examples=80, deadline=None)
def test_over_is_associative(data):
    """(A over B) over C == A over (B over C) for premultiplied RGBA."""
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    a, b, c = random_premult_rgba(rng, 3)
    left = over(over(a, b), c)
    right = over(a, over(b, c))
    assert np.allclose(left, right, atol=1e-5)


@given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 12))
@settings(max_examples=60, deadline=None)
def test_alpha_monotone_and_bounded_under_chain(seed, n):
    rng = np.random.default_rng(seed)
    frags = random_premult_rgba(rng, n)
    out = np.zeros(4, np.float32)
    prev_alpha = 0.0
    for f in frags:
        out = over(out, f)
        assert out[3] >= prev_alpha - 1e-7
        prev_alpha = out[3]
    assert 0.0 <= out[3] <= 1.0 + 1e-6
    assert np.all(out[:3] <= 1.0 + 1e-5)


# -- reduce compositing --------------------------------------------------------
def test_composite_pixel_sorts_by_depth():
    far = frag(0, 10.0, [0.0, 0.0, 0.9, 0.9])[0:1]
    near = frag(0, 1.0, [0.5, 0.0, 0.0, 0.5])[0:1]
    f = concat_fragments([far, near])
    out = composite_pixel_fragments(f)
    expected = over(
        np.array([0.5, 0.0, 0.0, 0.5]), np.array([0.0, 0.0, 0.9, 0.9])
    )
    assert np.allclose(out, expected, atol=1e-6)


def test_composite_fragments_matches_per_pixel_reference():
    """The vectorised rank-layer blend equals the sequential per-pixel loop."""
    rng = np.random.default_rng(42)
    n, n_pixels = 500, 40
    pix = rng.integers(0, n_pixels, n).astype(np.int32)
    depth = rng.uniform(0, 100, n).astype(np.float32)
    rgba = random_premult_rgba(rng, n)
    frags = make_fragments(pix, depth, rgba)
    fast = composite_fragments(frags, n_pixels)
    for p in range(n_pixels):
        mine = frags[frags["pixel"] == p]
        expected = (
            composite_pixel_fragments(mine) if len(mine) else np.zeros(4, np.float32)
        )
        assert np.allclose(fast[p], expected, atol=1e-5), f"pixel {p}"


def test_composite_fragments_empty():
    out = composite_fragments(empty_fragments(), 16)
    assert out.shape == (16, 4)
    assert np.all(out == 0)


def test_composite_fragments_pixel_base_offset():
    f = frag(100, 1.0, [0.1, 0.2, 0.3, 0.4])
    out = composite_fragments(f, 8, pixel_base=96)
    assert np.allclose(out[4], [0.1, 0.2, 0.3, 0.4])


def test_composite_fragments_rejects_out_of_range():
    f = frag(99, 1.0, [0, 0, 0, 0.5])
    with pytest.raises(ValueError):
        composite_fragments(f, 10)


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_composite_split_invariance(seed):
    """Splitting a pixel's fragment list anywhere then compositing the
    partials (in depth order) equals compositing the full list — the
    associativity property the distributed Reduce depends on."""
    rng = np.random.default_rng(seed)
    n = rng.integers(2, 10)
    depth = np.sort(rng.uniform(0, 50, n)).astype(np.float32)
    rgba = random_premult_rgba(rng, n)
    pix = np.zeros(n, np.int32)
    full = composite_pixel_fragments(make_fragments(pix, depth, rgba))
    cut = int(rng.integers(1, n))
    front = composite_pixel_fragments(make_fragments(pix[:cut], depth[:cut], rgba[:cut]))
    back = composite_pixel_fragments(make_fragments(pix[cut:], depth[cut:], rgba[cut:]))
    assert np.allclose(over(front, back), full, atol=1e-5)


def test_blend_background():
    img = np.array([[[0.0, 0.0, 0.0, 0.0], [0.5, 0.5, 0.5, 1.0]]], np.float32)
    out = blend_background(img, (1.0, 0.0, 0.0))
    assert np.allclose(out[0, 0], [1.0, 0.0, 0.0])  # transparent → bg
    assert np.allclose(out[0, 1], [0.5, 0.5, 0.5])  # opaque → fragment
    with pytest.raises(ValueError):
        blend_background(img, (1.0, 0.0))
