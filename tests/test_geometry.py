"""Tests for ray-box intersection and half-open containment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render import box_contains, ray_box_intersect

BOX_LO = np.array([0.0, 0.0, 0.0])
BOX_HI = np.array([10.0, 10.0, 10.0])


def single(o, d, lo=BOX_LO, hi=BOX_HI):
    tn, tf, hit = ray_box_intersect(np.array([o]), np.array([d]), lo, hi)
    return tn[0], tf[0], hit[0]


def test_axis_ray_hits():
    tn, tf, hit = single([-5, 5, 5], [1, 0, 0])
    assert hit
    assert tn == pytest.approx(5.0)
    assert tf == pytest.approx(15.0)


def test_miss_parallel_outside():
    _, _, hit = single([-5, 20, 5], [1, 0, 0])
    assert not hit


def test_ray_starting_inside_enters_at_zero():
    tn, tf, hit = single([5, 5, 5], [0, 0, 1])
    assert hit
    assert tn == 0.0
    assert tf == pytest.approx(5.0)


def test_ray_pointing_away_misses():
    _, _, hit = single([-5, 5, 5], [-1, 0, 0])
    assert not hit


def test_diagonal_ray():
    tn, tf, hit = single([-1, -1, -1], [1, 1, 1])
    assert hit
    assert tn == pytest.approx(1.0)
    assert tf == pytest.approx(11.0)


def test_degenerate_box_rejected():
    with pytest.raises(ValueError):
        single([0, 0, 0], [1, 0, 0], lo=np.array([1.0, 0, 0]), hi=np.array([1.0, 1, 1]))


def test_shape_validation():
    with pytest.raises(ValueError):
        ray_box_intersect(np.zeros((2, 2)), np.zeros((2, 2)), BOX_LO, BOX_HI)
    with pytest.raises(ValueError):
        ray_box_intersect(np.zeros((2, 3)), np.zeros((3, 3)), BOX_LO, BOX_HI)


@given(
    ox=st.floats(-20, 30),
    oy=st.floats(-20, 30),
    oz=st.floats(-20, 30),
    dx=st.floats(-1, 1),
    dy=st.floats(-1, 1),
    dz=st.floats(-1, 1),
)
@settings(max_examples=200, deadline=None)
def test_intersection_points_lie_in_box(ox, oy, oz, dx, dy, dz):
    """If hit, the entry and exit points must lie on/in the box (hypothesis)."""
    d = np.array([dx, dy, dz])
    if np.linalg.norm(d) < 1e-6:
        return
    o = np.array([ox, oy, oz])
    tn, tf, hit = single(o, d)
    if not hit:
        return
    assert tn <= tf
    eps = 1e-6 * max(1.0, abs(tn), abs(tf)) + 1e-9
    for t in (tn, tf):
        p = o + t * d
        assert np.all(p >= BOX_LO - 1e-6 - eps * np.abs(d).max())
        assert np.all(p <= BOX_HI + 1e-6 + eps * np.abs(d).max())
    # The midpoint of the clipped segment must be interior.
    mid = o + 0.5 * (tn + tf) * d
    assert np.all(mid >= BOX_LO - 1e-6)
    assert np.all(mid <= BOX_HI + 1e-6)


@given(
    px=st.floats(-5, 15), py=st.floats(-5, 15), pz=st.floats(-5, 15)
)
@settings(max_examples=100, deadline=None)
def test_box_contains_half_open(px, py, pz):
    p = np.array([px, py, pz])
    inside = box_contains(p, BOX_LO, BOX_HI)
    manual = all(BOX_LO[i] <= p[i] < BOX_HI[i] for i in range(3))
    assert bool(inside) == manual


def test_box_contains_face_ownership():
    """A point on a shared face belongs only to the higher box."""
    lo_a, hi_a = np.zeros(3), np.array([5.0, 10.0, 10.0])
    lo_b, hi_b = np.array([5.0, 0.0, 0.0]), np.array([10.0, 10.0, 10.0])
    p = np.array([5.0, 3.0, 3.0])
    assert not box_contains(p, lo_a, hi_a)
    assert box_contains(p, lo_b, hi_b)


def test_box_contains_vectorised():
    pts = np.array([[1, 1, 1], [10, 5, 5], [9.999, 9.999, 9.999], [-0.1, 5, 5]])
    got = box_contains(pts, BOX_LO, BOX_HI)
    assert got.tolist() == [True, False, True, False]
