"""Golden-image regression suite.

Small deterministic rendered fixtures (cameras × transfer functions ×
brick layouts, float32 arrays in ``tests/golden/*.npz``) pin the exact
output of the functional pipeline.  Every executor / reduce-mode /
shuffle-mode / pipeline-depth combination — and every empty-space
acceleration setting (``accel`` off / corner-max table / macro-cell
grid) — must reproduce them **bitwise**: neither the concurrency
machinery (worker scheduling, ring streaming, worker-side reduce
placement, the parent-routed vs mesh shuffle plane, frame pipelining)
nor the skip structures may leak into the image or the deterministic
counters.

The pipeline is pure NumPy (float32 IEEE ops, stable sorts), so the
fixtures are reproducible across runs and processes.  If an intentional
kernel change shifts the output, regenerate them with::

    PYTHONPATH=src python tests/test_golden_images.py --regen

and commit the new ``.npz`` files together with the kernel change.
"""

import glob
import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import MapReduceVolumeRenderer, make_dataset, orbit_camera  # noqa: E402
from repro.core import InProcessExecutor  # noqa: E402
from repro.parallel import SharedMemoryPoolExecutor  # noqa: E402
from repro.render import RenderConfig, default_tf, grayscale_tf  # noqa: E402
from repro.render.stitch import stitch_pixels  # noqa: E402

GOLDEN_DIR = Path(__file__).parent / "golden"

_TFS = {"default": default_tf, "grayscale": grayscale_tf}

# A few cameras × transfer functions × brick layouts: small enough to
# commit, varied enough to cover ERT on/off, placeholder emission,
# multi-brick layouts, and an uneven reducer count.
SCENES = {
    "skull_default_az40": dict(
        dataset="skull", size=24, gpus=2, bricks_per_gpu=2, image=64,
        azimuth=40.0, elevation=20.0, tf="default", dt=0.75,
        ert_alpha=0.98, placeholders=False,
    ),
    "skull_default_az130": dict(
        dataset="skull", size=24, gpus=2, bricks_per_gpu=2, image=64,
        azimuth=130.0, elevation=-15.0, tf="default", dt=0.75,
        ert_alpha=0.98, placeholders=False,
    ),
    "skull_gray_az40": dict(
        dataset="skull", size=24, gpus=2, bricks_per_gpu=2, image=64,
        azimuth=40.0, elevation=20.0, tf="grayscale", dt=0.75,
        ert_alpha=0.98, placeholders=False,
    ),
    "skull_noert_placeholders": dict(
        dataset="skull", size=24, gpus=2, bricks_per_gpu=2, image=64,
        azimuth=40.0, elevation=20.0, tf="default", dt=0.75,
        ert_alpha=1.0, placeholders=True,
    ),
    "plume_gpus3_bpg1": dict(
        dataset="plume", size=20, gpus=3, bricks_per_gpu=1, image=64,
        azimuth=75.0, elevation=10.0, tf="default", dt=0.75,
        ert_alpha=0.98, placeholders=False,
    ),
}


def build_job(name, accel=None, macro_cell_size=8, kernel=None):
    """Renderer + camera + chunk placement for one golden scene.

    ``accel`` overrides the empty-space machinery; the fixtures were
    rendered once and every accel mode must reproduce them bitwise (the
    macro grid's conservative-skip proof obligation).  ``kernel`` pins a
    march-kernel backend (tests/test_kernels.py runs the matrix against
    the numba backend, comparing within its documented color band).
    """
    s = SCENES[name]
    vol = make_dataset(s["dataset"], (s["size"],) * 3)
    cam = orbit_camera(
        vol.shape,
        azimuth_deg=s["azimuth"],
        elevation_deg=s["elevation"],
        width=s["image"],
        height=s["image"],
    )
    overrides = (
        {} if accel is None else {"accel": accel, "macro_cell_size": macro_cell_size}
    )
    if kernel is not None:
        overrides["kernel"] = kernel
    r = MapReduceVolumeRenderer(
        volume=vol,
        cluster=s["gpus"],
        tf=_TFS[s["tf"]](),
        render_config=RenderConfig(
            dt=s["dt"],
            ert_alpha=s["ert_alpha"],
            emit_placeholders=s["placeholders"],
            **overrides,
        ),
    )
    chunks = r._chunks(r._grid(s["bricks_per_gpu"]), False)
    ctg = [c.id % r.n_gpus for c in chunks]
    return r, cam, chunks, ctg


def run_job(executor, r, cam, chunks, ctg):
    """Execute one prepared job → (image, InProcessResult)."""
    result = executor.execute(r._spec(cam), chunks, ctg)
    parts = [(k, v) for k, v in result.outputs if len(k)]
    image = stitch_pixels(parts, cam.width, cam.height)
    return image, result


def render_scene(name, executor):
    """Run one scene through ``executor`` → (image, InProcessResult)."""
    return run_job(executor, *build_job(name))


def golden_path(name) -> Path:
    return GOLDEN_DIR / f"{name}.npz"


def load_golden(name):
    path = golden_path(name)
    if not path.exists():  # pragma: no cover - missing fixture is an error
        pytest.fail(
            f"golden fixture {path} missing; regenerate with "
            f"`PYTHONPATH=src python {__file__} --regen`"
        )
    with np.load(path) as z:
        return {k: z[k] for k in z.files}


def assert_matches_golden(name, image, result):
    g = load_golden(name)
    assert image.dtype == np.float32
    assert np.array_equal(image, g["image"]), f"{name}: image diverged"
    assert np.array_equal(
        result.pairs_per_reducer, g["pairs_per_reducer"]
    ), f"{name}: per-reducer routing diverged"
    s = result.stats
    counters = np.array(
        [s.n_chunks, s.n_rays, s.n_samples, s.n_pairs_emitted, s.n_pairs_kept],
        dtype=np.int64,
    )
    assert np.array_equal(counters, g["counters"]), f"{name}: stats diverged"


# -- tier-1: serial oracle + the pool smoke set ------------------------------
@pytest.mark.parametrize("scene", sorted(SCENES))
def test_inprocess_matches_golden(scene):
    image, result = render_scene(scene, InProcessExecutor())
    assert_matches_golden(scene, image, result)


@pytest.mark.parametrize("accel", ["off", "table", "grid"])
@pytest.mark.parametrize("scene", sorted(SCENES))
def test_inprocess_accel_modes_match_golden(scene, accel):
    """Every empty-space setting reproduces the committed fixtures
    bitwise — images, per-reducer routing, and counters (n_samples
    counts owned samples in every mode by contract)."""
    image, result = run_job(InProcessExecutor(), *build_job(scene, accel=accel))
    assert_matches_golden(scene, image, result)


@pytest.mark.parametrize("reduce_mode", ["parent", "worker"])
def test_pool_grid_accel_matches_golden(reduce_mode):
    """The grid-accelerated path through the pool executor (arena-shipped
    grids, worker-seeded caches), in both reduce modes."""
    job = build_job("skull_default_az40", accel="grid", macro_cell_size=4)
    with SharedMemoryPoolExecutor(workers=2, reduce_mode=reduce_mode) as pool:
        image, result = run_job(pool, *job)
        # second render hits the resident arena + seeded worker caches
        image2, result2 = run_job(pool, *job)
    assert_matches_golden("skull_default_az40", image, result)
    assert_matches_golden("skull_default_az40", image2, result2)


@pytest.mark.parametrize("shuffle_mode", ["parent", "mesh", "tcp"])
@pytest.mark.parametrize("scene", sorted(SCENES))
def test_pool_worker_reduce_matches_golden(scene, shuffle_mode):
    """Worker-side reduce over all three shuffle planes: the
    parent-routed transport, the direct worker↔worker mesh, and the
    socket streams must reproduce the fixtures bitwise — the plane only
    decides which processes the run bytes traverse, never what they
    decode to."""
    with SharedMemoryPoolExecutor(
        workers=2, reduce_mode="worker", shuffle_mode=shuffle_mode
    ) as pool:
        image, result = render_scene(scene, pool)
        assert result.stats.ring["shuffle_mode"] == shuffle_mode
        if shuffle_mode in ("mesh", "tcp"):
            # The control-plane guarantee: zero run bytes crossed the
            # parent on the way to the reducers.
            assert result.stats.ring["parent_run_bytes"] == 0
        if shuffle_mode == "tcp":
            assert result.stats.ring["wire_bytes_total"] > 0
    assert_matches_golden(scene, image, result)


def test_pool_parent_reduce_pipelined_matches_golden():
    with SharedMemoryPoolExecutor(
        workers=2, reduce_mode="parent", pipeline_depth=2
    ) as pool:
        image, result = render_scene("skull_default_az40", pool)
    assert_matches_golden("skull_default_az40", image, result)


def test_pool_mesh_pipelined_matches_golden():
    """Depth-2 pipelining over the mesh plane: per-frame watermarks keep
    interleaved in-flight frames bitwise-correct."""
    with SharedMemoryPoolExecutor(
        workers=2, reduce_mode="worker", shuffle_mode="mesh", pipeline_depth=2
    ) as pool:
        image, result = render_scene("skull_default_az40", pool)
        image2, result2 = render_scene("skull_default_az130", pool)
    assert_matches_golden("skull_default_az40", image, result)
    assert_matches_golden("skull_default_az130", image2, result2)


def test_pool_serial_fallback_matches_golden():
    pool = SharedMemoryPoolExecutor(workers=1, serial=True)
    image, result = render_scene("skull_gray_az40", pool)
    assert_matches_golden("skull_gray_az40", image, result)


# -- crash + in-place recovery must also be bitwise ---------------------------
def _render_with_crash(scene, shuffle_mode, reduce_mode, pipeline_depth,
                       fault_plan="crash@map:worker=0,frame=1"):
    """Render ``scene`` with an injected mid-frame fault: the supervisor
    recycles the transport epoch, re-attaches the surviving arena, and
    re-executes the frame — the recovered image must match the golden
    fixture bitwise and leave /dev/shm exactly as it found it."""
    before = set(glob.glob("/dev/shm/*"))
    with SharedMemoryPoolExecutor(
        workers=2,
        reduce_mode=reduce_mode,
        shuffle_mode=shuffle_mode,
        pipeline_depth=pipeline_depth,
        fault_plan=fault_plan,
        retry_backoff=0.0,
    ) as pool:
        image, result = render_scene(scene, pool)
        assert pool._supervisor.active, "injected fault never fired"
        recovery = result.stats.recovery
        assert recovery is not None and recovery["respawns"] >= 1
        # A recovered pool keeps rendering: the next frame reuses the
        # re-attached arena and respawned workers.
        image2, result2 = render_scene(scene, pool)
    assert_matches_golden(scene, image, result)
    assert_matches_golden(scene, image2, result2)
    leaked = set(glob.glob("/dev/shm/*")) - before
    assert not leaked, f"recovery leaked shm segments: {leaked}"


def test_pool_crash_recovery_matches_golden_smoke():
    """Tier-1 canary for the slow recovery matrix below."""
    _render_with_crash("skull_default_az40", "mesh", "worker", 1)


def test_pool_tcp_crash_recovery_matches_golden_smoke():
    """Socket-plane canary: a mid-frame crash drops the worker's
    connections (peers see SocketClosed, not just a missing process),
    and the recovered render must still be bitwise-golden."""
    _render_with_crash("skull_default_az40", "tcp", "worker", 1)


@pytest.mark.slow
@pytest.mark.parametrize("shuffle_mode,reduce_mode", [
    ("parent", "parent"), ("parent", "worker"), ("mesh", "worker"),
    ("tcp", "worker"),
])
@pytest.mark.parametrize("pipeline_depth", [1, 2])
def test_pool_crash_recovery_matrix_matches_golden(
    shuffle_mode, reduce_mode, pipeline_depth
):
    _render_with_crash(
        "skull_default_az40", shuffle_mode, reduce_mode, pipeline_depth
    )


@pytest.mark.slow
@pytest.mark.parametrize("fault_plan", [
    "exit(3)@shuffle-out:worker=1,frame=1",
    "crash@reduce:worker=0,frame=1",
])
def test_pool_crash_recovery_other_stages_match_golden(fault_plan):
    _render_with_crash(
        "skull_default_az40", "mesh", "worker", 1, fault_plan=fault_plan
    )


# -- slow: the full executor × reduce-mode × depth × workers matrix ----------
@pytest.mark.slow
@pytest.mark.parametrize("scene", sorted(SCENES))
@pytest.mark.parametrize("accel", ["off", "grid"])
@pytest.mark.parametrize("reduce_mode", ["parent", "worker"])
def test_pool_accel_matrix_matches_golden(scene, accel, reduce_mode):
    """Grid-accelerated vs accel-off through the pool, all scenes."""
    job = build_job(scene, accel=accel, macro_cell_size=4)
    with SharedMemoryPoolExecutor(workers=2, reduce_mode=reduce_mode) as pool:
        image, result = run_job(pool, *job)
    assert_matches_golden(scene, image, result)


@pytest.mark.slow
@pytest.mark.parametrize("scene", sorted(SCENES))
@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("shuffle_mode", ["parent", "mesh"])
@pytest.mark.parametrize("reduce_mode", ["parent", "worker"])
@pytest.mark.parametrize("pipeline_depth", [1, 2])
def test_pool_matrix_matches_golden(
    scene, workers, shuffle_mode, reduce_mode, pipeline_depth
):
    if shuffle_mode == "mesh" and reduce_mode == "parent":
        pytest.skip(
            "mesh never materializes under a parent-side reduce "
            "(identical code path to the parent plane)"
        )
    job = build_job(scene)
    with SharedMemoryPoolExecutor(
        workers=workers,
        reduce_mode=reduce_mode,
        shuffle_mode=shuffle_mode,
        pipeline_depth=pipeline_depth,
    ) as pool:
        # Render the *same* job twice: the volume object (and so its
        # identity token) is shared, so the second pass actually hits the
        # resident-arena + warm accel-cache path, which must stay
        # bitwise stable.
        image, result = run_job(pool, *job)
        assert pool._arena_fingerprint is not None
        image2, result2 = run_job(pool, *job)
    assert_matches_golden(scene, image, result)
    assert_matches_golden(scene, image2, result2)


# -- fixture (re)generation --------------------------------------------------
def regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name in sorted(SCENES):
        image, result = render_scene(name, InProcessExecutor())
        s = result.stats
        np.savez_compressed(
            golden_path(name),
            image=image,
            pairs_per_reducer=result.pairs_per_reducer,
            counters=np.array(
                [
                    s.n_chunks,
                    s.n_rays,
                    s.n_samples,
                    s.n_pairs_emitted,
                    s.n_pairs_kept,
                ],
                dtype=np.int64,
            ),
        )
        print(
            f"wrote {golden_path(name)} "
            f"({image.shape[1]}x{image.shape[0]}, "
            f"{result.stats.n_pairs_kept} fragments kept)"
        )


if __name__ == "__main__":
    import argparse

    ap = argparse.ArgumentParser(description="golden fixture maintenance")
    ap.add_argument(
        "--regen",
        action="store_true",
        help="re-render every fixture with the serial executor and "
        "overwrite tests/golden/*.npz",
    )
    args = ap.parse_args()
    if args.regen:
        regenerate()
    else:
        ap.error("nothing to do (pass --regen)")
