"""March-kernel backend suite: selection, fallback, pinning, conformance.

Three layers:

* **Selection semantics** (run everywhere): ``resolve_kernel`` fallback
  and strict-failure rules, config validation, and the renderer's
  resolve-and-pin behaviour — ``"auto"`` becomes a concrete backend name
  *once*, at construction, so the parent and every pool worker march
  with the same kernel or fail fast at worker spawn.
* **Cross-backend plumbing** (run everywhere): acceleration-cache
  entries are keyed without the backend name, so tables/grids warmed
  under one kernel are served — not rebuilt — under another; pool
  telemetry carries the pinned backend and the warmup count.
* **Numba conformance** (``importorskip``): the compiled marcher against
  the straight-line reference marcher and the committed golden fixtures,
  under the parity contract documented in ``repro.render.kernels`` —
  fragment keys, depths, and every MapStats counter exact; colors within
  the blocked-vs-reference tolerance band (2e-4, 5e-4 shaded).
"""

import numpy as np
import pytest

from repro import MapReduceVolumeRenderer, make_dataset, orbit_camera
from repro.core import InProcessExecutor
from repro.observability import disable_tracing, enable_tracing
from repro.parallel import SharedMemoryPoolExecutor
from repro.render import (
    KERNEL_CHOICES,
    RenderConfig,
    available_backends,
    default_tf,
    resolve_kernel,
)
from repro.render.accel import AccelCache
from repro.render.raycast import raycast_brick
from repro.render import kernels as kernels_pkg
from repro.render.kernels import numba_backend, numpy_backend

from test_golden_images import (
    SCENES,
    build_job,
    load_golden,
    run_job,
)
from test_raycast_vectorized import assert_equivalent, make_volume


@pytest.fixture
def no_numba(monkeypatch):
    """Force the numba backend unavailable (and re-arm the one-shot
    fallback warning) regardless of what this box has installed."""
    monkeypatch.setattr(numba_backend, "_HAVE_NUMBA", False)
    monkeypatch.setattr(
        numba_backend, "_IMPORT_ERROR", ImportError("forced by test")
    )
    monkeypatch.setattr(kernels_pkg, "_FALLBACK_WARNED", False)


# -- selection semantics ------------------------------------------------------
def test_resolve_kernel_rejects_unknown_names():
    with pytest.raises(ValueError, match="kernel must be one of"):
        resolve_kernel("cuda")
    with pytest.raises(ValueError, match="kernel"):
        RenderConfig(kernel="cuda")
    with pytest.raises(ValueError, match="kernel"):
        SharedMemoryPoolExecutor(workers=1, kernel="cuda")


def test_concrete_backends_resolve_by_name():
    assert resolve_kernel("numpy").name == "numpy"
    assert "numpy" in available_backends()
    for name in available_backends():
        spec = resolve_kernel(name)
        assert spec.name == name
        assert callable(spec.march) and callable(spec.warmup)
    assert set(available_backends()) <= set(KERNEL_CHOICES)


def test_auto_falls_back_to_numpy_with_single_warning(no_numba):
    assert available_backends() == ("numpy",)
    with pytest.warns(RuntimeWarning, match="falling back") as rec:
        spec = resolve_kernel("auto")
        again = resolve_kernel("auto")  # second resolve must stay silent
    assert spec.name == "numpy" and again.name == "numpy"
    assert len(rec) == 1
    assert "pip install -e .[numba]" in str(rec[0].message)


def test_auto_fallback_warning_suppressed_for_probes(no_numba):
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any warning would fail the test
        assert resolve_kernel("auto", warn=False).name == "numpy"
    # The one-shot latch was not consumed by the silent probe.
    assert not kernels_pkg._FALLBACK_WARNED


def test_explicit_numba_raises_with_install_guidance(no_numba):
    with pytest.raises(RuntimeError, match="kernel='numba' requested"):
        resolve_kernel("numba")
    try:
        resolve_kernel("numba")
    except RuntimeError as exc:
        assert "pip install -e .[numba]" in str(exc)


def test_renderer_resolves_and_pins_concrete_backend():
    vol = make_dataset("skull", (16,) * 3)
    r = MapReduceVolumeRenderer(volume=vol, cluster=1)
    # "auto" must not survive construction: workers receive a concrete
    # name, so parent and pool can never resolve differently.
    assert r.render_config.kernel in ("numpy", "numba")
    assert r.render_config.kernel in available_backends()
    r2 = MapReduceVolumeRenderer(volume=vol, cluster=1, kernel="numpy")
    assert r2.render_config.kernel == "numpy"


def test_worker_warmup_failure_fails_fast(no_numba):
    """A pinned backend the worker cannot provide must fail the frame
    loudly at spawn — never silently render with a divergent marcher.
    (Workers fork, so the forced-unavailable patch rides into them.)"""
    job = build_job("skull_default_az40")
    with SharedMemoryPoolExecutor(workers=2, kernel="numba") as pool:
        with pytest.raises(RuntimeError, match="kernel warmup"):
            run_job(pool, *job)


# -- cross-backend plumbing ---------------------------------------------------
def test_pool_matches_serial_with_pinned_kernel_and_telemetry():
    """Parent (serial oracle) and pool workers march with the same pinned
    backend and agree bitwise; the frame telemetry records the backend
    and one warmup per spawned worker, and each worker emits its
    ``kernel-warmup`` span into the merged trace."""
    job = build_job("skull_default_az40", kernel="numpy")
    serial_image, serial_result = run_job(InProcessExecutor(), *job)
    tr = enable_tracing()
    try:
        with SharedMemoryPoolExecutor(
            workers=2, reduce_mode="worker", kernel="numpy"
        ) as pool:
            image, result = run_job(pool, *job)
    finally:
        disable_tracing()
    assert np.array_equal(image, serial_image)
    assert result.stats.n_samples == serial_result.stats.n_samples
    tel = result.stats.telemetry["metrics"]
    assert tel["kernel_backend"]["value"] == "numpy"
    assert tel["kernel_warmups"]["value"] == 2
    warmups = [
        ev for _track, _gen, ev in tr.all_events() if ev[0] == "kernel-warmup"
    ]
    assert len(warmups) == 2  # one per worker
    assert {ev[4]["backend"] for ev in warmups} == {"numpy"}


def test_pool_without_pinned_kernel_reports_unpinned():
    with SharedMemoryPoolExecutor(workers=1) as pool:
        _, result = run_job(pool, *build_job("skull_gray_az40"))
    tel = result.stats.telemetry["metrics"]
    assert tel["kernel_backend"]["value"] == "unpinned"
    assert tel["kernel_warmups"]["value"] == 0


def test_accel_cache_shared_across_backends():
    """Tables/grids are pure functions of (brick, tf): the cache key
    carries no backend name, so a cache warmed under one kernel serves
    every other backend without duplicate entries."""
    rng = np.random.default_rng(9)
    data = np.zeros((16, 16, 16), np.float32)
    data[4:12, 4:12, 4:12] = rng.random((8, 8, 8), dtype=np.float32)
    cam = orbit_camera((16,) * 3, azimuth_deg=30.0, width=48, height=48)
    cache = AccelCache()
    kwargs = dict(
        data=data,
        data_lo=(0, 0, 0),
        core_lo=(0, 0, 0),
        core_hi=(16, 16, 16),
        volume_shape=(16, 16, 16),
        camera=cam,
        tf=default_tf(),
        config=RenderConfig(dt=0.5, kernel="numpy"),
    )
    cold, cold_stats = raycast_brick(
        **kwargs, accel_key=("k",), accel_cache=cache
    )
    n_entries = len(cache)
    assert n_entries == 2  # corner-max table + macro grid (or sentinel)
    for backend in available_backends():
        hits = cache.hits
        kwargs["config"] = RenderConfig(dt=0.5, kernel=backend)
        warm, warm_stats = raycast_brick(
            **kwargs, accel_key=("k",), accel_cache=cache
        )
        assert len(cache) == n_entries, f"{backend} duplicated cache entries"
        assert cache.hits > hits, f"{backend} missed the warmed cache"
        # Same structures, same skip decisions: exact keys and counters.
        assert np.array_equal(warm["pixel"], cold["pixel"])
        assert np.array_equal(warm["depth"], cold["depth"])
        assert warm_stats.n_samples == cold_stats.n_samples
        assert warm_stats.n_kept == cold_stats.n_kept
        for ch in ("r", "g", "b", "a"):
            np.testing.assert_allclose(warm[ch], cold[ch], atol=2e-4)


# -- numba conformance --------------------------------------------------------
def _require_numba():
    pytest.importorskip("numba")
    if not numba_backend.available():  # pragma: no cover - import raced
        pytest.skip("numba backend unavailable")


def test_numba_warmup_compiles_once_and_is_idempotent():
    _require_numba()
    spec = resolve_kernel("numba")
    assert spec.name == "numba"
    spec.warmup()
    spec.warmup()  # second call must be a cheap no-op
    assert numba_backend._WARMED


@pytest.mark.parametrize("shading", [False, True])
@pytest.mark.parametrize(
    "dt,block_size,ert_alpha",
    [(1.0, 8, 1.0), (0.75, 1, 1.0), (0.6, 4, 0.9), (1.35, 64, 0.95)],
)
def test_numba_matches_reference_marcher(dt, block_size, ert_alpha, shading):
    """The full blocked-vs-reference property oracle, kernel pinned to
    numba: exact keys/depths/counters, banded colors."""
    _require_numba()
    rng = np.random.default_rng(17)
    vol = make_volume(rng, (14, 14, 14))
    cam = orbit_camera(
        vol.shape, azimuth_deg=40.0, elevation_deg=25.0, width=24, height=24
    )
    config = RenderConfig(
        dt=dt,
        block_size=block_size,
        ert_alpha=ert_alpha,
        shading=shading,
        kernel="numba",
    )
    assert_equivalent(
        vol, None, cam, default_tf(), config, atol=5e-4 if shading else 2e-4
    )


def test_numba_matches_reference_with_empty_space():
    _require_numba()
    rng = np.random.default_rng(11)
    data = np.zeros((16, 16, 16), np.float32)
    data[4:12, 4:12, 4:12] = rng.random((8, 8, 8), dtype=np.float32)
    from repro.volume import Volume

    vol = Volume(data)
    cam = orbit_camera(
        vol.shape, azimuth_deg=15.0, elevation_deg=35.0, width=24, height=24
    )
    for accel in ("off", "table", "grid"):
        config = RenderConfig(
            dt=0.7, block_size=16, accel=accel, macro_cell_size=4,
            kernel="numba",
        )
        assert_equivalent(vol, None, cam, default_tf(), config)


def assert_matches_golden_banded(name, image, result, atol=2e-4):
    """Golden assertion under the kernel parity contract: routing and
    counters exact, colors within the documented band."""
    g = load_golden(name)
    assert image.dtype == np.float32
    assert image.shape == g["image"].shape
    np.testing.assert_allclose(image, g["image"], atol=atol)
    assert np.array_equal(result.pairs_per_reducer, g["pairs_per_reducer"])
    s = result.stats
    counters = np.array(
        [s.n_chunks, s.n_rays, s.n_samples, s.n_pairs_emitted, s.n_pairs_kept],
        dtype=np.int64,
    )
    assert np.array_equal(counters, g["counters"]), f"{name}: stats diverged"


@pytest.mark.parametrize("accel", ["off", "table", "grid"])
@pytest.mark.parametrize("scene", sorted(SCENES))
def test_numba_golden_matrix_serial(scene, accel):
    _require_numba()
    image, result = run_job(
        InProcessExecutor(), *build_job(scene, accel=accel, kernel="numba")
    )
    assert_matches_golden_banded(scene, image, result)


@pytest.mark.parametrize("reduce_mode", ["parent", "worker"])
def test_numba_golden_through_pool(reduce_mode):
    _require_numba()
    job = build_job(
        "skull_default_az40", accel="grid", macro_cell_size=4, kernel="numba"
    )
    with SharedMemoryPoolExecutor(
        workers=2, reduce_mode=reduce_mode, kernel="numba"
    ) as pool:
        image, result = run_job(pool, *job)
        tel = result.stats.telemetry["metrics"]
        assert tel["kernel_backend"]["value"] == "numba"
        assert tel["kernel_warmups"]["value"] == 2
    assert_matches_golden_banded("skull_default_az40", image, result)


def test_numba_matches_numpy_fragment_for_fragment():
    """Direct backend-vs-backend parity on one brick: keys, depths, and
    counters exact; per-fragment colors within the band."""
    _require_numba()
    rng = np.random.default_rng(23)
    data = rng.random((14, 14, 14), dtype=np.float32)
    cam = orbit_camera((14,) * 3, azimuth_deg=70.0, width=32, height=32)
    out = {}
    for backend in ("numpy", "numba"):
        out[backend] = raycast_brick(
            data, (0, 0, 0), (0, 0, 0), (14,) * 3, (14,) * 3, cam,
            default_tf(), RenderConfig(dt=0.8, ert_alpha=0.95, kernel=backend),
        )
    (f_np, s_np), (f_nb, s_nb) = out["numpy"], out["numba"]
    assert s_np == s_nb  # every MapStats counter, exact
    assert np.array_equal(f_np["pixel"], f_nb["pixel"])
    assert np.array_equal(f_np["depth"], f_nb["depth"])
    for ch in ("r", "g", "b", "a"):
        np.testing.assert_allclose(f_np[ch], f_nb[ch], atol=2e-4)
