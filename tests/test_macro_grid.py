"""Conformance & invariants suite for the macro-cell empty-space grid.

The macro grid (``RenderConfig(accel="grid")``) carves whole transparent
sample spans out of each ray *before* the blocked march.  Its contract
is brutal on purpose: the accelerated kernel must be **bitwise
identical** to ``accel="off"`` — fragment keys, depths, colours, and
every :class:`MapStats` counter — because the golden-image layer pins
all of them.  This suite drives that equivalence across randomized
volumes (sparse blobs, shells, dense noise, all-empty), transfer
functions (leading-zero ramps, no-leading-zero, all-opaque,
identically-zero alpha, interior zero runs, tiny tables), cameras, step
sizes, block sizes, macro-cell sizes, and ghost-padded bricks — through
both span-traversal strategies (occupied-cell slab test and DDA walk).

It also checks the classifier's invariant directly: no cell may be
marked empty if any sample position attributed to it can produce
non-zero alpha under the kernel's own float32 arithmetic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MapReduceVolumeRenderer, make_dataset, orbit_camera
from repro.parallel import SharedMemoryPoolExecutor
from repro.render import (
    RenderConfig,
    TransferFunction1D,
    default_tf,
    grayscale_tf,
    raycast_brick,
)
from repro.render.accel import NO_GRID, build_macro_grid, is_no_grid
from repro.render.raycast import _alpha_zero_threshold, _macro_grid_spans
from repro.volume import BrickGrid, Volume
from repro.volume.occupancy import macro_cell_dims, macro_cell_minmax

F32 = np.float32


# -- scenario generators ------------------------------------------------------
def _ramp_tf(alphas):
    a = np.asarray(alphas, np.float32)
    table = np.stack([a * 0 + 0.5, a * 0 + 0.25, a * 0 + 0.75, a], axis=1)
    return TransferFunction1D(table)


def random_tf(rng):
    """Random transfer function spanning every zero-alpha edge case."""
    kind = rng.choice(
        [
            "default",
            "grayscale",
            "leading_zero",
            "no_leading_zero",
            "all_opaque",
            "all_zero",
            "interior_zero",
            "tiny",
        ]
    )
    if kind == "default":
        return default_tf()
    if kind == "grayscale":
        return grayscale_tf()
    n = int(rng.integers(8, 64))
    if kind == "leading_zero":
        z = int(rng.integers(1, n - 1))
        a = np.r_[np.zeros(z), rng.uniform(0.05, 1.0, n - z)]
    elif kind == "no_leading_zero":
        a = rng.uniform(0.05, 1.0, n)
    elif kind == "all_opaque":
        a = rng.uniform(0.5, 1.0, n)
    elif kind == "all_zero":
        a = np.zeros(n)
    elif kind == "interior_zero":
        z0 = int(rng.integers(1, n // 2))
        z1 = int(rng.integers(z0 + 1, n - 1))
        a = rng.uniform(0.05, 1.0, n)
        a[:z0] = 0.0  # leading run
        a[z0 + 1 : z1] = 0.0  # interior run the kernel must NOT carve
    else:  # tiny
        a = np.r_[0.0, rng.uniform(0.1, 1.0, 3)]
    return _ramp_tf(a)


def random_volume(rng):
    """Random volume spanning sparse / shell / dense / empty layouts."""
    shape = tuple(int(rng.integers(8, 24)) for _ in range(3))
    kind = rng.choice(["blob", "shell", "dense", "empty", "two_blobs"])
    data = np.zeros(shape, np.float32)
    if kind == "dense":
        data = rng.uniform(0.0, 1.0, shape).astype(np.float32)
    elif kind == "blob":
        lo = [int(rng.integers(0, s // 2)) for s in shape]
        hi = [int(rng.integers(l + 2, s + 1)) for l, s in zip(lo, shape)]
        data[lo[0] : hi[0], lo[1] : hi[1], lo[2] : hi[2]] = rng.uniform(
            0.1, 1.0, tuple(h - l for l, h in zip(lo, hi))
        ).astype(np.float32)
    elif kind == "two_blobs":
        for _ in range(2):
            lo = [int(rng.integers(0, max(1, s - 4))) for s in shape]
            hi = [min(s, l + int(rng.integers(2, 6))) for l, s in zip(lo, shape)]
            data[lo[0] : hi[0], lo[1] : hi[1], lo[2] : hi[2]] = rng.uniform(
                0.1, 1.0, tuple(h - l for l, h in zip(lo, hi))
            ).astype(np.float32)
    elif kind == "shell":
        t = max(1, min(shape) // 6)
        data[:] = rng.uniform(0.2, 1.0, shape).astype(np.float32)
        data[t:-t, t:-t, t:-t] = 0.0
    return Volume(data)


def random_config(rng, accel, cell):
    return RenderConfig(
        dt=float(rng.choice([0.35, 0.5, 0.8, 1.0, 1.45])),
        ert_alpha=float(rng.choice([1.0, 0.95, 0.9])),
        block_size=int(rng.choice([1, 3, 8, 32])),
        emit_placeholders=bool(rng.integers(0, 2)),
        accel=accel,
        macro_cell_size=cell,
    )


def assert_bitwise_conformance(vol, brick, cam, tf, rng, cell):
    """accel="grid" must equal accel="off" (and "table") bit for bit."""
    data = (
        vol.region(brick.data_lo, brick.data_hi) if brick is not None else vol.data
    )
    data_lo = brick.data_lo if brick is not None else (0, 0, 0)
    core_lo = brick.lo if brick is not None else (0, 0, 0)
    core_hi = brick.hi if brick is not None else vol.shape
    state = rng.bit_generator.state
    results = {}
    for accel in ("off", "table", "grid"):
        rng.bit_generator.state = state  # same draw for every mode
        cfg = random_config(rng, accel, cell)
        results[accel] = raycast_brick(
            data, data_lo, core_lo, core_hi, vol.shape, cam, tf, cfg
        )
    frags_off, stats_off = results["off"]
    for accel in ("table", "grid"):
        frags, stats = results[accel]
        assert frags.dtype == frags_off.dtype
        assert np.array_equal(frags, frags_off), f"accel={accel} diverged"
        assert stats == stats_off, f"accel={accel} stats diverged"


# -- randomized conformance (tier-1 subset + slow matrix) ---------------------
@pytest.mark.parametrize("seed", range(8))
def test_grid_conformance_randomized(seed):
    rng = np.random.default_rng(1000 + seed)
    vol = random_volume(rng)
    tf = random_tf(rng)
    cam = orbit_camera(
        vol.shape,
        azimuth_deg=float(rng.uniform(0, 360)),
        elevation_deg=float(rng.uniform(-75, 75)),
        width=28,
        height=28,
    )
    cell = int(rng.choice([1, 2, 4, 8, 32]))
    assert_bitwise_conformance(vol, None, cam, tf, rng, cell)


@pytest.mark.parametrize("seed", range(6))
def test_grid_conformance_random_bricks(seed):
    """Ghost-padded bricks: clamped edge cells and interior no-clamp paths."""
    rng = np.random.default_rng(2000 + seed)
    vol = random_volume(rng)
    edge = int(rng.integers(5, max(6, min(vol.shape))))
    grid = BrickGrid(vol.shape, edge, ghost=1)
    brick = grid.brick(int(rng.integers(0, len(list(grid)))))
    tf = random_tf(rng)
    cam = orbit_camera(
        vol.shape,
        azimuth_deg=float(rng.uniform(0, 360)),
        elevation_deg=float(rng.uniform(-60, 60)),
        width=24,
        height=24,
    )
    cell = int(rng.choice([2, 4, 8]))
    assert_bitwise_conformance(vol, brick, cam, tf, rng, cell)


@pytest.mark.slow
@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_grid_conformance_hypothesis(data):
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    vol = random_volume(rng)
    brick = None
    if data.draw(st.booleans()):
        grid = BrickGrid(vol.shape, data.draw(st.sampled_from([5, 7, 10])), ghost=1)
        brick = grid.brick(
            data.draw(st.integers(0, len(list(grid)) - 1))
        )
    cam = orbit_camera(
        vol.shape,
        azimuth_deg=data.draw(st.floats(0, 360)),
        elevation_deg=data.draw(st.floats(-80, 80)),
        width=24,
        height=24,
    )
    cell = data.draw(st.sampled_from([1, 2, 3, 4, 8, 16, 64]))
    assert_bitwise_conformance(vol, brick, cam, random_tf(rng), rng, cell)


def test_grid_conformance_axis_aligned_camera():
    """Zero direction components hit the slab/DDA degenerate-axis paths."""
    rng = np.random.default_rng(9)
    data = np.zeros((16, 16, 16), np.float32)
    data[2:7, 2:7, 2:7] = rng.uniform(0.3, 1.0, (5, 5, 5)).astype(np.float32)
    vol = Volume(data)
    for az, el in [(0.0, 0.0), (90.0, 0.0), (0.0, 89.9), (180.0, 0.0)]:
        cam = orbit_camera(vol.shape, azimuth_deg=az, elevation_deg=el,
                           width=20, height=20)
        for cell in (4, 8):
            assert_bitwise_conformance(vol, None, cam, default_tf(), rng, cell)


def test_grid_conformance_forces_both_traversals():
    """A single blob (few occupied cells → slab path) and many scattered
    blobs (many occupied cells → DDA walk) must both conform."""
    rng = np.random.default_rng(21)
    blob = np.zeros((32, 32, 32), np.float32)
    blob[10:22, 10:22, 10:22] = rng.uniform(0.2, 1.0, (12, 12, 12)).astype(F32)
    multi = np.zeros((32, 32, 32), np.float32)
    for _ in range(10):
        lo = rng.integers(0, 27, 3)
        multi[lo[0]:lo[0]+5, lo[1]:lo[1]+5, lo[2]:lo[2]+5] = rng.uniform(
            0.2, 1.0, (5, 5, 5)
        ).astype(F32)
    tf = default_tf()
    for data, cell in [(blob, 8), (multi, 4)]:
        occ = build_macro_grid(data, tf, cell)
        assert not is_no_grid(occ)
        cam = orbit_camera((32, 32, 32), azimuth_deg=33, elevation_deg=18,
                           width=40, height=40)
        assert_bitwise_conformance(Volume(data), None, cam, tf, rng, cell)
    # sanity: the two scenarios actually take different traversal paths
    occ_blob = build_macro_grid(blob, tf, 8)
    occ_multi = build_macro_grid(multi, tf, 4)
    assert int(occ_blob.sum()) <= sum(occ_blob.shape) + 4  # slab path
    assert int(occ_multi.sum()) > sum(occ_multi.shape) + 4  # DDA path


# -- classifier invariants ----------------------------------------------------
def test_macro_cell_minmax_bounds_padded_support():
    rng = np.random.default_rng(3)
    data = rng.uniform(0, 1, (13, 9, 17)).astype(np.float32)
    cs = 4
    mins, maxs = macro_cell_minmax(data, cs, pad=1)
    assert mins.shape == maxs.shape == macro_cell_dims(data.shape, cs)
    for ci in np.ndindex(mins.shape):
        sl = tuple(
            slice(max(0, c * cs - 1), min(n, (c + 1) * cs + 2))
            for c, n in zip(ci, data.shape)
        )
        assert mins[ci] == data[sl].min()
        assert maxs[ci] == data[sl].max()


@pytest.mark.parametrize("seed", range(6))
def test_no_empty_cell_can_produce_alpha(seed):
    """The classifier's proof obligation, checked sample-by-sample: any
    position whose (clamped) trilinear base falls inside a cell marked
    empty must interpolate a value the kernel's own float32 filter
    drops (u <= u_thr) — i.e. its alpha is exactly zero."""
    rng = np.random.default_rng(3000 + seed)
    data = random_volume(rng).data
    tf = random_tf(rng)
    cs = int(rng.choice([2, 3, 4, 8]))
    occ = build_macro_grid(data, tf, cs)
    if is_no_grid(occ):
        return  # nothing is ever skipped: vacuously safe
    u_thr = _alpha_zero_threshold(tf)
    empty = np.nonzero(~occ)
    if len(empty[0]) == 0:
        return
    nx, ny, nz = data.shape
    from repro.render.raycast import _trilinear_flat

    for ci, cj, ck in list(zip(*empty))[:20]:
        # random positions whose base index lies inside the cell
        m = 64
        cx = rng.uniform(ci * cs, min((ci + 1) * cs, nx - 1), m).astype(F32)
        cy = rng.uniform(cj * cs, min((cj + 1) * cs, ny - 1), m).astype(F32)
        cz = rng.uniform(ck * cs, min((ck + 1) * cs, nz - 1), m).astype(F32)
        vals = _trilinear_flat(
            np.ascontiguousarray(data).ravel(), data.shape, cx, cy, cz
        )
        u = tf.table_coord(vals)
        assert np.all(u <= F32(u_thr)), (ci, cj, ck)
        rgba = tf.lookup(vals)
        assert np.all(rgba[:, 3] == 0.0), (ci, cj, ck)


def test_interior_zero_alpha_cells_stay_occupied():
    """Cells whose range maps into an *interior* zero-alpha run must NOT
    be carved: the unaccelerated kernel marches those samples (their
    alpha is zero but they occupy scan slots), so carving them would
    shift float association.  Classification may only use the leading
    run."""
    a = np.zeros(32, np.float32)
    a[8:16] = 0.5  # visible band
    # 16.. stays zero: interior-adjacent trailing zero run
    tf = _ramp_tf(a)
    data = np.full((8, 8, 8), 0.9, np.float32)  # maps into trailing zeros
    occ = build_macro_grid(data, tf, 4)
    assert is_no_grid(occ) or occ.all()


def test_all_zero_alpha_tf_carves_everything():
    tf = _ramp_tf(np.zeros(16, np.float32))
    data = np.random.default_rng(0).uniform(0, 1, (12, 12, 12)).astype(F32)
    occ = build_macro_grid(data, tf, 4)
    assert not is_no_grid(occ) and not occ.any()


def test_no_leading_zero_and_opaque_tfs_yield_sentinel():
    rng = np.random.default_rng(1)
    data = rng.uniform(0, 1, (12, 12, 12)).astype(np.float32)
    for tf in (_ramp_tf(rng.uniform(0.05, 1.0, 16)),
               _ramp_tf(rng.uniform(0.5, 1.0, 8))):
        assert is_no_grid(build_macro_grid(data, tf, 4))
    # dense data under a leading-zero tf: every cell occupied → sentinel
    dense = np.full((12, 12, 12), 0.9, np.float32)
    assert is_no_grid(build_macro_grid(dense, default_tf(), 4))
    assert is_no_grid(NO_GRID)


def test_span_carve_is_conservative_per_sample():
    """Every sample the span carve drops would also be dropped by the
    kernel's exact per-sample filter — checked directly against the
    march's own float32 position arithmetic."""
    rng = np.random.default_rng(17)
    data = np.zeros((24, 24, 24), np.float32)
    data[4:12, 6:14, 8:20] = rng.uniform(0.2, 1.0, (8, 8, 12)).astype(F32)
    tf = default_tf()
    cs = 4
    occ = build_macro_grid(data, tf, cs)
    assert not is_no_grid(occ)
    cam = orbit_camera((24, 24, 24), azimuth_deg=52, elevation_deg=-33,
                       width=32, height=32)
    from repro.render.geometry import dual_box_intersect_f32
    from repro.render.raycast import _sample_intervals, _trilinear_flat

    corners = np.array(
        [[x, y, z] for x in (0, 24) for y in (0, 24) for z in (0, 24)], float
    )
    dirs, keys = cam.rect_rays_f32(cam.brick_rect(corners))
    eye = np.asarray(cam.eye)
    tn_b, tf_b, hit_b, tn_v, _, hit_v = dual_box_intersect_f32(
        eye, dirs, np.zeros(3), np.full(3, 24.0), np.zeros(3), (24, 24, 24)
    )
    active = np.nonzero(hit_b & hit_v & (tf_b > tn_b))[0]
    dt = F32(0.6)
    kf, counts = _sample_intervals(tn_b[active], tf_b[active], tn_v[active], dt)
    t0 = tn_v[active] + (kf.astype(F32) + F32(0.5)) * dt
    base_w = (eye - 0.5).astype(F32)
    row_ptr, j0, j1 = _macro_grid_spans(
        occ, cs, base_w, dirs[active], t0, counts, float(dt)
    )
    u_thr = F32(_alpha_zero_threshold(tf))
    flat = np.ascontiguousarray(data).ravel()
    checked = 0
    for i in range(len(active)):
        cnt = int(counts[i])
        if cnt == 0:
            continue
        kept = np.zeros(cnt, bool)
        for k in range(row_ptr[i], row_ptr[i + 1]):
            kept[j0[k] : j1[k]] = True
        carved = np.nonzero(~kept)[0]
        if len(carved) == 0:
            continue
        # the march's own position arithmetic, float32 end to end
        t = t0[i] + carved.astype(np.int32) * dt
        cx = base_w[0] + t * dirs[active[i], 0]
        cy = base_w[1] + t * dirs[active[i], 1]
        cz = base_w[2] + t * dirs[active[i], 2]
        vals = _trilinear_flat(flat, data.shape, cx, cy, cz)
        assert np.all(tf.table_coord(vals) <= u_thr), i
        checked += len(carved)
    assert checked > 1000  # the carve actually removed a lot


# -- end-to-end: renderer + executors ----------------------------------------
def _render_pair(executor_kwargs, accel):
    vol = make_dataset("skull", (24,) * 3)
    cam = orbit_camera(vol.shape, azimuth_deg=40.0, width=48, height=48)
    with MapReduceVolumeRenderer(
        volume=vol, cluster=2, render_config=RenderConfig(dt=0.75),
        accel=accel, **executor_kwargs,
    ) as r:
        res = r.render(cam, mode="exec")
        return res.image, res.stats.as_dict()


def test_renderer_grid_matches_off_end_to_end():
    img_off, stats_off = _render_pair({}, "off")
    img_tab, stats_tab = _render_pair({}, "table")
    img_grid, stats_grid = _render_pair({}, "grid")
    assert np.array_equal(img_off, img_grid)
    assert np.array_equal(img_off, img_tab)
    assert stats_off == stats_grid == stats_tab


def test_renderer_grid_matches_off_pool_smoke():
    img_off, stats_off = _render_pair({}, "off")
    img_pool, stats_pool = _render_pair(
        dict(executor="pool", workers=2, reduce_mode="worker"), "grid"
    )
    assert np.array_equal(img_off, img_pool)
    assert stats_off == stats_pool


@pytest.mark.slow
@pytest.mark.parametrize("reduce_mode", ["parent", "worker"])
@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("cell", [2, 8])
def test_renderer_grid_matches_off_pool_matrix(reduce_mode, workers, cell):
    img_off, stats_off = _render_pair({}, "off")
    vol = make_dataset("skull", (24,) * 3)
    cam = orbit_camera(vol.shape, azimuth_deg=40.0, width=48, height=48)
    with MapReduceVolumeRenderer(
        volume=vol, cluster=2, render_config=RenderConfig(dt=0.75),
        accel="grid", macro_cell_size=cell,
        executor="pool", workers=workers, reduce_mode=reduce_mode,
    ) as r:
        first = r.render(cam, mode="exec")
        # second frame hits the worker-seeded arena grids + warm caches
        second = r.render(cam, mode="exec")
    assert np.array_equal(img_off, first.image)
    assert np.array_equal(img_off, second.image)
    assert stats_off == first.stats.as_dict() == second.stats.as_dict()


def test_pool_arena_ships_grids_to_workers():
    """The parent publishes per-brick grids; an orbit's later frames
    reuse the same arena (fingerprint unchanged), so workers never
    rebuild them."""
    from repro.parallel.worker import GRID_ARENA_KEY

    vol = make_dataset("skull", (24,) * 3)
    cam = orbit_camera(vol.shape, azimuth_deg=40.0, width=48, height=48)
    with MapReduceVolumeRenderer(
        volume=vol, cluster=2, render_config=RenderConfig(dt=0.75),
        accel="grid", executor="pool", workers=2,
    ) as r:
        r.render(cam, mode="exec")
        pool = r._exec_instance
        assert isinstance(pool, SharedMemoryPoolExecutor)
        arena_keys = pool._state["arena"].spec.keys()
        grid_keys = [
            k for k in arena_keys
            if isinstance(k, tuple) and k and k[0] == GRID_ARENA_KEY
        ]
        assert len(grid_keys) == 4  # one per brick (2 GPUs × 2 bricks)
        fp = pool._arena_fingerprint
        r.render(cam, mode="exec")
        assert pool._arena_fingerprint == fp  # no republish, no rebuild
        # changing the macro-cell size must republish (fingerprinted)
        r.render_config = RenderConfig(dt=0.75, macro_cell_size=4)
        r.render(cam, mode="exec")
        assert pool._arena_fingerprint != fp


def test_accel_off_publishes_no_grids():
    from repro.parallel.worker import GRID_ARENA_KEY

    vol = make_dataset("skull", (24,) * 3)
    cam = orbit_camera(vol.shape, azimuth_deg=40.0, width=48, height=48)
    with MapReduceVolumeRenderer(
        volume=vol, cluster=2, render_config=RenderConfig(dt=0.75),
        accel="table", executor="pool", workers=2,
    ) as r:
        r.render(cam, mode="exec")
        arena_keys = r._exec_instance._state["arena"].spec.keys()
        assert not any(
            isinstance(k, tuple) and k and k[0] == GRID_ARENA_KEY
            for k in arena_keys
        )


def test_render_config_validation():
    with pytest.raises(ValueError):
        RenderConfig(accel="turbo")
    with pytest.raises(ValueError):
        RenderConfig(macro_cell_size=0)


def test_cli_accel_knobs(tmp_path):
    from repro.cli import main

    out = tmp_path / "img.ppm"
    rc = main([
        "render", "--dataset", "skull", "--size", "16", "--gpus", "2",
        "--image", "32", "--accel", "grid", "--macro-cell-size", "4",
        "--out", str(out),
    ])
    assert rc == 0 and out.exists()
    base = out.read_bytes()
    out2 = tmp_path / "img2.ppm"
    rc = main([
        "render", "--dataset", "skull", "--size", "16", "--gpus", "2",
        "--image", "32", "--accel", "off", "--out", str(out2),
    ])
    assert rc == 0
    assert out2.read_bytes() == base  # bitwise-identical pixels
