"""Remaining unit coverage: container errors, spec helpers, kv details."""

import struct

import numpy as np
import pytest

from repro.render import TransferFunction1D, default_tf, orbit_camera
from repro.sim import ClusterSpec, GPUSpec, NodeSpec, accelerator_cluster
from repro.volume import BvolReader, Volume, make_dataset, write_bvol
from repro.volume.datasets import supernova_field


def test_volume_from_function_and_value_range():
    v = Volume.from_function(supernova_field, (10, 10, 10), name="sn")
    assert v.name == "sn"
    lo, hi = v.value_range()
    assert 0.0 <= lo < hi <= 1.0


def test_bvol_offset_count_mismatch_rejected(tmp_path):
    v = make_dataset("skull", (8, 8, 8))
    path = tmp_path / "x.bvol"
    write_bvol(path, v, brick_size=4)
    # Corrupt the header: drop one offset.
    raw = bytearray(path.read_bytes())
    hlen = struct.unpack("<I", raw[6:10])[0]
    import json

    header = json.loads(bytes(raw[10 : 10 + hlen]))
    header["offsets"] = header["offsets"][:-1]
    blob = json.dumps(header).encode().ljust(hlen, b" ")
    raw[10 : 10 + hlen] = blob
    path.write_bytes(bytes(raw))
    with pytest.raises(ValueError, match="offsets"):
        BvolReader(path)


def test_bvol_short_read_rejected(tmp_path):
    v = make_dataset("skull", (8, 8, 8))
    path = tmp_path / "y.bvol"
    write_bvol(path, v, brick_size=8)
    r = BvolReader(path)
    # Truncate the file mid-payload.
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 100])
    with pytest.raises(IOError, match="short read"):
        r.read_brick(0)


def test_cluster_spec_helpers():
    spec = accelerator_cluster(6)
    assert spec.gpu_count == 6
    assert len(spec.gpu_specs()) == 6
    slow = spec.with_gpu(texture_samples_per_sec=1.0, vram_bytes=123)
    assert all(g.vram_bytes == 123 for g in slow.gpu_specs())
    # Original untouched (immutable specs).
    assert all(g.vram_bytes != 123 for g in spec.gpu_specs())


def test_gpu_spec_fits_and_cost_monotonicity():
    g = GPUSpec()
    assert g.fits(g.vram_bytes)
    assert not g.fits(g.vram_bytes + 1)
    assert g.sort_time(1000) < g.sort_time(10_000_000)
    assert g.composite_time(0) == pytest.approx(g.kernel_launch_overhead)
    assert g.partition_time(10) > 0


def test_node_spec_defaults():
    n = NodeSpec()
    assert n.gpu_count == 1
    spec = ClusterSpec(nodes=(n, n))
    assert spec.node_count == 2 and spec.gpu_count == 2


def test_transfer_function_nbytes():
    tf = default_tf(resolution=128)
    assert tf.nbytes == 128 * 4 * 4


def test_camera_rect_keys_are_int32_row_major():
    cam = orbit_camera((8, 8, 8), width=16, height=16)
    rect = cam.full_rect()
    _, _, keys = cam.rays_for_rect(rect)
    assert keys.dtype == np.int32
    assert keys[0] == 0
    assert keys[1] == 1  # x fastest
    assert keys[16] == 16  # next row


def test_make_dataset_anisotropic_resolution():
    v = make_dataset("plume", (8, 8, 32))
    assert v.shape == (8, 8, 32)
    assert v.resolution_label() == "8x8x32"
