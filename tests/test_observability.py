"""Observability stack: tracer, timeline export, metrics, regression gate.

Four contracts pinned here:

* **Inert when off** — with no tracer installed, every instrumentation
  point returns a shared no-op and pool renders reproduce the committed
  golden fixtures bitwise (the tracer can never leak into job data).
* **Faithful when on** — a traced pool render still matches the goldens
  bitwise, and its exported Chrome/Perfetto timeline has one track per
  worker plus the parent, covers every pipeline stage, nests laminarly
  per track, and tags respawned generations under fault injection.
* **One telemetry schema** — ``JobStats.telemetry`` carries the unified
  metrics registry (ring/recovery/arena/cache) and ``as_dict`` only
  exposes it on explicit opt-in.
* **Regression gate** — :class:`ExperimentResults` passes on the
  committed BENCH documents and fails on a synthetic 20% kernel
  slowdown (the CI ``repro report --check`` contract).
"""

import json
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from test_golden_images import (  # noqa: E402
    assert_matches_golden,
    build_job,
    render_scene,
    run_job,
)

from repro.bench.results import (  # noqa: E402
    ExperimentResults,
    collect_environment,
    load_kernel_means,
)
from repro.cli import main  # noqa: E402
from repro.core.stats import JobStats  # noqa: E402
from repro.observability import (  # noqa: E402
    MetricsRegistry,
    SCHEMA,
    build_job_telemetry,
    chrome_trace,
    current_tracer,
    disable_tracing,
    enable_tracing,
    stage_breakdown,
    stage_summary_line,
)
from repro.observability.tracer import _NOOP, instant, span  # noqa: E402
from repro.parallel import SharedMemoryPoolExecutor  # noqa: E402
from repro.parallel.ring import ShmRing  # noqa: E402
from repro.render.accel import AccelCache  # noqa: E402

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _no_tracer_leak():
    """Tracing state is process-global; never let a test leak it."""
    disable_tracing()
    yield
    disable_tracing()


# -- tracer core -------------------------------------------------------------
def test_span_is_shared_noop_when_disabled():
    assert current_tracer() is None
    s = span("map:chunk=0", cat="map")
    assert s is _NOOP
    with s as inner:
        inner.set(bytes=1)  # no-op, no state
    instant("supervisor:failure")  # no-op, no crash


def test_enabled_tracer_records_spans_and_instants():
    tr = enable_tracing()
    with span("map:chunk=3", cat="map", chunk=3) as s:
        s.set(pairs=17)
    instant("supervisor:failure", kind="wedged")
    assert len(tr.events) == 2
    name, cat, ts, dur, args = tr.events[0]
    assert name == "map:chunk=3" and cat == "map"
    assert isinstance(ts, int) and dur >= 0
    assert args == {"chunk": 3, "pairs": 17}
    # instants carry dur None
    assert tr.events[1][3] is None


def test_reenable_starts_an_empty_timeline():
    tr1 = enable_tracing()
    with span("stitch"):
        pass
    tr2 = enable_tracing()
    assert tr2 is not tr1 and tr2.events == []
    assert current_tracer() is tr2


def test_drain_and_remote_merge():
    tr = enable_tracing()
    with span("map:chunk=0", cat="map"):
        pass
    shipped = tr.drain()
    assert tr.events == [] and len(shipped) == 1
    tr.add_remote(1, 2, shipped)
    tr.add_remote(0, 0, [])  # empty buffers are dropped
    assert tr.remote() == [(1, 2, shipped)]
    with span("stitch", cat="stitch"):
        pass
    flat = list(tr.all_events())
    tracks = [(track, gen) for track, gen, _ in flat]
    assert (None, 0) in tracks and (1, 2) in tracks
    assert len(flat) == 2


# -- timeline export ---------------------------------------------------------
def _trace_doc(tr):
    doc = chrome_trace(tr)
    json.loads(json.dumps(doc))  # must be valid JSON end-to-end
    return doc


def test_chrome_trace_tracks_and_metadata():
    tr = enable_tracing()
    with span("publish", cat="publish"):
        pass
    tr.add_remote(0, 0, [("map:chunk=0", "map", 10_000, 5_000, {"chunk": 0})])
    tr.add_remote(1, 1, [("reduce:partition=3", "reduce", 20_000, 7_000, None)])
    doc = _trace_doc(tr)
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    names = {(e["tid"], e["args"]["name"]) for e in meta}
    assert (0, "parent") in names
    assert (1, "worker 0") in names and (2, "worker 1") in names
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    by_tid = {e["tid"]: e for e in spans}
    assert set(by_tid) == {0, 1, 2}
    # worker events are stamped with worker/gen; µs conversion from ns
    w1 = by_tid[2]
    assert w1["args"]["worker"] == 1 and w1["args"]["gen"] == 1
    assert w1["ts"] == 20.0 and w1["dur"] == 7.0


def test_stage_breakdown_buckets_and_summary_line():
    tr = enable_tracing()
    tr.add("map:chunk=0", 0, 6_000_000, cat="map")
    tr.add("map:chunk=1", 0, 2_000_000, cat="map")
    tr.add("shuffle-out", 0, 1_000_000, cat="shuffle")
    tr.add("shuffle-in", 0, 1_000_000, cat="shuffle")
    tr.add("ring-stall", 0, 3_000_000, cat="stall")
    tr.instant("supervisor:failure")  # instants never enter the breakdown
    totals = stage_breakdown(tr)
    assert totals == pytest.approx(
        {"map": 0.008, "shuffle": 0.002, "stall": 0.003}
    )
    line = stage_summary_line(tr)
    assert "map=80.0%" in line and "shuffle=20.0%" in line
    assert "stall=0.003s" in line


def test_stage_summary_line_empty_timeline_is_none():
    tr = enable_tracing()
    assert stage_summary_line(tr) is None


# -- metrics registry --------------------------------------------------------
def test_registry_kinds_and_conflicts():
    reg = MetricsRegistry()
    reg.counter("n").inc()
    reg.counter("n").inc(2)
    reg.gauge("g", unit="bytes").set(7)
    reg.histogram("h").observe(2.0)
    reg.histogram("h").observe(4.0)
    with pytest.raises(ValueError):
        reg.counter("n").inc(-1)
    with pytest.raises(TypeError):
        reg.gauge("n")  # kind conflict
    out = reg.as_dict()
    assert out["schema"] == SCHEMA
    assert out["metrics"]["n"] == {"kind": "counter", "value": 3}
    assert out["metrics"]["g"] == {"kind": "gauge", "value": 7, "unit": "bytes"}
    h = out["metrics"]["h"]["value"]
    assert h == {"count": 2, "sum": 6.0, "min": 2.0, "max": 4.0}
    assert list(out["metrics"]) == sorted(out["metrics"])


def test_absorb_flattens_nested_and_indexed():
    reg = MetricsRegistry()
    reg.absorb(
        "ring",
        {
            "shuffle_mode": "mesh",
            "stall_seconds": 0.25,
            "per_worker": [{"stalls": 1}, {"stalls": 0}],
            "widths": [2, 1],
        },
    )
    reg.absorb("nothing", None)
    m = reg.as_dict()["metrics"]
    assert m["ring.shuffle_mode"]["value"] == "mesh"
    assert m["ring.stall_seconds"]["value"] == 0.25
    assert m["ring.per_worker.0.stalls"]["value"] == 1
    assert m["ring.per_worker.1.stalls"]["value"] == 0
    assert m["ring.widths"]["value"] == [2, 1]


def test_build_job_telemetry_document():
    doc = build_job_telemetry(
        ring={"stall_seconds": 0.0},
        recovery={"respawns": 1},
        arena={"publishes": 2, "published_bytes": 4096, "rebroadcasts": 1},
        cache={"hits": 3, "misses": 1},
        workers=2,
        shuffle_mode="mesh",
    )
    m = doc["metrics"]
    assert doc["schema"] == SCHEMA
    assert m["arena.publishes"]["value"] == 2
    assert m["arena.published_bytes"] == {
        "kind": "counter",
        "value": 4096,
        "unit": "bytes",
    }
    assert m["arena.rebroadcasts"]["value"] == 1
    assert m["accel_cache.hits"]["value"] == 3
    assert m["workers"]["value"] == 2
    assert m["shuffle_mode"]["value"] == "mesh"
    assert m["recovery.respawns"]["value"] == 1


def test_accel_cache_stats():
    cache = AccelCache(max_entries=4)
    cache.put("a", np.zeros(8, np.float32))
    cache.get("a")
    cache.get("missing")
    s = cache.stats()
    assert s["hits"] == 1 and s["misses"] == 1
    assert s["hit_rate"] == 0.5
    assert s["entries"] == 1 and s["nbytes"] == 32
    cache.clear()
    assert cache.stats()["hit_rate"] is None


def test_jobstats_as_dict_telemetry_opt_in():
    stats = JobStats()
    stats.ring = {"stall_seconds": 0.0}
    stats.recovery = {"respawns": 1}
    stats.telemetry = {"schema": SCHEMA, "metrics": {}}
    base = stats.as_dict()
    assert "ring" not in base and "recovery" not in base
    assert "telemetry" not in base
    full = stats.as_dict(include_telemetry=True)
    assert full["ring"] == stats.ring
    assert full["recovery"] == stats.recovery
    assert full["telemetry"]["schema"] == SCHEMA
    # equality/asdict semantics of the dataclass are unaffected
    assert JobStats() == JobStats()


# -- ring stall span ---------------------------------------------------------
def test_ring_stall_records_interval_span():
    tr = enable_tracing()
    with ShmRing.create(1 << 12) as ring:
        ring.write_bytes(b"x" * 3000)

        def drain_later():
            time.sleep(0.05)
            ring.read_bytes(3000, timeout=5.0)

        t = threading.Thread(target=drain_later)
        t.start()
        ring.write_bytes(b"y" * 3000, timeout=5.0)  # must wait for space
        t.join()
    stalls = [ev for ev in tr.events if ev[0] == "ring-stall"]
    assert len(stalls) == 1
    name, cat, ts, dur, args = stalls[0]
    assert cat == "stall" and dur >= 40_000_000  # waited >= ~50 ms
    assert args["waited_for_bytes"] == 3000 and args["ring"]


# -- golden parity: tracer on/off --------------------------------------------
def test_traced_pool_render_matches_golden_smoke():
    """Tracing on: the pool render still reproduces the fixtures bitwise,
    and the merged timeline covers every stage with one track per worker
    plus the parent."""
    enable_tracing()
    with SharedMemoryPoolExecutor(
        workers=2, reduce_mode="worker", shuffle_mode="mesh"
    ) as pool:
        image, result = render_scene("skull_default_az40", pool)
    tr = disable_tracing()
    assert_matches_golden("skull_default_az40", image, result)

    doc = _trace_doc(tr)
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert {e["tid"] for e in spans} >= {0, 1, 2}  # parent + both workers
    families = {e["name"].split(":", 1)[0] for e in spans}
    assert families >= {"publish", "map", "shuffle-out", "shuffle-in", "reduce"}
    # reduce spans carry the *job-level* partition id and the frame seq
    reduces = [e for e in spans if e["name"].startswith("reduce:partition=")]
    labels = {int(e["name"].split("=", 1)[1]) for e in reduces}
    assert labels == set(range(len(reduces)))
    assert all(e["args"]["frame"] == 1 for e in reduces)
    # spans nest laminarly per track (no partial overlap on a timeline)
    for tid in {e["tid"] for e in spans}:
        ivals = sorted(
            ((e["ts"], e["ts"] + e["dur"]) for e in spans if e["tid"] == tid)
        )
        open_stack = []
        for lo, hi in ivals:
            while open_stack and open_stack[-1] <= lo:
                open_stack.pop()
            assert all(hi <= top for top in open_stack), (
                f"partial overlap on tid {tid}"
            )
            open_stack.append(hi)
    # telemetry rode along on the same run
    tel = result.stats.telemetry
    assert tel["schema"] == SCHEMA
    assert tel["metrics"]["arena.publishes"]["value"] == 1
    assert tel["metrics"]["shuffle_mode"]["value"] == "mesh"


def test_untraced_pool_render_matches_golden_smoke():
    assert current_tracer() is None
    with SharedMemoryPoolExecutor(workers=2, reduce_mode="worker") as pool:
        image, result = render_scene("skull_default_az40", pool)
    assert_matches_golden("skull_default_az40", image, result)
    assert result.stats.telemetry["schema"] == SCHEMA  # metrics stay on


@pytest.mark.slow
@pytest.mark.parametrize("traced", [False, True])
@pytest.mark.parametrize(
    "reduce_mode,shuffle_mode",
    [("parent", "parent"), ("worker", "parent"), ("worker", "mesh")],
)
def test_tracer_parity_matrix(traced, reduce_mode, shuffle_mode):
    """Tracer on/off × both shuffle planes × both reduce modes: bitwise."""
    if traced:
        enable_tracing()
    with SharedMemoryPoolExecutor(
        workers=2, reduce_mode=reduce_mode, shuffle_mode=shuffle_mode
    ) as pool:
        image, result = render_scene("skull_default_az40", pool)
    assert_matches_golden("skull_default_az40", image, result)


def test_fault_plan_trace_tags_respawned_generation():
    """Under an injected crash the recovered render stays bitwise-golden
    and the timeline shows the respawn span plus generation-1 worker
    spans interleaved on the same tracks."""
    enable_tracing()
    with SharedMemoryPoolExecutor(
        workers=2,
        reduce_mode="worker",
        shuffle_mode="mesh",
        fault_plan="crash@map:worker=1,frame=1",
        retry_backoff=0.0,
    ) as pool:
        image, result = render_scene("skull_default_az40", pool)
    tr = disable_tracing()
    assert_matches_golden("skull_default_az40", image, result)
    assert result.stats.recovery["respawns"] == 1

    doc = _trace_doc(tr)
    events = doc["traceEvents"]
    respawns = [e for e in events if e["name"] == "respawn" and e["ph"] == "X"]
    assert len(respawns) == 1 and respawns[0]["tid"] == 0
    assert respawns[0]["args"]["gen"] >= 1
    gens = {
        e["args"]["gen"]
        for e in events
        if e.get("ph") == "X" and e["tid"] > 0
    }
    assert {0, 1} <= gens
    marks = {e["name"] for e in events if e.get("ph") == "i"}
    assert {"supervisor:failure", "supervisor:respawn"} <= marks


# -- ExperimentResults / regression gate -------------------------------------
def _kernel_doc(means, environment=None):
    doc = {
        "benchmarks": [
            {"name": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ]
    }
    if environment is not None:
        doc["environment"] = environment
    return doc


@pytest.fixture
def bench_files(tmp_path):
    def write(name, means, environment=None):
        path = tmp_path / name
        path.write_text(json.dumps(_kernel_doc(means, environment)))
        return path

    return write


def test_results_pass_when_current_is_not_slower(bench_files):
    cur = bench_files("cur.json", {"sort": 0.010, "raycast": 0.020})
    base = bench_files("base.json", {"sort": 0.011, "raycast": 0.019})
    res = ExperimentResults(cur, baseline=base)
    assert res.check()  # raycast is 5.3% slower: inside the 15% gate
    table = {r["benchmark"]: r for r in res.kernel_table}
    assert table["sort"]["vs_baseline"] == pytest.approx(10 / 11)
    assert "previous_ms" not in table["sort"]


def test_results_fail_on_synthetic_20pct_regression(bench_files):
    cur = bench_files("cur.json", {"sort": 0.012, "raycast": 0.020})
    base = bench_files("base.json", {"sort": 0.010, "raycast": 0.020})
    res = ExperimentResults(cur, baseline=base, threshold=0.15)
    assert not res.check()
    (reg,) = res.regressions()
    assert reg["benchmark"] == "sort"
    assert reg["slowdown"] == pytest.approx(1.2)
    # a looser gate admits the same document
    assert res.check(threshold=0.25)
    report = res.render_report()
    assert "REGRESSIONS" in report and "sort" in report


def test_results_three_way_and_env_mismatch(bench_files):
    env_a = {"cpu_count": 8, "python": "3.11.7", "platform": "Linux-x86_64"}
    env_b = dict(env_a, cpu_count=1)
    cur = bench_files("cur.json", {"sort": 0.010}, environment=env_a)
    base = bench_files("base.json", {"sort": 0.010}, environment=env_b)
    prev = bench_files("prev.json", {"sort": 0.009}, environment=env_a)
    res = ExperimentResults(cur, baseline=base, previous=prev)
    row = res.kernel_table[0]
    assert row["vs_previous"] == pytest.approx(10 / 9)
    assert any("baseline.cpu_count" in n for n in res.environment_mismatches)
    assert "environment mismatch" in res.render_report()


def test_results_usable_cores_mismatch_is_flagged(bench_files):
    """cpu_count alone misses cgroup/affinity caps: two machines with 8
    physical cores are not comparable when one is pinned to 2 of them,
    so usable_cores is a comparability key in its own right."""
    env_a = {"cpu_count": 8, "usable_cores": 8, "python": "3.11.7",
             "platform": "Linux-x86_64"}
    env_b = dict(env_a, usable_cores=2)  # same box, throttled affinity
    cur = bench_files("cur.json", {"sort": 0.010}, environment=env_a)
    base = bench_files("base.json", {"sort": 0.010}, environment=env_b)
    res = ExperimentResults(cur, baseline=base)
    assert any("baseline.usable_cores" in n for n in res.environment_mismatches)
    assert not any("cpu_count" in n for n in res.environment_mismatches)
    # Documents predating the key (no usable_cores at all) are not
    # penalized with a false mismatch.
    old = bench_files(
        "old.json", {"sort": 0.010},
        environment={k: v for k, v in env_a.items() if k != "usable_cores"},
    )
    res = ExperimentResults(cur, baseline=old)
    assert not any("usable_cores" in n for n in res.environment_mismatches)


def test_results_committed_bench_files_pass_the_gate():
    """The CI configuration: committed current vs committed seed."""
    res = ExperimentResults(
        REPO / "BENCH_kernels.json",
        baseline=REPO / "BENCH_kernels_seed.json",
        parallel=REPO / "BENCH_parallel.json",
    )
    assert res.check()
    assert res.parallel_summary  # sweep rows summarized
    assert res.current_means  # non-empty documents
    report = res.render_report()
    assert "no kernel regression" in report


def test_collect_environment_and_load_means(tmp_path):
    env = collect_environment()
    assert env["cpu_count"] >= 1
    # The affinity-aware core count rides along: what the process can
    # actually run on, never more than the box has.
    assert 1 <= env["usable_cores"] <= env["cpu_count"]
    assert env["python"].count(".") == 2
    assert "timestamp" in env and "platform" in env
    path = tmp_path / "k.json"
    path.write_text(json.dumps(_kernel_doc({"a": 0.5})))
    assert load_kernel_means(path) == {"a": 0.5}


def test_results_invalid_threshold():
    with pytest.raises(ValueError):
        ExperimentResults("x.json", threshold=0.0)


# -- CLI surfaces ------------------------------------------------------------
def test_cli_render_trace_and_stats_json(tmp_path, capsys):
    trace = tmp_path / "t.json"
    stats = tmp_path / "s.json"
    rc = main(
        [
            "render", "--dataset", "skull", "--size", "16", "--gpus", "2",
            "--image", "32", "--executor", "pool", "--workers", "2",
            "--reduce-mode", "worker",
            "--trace-out", str(trace), "--stats-json", str(stats),
            "--out", str(tmp_path / "r.ppm"),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "measured stages:" in out and "map=" in out
    doc = json.loads(trace.read_text())
    spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    assert {e["tid"] for e in spans} >= {0, 1, 2}
    assert {e["name"].split(":", 1)[0] for e in spans} >= {
        "publish", "map", "reduce", "stitch",
    }
    payload = json.loads(stats.read_text())
    assert payload["telemetry"]["schema"] == SCHEMA
    assert "ring" in payload
    assert current_tracer() is None  # the command uninstalls its tracer


def test_cli_report_check_passes_and_fails(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(REPO)
    assert main(["report", "--check"]) == 0
    assert "kernel means" in capsys.readouterr().out

    cur = tmp_path / "cur.json"
    base = tmp_path / "base.json"
    cur.write_text(json.dumps(_kernel_doc({"sort": 0.012})))
    base.write_text(json.dumps(_kernel_doc({"sort": 0.010})))
    rc = main(
        [
            "report", "--check",
            "--kernels", str(cur),
            "--baseline", str(base),
            "--parallel", str(tmp_path / "missing.json"),
        ]
    )
    assert rc == 1
    captured = capsys.readouterr()
    assert "REGRESSIONS" in captured.out
    assert "FAIL" in captured.err
