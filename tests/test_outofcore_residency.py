"""Tests for residency planning and interactive frame sequences."""

import numpy as np
import pytest

from repro.core import MapWork
from repro.pipeline import MapReduceVolumeRenderer
from repro.pipeline.outofcore import plan_residency, strip_uploads
from repro.render import RenderConfig, default_tf
from repro.pipeline import orbit_path
from repro.sim import accelerator_cluster
from repro.volume import BrickGrid
from repro.volume.datasets import skull_field

GiB = 1024**3


def test_plan_residency_in_core():
    grid = BrickGrid((64, 64, 64), 32, ghost=1)  # ~9 MB of bricks
    plan = plan_residency(grid, accelerator_cluster(2))
    assert plan.in_core
    assert sum(plan.per_gpu_bytes) == grid.total_payload_bytes()
    assert 0 < plan.worst_fill < 0.01
    assert plan.headroom_bytes(0) > 3 * GiB


def test_plan_residency_out_of_core():
    # A 1024^3 brick set (~4.3 GiB with ghosts) on one 4 GiB GPU.
    grid = BrickGrid((1024, 1024, 1024), 512, ghost=1)
    plan = plan_residency(grid, accelerator_cluster(1))
    assert not plan.in_core
    assert plan.worst_fill > 1.0


def test_plan_residency_custom_assignment_validation():
    grid = BrickGrid((32, 32, 32), 16, ghost=1)
    with pytest.raises(ValueError):
        plan_residency(grid, accelerator_cluster(1), assignment=lambda i: 5)


def test_plan_residency_static_bytes_counted():
    grid = BrickGrid((64, 64, 64), 32, ghost=1)
    spec = accelerator_cluster(1).with_gpu(vram_bytes=grid.total_payload_bytes())
    assert plan_residency(grid, spec, static_bytes=0).in_core
    assert not plan_residency(grid, spec, static_bytes=1024).in_core


def test_strip_uploads():
    w = MapWork(0, 0, 1 << 20, 10, 10, 10, np.array([10], np.int64), read_from_disk=True)
    (s,) = strip_uploads([w])
    assert s.upload_bytes == 0 and not s.read_from_disk
    assert s.n_samples == w.n_samples
    assert np.array_equal(s.pairs_to_reducer, w.pairs_to_reducer)
    s.pairs_to_reducer[0] = 99
    assert w.pairs_to_reducer[0] == 10  # copy, not alias


def make_renderer(size=128, n_gpus=4):
    return MapReduceVolumeRenderer(
        volume=None,
        volume_shape=(size,) * 3,
        field=skull_field,
        cluster=n_gpus,
        tf=default_tf(),
        render_config=RenderConfig(dt=1.0),
    )


def test_render_sequence_resident_frames_faster():
    """After the first frame, resident re-renders skip uploads entirely."""
    r = make_renderer()
    cams = orbit_path((128,) * 3, 3, width=256, height=256)
    results = r.render_sequence(cams, resident=True)
    assert len(results) == 3
    first, later = results[0], results[1:]
    assert all(res.runtime < first.runtime for res in later)
    assert first.outcome.bytes_uploaded > 0
    assert all(res.outcome.bytes_uploaded == 0 for res in later)


def test_render_sequence_streaming_when_not_resident():
    r = make_renderer()
    cams = orbit_path((128,) * 3, 3, width=256, height=256)
    results = r.render_sequence(cams, resident=False)
    assert all(res.outcome.bytes_uploaded > 0 for res in results)
    # Frame times are comparable (every frame pays uploads).
    times = [res.runtime for res in results]
    assert max(times) < 1.5 * min(times)


def test_render_sequence_oversized_volume_falls_back_to_streaming():
    """A volume that cannot be resident streams every frame even with
    resident=True requested."""
    spec = accelerator_cluster(2).with_gpu(vram_bytes=1 << 17)  # 128 KiB GPUs
    r = MapReduceVolumeRenderer(
        volume=None,
        volume_shape=(64,) * 3,
        field=skull_field,
        cluster=spec,
        tf=default_tf(),
        render_config=RenderConfig(dt=1.0),
    )
    cams = orbit_path((64,) * 3, 2, width=64, height=64)
    results = r.render_sequence(cams, bricks_per_gpu=8, resident=True)
    assert all(res.outcome.bytes_uploaded > 0 for res in results)


def test_render_sequence_validation():
    r = make_renderer()
    with pytest.raises(ValueError):
        r.render_sequence([])
