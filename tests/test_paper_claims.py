"""The paper's headline claims, verified at test level.

The full figure grids live in ``benchmarks/``; these are the handful of
sentences a reader would quote from the paper, each checked end-to-end
on the simulated Accelerator Cluster so that ``pytest tests/`` alone
demonstrates the reproduction.
"""

import pytest

from repro.baselines import PARAVIEW_REPORTED_VPS
from repro.bench import figure_camera, sim_render
from repro.perfmodel import find_sweet_spot


@pytest.fixture(scope="module")
def runtimes_128():
    return {
        n: sim_render(128, n).runtime for n in (1, 2, 4, 8, 16, 32)
    }


def test_claim_1024_under_one_second_on_8_gpus():
    """Abstract: 'capable of rendering a 1024^3 floating-point sampled
    volume in under one second using 8 GPUs'."""
    res = sim_render(1024, 8)
    assert res.runtime < 1.0, res.runtime


def test_claim_interactive_rates(runtimes_128):
    """Abstract: 'rendering speeds are adequate for interactive
    visualization' — the small volume exceeds 2 FPS at its best."""
    best = min(runtimes_128.values())
    assert 1.0 / best > 2.0


def test_claim_sweet_spot_8_gpus(runtimes_128):
    """Fig. 3: 'the best runtime configuration is 8 GPUs ... with more
    than 8 GPUs, there is too much communication'."""
    assert find_sweet_spot(runtimes_128) in (8, 16)
    assert runtimes_128[32] > runtimes_128[8]


def test_claim_1024_scales_past_8():
    """Fig. 3: 'the additional communication with 32 GPUs over 16 GPUs
    is outweighed by the saving in compute time' for 1024^3."""
    t8 = sim_render(1024, 8).runtime
    t16 = sim_render(1024, 16).runtime
    t32 = sim_render(1024, 32).runtime
    assert t32 < t16 < t8


def test_claim_double_paraview_at_16_gpus():
    """Footnote 1: 'Using 16 GPUs on 4 nodes, we achieve more than
    double [ParaView's 346M VPS]'."""
    res = sim_render(1024, 16)
    vps = 1024**3 / res.runtime
    assert vps > 2 * PARAVIEW_REPORTED_VPS


def test_claim_scales_with_volume_size():
    """Abstract: 'our system scales with respect to the size of the
    volume' — VPS grows as volumes grow, at fixed GPU count."""
    vps = {
        s: s**3 / sim_render(s, 8).runtime for s in (128, 256, 512, 1024)
    }
    assert vps[128] < vps[256] < vps[512] < vps[1024]


def test_claim_computation_no_longer_bottleneck():
    """§6.3: 'fitting parallel volume rendering into a multi-GPU
    MapReduce model severely reduces computation as a bottleneck' — at
    32 GPUs the map compute is a small fraction of a single GPU's."""
    t1_map = sim_render(512, 1).outcome.breakdown.map
    r32 = sim_render(512, 32).outcome
    assert r32.breakdown.map < t1_map / 8
    # and communication (partition+io) now exceeds compute there.
    assert r32.breakdown.partition_io > r32.breakdown.map
